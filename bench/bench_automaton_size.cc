// Experiment E2 — Proposition 3's size bound:
//   |A| = O(aU * aFD * |Sigma| * |A_S| * |U| * |FD|).
// Sweeps each factor independently and reports the measured sizes of the
// component automata and of the product automaton recognizing L. The shape
// to observe: the product size grows linearly in each swept factor (and
// the construction time stays polynomial).

#include <benchmark/benchmark.h>

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "bench_common.h"
#include "independence/criterion.h"
#include "regex/regex.h"

namespace rtp::bench {
namespace {

using automata::CompilePattern;
using automata::MarkMode;

regex::Regex MustRegex(Alphabet* alphabet, const std::string& text) {
  auto re = regex::Regex::Parse(alphabet, text);
  RTP_CHECK_MSG(re.ok(), re.status().ToString().c_str());
  return std::move(re).value();
}

// FD pattern: a chain of `depth` edges with small regexes, two conditions
// and a target fanned out at the bottom.
fd::FunctionalDependency ChainFd(Alphabet* alphabet, int depth) {
  pattern::TreePattern tree;
  pattern::PatternNodeId cur = pattern::TreePattern::kRoot;
  for (int i = 0; i < depth; ++i) {
    cur = tree.AddChild(cur, MustRegex(alphabet, "s" + std::to_string(i)));
  }
  pattern::PatternNodeId p1 = tree.AddChild(cur, MustRegex(alphabet, "p1"));
  pattern::PatternNodeId p2 = tree.AddChild(cur, MustRegex(alphabet, "p2"));
  pattern::PatternNodeId q = tree.AddChild(cur, MustRegex(alphabet, "q0"));
  tree.AddSelected(p1);
  tree.AddSelected(p2);
  tree.AddSelected(q);
  auto fd = fd::FunctionalDependency::Create(std::move(tree),
                                             pattern::TreePattern::kRoot);
  RTP_CHECK(fd.ok());
  return std::move(fd).value();
}

update::UpdateClass SmallUpdateClass(Alphabet* alphabet) {
  pattern::TreePattern tree;
  pattern::PatternNodeId s =
      tree.AddChild(pattern::TreePattern::kRoot, MustRegex(alphabet, "s0/u0"));
  tree.AddSelected(s);
  auto u = update::UpdateClass::Create(std::move(tree));
  RTP_CHECK(u.ok());
  return std::move(u).value();
}

// Sweep |FD| via the chain depth of the FD pattern.
void BM_ProductSizeVsFdSize(benchmark::State& state) {
  Alphabet alphabet;
  int depth = static_cast<int>(state.range(0));
  fd::FunctionalDependency fd = ChainFd(&alphabet, depth);
  update::UpdateClass u = SmallUpdateClass(&alphabet);
  int64_t product_size = 0;
  int64_t fd_size = 0;
  for (auto _ : state) {
    auto result = independence::CheckIndependence(fd, u, nullptr, &alphabet);
    RTP_CHECK(result.ok());
    product_size = result->product_size;
    fd_size = result->fd_automaton_size;
    benchmark::DoNotOptimize(result);
  }
  state.counters["fd_pattern_size"] =
      static_cast<double>(fd.pattern().Size(alphabet));
  state.counters["fd_automaton_size"] = static_cast<double>(fd_size);
  state.counters["product_size"] = static_cast<double>(product_size);
  state.SetComplexityN(depth);
}
BENCHMARK(BM_ProductSizeVsFdSize)->DenseRange(1, 9, 2)->Complexity();

// Sweep |U| via the regex size of the update selector.
void BM_ProductSizeVsUpdateSize(benchmark::State& state) {
  Alphabet alphabet;
  int width = static_cast<int>(state.range(0));
  fd::FunctionalDependency fd = ChainFd(&alphabet, 2);
  // Update selector with a regex of ~width states: u0/u1/.../uk.
  std::string path = "s0";
  for (int i = 0; i < width; ++i) path += "/u" + std::to_string(i);
  pattern::TreePattern tree;
  tree.AddSelected(
      tree.AddChild(pattern::TreePattern::kRoot, MustRegex(&alphabet, path)));
  auto u = update::UpdateClass::Create(std::move(tree));
  RTP_CHECK(u.ok());

  int64_t product_size = 0;
  int64_t u_size = 0;
  for (auto _ : state) {
    auto result = independence::CheckIndependence(fd, *u, nullptr, &alphabet);
    RTP_CHECK(result.ok());
    product_size = result->product_size;
    u_size = result->u_automaton_size;
    benchmark::DoNotOptimize(result);
  }
  state.counters["u_automaton_size"] = static_cast<double>(u_size);
  state.counters["product_size"] = static_cast<double>(product_size);
  state.SetComplexityN(width);
}
BENCHMARK(BM_ProductSizeVsUpdateSize)->DenseRange(1, 9, 2)->Complexity();

// Sweep |A_S| via the number of schema element declarations.
void BM_ProductSizeVsSchemaSize(benchmark::State& state) {
  Alphabet alphabet;
  int elements = static_cast<int>(state.range(0));
  std::string schema_text = "schema { root e0; element e0 { ";
  // e0 content: e1*, e1 content: e2*, ... chain plus leaves.
  schema_text += "e1* / s0? }";
  for (int i = 1; i < elements; ++i) {
    schema_text += " element e" + std::to_string(i) + " { " +
                   (i + 1 < elements ? "e" + std::to_string(i + 1) + "*" : "#text") +
                   " }";
  }
  schema_text += " element s0 { u0* } element u0 { #text } }";
  auto schema = schema::Schema::Parse(&alphabet, schema_text);
  RTP_CHECK_MSG(schema.ok(), schema.status().ToString().c_str());

  fd::FunctionalDependency fd = ChainFd(&alphabet, 2);
  update::UpdateClass u = SmallUpdateClass(&alphabet);
  int64_t product_size = 0;
  int64_t schema_size = 0;
  for (auto _ : state) {
    auto result =
        independence::CheckIndependence(fd, u, &*schema, &alphabet);
    RTP_CHECK(result.ok());
    product_size = result->product_size;
    schema_size = result->schema_automaton_size;
    benchmark::DoNotOptimize(result);
  }
  state.counters["schema_automaton_size"] = static_cast<double>(schema_size);
  state.counters["product_size"] = static_cast<double>(product_size);
  state.SetComplexityN(elements);
}
BENCHMARK(BM_ProductSizeVsSchemaSize)->DenseRange(2, 18, 4)->Complexity();

// Sweep edge-regex automaton size |A_e| within the FD.
void BM_ProductSizeVsEdgeRegexSize(benchmark::State& state) {
  Alphabet alphabet;
  int k = static_cast<int>(state.range(0));
  std::string path = "s0";
  for (int i = 0; i < k; ++i) path += "/(x" + std::to_string(i) + "|y)";
  pattern::TreePattern tree;
  pattern::PatternNodeId x =
      tree.AddChild(pattern::TreePattern::kRoot, MustRegex(&alphabet, path));
  pattern::PatternNodeId q = tree.AddChild(x, MustRegex(&alphabet, "q0"));
  tree.AddSelected(q);
  auto fd = fd::FunctionalDependency::Create(std::move(tree),
                                             pattern::TreePattern::kRoot);
  RTP_CHECK(fd.ok());
  update::UpdateClass u = SmallUpdateClass(&alphabet);

  int64_t product_size = 0;
  for (auto _ : state) {
    auto result = independence::CheckIndependence(*fd, u, nullptr, &alphabet);
    RTP_CHECK(result.ok());
    product_size = result->product_size;
    benchmark::DoNotOptimize(result);
  }
  state.counters["product_size"] = static_cast<double>(product_size);
  state.SetComplexityN(k);
}
BENCHMARK(BM_ProductSizeVsEdgeRegexSize)->DenseRange(1, 9, 2)->Complexity();

}  // namespace
}  // namespace rtp::bench
