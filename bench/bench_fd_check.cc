// Experiment E4 — FD satisfaction checking (Definition 5): cost of
// CheckFd as the document grows, for the paper's fd1/fd2/fd3 (different
// mapping structures: linear per exam, per exam with node-equality target,
// quadratic in exams per candidate).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "fd/fd_checker.h"

namespace rtp::bench {
namespace {

void FdCheckBenchmark(benchmark::State& state,
                      pattern::ParsedPattern (*maker)(Alphabet*)) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  fd::FunctionalDependency fd = MustFd(maker(&alphabet));
  size_t mappings = 0;
  bool satisfied = false;
  for (auto _ : state) {
    fd::CheckResult result = fd::CheckFd(fd, doc);
    mappings = result.num_mappings;
    satisfied = result.satisfied;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = static_cast<double>(doc.LiveNodeCount());
  state.counters["mappings"] = static_cast<double>(mappings);
  state.counters["satisfied"] = satisfied ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}

void BM_CheckFd1(benchmark::State& state) {
  FdCheckBenchmark(state, workload::PaperFd1);
}
BENCHMARK(BM_CheckFd1)->Range(8, 32768)->Complexity();

void BM_CheckFd2(benchmark::State& state) {
  FdCheckBenchmark(state, workload::PaperFd2);
}
BENCHMARK(BM_CheckFd2)->Range(8, 32768)->Complexity();

void BM_CheckFd3(benchmark::State& state) {
  FdCheckBenchmark(state, workload::PaperFd3);
}
BENCHMARK(BM_CheckFd3)->Range(8, 8192)->Complexity();

void BM_CheckFd5(benchmark::State& state) {
  FdCheckBenchmark(state, workload::PaperFd5);
}
BENCHMARK(BM_CheckFd5)->Range(8, 32768)->Complexity();

// Violating documents: early-exit behavior of stop_at_first_violation.
void BM_CheckFd1Violating(benchmark::State& state) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  workload::ExamWorkloadParams params;
  params.num_candidates = candidates;
  params.consistent_ranks = false;  // random ranks: fd1 violations likely
  xml::Document doc = workload::GenerateExamDocument(&alphabet, params);
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  bool satisfied = true;
  for (auto _ : state) {
    fd::CheckResult result = fd::CheckFd(fd1, doc);
    satisfied = result.satisfied;
    benchmark::DoNotOptimize(result);
  }
  state.counters["satisfied"] = satisfied ? 1 : 0;
  state.SetComplexityN(candidates);
}
BENCHMARK(BM_CheckFd1Violating)->Range(64, 16384)->Complexity();

// Batch checking across documents (one per corpus member, distinct seeds),
// swept over jobs: the fleet-of-documents scenario CheckFdBatch
// parallelizes. Results are identical for every jobs value; on a
// single-core host the sweep only measures pool overhead.
void BM_CheckFd1BatchJobs(benchmark::State& state) {
  Alphabet alphabet;
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  std::vector<xml::Document> docs;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    docs.push_back(MakeExamDocument(&alphabet, /*candidates=*/256, seed));
  }
  std::vector<const xml::Document*> ptrs;
  for (const auto& doc : docs) ptrs.push_back(&doc);
  fd::BatchCheckOptions options;
  options.jobs = static_cast<int>(state.range(0));
  size_t satisfied = 0;
  for (auto _ : state) {
    std::vector<fd::CheckResult> results = fd::CheckFdBatch(fd1, ptrs, options);
    satisfied = 0;
    for (const auto& r : results) satisfied += r.satisfied ? 1 : 0;
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(options.jobs);
  state.counters["docs"] = static_cast<double>(docs.size());
  state.counters["satisfied"] = static_cast<double>(satisfied);
}
BENCHMARK(BM_CheckFd1BatchJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Exams-per-candidate sweep for the quadratic fd3.
void BM_CheckFd3ExamFanout(benchmark::State& state) {
  Alphabet alphabet;
  workload::ExamWorkloadParams params;
  params.num_candidates = 64;
  params.exams_per_candidate = static_cast<uint32_t>(state.range(0));
  xml::Document doc = workload::GenerateExamDocument(&alphabet, params);
  fd::FunctionalDependency fd3 = MustFd(workload::PaperFd3(&alphabet));
  size_t mappings = 0;
  for (auto _ : state) {
    fd::CheckResult result = fd::CheckFd(fd3, doc);
    mappings = result.num_mappings;
    benchmark::DoNotOptimize(result);
  }
  state.counters["mappings"] = static_cast<double>(mappings);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CheckFd3ExamFanout)->RangeMultiplier(2)->Range(2, 32)->Complexity();

}  // namespace
}  // namespace rtp::bench
