// Experiment E6 — parallel scaling of the independence matrix: the
// "set of FDs vs set of update classes" batch of the paper's abstract,
// swept over --jobs style worker counts (1, 2, 4, 8).
//
// Two workloads:
//   * exam: the paper's five FDs x six update classes over the Figure 1
//     schema (30 criterion checks per matrix),
//   * bib:  the path-FD constraints of the bibliography domain x four
//     update classes (8 checks per matrix).
//
// Each workload runs in two variants: `cached` shares one AutomatonCache
// across all pairs of one matrix build (each pattern automaton compiled
// once), `uncached` recompiles per pair — the cached/uncached gap isolates
// the shared-cache win from the threading win. Results are deterministic
// for every jobs value, so the per-jobs JSON lines are directly
// comparable; on a single-core host the wall-clock curve is flat and the
// jobs sweep only measures scheduling overhead.

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "bench_common.h"
#include "exec/automaton_cache.h"
#include "fd/path_fd.h"
#include "independence/matrix.h"
#include "workload/bib_generator.h"

namespace rtp::bench {
namespace {

// Update classes over the exam schema: the paper's class U plus leaf
// updates of the per-exam and per-candidate value nodes.
const char* const kExamUpdateTexts[] = {
    // level of candidates still passing exams (the paper's U).
    "root { session/candidate { s = level; toBePassed; } } select s;",
    "root { session/candidate/exam { s = mark; } } select s;",
    "root { session/candidate/exam { s = rank; } } select s;",
    "root { session/candidate/exam { s = date; } } select s;",
    "root { session/candidate { s = firstJob-Year; } } select s;",
    "root { session/candidate/toBePassed { s = discipline; } } select s;",
};

const char* const kBibUpdateTexts[] = {
    "root { bib/conf/paper { s = pages; } } select s;",
    "root { bib/conf/paper { s = title; } } select s;",
    "root { bib/conf/paper { s = author; } } select s;",
    "root { bib/conf { s = year; } } select s;",
};

struct MatrixWorkload {
  Alphabet alphabet;
  std::vector<fd::FunctionalDependency> fds;
  std::vector<update::UpdateClass> classes;
  std::optional<schema::Schema> schema;

  std::vector<const fd::FunctionalDependency*> fd_ptrs() const {
    std::vector<const fd::FunctionalDependency*> ptrs;
    for (const auto& fd : fds) ptrs.push_back(&fd);
    return ptrs;
  }
  std::vector<const update::UpdateClass*> class_ptrs() const {
    std::vector<const update::UpdateClass*> ptrs;
    for (const auto& cls : classes) ptrs.push_back(&cls);
    return ptrs;
  }
};

MatrixWorkload* ExamWorkload() {
  static MatrixWorkload* workload = [] {
    auto* w = new MatrixWorkload();
    w->schema = workload::BuildExamSchema(&w->alphabet);
    for (auto* make :
         {workload::PaperFd1, workload::PaperFd2, workload::PaperFd3,
          workload::PaperFd4, workload::PaperFd5}) {
      w->fds.push_back(MustFd(make(&w->alphabet)));
    }
    for (const char* text : kExamUpdateTexts) {
      w->classes.push_back(MustUpdate(MustParsePattern(&w->alphabet, text)));
    }
    return w;
  }();
  return workload;
}

MatrixWorkload* BibWorkload() {
  static MatrixWorkload* workload = [] {
    auto* w = new MatrixWorkload();
    w->schema = workload::BuildBibSchema(&w->alphabet);
    for (const char* text :
         {workload::kBibTitleKey, workload::kBibPagesFd}) {
      auto fd = fd::ParseAndCompilePathFd(&w->alphabet, text);
      RTP_CHECK_MSG(fd.ok(), fd.status().ToString().c_str());
      w->fds.push_back(std::move(fd).value());
    }
    for (const char* text : kBibUpdateTexts) {
      w->classes.push_back(MustUpdate(MustParsePattern(&w->alphabet, text)));
    }
    return w;
  }();
  return workload;
}

void RunMatrixBenchmark(benchmark::State& state, MatrixWorkload* w,
                        bool cached) {
  int jobs = static_cast<int>(state.range(0));
  auto fd_ptrs = w->fd_ptrs();
  auto class_ptrs = w->class_ptrs();
  double independent = 0;
  size_t pairs = 0;
  for (auto _ : state) {
    // A fresh cache per iteration: the measured win is intra-matrix
    // sharing across pairs, not warm-start between iterations.
    exec::AutomatonCache cache;
    independence::MatrixOptions options;
    options.jobs = jobs;
    options.cache = cached ? &cache : nullptr;
    auto matrix = independence::ComputeIndependenceMatrix(
        fd_ptrs, class_ptrs, &*w->schema, &w->alphabet, options);
    RTP_CHECK_MSG(matrix.ok(), matrix.status().ToString().c_str());
    pairs = matrix->entries.size();
    independent = matrix->IndependentFraction();
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["jobs"] = jobs;
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["independent_fraction"] = independent;
}

void BM_MatrixExamCached(benchmark::State& state) {
  RunMatrixBenchmark(state, ExamWorkload(), /*cached=*/true);
}
BENCHMARK(BM_MatrixExamCached)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_MatrixExamUncached(benchmark::State& state) {
  RunMatrixBenchmark(state, ExamWorkload(), /*cached=*/false);
}
BENCHMARK(BM_MatrixExamUncached)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_MatrixBibCached(benchmark::State& state) {
  RunMatrixBenchmark(state, BibWorkload(), /*cached=*/true);
}
BENCHMARK(BM_MatrixBibCached)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_MatrixBibUncached(benchmark::State& state) {
  RunMatrixBenchmark(state, BibWorkload(), /*cached=*/false);
}
BENCHMARK(BM_MatrixBibUncached)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace rtp::bench
