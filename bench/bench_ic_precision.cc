// Experiment E9 — precision of the (sound but incomplete) criterion IC.
// Runs the criterion over a suite of (fd, update-class) pairs built from
// the paper's exam domain, labels each pair through randomized impact
// search, and reports:
//   proven_independent    pairs where IC fired,
//   impact_found          pairs where a real impact witness exists,
//   soundness_violations  pairs where IC fired AND an impact exists —
//                         must be 0 (Proposition 2).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "independence/criterion.h"
#include "independence/impact_search.h"

namespace rtp::bench {
namespace {

struct Pair {
  const char* name;
  fd::FunctionalDependency fd;
  update::UpdateClass update;
};

std::vector<Pair> BuildSuite(Alphabet* alphabet) {
  std::vector<Pair> suite;
  auto add = [&](const char* name, pattern::ParsedPattern fd_pattern,
                 std::string_view update_text) {
    suite.push_back(Pair{name, MustFd(std::move(fd_pattern)),
                         MustUpdate(MustParsePattern(alphabet, update_text))});
  };

  const char* kLevelUpdate = "root { session/candidate { s = level; toBePassed; } } select s;";
  const char* kRankUpdate = "root { s = session/candidate/exam/rank; } select s;";
  const char* kMarkUpdate = "root { s = session/candidate/exam/mark; } select s;";
  const char* kTbpUpdate = "root { s = session/candidate/toBePassed/discipline; } select s;";
  const char* kFjUpdate = "root { s = session/candidate/firstJob-Year; } select s;";

  add("fd1_vs_level", workload::PaperFd1(alphabet), kLevelUpdate);
  add("fd1_vs_rank", workload::PaperFd1(alphabet), kRankUpdate);
  add("fd1_vs_mark", workload::PaperFd1(alphabet), kMarkUpdate);
  add("fd1_vs_tbp", workload::PaperFd1(alphabet), kTbpUpdate);
  add("fd2_vs_level", workload::PaperFd2(alphabet), kLevelUpdate);
  add("fd2_vs_rank", workload::PaperFd2(alphabet), kRankUpdate);
  add("fd3_vs_level", workload::PaperFd3(alphabet), kLevelUpdate);
  add("fd3_vs_tbp", workload::PaperFd3(alphabet), kTbpUpdate);
  add("fd5_vs_level", workload::PaperFd5(alphabet), kLevelUpdate);
  add("fd5_vs_fj", workload::PaperFd5(alphabet), kFjUpdate);
  add("fd5_vs_rank", workload::PaperFd5(alphabet), kRankUpdate);
  return suite;
}

void BM_CriterionPrecisionSuite(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  std::vector<Pair> suite = BuildSuite(&alphabet);

  int proven = 0;
  int impacts = 0;
  int soundness_violations = 0;
  for (auto _ : state) {
    proven = impacts = soundness_violations = 0;
    for (const Pair& pair : suite) {
      auto criterion = independence::CheckIndependence(pair.fd, pair.update,
                                                       &schema, &alphabet);
      RTP_CHECK(criterion.ok());
      independence::ImpactSearchParams params;
      params.num_documents = 30;
      params.updates_per_document = 6;
      independence::ImpactSearchResult search =
          independence::SearchForImpact(pair.fd, pair.update, schema, params);
      if (criterion->independent) ++proven;
      if (search.impact_found) ++impacts;
      if (criterion->independent && search.impact_found) {
        ++soundness_violations;
      }
    }
  }
  state.counters["pairs"] = static_cast<double>(suite.size());
  state.counters["proven_independent"] = proven;
  state.counters["impact_found"] = impacts;
  state.counters["soundness_violations"] = soundness_violations;
}
BENCHMARK(BM_CriterionPrecisionSuite)->Unit(benchmark::kMillisecond);

// Criterion-only timing over the suite (what an FD guard would pay up
// front, once per (fd, class) pair).
void BM_CriterionSuiteOnly(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  std::vector<Pair> suite = BuildSuite(&alphabet);
  for (auto _ : state) {
    for (const Pair& pair : suite) {
      auto criterion = independence::CheckIndependence(pair.fd, pair.update,
                                                       &schema, &alphabet);
      RTP_CHECK(criterion.ok());
      benchmark::DoNotOptimize(criterion);
    }
  }
  state.counters["pairs"] = static_cast<double>(suite.size());
}
BENCHMARK(BM_CriterionSuiteOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rtp::bench
