#ifndef RTP_BENCH_BENCH_COMMON_H_
#define RTP_BENCH_BENCH_COMMON_H_

#include "common/check.h"
#include "fd/functional_dependency.h"
#include "pattern/pattern_parser.h"
#include "update/update_class.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"

namespace rtp::bench {

inline fd::FunctionalDependency MustFd(pattern::ParsedPattern parsed) {
  auto fd = fd::FunctionalDependency::FromParsed(std::move(parsed));
  RTP_CHECK_MSG(fd.ok(), fd.status().ToString().c_str());
  return std::move(fd).value();
}

inline update::UpdateClass MustUpdate(pattern::ParsedPattern parsed) {
  auto u = update::UpdateClass::FromParsed(std::move(parsed));
  RTP_CHECK_MSG(u.ok(), u.status().ToString().c_str());
  return std::move(u).value();
}

inline pattern::ParsedPattern MustParsePattern(Alphabet* alphabet,
                                               std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

// Exam document with `candidates` candidates (about 20 nodes each).
inline xml::Document MakeExamDocument(Alphabet* alphabet, uint32_t candidates,
                                      uint64_t seed = 42) {
  workload::ExamWorkloadParams params;
  params.num_candidates = candidates;
  params.seed = seed;
  return workload::GenerateExamDocument(alphabet, params);
}

}  // namespace rtp::bench

#endif  // RTP_BENCH_BENCH_COMMON_H_
