// Experiment E8 — schema validation: bottom-up automaton runs on growing
// documents (the valid(S) component of the criterion's Definition 6).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/random_document.h"

namespace rtp::bench {
namespace {

void BM_ValidateExamDocuments(benchmark::State& state) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  bool valid = false;
  for (auto _ : state) {
    valid = schema.Validate(doc);
    benchmark::DoNotOptimize(valid);
  }
  state.counters["nodes"] = static_cast<double>(doc.LiveNodeCount());
  state.counters["valid"] = valid ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}
BENCHMARK(BM_ValidateExamDocuments)->Range(8, 32768)->Complexity();

void BM_ValidateInvalidDocument(benchmark::State& state) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  // Break validity deep in the document: drop one candidate's level.
  xml::NodeId session = doc.first_child(doc.root());
  xml::NodeId mid = doc.first_child(session);
  for (uint32_t i = 0; i < candidates / 2; ++i) mid = doc.next_sibling(mid);
  for (xml::NodeId k : doc.Children(mid)) {
    if (doc.label_name(k) == "level") doc.DetachSubtree(k);
  }
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  bool valid = true;
  for (auto _ : state) {
    valid = schema.Validate(doc);
    benchmark::DoNotOptimize(valid);
  }
  state.counters["valid"] = valid ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}
BENCHMARK(BM_ValidateInvalidDocument)->Range(8, 8192)->Complexity();

void BM_GenerateRandomValidDocument(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  workload::RandomDocumentParams params;
  params.soft_max_children = static_cast<size_t>(state.range(0));
  uint64_t seed = 1;
  size_t nodes = 0;
  for (auto _ : state) {
    params.seed = seed++;
    auto doc = workload::GenerateRandomDocument(schema, params);
    RTP_CHECK(doc.ok());
    nodes = doc->LiveNodeCount();
    benchmark::DoNotOptimize(doc);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GenerateRandomValidDocument)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace rtp::bench
