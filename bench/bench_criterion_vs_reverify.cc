// Experiment E1 — the study the paper's conclusion calls for: "estimate how
// much time it saves to launch the independence criterion instead of
// verifying the functional dependency again."
//
// Compares, for FD/update-class pairs of the paper:
//   (a) the one-off cost of the independence criterion IC (document-
//       independent: only the FD, the update class and the schema), vs
//   (b) the cost of applying an update and re-verifying the FD on the
//       updated document, as the document grows.
//
// The expected shape: (a) is constant while (b) grows with the document,
// so the criterion wins beyond small documents whenever it applies — and
// its advantage multiplies with the number of updates in a batch.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "exec/automaton_cache.h"
#include "fd/fd_checker.h"
#include "independence/criterion.h"
#include "update/update_ops.h"

namespace rtp::bench {
namespace {

// --- (a) criterion cost, per FD. ---

void BM_CriterionFd1VsLevelUpdates(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  bool independent = false;
  for (auto _ : state) {
    auto result =
        independence::CheckIndependence(fd1, u, &schema, &alphabet);
    RTP_CHECK(result.ok());
    independent = result->independent;
    benchmark::DoNotOptimize(result);
  }
  state.counters["independent"] = independent ? 1 : 0;
}
BENCHMARK(BM_CriterionFd1VsLevelUpdates);

void BM_CriterionFd5VsLevelUpdates(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  fd::FunctionalDependency fd5 = MustFd(workload::PaperFd5(&alphabet));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  bool independent = false;
  for (auto _ : state) {
    auto result =
        independence::CheckIndependence(fd5, u, &schema, &alphabet);
    RTP_CHECK(result.ok());
    independent = result->independent;
    benchmark::DoNotOptimize(result);
  }
  state.counters["independent"] = independent ? 1 : 0;
}
BENCHMARK(BM_CriterionFd5VsLevelUpdates);

void BM_CriterionFd3VsLevelUpdates(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  fd::FunctionalDependency fd3 = MustFd(workload::PaperFd3(&alphabet));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  bool independent = true;
  for (auto _ : state) {
    auto result =
        independence::CheckIndependence(fd3, u, &schema, &alphabet);
    RTP_CHECK(result.ok());
    independent = result->independent;
    benchmark::DoNotOptimize(result);
  }
  state.counters["independent"] = independent ? 1 : 0;
}
BENCHMARK(BM_CriterionFd3VsLevelUpdates);

// --- (b) update + full FD re-verification, document size sweep. ---

void ReverifyBenchmark(benchmark::State& state,
                       pattern::ParsedPattern (*fd_maker)(Alphabet*)) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  fd::FunctionalDependency fd = MustFd(fd_maker(&alphabet));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  update::Update q{&u, update::TransformValues{[](std::string_view v) {
                     return std::string(v) + "'";
                   }}};
  size_t mappings = 0;
  for (auto _ : state) {
    xml::Document work = doc.Clone();
    auto stats = update::ApplyUpdate(&work, q);
    RTP_CHECK(stats.ok());
    fd::CheckResult check = fd::CheckFd(fd, work);
    mappings = check.num_mappings;
    benchmark::DoNotOptimize(check);
  }
  state.counters["nodes"] = static_cast<double>(doc.LiveNodeCount());
  state.counters["mappings"] = static_cast<double>(mappings);
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}

void BM_ReverifyFd1AfterUpdate(benchmark::State& state) {
  ReverifyBenchmark(state, workload::PaperFd1);
}
BENCHMARK(BM_ReverifyFd1AfterUpdate)->Range(8, 32768)->Complexity();

void BM_ReverifyFd5AfterUpdate(benchmark::State& state) {
  ReverifyBenchmark(state, workload::PaperFd5);
}
BENCHMARK(BM_ReverifyFd5AfterUpdate)->Range(8, 32768)->Complexity();

// --- (b') a batch of K updates each followed by re-verification, vs one
// criterion check covering the whole class. ---

void BM_ReverifyBatchFd5(benchmark::State& state) {
  Alphabet alphabet;
  xml::Document doc = MakeExamDocument(&alphabet, 1000);
  fd::FunctionalDependency fd5 = MustFd(workload::PaperFd5(&alphabet));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    xml::Document work = doc.Clone();
    for (int i = 0; i < batch; ++i) {
      std::string suffix = std::to_string(i);
      update::Update q{&u, update::TransformValues{[&suffix](std::string_view) {
                         return "level" + suffix;
                       }}};
      auto stats = update::ApplyUpdate(&work, q);
      RTP_CHECK(stats.ok());
      fd::CheckResult check = fd::CheckFd(fd5, work);
      benchmark::DoNotOptimize(check);
    }
  }
  state.counters["updates_per_batch"] = batch;
}
BENCHMARK(BM_ReverifyBatchFd5)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// --- (a') criterion cost with the shared automaton cache: the per-check
// compile work disappears after the first check of each pattern, which is
// the steady state of a matrix/guard deployment. ---

void BM_CriterionFd5Cached(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  fd::FunctionalDependency fd5 = MustFd(workload::PaperFd5(&alphabet));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  exec::AutomatonCache cache;
  independence::CriterionOptions options;
  options.cache = &cache;
  bool independent = false;
  for (auto _ : state) {
    auto result =
        independence::CheckIndependence(fd5, u, &schema, &alphabet, options);
    RTP_CHECK(result.ok());
    independent = result->independent;
    benchmark::DoNotOptimize(result);
  }
  state.counters["independent"] = independent ? 1 : 0;
  state.counters["cache_entries"] = static_cast<double>(cache.size());
}
BENCHMARK(BM_CriterionFd5Cached);

}  // namespace
}  // namespace rtp::bench
