// Experiment E11 — the three verification strategies the paper discusses
// (Section 5, related work) on the same update stream:
//   full      re-verify the FD from scratch after every update ([naive]),
//   index     incremental maintenance with per-context summaries (the
//             style of the paper's reference [14]: document + stored
//             verification state available),
//   criterion the paper's contribution: one document-independent IC check
//             per (fd, class) pair; zero per-update work when it fires.
// Expected shape: criterion << index << full for independent pairs, and
// index << full for dependent pairs (where the criterion cannot help).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "fd/fd_checker.h"
#include "fd/fd_index.h"
#include "independence/criterion.h"
#include "update/update_ops.h"

namespace rtp::bench {
namespace {

// One rank rewrite at a single exam of the document (a dependent pair for
// fd1: ranks are fd1's targets).
update::UpdateClass RankClass(Alphabet* alphabet) {
  return MustUpdate(MustParsePattern(
      alphabet, "root { s = session/candidate/exam/rank; } select s;"));
}

void BM_FullRecheckPerUpdate(benchmark::State& state) {
  Alphabet alphabet;
  xml::Document doc = MakeExamDocument(&alphabet,
                                       static_cast<uint32_t>(state.range(0)));
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  update::UpdateClass ranks = RankClass(&alphabet);
  std::vector<xml::NodeId> targets = ranks.SelectNodes(doc);
  size_t which = 0;
  for (auto _ : state) {
    auto stats = update::ApplyOperationAt(
        &doc, {targets[which++ % targets.size()]},
        update::TransformValues{[](std::string_view v) { return std::string(v); }});
    RTP_CHECK(stats.ok());
    fd::CheckResult check = fd::CheckFd(fd1, doc);
    benchmark::DoNotOptimize(check);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullRecheckPerUpdate)->Range(64, 4096)->Complexity();

void BM_IncrementalIndexPerUpdate(benchmark::State& state) {
  Alphabet alphabet;
  xml::Document doc = MakeExamDocument(&alphabet,
                                       static_cast<uint32_t>(state.range(0)));
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  update::UpdateClass ranks = RankClass(&alphabet);
  std::vector<xml::NodeId> targets = ranks.SelectNodes(doc);
  fd::FdIndex index = fd::FdIndex::Build(fd1, doc);
  size_t which = 0;
  size_t incremental_mappings = 0;
  for (auto _ : state) {
    auto stats = update::ApplyOperationAt(
        &doc, {targets[which++ % targets.size()]},
        update::TransformValues{[](std::string_view v) { return std::string(v); }});
    RTP_CHECK(stats.ok());
    bool verdict = index.Revalidate(doc, stats->updated_roots);
    incremental_mappings = index.last_pass_mappings();
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["mappings_per_pass"] =
      static_cast<double>(incremental_mappings);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalIndexPerUpdate)->Range(64, 4096)->Complexity();

// fd2 (context = candidate) decomposes per candidate: the incremental
// index shines because only one candidate is re-enumerated per update.
void BM_IncrementalIndexPerUpdateFd2(benchmark::State& state) {
  Alphabet alphabet;
  xml::Document doc = MakeExamDocument(&alphabet,
                                       static_cast<uint32_t>(state.range(0)));
  fd::FunctionalDependency fd2 = MustFd(workload::PaperFd2(&alphabet));
  update::UpdateClass dates = MustUpdate(MustParsePattern(
      &alphabet, "root { s = session/candidate/exam/date; } select s;"));
  std::vector<xml::NodeId> targets = dates.SelectNodes(doc);
  fd::FdIndex index = fd::FdIndex::Build(fd2, doc);
  size_t which = 0;
  for (auto _ : state) {
    auto stats = update::ApplyOperationAt(
        &doc, {targets[which++ % targets.size()]},
        update::TransformValues{[](std::string_view v) { return std::string(v); }});
    RTP_CHECK(stats.ok());
    bool verdict = index.Revalidate(doc, stats->updated_roots);
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["mappings_per_pass"] =
      static_cast<double>(index.last_pass_mappings());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalIndexPerUpdateFd2)->Range(64, 4096)->Complexity();

// The criterion route for an independent pair: one check, zero per-update
// verification (shown as the flat one-off cost).
void BM_CriterionOneOffIndependentPair(benchmark::State& state) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  update::UpdateClass levels = MustUpdate(workload::PaperUpdateU(&alphabet));
  for (auto _ : state) {
    auto result =
        independence::CheckIndependence(fd1, levels, &schema, &alphabet);
    RTP_CHECK(result.ok() && result->independent);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CriterionOneOffIndependentPair);

}  // namespace
}  // namespace rtp::bench
