// Shared main for every bench_* binary: runs Google Benchmark with the
// normal console output, and additionally emits one machine-readable JSON
// line per benchmark run so BENCH_*.json trajectories can be collected
// (tools/run_benches.sh concatenates them into BENCH_RESULTS.json).
//
// Line shape:
//   {"bench":"BM_EnumerateR2/64","iterations":1234,
//    "real_time":813.2,"cpu_time":812.9,"time_unit":"ns",
//    "counters":{"mappings":96},
//    "metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
//
// "metrics" is a snapshot of the rtp::obs registry taken right after the
// run finished; values are cumulative for the process, so per-benchmark
// deltas need consecutive-line subtraction. The destination is chosen by
// --json-out=<file> or the RTP_BENCH_JSON env var (append mode); without
// either, lines go to stdout after the console report.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

// Console output plus one JSON line per iteration run.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(std::ostream* json_out) : json_out_(json_out) {}

  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.report_big_o || run.report_rms) continue;
      if (run.error_occurred) continue;
      *json_out_ << "{\"bench\":\"" << JsonEscape(run.benchmark_name())
                 << "\",\"iterations\":" << run.iterations
                 << ",\"real_time\":" << run.GetAdjustedRealTime()
                 << ",\"cpu_time\":" << run.GetAdjustedCPUTime()
                 << ",\"time_unit\":\""
                 << benchmark::GetTimeUnitString(run.time_unit)
                 << "\",\"counters\":{";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        if (!first) *json_out_ << ",";
        first = false;
        *json_out_ << "\"" << JsonEscape(name) << "\":" << counter.value;
      }
      *json_out_ << "},\"metrics\":" << rtp::obs::DumpJson() << "}\n";
    }
    json_out_->flush();
  }

 private:
  std::ostream* json_out_;
};

}  // namespace

int main(int argc, char** argv) {
  // Extract our flag before benchmark::Initialize rejects it.
  std::string json_path;
  if (const char* env = std::getenv("RTP_BENCH_JSON")) json_path = env;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int passthrough_argc = static_cast<int>(passthrough.size());

  std::ofstream json_file;
  std::ostream* json_out = &std::cout;
  if (!json_path.empty()) {
    json_file.open(json_path, std::ios::app);
    if (!json_file) {
      std::cerr << "cannot open --json-out file '" << json_path << "'\n";
      return 1;
    }
    json_out = &json_file;
  }

  benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                             passthrough.data())) {
    return 1;
  }
  JsonLineReporter reporter(json_out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
