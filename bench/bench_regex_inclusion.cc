// Experiment E6 — the PSPACE-hardness engine (Proposition 1): regular
// expression inclusion via determinization + difference. The family
//   eta_n = (a|b)* / a / (a|b)^n
// has NFAs of size O(n) but minimal DFAs of size 2^n: the measured DFA
// sizes and inclusion-test times must grow exponentially in n, while the
// polynomial criterion IC (bench_criterion_vs_reverify) stays flat — the
// gap the paper's Propositions 1 and 3 predict.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "independence/hardness.h"
#include "regex/regex.h"

namespace rtp::bench {
namespace {

std::string ExpBlowupRegex(int n) {
  std::string text = "(a|b)*/a";
  for (int i = 0; i < n; ++i) text += "/(a|b)";
  return text;
}

void BM_DeterminizeBlowupFamily(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int64_t dfa_states = 0;
  for (auto _ : state) {
    Alphabet alphabet;
    auto re = regex::Regex::Parse(&alphabet, ExpBlowupRegex(n));
    RTP_CHECK(re.ok());
    dfa_states = re->dfa().NumStates();
    benchmark::DoNotOptimize(re);
  }
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
  state.SetComplexityN(n);
}
BENCHMARK(BM_DeterminizeBlowupFamily)->DenseRange(2, 14, 2)->Complexity();

void BM_InclusionCheckBlowupFamily(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Alphabet alphabet;
  auto eta = regex::Regex::Parse(&alphabet, ExpBlowupRegex(n));
  auto eta_prime = regex::Regex::Parse(&alphabet, "(a|b)+");
  RTP_CHECK(eta.ok() && eta_prime.ok());
  bool included = false;
  for (auto _ : state) {
    included = eta->dfa().IsSubsetOf(eta_prime->dfa());
    benchmark::DoNotOptimize(included);
  }
  state.counters["included"] = included ? 1 : 0;
  state.SetComplexityN(n);
}
BENCHMARK(BM_InclusionCheckBlowupFamily)->DenseRange(2, 14, 2)->Complexity();

// The full reduction: building the Update-FD independence instance that
// encodes the inclusion question (Figure 7 construction).
void BM_BuildHardnessReduction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string eta = ExpBlowupRegex(n);
  for (auto _ : state) {
    Alphabet alphabet;
    auto reduction =
        independence::BuildInclusionReduction(&alphabet, eta, "(a|b)+");
    RTP_CHECK(reduction.ok());
    benchmark::DoNotOptimize(reduction);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildHardnessReduction)->DenseRange(2, 10, 2)->Complexity();

// Polynomial-size regexes where inclusion is easy: baseline sanity.
void BM_InclusionCheckEasyFamily(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Alphabet alphabet;
  std::string chain = "a";
  for (int i = 0; i < n; ++i) chain += "/a";
  auto small = regex::Regex::Parse(&alphabet, chain);
  auto big = regex::Regex::Parse(&alphabet, "a+");
  RTP_CHECK(small.ok() && big.ok());
  bool included = false;
  for (auto _ : state) {
    included = small->dfa().IsSubsetOf(big->dfa());
    benchmark::DoNotOptimize(included);
  }
  state.counters["included"] = included ? 1 : 0;
  state.SetComplexityN(n);
}
BENCHMARK(BM_InclusionCheckEasyFamily)->RangeMultiplier(2)->Range(4, 64)->Complexity();

}  // namespace
}  // namespace rtp::bench
