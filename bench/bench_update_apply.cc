// Experiment E7 — the update model of Section 4: cost of evaluating an
// update class (node selection) and applying operations, as document size
// and selectivity vary.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "update/update_ops.h"

namespace rtp::bench {
namespace {

void BM_SelectNodes(benchmark::State& state) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  size_t selected = 0;
  for (auto _ : state) {
    std::vector<xml::NodeId> nodes = u.SelectNodes(doc);
    selected = nodes.size();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["nodes"] = static_cast<double>(doc.LiveNodeCount());
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}
BENCHMARK(BM_SelectNodes)->Range(8, 32768)->Complexity();

void BM_ApplyTransformValues(benchmark::State& state) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  update::Update q{&u, update::TransformValues{[](std::string_view v) {
                     return std::string(v);
                   }}};
  for (auto _ : state) {
    state.PauseTiming();
    xml::Document work = doc.Clone();
    state.ResumeTiming();
    auto stats = update::ApplyUpdate(&work, q);
    RTP_CHECK(stats.ok());
    benchmark::DoNotOptimize(stats);
  }
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}
BENCHMARK(BM_ApplyTransformValues)->Range(8, 8192)->Complexity();

void BM_ApplyReplaceSubtree(benchmark::State& state) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  auto repl = std::make_shared<xml::Document>(&alphabet);
  xml::NodeId r = repl->AddElement(repl->root(), "level");
  repl->AddText(r, "E");
  update::Update q{&u, update::ReplaceSubtree{repl, r}};
  for (auto _ : state) {
    state.PauseTiming();
    xml::Document work = doc.Clone();
    state.ResumeTiming();
    auto stats = update::ApplyUpdate(&work, q);
    RTP_CHECK(stats.ok());
    benchmark::DoNotOptimize(stats);
  }
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}
BENCHMARK(BM_ApplyReplaceSubtree)->Range(8, 8192)->Complexity();

// Selectivity sweep: fraction of candidates with toBePassed controls how
// many nodes the class updates.
void BM_ApplyBySelectivity(benchmark::State& state) {
  Alphabet alphabet;
  workload::ExamWorkloadParams params;
  params.num_candidates = 4096;
  params.to_be_passed_fraction = static_cast<double>(state.range(0)) / 100.0;
  xml::Document doc = workload::GenerateExamDocument(&alphabet, params);
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet));
  update::Update q{&u, update::DeleteChildren{}};
  size_t updated = 0;
  for (auto _ : state) {
    state.PauseTiming();
    xml::Document work = doc.Clone();
    state.ResumeTiming();
    auto stats = update::ApplyUpdate(&work, q);
    RTP_CHECK(stats.ok());
    updated = stats->nodes_updated;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["nodes_updated"] = static_cast<double>(updated);
}
BENCHMARK(BM_ApplyBySelectivity)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

}  // namespace
}  // namespace rtp::bench
