// Experiment E3 — Proposition 3's emptiness-test time: the criterion's
// emptiness check must stay polynomial in the component sizes. Times
// IsEmptyLanguage on criterion product automata of growing size, and on
// plain pattern automata.

#include <benchmark/benchmark.h>

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "bench_common.h"
#include "regex/regex.h"

namespace rtp::bench {
namespace {

using automata::CompilePattern;
using automata::HedgeAutomaton;
using automata::MarkMode;

regex::Regex MustRegex(Alphabet* alphabet, const std::string& text) {
  auto re = regex::Regex::Parse(alphabet, text);
  RTP_CHECK_MSG(re.ok(), re.status().ToString().c_str());
  return std::move(re).value();
}

pattern::TreePattern ChainPattern(Alphabet* alphabet, int depth,
                                  const std::string& step) {
  pattern::TreePattern tree;
  pattern::PatternNodeId cur = pattern::TreePattern::kRoot;
  for (int i = 0; i < depth; ++i) {
    cur = tree.AddChild(cur, MustRegex(alphabet, step));
  }
  tree.AddSelected(cur);
  return tree;
}

void BM_EmptinessPatternAutomaton(benchmark::State& state) {
  Alphabet alphabet;
  int depth = static_cast<int>(state.range(0));
  pattern::TreePattern tree = ChainPattern(&alphabet, depth, "a|b/c");
  HedgeAutomaton automaton = CompilePattern(tree, MarkMode::kNone);
  bool empty = true;
  for (auto _ : state) {
    empty = automaton.IsEmptyLanguage();
    benchmark::DoNotOptimize(empty);
  }
  state.counters["automaton_size"] =
      static_cast<double>(automaton.TotalSize());
  state.counters["empty"] = empty ? 1 : 0;
  state.SetComplexityN(depth);
}
BENCHMARK(BM_EmptinessPatternAutomaton)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_EmptinessMeetProduct(benchmark::State& state) {
  Alphabet alphabet;
  int depth = static_cast<int>(state.range(0));
  pattern::TreePattern fd_tree = ChainPattern(&alphabet, depth, "a|b/c");
  pattern::TreePattern u_tree = ChainPattern(&alphabet, depth, "a|c");
  HedgeAutomaton fd_automaton =
      CompilePattern(fd_tree, MarkMode::kTraceAndSelectedSubtrees);
  HedgeAutomaton u_automaton =
      CompilePattern(u_tree, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet = automata::MeetProduct(fd_automaton, u_automaton);
  bool empty = true;
  for (auto _ : state) {
    empty = meet.IsEmptyLanguage();
    benchmark::DoNotOptimize(empty);
  }
  state.counters["product_size"] = static_cast<double>(meet.TotalSize());
  state.counters["empty"] = empty ? 1 : 0;
  state.SetComplexityN(depth);
}
BENCHMARK(BM_EmptinessMeetProduct)->DenseRange(1, 7, 2)->Complexity();

// Emptiness including the construction (what the criterion actually pays).
void BM_EmptinessConstructAndCheck(benchmark::State& state) {
  Alphabet alphabet;
  int depth = static_cast<int>(state.range(0));
  pattern::TreePattern fd_tree = ChainPattern(&alphabet, depth, "a|b/c");
  pattern::TreePattern u_tree = ChainPattern(&alphabet, depth, "a|c");
  for (auto _ : state) {
    HedgeAutomaton fd_automaton =
        CompilePattern(fd_tree, MarkMode::kTraceAndSelectedSubtrees);
    HedgeAutomaton u_automaton =
        CompilePattern(u_tree, MarkMode::kSelectedImagesOnly);
    HedgeAutomaton meet = automata::MeetProduct(fd_automaton, u_automaton);
    bool empty = meet.IsEmptyLanguage();
    benchmark::DoNotOptimize(empty);
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_EmptinessConstructAndCheck)->DenseRange(1, 7, 2)->Complexity();

// Witness synthesis cost on non-empty products.
void BM_WitnessSynthesis(benchmark::State& state) {
  Alphabet alphabet;
  int depth = static_cast<int>(state.range(0));
  pattern::TreePattern tree = ChainPattern(&alphabet, depth, "a|b/c");
  HedgeAutomaton automaton = CompilePattern(tree, MarkMode::kNone);
  for (auto _ : state) {
    auto witness = automaton.FindWitnessDocument(&alphabet);
    RTP_CHECK(witness.ok());
    benchmark::DoNotOptimize(witness);
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_WitnessSynthesis)->RangeMultiplier(2)->Range(2, 32)->Complexity();

}  // namespace
}  // namespace rtp::bench
