// Serving throughput for rtpd (src/serve): an in-process Server with
// jobs ∈ {1, 4, 8} worker threads, driven by 8 concurrent client
// connections issuing a mixed eval/checkfd workload over a resident
// exam-session corpus. Counters per run:
//
//   rps     requests per second across all clients (rate counter)
//   p50_us  median request latency, microseconds (send → response parsed)
//   p99_us  tail request latency, microseconds
//
// The point of the resident daemon is amortization — documents parsed
// once, automata warm — so the measured request path is exactly the wire
// round-trip the tests pin: line out, line back, JSON both ways.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/exam_generator.h"
#include "xml/xml_io.h"

namespace rtp::bench {
namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 16;

// Generator-shaped DSL texts (the documents come from
// workload::GenerateExamDocument, Figure 1 shape).
constexpr const char* kEvalPattern =
    "root { session/candidate { x = exam/mark; } } select x;";
constexpr const char* kFdText =
    "root { c = session { candidate/exam { p1 = discipline; p2 = mark; "
    "q = rank; } } } select p1[V], p2[V], q[V]; context c;";

std::string BenchSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/rtp_bench_serve_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void BM_ServeThroughput(benchmark::State& state) {
  serve::ServerOptions options;
  options.socket_path = BenchSocketPath();
  options.jobs = static_cast<int>(state.range(0));
  auto server_or = serve::Server::Start(options);
  if (!server_or.ok()) {
    state.SkipWithError(server_or.status().ToString().c_str());
    return;
  }
  auto server = std::move(server_or).value();

  {
    Alphabet alphabet;
    workload::ExamWorkloadParams params;
    params.num_candidates = 64;
    xml::Document doc = workload::GenerateExamDocument(&alphabet, params);
    auto loader_or = serve::Client::Connect(options.socket_path);
    if (!loader_or.ok()) {
      state.SkipWithError(loader_or.status().ToString().c_str());
      return;
    }
    serve::Client loader = std::move(loader_or).value();
    Status status =
        loader.Load("bench", "exam", xml::WriteXml(doc, /*indent=*/false));
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    // Warm the automaton cache so steady-state requests are measured.
    auto warm_eval = loader.Eval("bench", "exam", kEvalPattern);
    auto warm_check = loader.CheckFd("bench", "exam", kFdText);
    if (!warm_eval.ok() || !warm_check.ok()) {
      state.SkipWithError("warmup request failed");
      return;
    }
  }

  std::vector<double> latencies_us;
  size_t total_requests = 0;
  std::atomic<int> errors{0};
  for (auto _ : state) {
    std::vector<std::vector<double>> per_client(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client_or = serve::Client::Connect(options.socket_path);
        if (!client_or.ok()) {
          ++errors;
          return;
        }
        serve::Client client = std::move(client_or).value();
        per_client[c].reserve(kRequestsPerClient);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          auto t0 = std::chrono::steady_clock::now();
          bool ok;
          if ((c + i) % 2 == 0) {
            ok = client.Eval("bench", "exam", kEvalPattern).ok();
          } else {
            ok = client.CheckFd("bench", "exam", kFdText).ok();
          }
          auto t1 = std::chrono::steady_clock::now();
          if (!ok) ++errors;
          per_client[c].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const auto& lat : per_client) {
      latencies_us.insert(latencies_us.end(), lat.begin(), lat.end());
    }
    total_requests += static_cast<size_t>(kClients) * kRequestsPerClient;
  }
  server->Stop();
  if (errors.load() != 0) {
    state.SkipWithError("request errors during measurement");
    return;
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["rps"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = Percentile(latencies_us, 0.50);
  state.counters["p99_us"] = Percentile(latencies_us, 0.99);
  state.counters["clients"] = kClients;
  state.SetItemsProcessed(static_cast<int64_t>(total_requests));
}
BENCHMARK(BM_ServeThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace rtp::bench
