// Serving throughput for rtpd (src/serve), driven by the declarative
// workload harness (src/workload) instead of a hardcoded client loop: an
// in-process Server with jobs ∈ {1, 4, 8} worker threads under the
// committed examples/workloads/smoke.json spec — the same spec, seed and
// thread count the `load` CI leg replays against a real daemon, so the
// bench measures exactly the traffic shape CI pins. Counters per run:
//
//   rps     op responses per second across all client threads
//   p50_us  median op latency, microseconds (send → response parsed)
//   p99_us  tail op latency, microseconds
//   ops     total ops per iteration
//
// The point of the resident daemon is amortization — documents parsed
// once, automata warm — so the measured request path is exactly the wire
// round-trip the tests pin: line out, line back, JSON both ways.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <string>

#include "bench_common.h"
#include "serve/server.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace rtp::bench {
namespace {

constexpr int kClientThreads = 8;
constexpr uint64_t kSeed = 42;

std::string BenchSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/rtp_bench_load_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::string SmokeSpecPath() {
  return std::string(RTP_WORKLOADS_DIR) + "/smoke.json";
}

void BM_RtpLoadSmoke(benchmark::State& state) {
  auto spec_or = workload::LoadWorkloadSpecFile(SmokeSpecPath());
  if (!spec_or.ok()) {
    state.SkipWithError(spec_or.status().ToString().c_str());
    return;
  }

  serve::ServerOptions options;
  options.socket_path = BenchSocketPath();
  options.jobs = static_cast<int>(state.range(0));
  auto server_or = serve::Server::Start(options);
  if (!server_or.ok()) {
    state.SkipWithError(server_or.status().ToString().c_str());
    return;
  }
  auto server = std::move(server_or).value();

  workload::RunnerOptions runner_options;
  runner_options.socket_path = options.socket_path;
  runner_options.threads = kClientThreads;
  runner_options.seed = kSeed;

  workload::WorkloadStats merged;
  double elapsed_s = 0;
  bool failed = false;
  for (auto _ : state) {
    auto result_or = workload::RunWorkload(*spec_or, runner_options);
    if (!result_or.ok()) {
      state.SkipWithError(result_or.status().ToString().c_str());
      failed = true;
      break;
    }
    if (result_or->errors != 0) {
      state.SkipWithError("op errors during measurement");
      failed = true;
      break;
    }
    merged.Merge(result_or->stats);
    elapsed_s += result_or->elapsed_s;
  }
  server->Stop();
  if (failed) return;

  workload::NodeStats total = merged.Total();
  state.counters["rps"] = benchmark::Counter(
      static_cast<double>(total.count), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = total.p50_us();
  state.counters["p99_us"] = total.p99_us();
  state.counters["ops"] = static_cast<double>(total.count);
  state.counters["clients"] = kClientThreads;
  state.SetItemsProcessed(static_cast<int64_t>(total.count));
}
BENCHMARK(BM_RtpLoadSmoke)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace rtp::bench
