// Experiment E5 — pattern evaluation (Definition 2): match-table
// construction and mapping enumeration for the paper's R1/R2/R3 shapes, and
// the automaton-based membership alternative.

#include <benchmark/benchmark.h>

#include "automata/pattern_compiler.h"
#include "bench_common.h"
#include "pattern/evaluator.h"

namespace rtp::bench {
namespace {

void TablesBenchmark(benchmark::State& state,
                     pattern::ParsedPattern (*maker)(Alphabet*)) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  pattern::ParsedPattern p = maker(&alphabet);
  bool has_trace = false;
  for (auto _ : state) {
    pattern::MatchTables tables = pattern::MatchTables::Build(p.pattern, doc);
    has_trace = tables.HasTrace();
    benchmark::DoNotOptimize(tables);
  }
  state.counters["nodes"] = static_cast<double>(doc.LiveNodeCount());
  state.counters["has_trace"] = has_trace ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}

void BM_MatchTablesR1(benchmark::State& state) {
  TablesBenchmark(state, workload::PaperR1);
}
BENCHMARK(BM_MatchTablesR1)->Range(8, 32768)->Complexity();

void BM_MatchTablesR3(benchmark::State& state) {
  TablesBenchmark(state, workload::PaperR3);
}
BENCHMARK(BM_MatchTablesR3)->Range(8, 32768)->Complexity();

// Full enumeration; R2 is linear in exams (pairs within candidates), R1 is
// quadratic across candidates, so R1 runs on smaller documents.
void EnumerationBenchmark(benchmark::State& state,
                          pattern::ParsedPattern (*maker)(Alphabet*)) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  pattern::ParsedPattern p = maker(&alphabet);
  pattern::MatchTables tables = pattern::MatchTables::Build(p.pattern, doc);
  size_t count = 0;
  for (auto _ : state) {
    pattern::MappingEnumerator enumerator(tables);
    count = enumerator.Count();
    benchmark::DoNotOptimize(count);
  }
  state.counters["mappings"] = static_cast<double>(count);
  state.SetComplexityN(candidates);
}

void BM_EnumerateR1(benchmark::State& state) {
  EnumerationBenchmark(state, workload::PaperR1);
}
BENCHMARK(BM_EnumerateR1)->RangeMultiplier(4)->Range(4, 256)->Complexity();

void BM_EnumerateR2(benchmark::State& state) {
  EnumerationBenchmark(state, workload::PaperR2);
}
BENCHMARK(BM_EnumerateR2)->Range(8, 8192)->Complexity();

void BM_EnumerateR3(benchmark::State& state) {
  EnumerationBenchmark(state, workload::PaperR3);
}
BENCHMARK(BM_EnumerateR3)->Range(8, 8192)->Complexity();

// Automaton-run membership as an alternative to match tables.
void BM_AutomatonMembershipR3(benchmark::State& state) {
  Alphabet alphabet;
  uint32_t candidates = static_cast<uint32_t>(state.range(0));
  xml::Document doc = MakeExamDocument(&alphabet, candidates);
  pattern::ParsedPattern p = workload::PaperR3(&alphabet);
  automata::HedgeAutomaton automaton =
      automata::CompilePattern(p.pattern, automata::MarkMode::kNone);
  bool accepts = false;
  for (auto _ : state) {
    accepts = automaton.Accepts(doc);
    benchmark::DoNotOptimize(accepts);
  }
  state.counters["accepts"] = accepts ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(doc.LiveNodeCount()));
}
BENCHMARK(BM_AutomatonMembershipR3)->Range(8, 8192)->Complexity();

// Deep descendant-style pattern (wildcard star) on deep documents.
void BM_DescendantPattern(benchmark::State& state) {
  Alphabet alphabet;
  xml::Document doc(&alphabet);
  // A comb: chain of depth N with a small fanout at each level.
  int depth = static_cast<int>(state.range(0));
  xml::NodeId cur = doc.AddElement(doc.root(), "lvl");
  for (int i = 0; i < depth; ++i) {
    doc.AddElement(cur, "leaf");
    cur = doc.AddElement(cur, "lvl");
  }
  doc.AddElement(cur, "target");

  pattern::ParsedPattern p =
      MustParsePattern(&alphabet, "root { s = _*/target; } select s;");
  size_t count = 0;
  for (auto _ : state) {
    pattern::MatchTables tables = pattern::MatchTables::Build(p.pattern, doc);
    pattern::MappingEnumerator enumerator(tables);
    count = enumerator.Count();
    benchmark::DoNotOptimize(count);
  }
  state.counters["mappings"] = static_cast<double>(count);
  state.SetComplexityN(depth);
}
BENCHMARK(BM_DescendantPattern)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

}  // namespace
}  // namespace rtp::bench
