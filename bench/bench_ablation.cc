// Experiment E10 — ablations for the design choices DESIGN.md calls out:
//  (a) edge-DFA minimization: its effect on pattern-automaton and
//      criterion-product sizes (the |A_e| factors of Proposition 3),
//  (b) the two-phase match-table evaluator versus the Definition-2-literal
//      reference enumeration (why table-guided evaluation matters),
//  (c) early-stop FD checking versus full enumeration on violating
//      documents.

#include <benchmark/benchmark.h>

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "bench_common.h"
#include "fd/fd_checker.h"
#include "pattern/evaluator.h"
#include "pattern/reference_evaluator.h"
#include "regex/regex_parser.h"
#include "workload/random_pattern.h"

namespace rtp::bench {
namespace {

// (a) Minimization ablation: build the same chain pattern with minimized
// and raw edge DFAs; report both automaton sizes.
pattern::TreePattern ChainPattern(Alphabet* alphabet, int depth,
                                  const std::string& step, bool minimized) {
  pattern::TreePattern tree;
  pattern::PatternNodeId cur = pattern::TreePattern::kRoot;
  for (int i = 0; i < depth; ++i) {
    auto ast = regex::ParseRegex(alphabet, step);
    RTP_CHECK(ast.ok());
    regex::Regex re = minimized
                          ? regex::Regex::FromAst(std::move(*ast))
                          : regex::Regex::FromAstUnminimized(std::move(*ast));
    cur = tree.AddChild(cur, std::move(re));
  }
  tree.AddSelected(cur);
  return tree;
}

void BM_AblationMinimization(benchmark::State& state) {
  Alphabet alphabet;
  int depth = static_cast<int>(state.range(0));
  // A regex whose Thompson DFA is far from minimal.
  const std::string step = "(a|b)/(a|b)|a/(b|a)";
  pattern::TreePattern min_tree = ChainPattern(&alphabet, depth, step, true);
  pattern::TreePattern raw_tree = ChainPattern(&alphabet, depth, step, false);

  int64_t min_size = 0;
  int64_t raw_size = 0;
  for (auto _ : state) {
    automata::HedgeAutomaton min_automaton =
        CompilePattern(min_tree, automata::MarkMode::kNone);
    automata::HedgeAutomaton raw_automaton =
        CompilePattern(raw_tree, automata::MarkMode::kNone);
    min_size = min_automaton.TotalSize();
    raw_size = raw_automaton.TotalSize();
    benchmark::DoNotOptimize(min_automaton);
    benchmark::DoNotOptimize(raw_automaton);
  }
  state.counters["minimized_size"] = static_cast<double>(min_size);
  state.counters["raw_size"] = static_cast<double>(raw_size);
  state.counters["inflation"] =
      static_cast<double>(raw_size) / static_cast<double>(min_size);
}
BENCHMARK(BM_AblationMinimization)->DenseRange(1, 7, 2);

void BM_AblationMinimizationProduct(benchmark::State& state) {
  Alphabet alphabet;
  int depth = static_cast<int>(state.range(0));
  const std::string step = "(a|b)/(a|b)|a/(b|a)";
  bool minimized = state.range(1) != 0;
  pattern::TreePattern fd_tree =
      ChainPattern(&alphabet, depth, step, minimized);
  pattern::TreePattern u_tree = ChainPattern(&alphabet, 1, "a", minimized);

  int64_t product_size = 0;
  for (auto _ : state) {
    automata::HedgeAutomaton a = CompilePattern(
        fd_tree, automata::MarkMode::kTraceAndSelectedSubtrees);
    automata::HedgeAutomaton b =
        CompilePattern(u_tree, automata::MarkMode::kSelectedImagesOnly);
    automata::HedgeAutomaton meet = automata::MeetProduct(a, b);
    product_size = meet.TotalSize();
    bool empty = meet.IsEmptyLanguage();
    benchmark::DoNotOptimize(empty);
  }
  state.counters["product_size"] = static_cast<double>(product_size);
  state.counters["minimized"] = minimized ? 1 : 0;
}
BENCHMARK(BM_AblationMinimizationProduct)
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({4, 1})
    ->Args({4, 0});

// (b) Table-guided enumeration vs the literal reference enumeration.
void BM_AblationTablesVsReference(benchmark::State& state) {
  Alphabet alphabet;
  bool use_tables = state.range(1) != 0;
  workload::RandomTreeParams tree_params;
  tree_params.seed = 11;
  tree_params.text_leaf_percent = 0;
  tree_params.max_nodes = static_cast<uint32_t>(state.range(0));
  xml::Document doc = workload::GenerateRandomTree(&alphabet, tree_params);
  pattern::TreePattern pattern =
      MustParsePattern(&alphabet, "root { a = _*/l0; b = _*/l1; } select a, b;")
          .pattern;

  size_t count = 0;
  for (auto _ : state) {
    if (use_tables) {
      pattern::MatchTables tables = pattern::MatchTables::Build(pattern, doc);
      pattern::MappingEnumerator enumerator(tables);
      count = enumerator.Count();
    } else {
      count = pattern::ReferenceEnumerateMappings(pattern, doc).size();
    }
    benchmark::DoNotOptimize(count);
  }
  state.counters["mappings"] = static_cast<double>(count);
  state.counters["tables"] = use_tables ? 1 : 0;
}
BENCHMARK(BM_AblationTablesVsReference)
    ->Args({10, 1})
    ->Args({10, 0})
    ->Args({20, 1})
    ->Args({20, 0})
    ->Args({30, 1})
    ->Args({30, 0});

// (c) Early-stop vs full-enumeration FD checking on violating documents.
void BM_AblationEarlyStop(benchmark::State& state) {
  Alphabet alphabet;
  bool stop_early = state.range(0) != 0;
  workload::ExamWorkloadParams params;
  params.num_candidates = 2048;
  params.consistent_ranks = false;  // violations likely
  xml::Document doc = workload::GenerateExamDocument(&alphabet, params);
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  size_t mappings = 0;
  for (auto _ : state) {
    fd::CheckResult result =
        fd::CheckFd(fd1, doc, fd::CheckOptions{stop_early});
    mappings = result.num_mappings;
    benchmark::DoNotOptimize(result);
  }
  state.counters["mappings_visited"] = static_cast<double>(mappings);
  state.counters["early_stop"] = stop_early ? 1 : 0;
}
BENCHMARK(BM_AblationEarlyStop)->Arg(1)->Arg(0);

}  // namespace
}  // namespace rtp::bench
