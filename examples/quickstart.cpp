// Quickstart: parse an XML document, express a functional dependency as a
// regular tree pattern, check it, update the document, and let the
// independence criterion decide whether re-checking was necessary.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "fd/fd_checker.h"
#include "independence/criterion.h"
#include "pattern/pattern_parser.h"
#include "update/update_ops.h"
#include "xml/xml_io.h"

int main() {
  using namespace rtp;

  Alphabet alphabet;

  // 1. An XML document (the exam-session domain of the paper).
  auto doc = xml::ParseXml(&alphabet, R"(
    <session>
      <candidate IDN="001">
        <exam><discipline>math</discipline><mark>15</mark><rank>2</rank></exam>
        <exam><discipline>physics</discipline><mark>12</mark><rank>5</rank></exam>
        <level>B</level>
      </candidate>
      <candidate IDN="012">
        <exam><discipline>math</discipline><mark>15</mark><rank>2</rank></exam>
        <level>C</level>
      </candidate>
    </session>)");
  if (!doc.ok()) {
    std::printf("parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. fd1 of the paper: within a session, two exams on the same
  //    discipline with the same mark share the same rank.
  auto parsed = pattern::ParsePattern(&alphabet, R"(
    root {
      c = session {
        x = candidate/exam {
          p1 = discipline;
          p2 = mark;
          q = rank;
        }
      }
    }
    select p1, p2, q;
    context c;
  )");
  auto fd1 = fd::FunctionalDependency::FromParsed(std::move(parsed).value());
  std::printf("fd1:\n%s\n", fd1->ToString(alphabet).c_str());

  // 3. Check satisfaction (Definition 5).
  fd::CheckResult check = fd::CheckFd(*fd1, *doc);
  std::printf("document satisfies fd1: %s (%zu mappings, %zu groups)\n\n",
              check.satisfied ? "yes" : "no", check.num_mappings,
              check.num_groups);

  // 4. An update class: rewrite the ranks of every exam.
  auto update_pattern = pattern::ParsePattern(&alphabet, R"(
    root { s = session/candidate/exam/rank; }
    select s;
  )");
  auto ranks = update::UpdateClass::FromParsed(std::move(update_pattern).value());

  // 5. The independence criterion (Proposition 2): is fd1 safe under ANY
  //    update of this class?
  auto criterion =
      independence::CheckIndependence(*fd1, *ranks, nullptr, &alphabet);
  std::printf("criterion: fd1 %s w.r.t. rank updates\n",
              criterion->independent ? "is independent"
                                     : "may be impacted (re-check needed)");

  // 6. Indeed, a rank rewrite can break fd1.
  update::Update q{&*ranks, update::TransformValues{[](std::string_view v) {
                     return std::string(v) + "9";
                   }}};
  xml::Document mutated = doc->Clone();
  // Rewrite only the first selected rank, so the two math/15 exams drift
  // apart (the class's concrete update may differ per node).
  std::vector<xml::NodeId> targets = ranks->SelectNodes(mutated);
  auto stats = update::ApplyOperationAt(
      &mutated, {targets.front()}, q.operation);
  std::printf("updated %zu node(s)\n", stats->nodes_updated);

  fd::CheckResult after = fd::CheckFd(*fd1, mutated);
  std::printf("updated document satisfies fd1: %s\n",
              after.satisfied ? "yes" : "no");
  if (!after.satisfied) {
    std::printf("\n%s", after.violation->Describe(mutated, *fd1).c_str());
  }

  // 7. A class the criterion clears: updating levels never touches fd1.
  auto level_pattern = pattern::ParsePattern(&alphabet, R"(
    root { s = session/candidate/level; }
    select s;
  )");
  auto levels = update::UpdateClass::FromParsed(std::move(level_pattern).value());
  auto safe =
      independence::CheckIndependence(*fd1, *levels, nullptr, &alphabet);
  std::printf("\ncriterion: fd1 %s w.r.t. level updates -> skip re-checks\n",
              safe->independent ? "is independent" : "may be impacted");
  return 0;
}
