// A constraint guard in front of an update stream — the application the
// paper's conclusion motivates: for each (functional dependency, update
// class) pair, run the polynomial independence criterion ONCE; classes
// proven independent never trigger FD re-verification, the others pay a
// re-check per update. The audit prints the compatibility matrix and then
// simulates an update stream to measure the verification work saved.
//
// Build & run:  ./build/examples/example_independence_audit

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "fd/fd_checker.h"
#include "independence/matrix.h"
#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"

namespace {

using namespace rtp;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct NamedFd {
  const char* name;
  fd::FunctionalDependency fd;
};
struct NamedClass {
  const char* name;
  update::UpdateClass cls;
};

}  // namespace

int main() {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);

  auto make_fd = [&](pattern::ParsedPattern parsed) {
    auto fd = fd::FunctionalDependency::FromParsed(std::move(parsed));
    RTP_CHECK(fd.ok());
    return std::move(fd).value();
  };
  auto make_class = [&](const char* text) {
    auto parsed = pattern::ParsePattern(&alphabet, text);
    RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
    auto cls = update::UpdateClass::FromParsed(std::move(parsed).value());
    RTP_CHECK(cls.ok());
    return std::move(cls).value();
  };

  std::vector<NamedFd> fds;
  fds.push_back({"fd1", make_fd(workload::PaperFd1(&alphabet))});
  fds.push_back({"fd2", make_fd(workload::PaperFd2(&alphabet))});
  fds.push_back({"fd3", make_fd(workload::PaperFd3(&alphabet))});
  fds.push_back({"fd5", make_fd(workload::PaperFd5(&alphabet))});

  std::vector<NamedClass> classes;
  classes.push_back(
      {"levels ", make_class("root { session/candidate { s = level; toBePassed; } } select s;")});
  classes.push_back(
      {"ranks  ", make_class("root { s = session/candidate/exam/rank; } select s;")});
  classes.push_back(
      {"tbp    ", make_class("root { s = session/candidate/toBePassed/discipline; } select s;")});
  classes.push_back(
      {"fjyears", make_class("root { s = session/candidate/firstJob-Year; } select s;")});

  // --- Compatibility matrix (one criterion run per pair). ---
  std::printf("=== Independence matrix (criterion IC, with schema) ===\n");
  std::vector<const fd::FunctionalDependency*> fd_ptrs;
  std::vector<const update::UpdateClass*> class_ptrs;
  std::vector<std::string> fd_names, class_names;
  for (const NamedFd& f : fds) {
    fd_ptrs.push_back(&f.fd);
    fd_names.push_back(f.name);
  }
  for (const NamedClass& c : classes) {
    class_ptrs.push_back(&c.cls);
    class_names.push_back(c.name);
  }
  Clock::time_point start = Clock::now();
  auto matrix = independence::ComputeIndependenceMatrix(fd_ptrs, class_ptrs,
                                                        &schema, &alphabet);
  RTP_CHECK_MSG(matrix.ok(), matrix.status().ToString().c_str());
  double matrix_ms = MsSince(start);
  std::printf("%s", matrix->ToString(fd_names, class_names).c_str());
  std::printf(
      "matrix computed once in %.1f ms (document-independent); %.0f%% of "
      "pairs proven safe\n\n",
      matrix_ms, 100.0 * matrix->IndependentFraction());
  std::vector<std::vector<bool>> independent(
      classes.size(), std::vector<bool>(fds.size(), false));
  for (size_t c = 0; c < classes.size(); ++c) {
    for (size_t f = 0; f < fds.size(); ++f) {
      independent[c][f] = matrix->at(f, c).independent;
    }
  }

  // --- Simulated update stream over a large document. ---
  workload::ExamWorkloadParams params;
  params.num_candidates = 2000;
  xml::Document doc = workload::GenerateExamDocument(&alphabet, params);
  std::printf("document: %zu nodes\n", doc.LiveNodeCount());

  constexpr int kStreamLength = 40;
  std::mt19937_64 rng(99);

  auto run_stream = [&](bool use_criterion) {
    xml::Document work = doc.Clone();
    int checks = 0;
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < kStreamLength; ++i) {
      size_t c = rng() % classes.size();
      std::string tag = std::to_string(i);
      update::Update q{&classes[c].cls,
                       update::TransformValues{[&tag](std::string_view v) {
                         return std::string(v) + tag;
                       }}};
      auto stats = update::ApplyUpdate(&work, q);
      RTP_CHECK(stats.ok());
      for (size_t f = 0; f < fds.size(); ++f) {
        if (use_criterion && independent[c][f]) continue;  // proven safe
        fd::CheckResult check = fd::CheckFd(fds[f].fd, work);
        ++checks;
        (void)check;
      }
    }
    double ms = MsSince(t0);
    return std::pair<double, int>(ms, checks);
  };

  // Reset the rng so both runs see the same stream.
  rng.seed(99);
  auto [naive_ms, naive_checks] = run_stream(/*use_criterion=*/false);
  rng.seed(99);
  auto [guarded_ms, guarded_checks] = run_stream(/*use_criterion=*/true);

  std::printf("\n=== Update stream (%d updates x %zu FDs) ===\n",
              kStreamLength, fds.size());
  std::printf("naive   : %4d re-verifications, %8.1f ms\n", naive_checks,
              naive_ms);
  std::printf("guarded : %4d re-verifications, %8.1f ms (+%.1f ms one-off)\n",
              guarded_checks, guarded_ms, matrix_ms);
  std::printf("saved   : %.1f%% of the verification work\n",
              100.0 * (1.0 - static_cast<double>(guarded_checks) /
                                 naive_checks));
  return 0;
}
