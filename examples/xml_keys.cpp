// XML keys as functional dependencies — the paper's Section 1/3 point that
// regular tree patterns federate the key/FD proposals of the literature:
// an (absolute) key "P determines the node" is the FD (C, (P) -> target[N]).
//
// Build & run:  ./build/examples/example_xml_keys

#include <cstdio>

#include "fd/fd_checker.h"
#include "fd/path_fd.h"
#include "independence/criterion.h"
#include "update/update_ops.h"
#include "workload/exam_generator.h"

int main() {
  using namespace rtp;

  Alphabet alphabet;
  xml::Document doc = workload::BuildPaperFigure1Document(&alphabet);

  // Key K1: within a session, @IDN identifies the candidate node.
  // In the [8]-style syntax: (/session, (candidate/@IDN) -> candidate[N]).
  auto key = fd::ParseAndCompilePathFd(
      &alphabet, "(/session, (candidate/@IDN) -> candidate[N])");
  if (!key.ok()) {
    std::printf("error: %s\n", key.status().ToString().c_str());
    return 1;
  }
  std::printf("key K1 = (/session, (candidate/@IDN) -> candidate[N])\n%s\n",
              key->ToString(alphabet).c_str());

  fd::CheckResult before = fd::CheckFd(*key, doc);
  std::printf("Figure 1 document satisfies K1: %s\n\n",
              before.satisfied ? "yes" : "no");

  // Duplicate an IDN: the key breaks.
  xml::NodeId session = doc.first_child(doc.root());
  xml::NodeId dup = doc.AddElement(session, "candidate");
  doc.AddAttribute(dup, "@IDN", "001");  // clashes with the first candidate
  xml::NodeId level = doc.AddElement(dup, "level");
  doc.AddText(level, "D");
  xml::NodeId fj = doc.AddElement(dup, "firstJob-Year");
  doc.AddText(fj, "2013");

  fd::CheckResult after = fd::CheckFd(*key, doc);
  std::printf("after inserting a second candidate with @IDN=001: %s\n",
              after.satisfied ? "still satisfied" : "K1 VIOLATED");
  if (!after.satisfied) {
    std::printf("%s\n", after.violation->Describe(doc, *key).c_str());
  }

  // Which update classes can break the key? Rewriting marks cannot;
  // rewriting @IDN values can.
  struct ClassSpec {
    const char* name;
    const char* text;
  };
  const ClassSpec kClasses[] = {
      {"mark rewrites", "root { s = session/candidate/exam/mark; } select s;"},
      {"@IDN rewrites", "root { s = session/candidate/@IDN; } select s;"},
  };
  std::printf("\nindependence of K1:\n");
  for (const ClassSpec& spec : kClasses) {
    auto parsed = pattern::ParsePattern(&alphabet, spec.text);
    RTP_CHECK(parsed.ok());
    auto cls = update::UpdateClass::FromParsed(std::move(parsed).value());
    RTP_CHECK(cls.ok());
    auto verdict =
        independence::CheckIndependence(*key, *cls, nullptr, &alphabet);
    RTP_CHECK(verdict.ok());
    std::printf("  %-14s : %s\n", spec.name,
                verdict->independent ? "independent" : "may impact");
  }
  return 0;
}
