// Positive CoreXPath as a front end for update classes — the application
// the paper's conclusion names: "our results can thus be applied when the
// classes of updates are specified with positive queries of CoreXPath".
//
// Build & run:  ./build/examples/example_xpath_queries

#include <cstdio>

#include "independence/criterion.h"
#include "update/update_class.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"
#include "xpath/xpath.h"

int main() {
  using namespace rtp;

  Alphabet alphabet;
  xml::Document doc = workload::BuildPaperFigure1Document(&alphabet);
  schema::Schema schema = workload::BuildExamSchema(&alphabet);

  // Evaluate a few XPath queries on the Figure 1 document.
  const char* kQueries[] = {
      "/session/candidate/exam",
      "//discipline",
      "/session/candidate[toBePassed]",
      "/session/candidate/@IDN",
      "//level/text()",
      "//level | //rank",
  };
  for (const char* query : kQueries) {
    auto compiled = xpath::CompileXPath(&alphabet, query);
    if (!compiled.ok()) {
      std::printf("%-36s -> error: %s\n", query,
                  compiled.status().ToString().c_str());
      continue;
    }
    std::vector<xml::NodeId> nodes = xpath::EvaluateXPath(*compiled, doc);
    std::printf("%-36s -> %zu node(s):", query, nodes.size());
    for (xml::NodeId n : nodes) {
      std::printf(" %s", doc.label_name(n).c_str());
    }
    std::printf("\n");
  }

  // Drive the independence criterion with XPath-specified update classes.
  std::printf("\nfd1 (same discipline+mark => same rank) against XPath "
              "update classes:\n");
  auto fd1 = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  for (const char* query :
       {"/session/candidate/level", "//rank", "//exam/mark",
        "/session/candidate/toBePassed/discipline"}) {
    auto compiled = xpath::CompileXPath(&alphabet, query);
    RTP_CHECK(compiled.ok());
    auto cls = update::UpdateClass::Create(compiled->branches[0]);
    RTP_CHECK(cls.ok());
    auto verdict =
        independence::CheckIndependence(*fd1, *cls, &schema, &alphabet);
    RTP_CHECK(verdict.ok());
    std::printf("  updates at %-42s : %s\n", query,
                verdict->independent ? "independent (skip re-checks)"
                                     : "may impact (re-check)");
  }
  return 0;
}
