// The PSPACE-hardness reduction of Proposition 1, live: encode a regular
// expression inclusion question L(eta) ⊆ L(eta') as an Update-FD
// independence instance, exhibit the impact witness when inclusion fails,
// and show that the polynomial criterion IC is (necessarily) conservative
// on such instances.
//
// Usage: ./build/examples/example_hardness_demo [eta] [eta']
// Default: eta = a*/b, eta' = a/b  (not included: 'b' and 'a/a/b' differ)

#include <cstdio>

#include "fd/fd_checker.h"
#include "independence/criterion.h"
#include "independence/hardness.h"
#include "update/update_ops.h"
#include "xml/xml_io.h"

int main(int argc, char** argv) {
  using namespace rtp;

  const char* eta = argc > 1 ? argv[1] : "a*/b";
  const char* eta_prime = argc > 2 ? argv[2] : "a/b";

  Alphabet alphabet;
  auto reduction =
      independence::BuildInclusionReduction(&alphabet, eta, eta_prime);
  if (!reduction.ok()) {
    std::printf("error: %s\n", reduction.status().ToString().c_str());
    return 1;
  }

  std::printf("eta      = %s\neta'     = %s\n", eta, eta_prime);
  std::printf("question : L(eta) subset of L(eta')?  ->  %s\n\n",
              reduction->eta_included ? "YES (fd independent of U)"
                                      : "NO (fd impacted by U)");

  std::printf("FD of the reduction (context = template root):\n%s\n",
              reduction->fd.ToString(alphabet).c_str());
  std::printf("update class of the reduction:\n%s\n",
              reduction->update_class.pattern().ToString(alphabet).c_str());

  if (!reduction->eta_included) {
    xml::Document doc = reduction->counterexample->Clone();
    std::printf("--- counterexample document D ---\n%s\n",
                xml::WriteXml(doc).c_str());
    fd::CheckResult before = fd::CheckFd(reduction->fd, doc);
    std::printf("D satisfies fd: %s\n", before.satisfied ? "yes" : "no");

    update::Update q{&reduction->update_class, *reduction->impacting_update};
    auto stats = update::ApplyUpdate(&doc, q);
    std::printf("applied the impacting update at %zu node(s)\n\n",
                stats->nodes_updated);
    std::printf("--- q(D) ---\n%s\n", xml::WriteXml(doc).c_str());
    fd::CheckResult after = fd::CheckFd(reduction->fd, doc);
    std::printf("q(D) satisfies fd: %s\n", after.satisfied ? "yes" : "NO");
    if (!after.satisfied) {
      std::printf("%s", after.violation->Describe(doc, reduction->fd).c_str());
    }
  }

  // The polynomial criterion cannot decide inclusion (PSPACE-hard), so on
  // these instances it reports "unknown" even when the pair is in fact
  // independent.
  auto criterion = independence::CheckIndependence(
      reduction->fd, reduction->update_class, nullptr, &alphabet);
  std::printf("\ncriterion IC on this instance: %s\n",
              criterion->independent
                  ? "independent"
                  : "unknown (conservative, as Proposition 1 demands)");
  return 0;
}
