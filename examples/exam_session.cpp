// Full walkthrough of the paper's running example: the Figure 1 exam
// session document, the patterns R1-R4 (Figures 2-3), the functional
// dependencies fd1-fd5 (Figures 4-6), the update class U and queries
// q1/q2 (Example 4), the impact of q1 on fd3 (Example 5), and the
// schema-dependent independence of fd5 (Example 6).
//
// Build & run:  ./build/examples/example_exam_session

#include <cstdio>

#include "fd/fd_checker.h"
#include "independence/criterion.h"
#include "pattern/evaluator.h"
#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"
#include "xml/xml_io.h"

namespace {

using namespace rtp;

void ShowEvaluation(const char* name, const char* meaning,
                    pattern::ParsedPattern parsed, const xml::Document& doc) {
  auto tuples = pattern::EvaluateSelected(parsed.pattern, doc);
  std::printf("%s — %s\n  %zu selected tuple(s)\n", name, meaning,
              tuples.size());
  for (const auto& tuple : tuples) {
    std::printf("  (");
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", doc.label_name(tuple[i]).c_str());
    }
    std::printf(")\n");
  }
  std::printf("\n");
}

void ShowFd(const char* name, const char* meaning,
            pattern::ParsedPattern parsed, const xml::Document& doc) {
  auto fd = fd::FunctionalDependency::FromParsed(std::move(parsed));
  fd::CheckResult result = fd::CheckFd(*fd, doc);
  std::printf("%s — %s\n  satisfied: %s (%zu mappings)\n\n", name, meaning,
              result.satisfied ? "yes" : "NO", result.num_mappings);
}

std::string DecreaseLevel(std::string_view level) {
  if (level.size() == 1 && level[0] >= 'A' && level[0] < 'E') {
    return std::string(1, static_cast<char>(level[0] + 1));
  }
  return std::string(level);
}

}  // namespace

int main() {
  Alphabet alphabet;
  xml::Document doc = workload::BuildPaperFigure1Document(&alphabet);

  std::printf("=== Figure 1 document ===\n%s\n",
              xml::WriteXml(doc).c_str());

  std::printf("=== Figure 2: R1 and R2 ===\n");
  ShowEvaluation("R1", "pairs of exams of two different candidates",
                 workload::PaperR1(&alphabet), doc);
  ShowEvaluation("R2", "pairs of exams of the same candidate",
                 workload::PaperR2(&alphabet), doc);

  std::printf("=== Figure 3: R3 and R4 (order sensitivity) ===\n");
  ShowEvaluation("R3", "levels of candidates with at least one exam",
                 workload::PaperR3(&alphabet), doc);
  ShowEvaluation("R4", "same with swapped sibling order: empty",
                 workload::PaperR4(&alphabet), doc);

  std::printf("=== Figures 4-6: functional dependencies ===\n");
  ShowFd("fd1", "same discipline+mark => same rank (context session)",
         workload::PaperFd1(&alphabet), doc);
  ShowFd("fd2", "no two exams same date+discipline (target exam[N])",
         workload::PaperFd2(&alphabet), doc);
  ShowFd("fd3", "same marks in two disciplines => same level",
         workload::PaperFd3(&alphabet), doc);
  ShowFd("fd4", "fd3 restricted to candidates with toBePassed",
         workload::PaperFd4(&alphabet), doc);
  ShowFd("fd5", "same level => same first-job year (graduated candidates)",
         workload::PaperFd5(&alphabet), doc);

  std::printf("=== Example 4: the update class U and queries q1, q2 ===\n");
  auto u = update::UpdateClass::FromParsed(workload::PaperUpdateU(&alphabet));
  std::vector<xml::NodeId> selected = u->SelectNodes(doc);
  std::printf("U selects %zu node(s): the level of candidate @IDN=%s\n",
              selected.size(),
              doc.value(doc.first_child(doc.parent(selected[0]))).c_str());

  {
    xml::Document work = doc.Clone();
    update::Update q1{&*u, update::TransformValues{DecreaseLevel}};
    update::ApplyUpdate(&work, q1);
    std::printf("after q1 (decrease level): candidate 001 level = %s\n",
                xml::WriteXmlSubtree(work, u->SelectNodes(work)[0], false)
                    .c_str());
  }
  {
    xml::Document work = doc.Clone();
    auto comment = std::make_shared<xml::Document>(&alphabet);
    xml::NodeId c = comment->AddElement(comment->root(), "comment");
    comment->AddText(c, "keep going");
    update::Update q2{&*u, update::AppendChild{comment, c}};
    update::ApplyUpdate(&work, q2);
    std::printf("after q2 (append comment):  %s\n\n",
                xml::WriteXmlSubtree(work, u->SelectNodes(work)[0], false)
                    .c_str());
  }

  std::printf("=== Example 5: q1 impacts fd3 ===\n");
  {
    // A document satisfying fd3 where only one of two equal candidates
    // still has exams to pass.
    xml::Document d(&alphabet);
    xml::NodeId session = d.AddElement(d.root(), "session");
    for (int i = 0; i < 2; ++i) {
      xml::NodeId cand = d.AddElement(session, "candidate");
      d.AddAttribute(cand, "@IDN", i == 0 ? "g1" : "g2");
      for (const char* mark : {"12", "17"}) {
        xml::NodeId exam = d.AddElement(cand, "exam");
        xml::NodeId disc = d.AddElement(exam, "discipline");
        d.AddText(disc, mark[1] == '2' ? "bio" : "math");
        xml::NodeId m = d.AddElement(exam, "mark");
        d.AddText(m, mark);
      }
      xml::NodeId level = d.AddElement(cand, "level");
      d.AddText(level, "B");
      if (i == 0) {
        xml::NodeId tbp = d.AddElement(cand, "toBePassed");
        xml::NodeId disc = d.AddElement(tbp, "discipline");
        d.AddText(disc, "chem");
      } else {
        xml::NodeId fj = d.AddElement(cand, "firstJob-Year");
        d.AddText(fj, "2012");
      }
    }
    auto fd3 = fd::FunctionalDependency::FromParsed(workload::PaperFd3(&alphabet));
    std::printf("before q1: fd3 %s\n",
                fd::CheckFd(*fd3, d).satisfied ? "satisfied" : "VIOLATED");
    update::Update q1{&*u, update::TransformValues{DecreaseLevel}};
    update::ApplyUpdate(&d, q1);
    fd::CheckResult after = fd::CheckFd(*fd3, d);
    std::printf("after  q1: fd3 %s\n",
                after.satisfied ? "satisfied" : "VIOLATED");
    if (!after.satisfied) {
      std::printf("%s", after.violation->Describe(d, *fd3).c_str());
    }
  }

  std::printf("\n=== Example 6: independence of fd5 w.r.t. U ===\n");
  {
    schema::Schema strict = workload::BuildExamSchema(&alphabet);
    schema::Schema permissive = workload::BuildPermissiveExamSchema(&alphabet);
    auto fd5 = fd::FunctionalDependency::FromParsed(workload::PaperFd5(&alphabet));

    auto with_schema =
        independence::CheckIndependence(*fd5, *u, &strict, &alphabet);
    auto without =
        independence::CheckIndependence(*fd5, *u, nullptr, &alphabet);
    auto permissive_result =
        independence::CheckIndependence(*fd5, *u, &permissive, &alphabet);

    std::printf("criterion with XOR schema:        %s\n",
                with_schema->independent ? "INDEPENDENT" : "unknown");
    std::printf("criterion with permissive schema: %s\n",
                permissive_result->independent ? "INDEPENDENT" : "unknown");
    std::printf("criterion without schema:         %s\n",
                without->independent ? "INDEPENDENT" : "unknown");
    std::printf(
        "\n(The XOR constraint — toBePassed or firstJob-Year but not both —\n"
        " is exactly what makes the level updates harmless for fd5.)\n");
  }
  return 0;
}
