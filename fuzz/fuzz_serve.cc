#include "harness_entry.h"

RTP_DEFINE_FUZZ_TARGET(kServe)
