#ifndef RTP_FUZZ_HARNESS_ENTRY_H_
#define RTP_FUZZ_HARNESS_ENTRY_H_

// Defines the two C entry points a fuzz target exports:
//
//   LLVMFuzzerTestOneInput  — one execution of the harness body
//   LLVMFuzzerCustomMutator — grammar-aware mutation (libFuzzer picks it
//                             up automatically; the standalone driver in
//                             standalone_driver.cc calls it explicitly)
//
// Each fuzz_<name>.cc expands RTP_DEFINE_FUZZ_TARGET with its harness
// enumerator; the actual logic lives in src/fuzz/harness.cc so the exact
// same code also runs under tests/fuzz_corpus_test.cc.

#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"
#include "fuzz/mutators.h"

#define RTP_DEFINE_FUZZ_TARGET(HARNESS)                                     \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) { \
    return rtp::fuzz::RunHarnessInput(rtp::fuzz::Harness::HARNESS, data,    \
                                      size);                                \
  }                                                                         \
  extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,     \
                                            size_t max_size,                \
                                            unsigned int seed) {            \
    return rtp::fuzz::GrammarAwareMutate(rtp::fuzz::Harness::HARNESS, data, \
                                         size, max_size, seed);             \
  }

#endif  // RTP_FUZZ_HARNESS_ENTRY_H_
