// Minimal libFuzzer-compatible driver, linked into the fuzz targets when
// the toolchain has no -fsanitize=fuzzer runtime (e.g. a gcc-only box).
// It understands the subset of the libFuzzer CLI that tools/run_ci.sh and
// docs/FUZZING.md use:
//
//   fuzz_<name> [flags] [file|dir]...
//
//   -runs=N             stop after N mutation executions (0 = replay only)
//   -max_total_time=S   stop mutating after S seconds
//   -seed=N             RNG seed for the mutation loop (default 1)
//
// Positional arguments are replayed first (directories recursively, in
// sorted order). If a time or run budget remains afterwards, the driver
// loops: pick a replayed input (or start empty), run it through the
// target's grammar-aware LLVMFuzzerCustomMutator, execute. There is no
// coverage feedback — this is a smoke / regression driver, not a real
// fuzzer; install clang + libFuzzer for the real thing.
//
// Unknown -flags are ignored with a note, so libFuzzer invocations keep
// working unchanged.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed);

namespace {

constexpr size_t kMaxInputSize = 1 << 16;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

// splitmix64, kept in sync with src/fuzz/rng.h (no dependency on the
// library: the driver must stay linkable into any target).
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// The input currently executing, mirrored like libFuzzer's crash
// artifacts: on SIGABRT (RTP_CHECK, sanitizer aborts) the handler dumps
// it to ./crash-standalone so the failure can be replayed and minimized.
const uint8_t* g_current_data = nullptr;
size_t g_current_size = 0;

void AbortHandler(int sig) {
  // async-signal-safe: open/write/fsync only.
  int fd = open("crash-standalone", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0 && g_current_data != nullptr) {
    ssize_t ignored = write(fd, g_current_data, g_current_size);
    (void)ignored;
    fsync(fd);
    close(fd);
    const char msg[] = "INFO: wrote failing input to ./crash-standalone\n";
    ignored = write(2, msg, sizeof(msg) - 1);
    (void)ignored;
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

int RunOne(const uint8_t* data, size_t size) {
  g_current_data = data;
  g_current_size = size;
  // RTP_STANDALONE_DUMP=<path>: persist every input *before* running it,
  // so hangs (not only aborts) leave the culprit behind.
  static const char* dump_path = std::getenv("RTP_STANDALONE_DUMP");
  if (dump_path != nullptr) {
    std::ofstream out(dump_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }
  return LLVMFuzzerTestOneInput(data, size);
}

}  // namespace

int main(int argc, char** argv) {
  signal(SIGABRT, AbortHandler);
  long long runs = -1;
  long long max_total_time = 0;
  uint64_t seed = 1;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "INFO: standalone driver ignoring flag %s\n",
                   arg.c_str());
    } else {
      inputs.push_back(arg);
    }
  }

  // Replay phase: every file under every positional argument, sorted.
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(input);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::string> pool;
  for (const std::string& file : files) {
    std::string bytes;
    if (!ReadFile(file, &bytes)) {
      std::fprintf(stderr, "ERROR: cannot read %s\n", file.c_str());
      return 1;
    }
    std::fprintf(stderr, "Running: %s (%zu bytes)\n", file.c_str(),
                 bytes.size());
    RunOne(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    pool.push_back(std::move(bytes));
  }
  std::fprintf(stderr, "INFO: replayed %zu file(s)\n", files.size());

  // Mutation phase. Deterministic in -seed, so a crash reproduces by
  // rerunning the identical command line.
  if (max_total_time <= 0 && runs <= 0) return 0;
  std::fprintf(stderr,
               "INFO: standalone mutation loop: seed=%llu runs=%lld "
               "max_total_time=%llds\n",
               static_cast<unsigned long long>(seed), runs, max_total_time);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(max_total_time > 0 ? max_total_time
                                                          : 86400LL);
  uint64_t state = seed ? seed : 1;
  std::vector<uint8_t> buf(kMaxInputSize);
  long long executed = 0;
  while ((runs <= 0 || executed < runs) &&
         std::chrono::steady_clock::now() < deadline) {
    size_t size = 0;
    if (!pool.empty()) {
      const std::string& base = pool[NextRand(&state) % pool.size()];
      size = std::min(base.size(), buf.size());
      std::memcpy(buf.data(), base.data(), size);
    }
    size = LLVMFuzzerCustomMutator(
        buf.data(), size, buf.size(),
        static_cast<unsigned int>(NextRand(&state)));
    RunOne(buf.data(), size);
    ++executed;
  }
  std::fprintf(stderr, "INFO: executed %lld mutated input(s)\n", executed);
  return 0;
}
