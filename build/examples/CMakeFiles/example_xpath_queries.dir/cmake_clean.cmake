file(REMOVE_RECURSE
  "CMakeFiles/example_xpath_queries.dir/xpath_queries.cpp.o"
  "CMakeFiles/example_xpath_queries.dir/xpath_queries.cpp.o.d"
  "example_xpath_queries"
  "example_xpath_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xpath_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
