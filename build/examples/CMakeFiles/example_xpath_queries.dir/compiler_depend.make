# Empty compiler generated dependencies file for example_xpath_queries.
# This may be replaced when dependencies are built.
