# Empty dependencies file for example_hardness_demo.
# This may be replaced when dependencies are built.
