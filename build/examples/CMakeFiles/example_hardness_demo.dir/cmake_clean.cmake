file(REMOVE_RECURSE
  "CMakeFiles/example_hardness_demo.dir/hardness_demo.cpp.o"
  "CMakeFiles/example_hardness_demo.dir/hardness_demo.cpp.o.d"
  "example_hardness_demo"
  "example_hardness_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hardness_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
