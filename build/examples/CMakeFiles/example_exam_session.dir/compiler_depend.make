# Empty compiler generated dependencies file for example_exam_session.
# This may be replaced when dependencies are built.
