file(REMOVE_RECURSE
  "CMakeFiles/example_exam_session.dir/exam_session.cpp.o"
  "CMakeFiles/example_exam_session.dir/exam_session.cpp.o.d"
  "example_exam_session"
  "example_exam_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_exam_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
