# Empty dependencies file for example_xml_keys.
# This may be replaced when dependencies are built.
