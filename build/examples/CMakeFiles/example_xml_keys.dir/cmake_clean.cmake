file(REMOVE_RECURSE
  "CMakeFiles/example_xml_keys.dir/xml_keys.cpp.o"
  "CMakeFiles/example_xml_keys.dir/xml_keys.cpp.o.d"
  "example_xml_keys"
  "example_xml_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xml_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
