# Empty dependencies file for example_independence_audit.
# This may be replaced when dependencies are built.
