file(REMOVE_RECURSE
  "CMakeFiles/example_independence_audit.dir/independence_audit.cpp.o"
  "CMakeFiles/example_independence_audit.dir/independence_audit.cpp.o.d"
  "example_independence_audit"
  "example_independence_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_independence_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
