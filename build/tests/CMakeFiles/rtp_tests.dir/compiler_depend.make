# Empty compiler generated dependencies file for rtp_tests.
# This may be replaced when dependencies are built.
