
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/automata_property_test.cc" "tests/CMakeFiles/rtp_tests.dir/automata_property_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/automata_property_test.cc.o.d"
  "/root/repo/tests/automata_test.cc" "tests/CMakeFiles/rtp_tests.dir/automata_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/automata_test.cc.o.d"
  "/root/repo/tests/bib_integration_test.cc" "tests/CMakeFiles/rtp_tests.dir/bib_integration_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/bib_integration_test.cc.o.d"
  "/root/repo/tests/combinatorics_test.cc" "tests/CMakeFiles/rtp_tests.dir/combinatorics_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/combinatorics_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/rtp_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/criterion_cases_test.cc" "tests/CMakeFiles/rtp_tests.dir/criterion_cases_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/criterion_cases_test.cc.o.d"
  "/root/repo/tests/document_test.cc" "tests/CMakeFiles/rtp_tests.dir/document_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/document_test.cc.o.d"
  "/root/repo/tests/fd_index_test.cc" "tests/CMakeFiles/rtp_tests.dir/fd_index_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/fd_index_test.cc.o.d"
  "/root/repo/tests/fd_test.cc" "tests/CMakeFiles/rtp_tests.dir/fd_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/fd_test.cc.o.d"
  "/root/repo/tests/hardness_test.cc" "tests/CMakeFiles/rtp_tests.dir/hardness_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/hardness_test.cc.o.d"
  "/root/repo/tests/independence_test.cc" "tests/CMakeFiles/rtp_tests.dir/independence_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/independence_test.cc.o.d"
  "/root/repo/tests/misc_feature_test.cc" "tests/CMakeFiles/rtp_tests.dir/misc_feature_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/misc_feature_test.cc.o.d"
  "/root/repo/tests/parser_fuzz_test.cc" "tests/CMakeFiles/rtp_tests.dir/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/pattern_test.cc" "tests/CMakeFiles/rtp_tests.dir/pattern_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/pattern_test.cc.o.d"
  "/root/repo/tests/pattern_writer_test.cc" "tests/CMakeFiles/rtp_tests.dir/pattern_writer_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/pattern_writer_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/rtp_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/recursive_schema_test.cc" "tests/CMakeFiles/rtp_tests.dir/recursive_schema_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/recursive_schema_test.cc.o.d"
  "/root/repo/tests/regex_property_test.cc" "tests/CMakeFiles/rtp_tests.dir/regex_property_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/regex_property_test.cc.o.d"
  "/root/repo/tests/regex_test.cc" "tests/CMakeFiles/rtp_tests.dir/regex_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/regex_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/rtp_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/rtp_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/update_model_test.cc" "tests/CMakeFiles/rtp_tests.dir/update_model_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/update_model_test.cc.o.d"
  "/root/repo/tests/update_test.cc" "tests/CMakeFiles/rtp_tests.dir/update_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/update_test.cc.o.d"
  "/root/repo/tests/view_test.cc" "tests/CMakeFiles/rtp_tests.dir/view_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/view_test.cc.o.d"
  "/root/repo/tests/xpath_test.cc" "tests/CMakeFiles/rtp_tests.dir/xpath_test.cc.o" "gcc" "tests/CMakeFiles/rtp_tests.dir/xpath_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
