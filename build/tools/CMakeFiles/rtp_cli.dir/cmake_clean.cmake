file(REMOVE_RECURSE
  "CMakeFiles/rtp_cli.dir/rtp_cli.cc.o"
  "CMakeFiles/rtp_cli.dir/rtp_cli.cc.o.d"
  "rtp_cli"
  "rtp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
