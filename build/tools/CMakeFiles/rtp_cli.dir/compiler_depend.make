# Empty compiler generated dependencies file for rtp_cli.
# This may be replaced when dependencies are built.
