# Empty dependencies file for bench_pattern_eval.
# This may be replaced when dependencies are built.
