file(REMOVE_RECURSE
  "CMakeFiles/bench_pattern_eval.dir/bench_pattern_eval.cc.o"
  "CMakeFiles/bench_pattern_eval.dir/bench_pattern_eval.cc.o.d"
  "bench_pattern_eval"
  "bench_pattern_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pattern_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
