file(REMOVE_RECURSE
  "CMakeFiles/bench_regex_inclusion.dir/bench_regex_inclusion.cc.o"
  "CMakeFiles/bench_regex_inclusion.dir/bench_regex_inclusion.cc.o.d"
  "bench_regex_inclusion"
  "bench_regex_inclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regex_inclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
