# Empty compiler generated dependencies file for bench_regex_inclusion.
# This may be replaced when dependencies are built.
