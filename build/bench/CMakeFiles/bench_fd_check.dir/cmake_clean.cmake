file(REMOVE_RECURSE
  "CMakeFiles/bench_fd_check.dir/bench_fd_check.cc.o"
  "CMakeFiles/bench_fd_check.dir/bench_fd_check.cc.o.d"
  "bench_fd_check"
  "bench_fd_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fd_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
