file(REMOVE_RECURSE
  "CMakeFiles/bench_automaton_size.dir/bench_automaton_size.cc.o"
  "CMakeFiles/bench_automaton_size.dir/bench_automaton_size.cc.o.d"
  "bench_automaton_size"
  "bench_automaton_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_automaton_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
