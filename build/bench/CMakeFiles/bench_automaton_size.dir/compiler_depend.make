# Empty compiler generated dependencies file for bench_automaton_size.
# This may be replaced when dependencies are built.
