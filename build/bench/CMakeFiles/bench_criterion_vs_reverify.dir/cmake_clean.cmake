file(REMOVE_RECURSE
  "CMakeFiles/bench_criterion_vs_reverify.dir/bench_criterion_vs_reverify.cc.o"
  "CMakeFiles/bench_criterion_vs_reverify.dir/bench_criterion_vs_reverify.cc.o.d"
  "bench_criterion_vs_reverify"
  "bench_criterion_vs_reverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_criterion_vs_reverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
