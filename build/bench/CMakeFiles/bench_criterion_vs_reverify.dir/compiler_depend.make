# Empty compiler generated dependencies file for bench_criterion_vs_reverify.
# This may be replaced when dependencies are built.
