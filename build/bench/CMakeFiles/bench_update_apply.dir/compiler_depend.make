# Empty compiler generated dependencies file for bench_update_apply.
# This may be replaced when dependencies are built.
