file(REMOVE_RECURSE
  "CMakeFiles/bench_update_apply.dir/bench_update_apply.cc.o"
  "CMakeFiles/bench_update_apply.dir/bench_update_apply.cc.o.d"
  "bench_update_apply"
  "bench_update_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
