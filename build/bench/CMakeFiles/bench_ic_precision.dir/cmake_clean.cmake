file(REMOVE_RECURSE
  "CMakeFiles/bench_ic_precision.dir/bench_ic_precision.cc.o"
  "CMakeFiles/bench_ic_precision.dir/bench_ic_precision.cc.o.d"
  "bench_ic_precision"
  "bench_ic_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ic_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
