# Empty compiler generated dependencies file for bench_ic_precision.
# This may be replaced when dependencies are built.
