file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_validate.dir/bench_schema_validate.cc.o"
  "CMakeFiles/bench_schema_validate.dir/bench_schema_validate.cc.o.d"
  "bench_schema_validate"
  "bench_schema_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
