# Empty compiler generated dependencies file for bench_schema_validate.
# This may be replaced when dependencies are built.
