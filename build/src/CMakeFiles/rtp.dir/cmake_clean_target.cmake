file(REMOVE_RECURSE
  "librtp.a"
)
