
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/hedge_automaton.cc" "src/CMakeFiles/rtp.dir/automata/hedge_automaton.cc.o" "gcc" "src/CMakeFiles/rtp.dir/automata/hedge_automaton.cc.o.d"
  "/root/repo/src/automata/pattern_compiler.cc" "src/CMakeFiles/rtp.dir/automata/pattern_compiler.cc.o" "gcc" "src/CMakeFiles/rtp.dir/automata/pattern_compiler.cc.o.d"
  "/root/repo/src/automata/product.cc" "src/CMakeFiles/rtp.dir/automata/product.cc.o" "gcc" "src/CMakeFiles/rtp.dir/automata/product.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rtp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rtp.dir/common/status.cc.o.d"
  "/root/repo/src/fd/fd_checker.cc" "src/CMakeFiles/rtp.dir/fd/fd_checker.cc.o" "gcc" "src/CMakeFiles/rtp.dir/fd/fd_checker.cc.o.d"
  "/root/repo/src/fd/fd_index.cc" "src/CMakeFiles/rtp.dir/fd/fd_index.cc.o" "gcc" "src/CMakeFiles/rtp.dir/fd/fd_index.cc.o.d"
  "/root/repo/src/fd/functional_dependency.cc" "src/CMakeFiles/rtp.dir/fd/functional_dependency.cc.o" "gcc" "src/CMakeFiles/rtp.dir/fd/functional_dependency.cc.o.d"
  "/root/repo/src/fd/path_fd.cc" "src/CMakeFiles/rtp.dir/fd/path_fd.cc.o" "gcc" "src/CMakeFiles/rtp.dir/fd/path_fd.cc.o.d"
  "/root/repo/src/fd/reference_checker.cc" "src/CMakeFiles/rtp.dir/fd/reference_checker.cc.o" "gcc" "src/CMakeFiles/rtp.dir/fd/reference_checker.cc.o.d"
  "/root/repo/src/independence/criterion.cc" "src/CMakeFiles/rtp.dir/independence/criterion.cc.o" "gcc" "src/CMakeFiles/rtp.dir/independence/criterion.cc.o.d"
  "/root/repo/src/independence/hardness.cc" "src/CMakeFiles/rtp.dir/independence/hardness.cc.o" "gcc" "src/CMakeFiles/rtp.dir/independence/hardness.cc.o.d"
  "/root/repo/src/independence/impact_search.cc" "src/CMakeFiles/rtp.dir/independence/impact_search.cc.o" "gcc" "src/CMakeFiles/rtp.dir/independence/impact_search.cc.o.d"
  "/root/repo/src/independence/matrix.cc" "src/CMakeFiles/rtp.dir/independence/matrix.cc.o" "gcc" "src/CMakeFiles/rtp.dir/independence/matrix.cc.o.d"
  "/root/repo/src/pattern/dot_export.cc" "src/CMakeFiles/rtp.dir/pattern/dot_export.cc.o" "gcc" "src/CMakeFiles/rtp.dir/pattern/dot_export.cc.o.d"
  "/root/repo/src/pattern/evaluator.cc" "src/CMakeFiles/rtp.dir/pattern/evaluator.cc.o" "gcc" "src/CMakeFiles/rtp.dir/pattern/evaluator.cc.o.d"
  "/root/repo/src/pattern/pattern_parser.cc" "src/CMakeFiles/rtp.dir/pattern/pattern_parser.cc.o" "gcc" "src/CMakeFiles/rtp.dir/pattern/pattern_parser.cc.o.d"
  "/root/repo/src/pattern/pattern_writer.cc" "src/CMakeFiles/rtp.dir/pattern/pattern_writer.cc.o" "gcc" "src/CMakeFiles/rtp.dir/pattern/pattern_writer.cc.o.d"
  "/root/repo/src/pattern/reference_evaluator.cc" "src/CMakeFiles/rtp.dir/pattern/reference_evaluator.cc.o" "gcc" "src/CMakeFiles/rtp.dir/pattern/reference_evaluator.cc.o.d"
  "/root/repo/src/pattern/tree_pattern.cc" "src/CMakeFiles/rtp.dir/pattern/tree_pattern.cc.o" "gcc" "src/CMakeFiles/rtp.dir/pattern/tree_pattern.cc.o.d"
  "/root/repo/src/regex/dfa.cc" "src/CMakeFiles/rtp.dir/regex/dfa.cc.o" "gcc" "src/CMakeFiles/rtp.dir/regex/dfa.cc.o.d"
  "/root/repo/src/regex/nfa.cc" "src/CMakeFiles/rtp.dir/regex/nfa.cc.o" "gcc" "src/CMakeFiles/rtp.dir/regex/nfa.cc.o.d"
  "/root/repo/src/regex/regex.cc" "src/CMakeFiles/rtp.dir/regex/regex.cc.o" "gcc" "src/CMakeFiles/rtp.dir/regex/regex.cc.o.d"
  "/root/repo/src/regex/regex_ast.cc" "src/CMakeFiles/rtp.dir/regex/regex_ast.cc.o" "gcc" "src/CMakeFiles/rtp.dir/regex/regex_ast.cc.o.d"
  "/root/repo/src/regex/regex_parser.cc" "src/CMakeFiles/rtp.dir/regex/regex_parser.cc.o" "gcc" "src/CMakeFiles/rtp.dir/regex/regex_parser.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/rtp.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/rtp.dir/schema/schema.cc.o.d"
  "/root/repo/src/update/update_class.cc" "src/CMakeFiles/rtp.dir/update/update_class.cc.o" "gcc" "src/CMakeFiles/rtp.dir/update/update_class.cc.o.d"
  "/root/repo/src/update/update_ops.cc" "src/CMakeFiles/rtp.dir/update/update_ops.cc.o" "gcc" "src/CMakeFiles/rtp.dir/update/update_ops.cc.o.d"
  "/root/repo/src/view/view.cc" "src/CMakeFiles/rtp.dir/view/view.cc.o" "gcc" "src/CMakeFiles/rtp.dir/view/view.cc.o.d"
  "/root/repo/src/workload/bib_generator.cc" "src/CMakeFiles/rtp.dir/workload/bib_generator.cc.o" "gcc" "src/CMakeFiles/rtp.dir/workload/bib_generator.cc.o.d"
  "/root/repo/src/workload/exam_generator.cc" "src/CMakeFiles/rtp.dir/workload/exam_generator.cc.o" "gcc" "src/CMakeFiles/rtp.dir/workload/exam_generator.cc.o.d"
  "/root/repo/src/workload/exam_schema.cc" "src/CMakeFiles/rtp.dir/workload/exam_schema.cc.o" "gcc" "src/CMakeFiles/rtp.dir/workload/exam_schema.cc.o.d"
  "/root/repo/src/workload/paper_patterns.cc" "src/CMakeFiles/rtp.dir/workload/paper_patterns.cc.o" "gcc" "src/CMakeFiles/rtp.dir/workload/paper_patterns.cc.o.d"
  "/root/repo/src/workload/random_document.cc" "src/CMakeFiles/rtp.dir/workload/random_document.cc.o" "gcc" "src/CMakeFiles/rtp.dir/workload/random_document.cc.o.d"
  "/root/repo/src/workload/random_pattern.cc" "src/CMakeFiles/rtp.dir/workload/random_pattern.cc.o" "gcc" "src/CMakeFiles/rtp.dir/workload/random_pattern.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/rtp.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/rtp.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/value_equality.cc" "src/CMakeFiles/rtp.dir/xml/value_equality.cc.o" "gcc" "src/CMakeFiles/rtp.dir/xml/value_equality.cc.o.d"
  "/root/repo/src/xml/xml_io.cc" "src/CMakeFiles/rtp.dir/xml/xml_io.cc.o" "gcc" "src/CMakeFiles/rtp.dir/xml/xml_io.cc.o.d"
  "/root/repo/src/xpath/xpath.cc" "src/CMakeFiles/rtp.dir/xpath/xpath.cc.o" "gcc" "src/CMakeFiles/rtp.dir/xpath/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
