# Empty dependencies file for rtp.
# This may be replaced when dependencies are built.
