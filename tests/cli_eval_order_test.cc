// Golden test for `rtp_cli eval` output ordering: tuples print sorted by
// document order (lexicographic preorder comparison), not in enumeration
// order, and multi-document output is prefixed per file in command-line
// order. The pattern below selects (q, p) with q listed before p but
// enumerated innermost, so raw enumeration order would be
// (d3,b1),(d4,b1),(d3,b2),(d4,b2) — the sorted golden output differs.

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace {

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

struct RunResult {
  int exit_code;
  std::string stdout_text;
};

RunResult RunCli(const std::string& args) {
  std::string cmd = Quoted(RTP_CLI_BINARY) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  int status = pclose(pipe);
  return RunResult{WIFEXITED(status) ? WEXITSTATUS(status) : -1, out};
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

class CliEvalOrderTest : public testing::Test {
 protected:
  void SetUp() override {
    pattern_file_ = testing::TempDir() + "/eval_order_qp.pattern";
    doc1_file_ = testing::TempDir() + "/eval_order_doc1.xml";
    doc2_file_ = testing::TempDir() + "/eval_order_doc2.xml";
    // q precedes p in the select clause but q's image is chosen innermost
    // by the enumerator (the y edge expands after p under x).
    WriteFileOrDie(pattern_file_,
                   "root {\n"
                   "  w = r {\n"
                   "    x = a {\n"
                   "      p = b;\n"
                   "    }\n"
                   "    y = c {\n"
                   "      q = d;\n"
                   "    }\n"
                   "  }\n"
                   "}\n"
                   "select q, p;\n");
    WriteFileOrDie(doc1_file_,
                   "<r><a><b>1</b><b>2</b></a><c><d>3</d><d>4</d></c></r>");
    WriteFileOrDie(doc2_file_, "<r><a><b>9</b></a></r>");
  }

  std::string pattern_file_, doc1_file_, doc2_file_;
};

// The golden tuple block for doc1, in document order. Enumeration order
// would put <d>4</d>\t<b>1</b> second.
constexpr char kDoc1Tuples[] =
    "<d>3</d>\t<b>1</b>\n"
    "<d>3</d>\t<b>2</b>\n"
    "<d>4</d>\t<b>1</b>\n"
    "<d>4</d>\t<b>2</b>\n";

TEST_F(CliEvalOrderTest, SingleDocumentPrintsSortedWithoutPrefix) {
  RunResult r = RunCli("eval " + Quoted(pattern_file_) + " " +
                       Quoted(doc1_file_));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;
  EXPECT_EQ(r.stdout_text, "4 tuple(s)\n" + std::string(kDoc1Tuples));
}

TEST_F(CliEvalOrderTest, MultiDocumentPrefixesInCommandLineOrder) {
  RunResult r = RunCli("eval " + Quoted(pattern_file_) + " " +
                       Quoted(doc1_file_) + " " + Quoted(doc2_file_));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;
  EXPECT_EQ(r.stdout_text, doc1_file_ + ": 4 tuple(s)\n" +
                               std::string(kDoc1Tuples) + doc2_file_ +
                               ": 0 tuple(s)\n");
}

TEST_F(CliEvalOrderTest, OutputIdenticalForEveryJobsValue) {
  RunResult serial = RunCli("--jobs=1 eval " + Quoted(pattern_file_) + " " +
                            Quoted(doc1_file_) + " " + Quoted(doc2_file_));
  EXPECT_EQ(serial.exit_code, 0);
  for (const char* jobs : {"--jobs=2", "--jobs=8"}) {
    RunResult parallel = RunCli(std::string(jobs) + " eval " +
                                Quoted(pattern_file_) + " " +
                                Quoted(doc1_file_) + " " +
                                Quoted(doc2_file_));
    EXPECT_EQ(parallel.exit_code, 0);
    EXPECT_EQ(parallel.stdout_text, serial.stdout_text) << jobs;
  }
}

}  // namespace
