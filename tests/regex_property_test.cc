// Randomized properties of the word-automata substrate: the DFA algebra
// is validated against direct membership on sampled words.

#include <gtest/gtest.h>

#include <random>

#include "regex/regex.h"
#include "workload/random_pattern.h"

namespace rtp::regex {
namespace {

// Samples words over labels l0..l<k-1> (including words outside both
// languages and the empty word).
std::vector<std::vector<LabelId>> SampleWords(Alphabet* alphabet,
                                              uint32_t num_labels,
                                              uint64_t seed, int count,
                                              size_t max_len = 6) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<LabelId>> words;
  words.push_back({});  // empty word
  for (int i = 0; i < count; ++i) {
    size_t len = rng() % (max_len + 1);
    std::vector<LabelId> w;
    for (size_t j = 0; j < len; ++j) {
      w.push_back(alphabet->Intern("l" + std::to_string(rng() % num_labels)));
    }
    words.push_back(std::move(w));
  }
  return words;
}

class RegexAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegexAlgebraTest, BooleanOperationsMatchMembership) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.num_labels = 3;
  params.max_regex_nodes = 7;

  RegexAst ast_a = workload::GenerateRandomProperRegex(&alphabet, params, seed);
  RegexAst ast_b =
      workload::GenerateRandomProperRegex(&alphabet, params, seed + 9999);
  Dfa a = Dfa::FromAst(*ast_a);
  Dfa b = Dfa::FromAst(*ast_b);

  Dfa inter = Dfa::Intersection(a, b);
  Dfa uni = Dfa::UnionOf(a, b);
  Dfa diff = Dfa::Difference(a, b);
  Dfa comp = a.Complement();
  Dfa min_a = a.Minimize();

  for (const auto& w : SampleWords(&alphabet, params.num_labels, seed, 60)) {
    bool in_a = a.Accepts(w);
    bool in_b = b.Accepts(w);
    EXPECT_EQ(inter.Accepts(w), in_a && in_b);
    EXPECT_EQ(uni.Accepts(w), in_a || in_b);
    EXPECT_EQ(diff.Accepts(w), in_a && !in_b);
    EXPECT_EQ(comp.Accepts(w), !in_a);
    EXPECT_EQ(min_a.Accepts(w), in_a);
  }
}

TEST_P(RegexAlgebraTest, InclusionConsistentWithSampledWords) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.num_labels = 2;
  params.max_regex_nodes = 6;

  RegexAst ast_a = workload::GenerateRandomProperRegex(&alphabet, params, seed * 3);
  RegexAst ast_b =
      workload::GenerateRandomProperRegex(&alphabet, params, seed * 3 + 1);
  Dfa a = Dfa::FromAst(*ast_a);
  Dfa b = Dfa::FromAst(*ast_b);

  if (a.IsSubsetOf(b)) {
    for (const auto& w : SampleWords(&alphabet, params.num_labels, seed, 80)) {
      EXPECT_TRUE(!a.Accepts(w) || b.Accepts(w))
          << "inclusion claimed but a word of L(a) is outside L(b)";
    }
  } else {
    // The difference has a witness, and it separates the languages.
    Dfa diff = Dfa::Difference(a, b);
    auto witness = diff.ShortestWord(&alphabet);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(a.Accepts(*witness));
    EXPECT_FALSE(b.Accepts(*witness));
  }
}

TEST_P(RegexAlgebraTest, MinimizeIsIdempotentAndCanonicalInSize) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.num_labels = 3;
  params.max_regex_nodes = 7;
  RegexAst ast = workload::GenerateRandomProperRegex(&alphabet, params, seed * 17);
  Dfa dfa = Dfa::FromAst(*ast);
  Dfa min1 = dfa.Minimize();
  Dfa min2 = min1.Minimize();
  EXPECT_EQ(min1.NumStates(), min2.NumStates());
  EXPECT_TRUE(min1.IsEquivalentTo(dfa));
  EXPECT_LE(min1.NumStates(), dfa.NumStates());
}

TEST_P(RegexAlgebraTest, ShortestWordIsAcceptedAndMinimal) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.num_labels = 2;
  params.max_regex_nodes = 6;
  RegexAst ast = workload::GenerateRandomProperRegex(&alphabet, params, seed * 31);
  Dfa dfa = Dfa::FromAst(*ast);
  auto word = dfa.ShortestWord(&alphabet);
  ASSERT_TRUE(word.has_value());  // proper regexes have non-empty languages
  EXPECT_TRUE(dfa.Accepts(*word));
  EXPECT_GE(word->size(), 1u);  // proper: empty word not accepted
  // No sampled accepted word is shorter.
  for (const auto& w : SampleWords(&alphabet, params.num_labels, seed, 60)) {
    if (dfa.Accepts(w)) EXPECT_LE(word->size(), w.size());
  }
}

TEST_P(RegexAlgebraTest, ToStringRoundTripPreservesLanguage) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.num_labels = 3;
  params.max_regex_nodes = 7;
  RegexAst ast = workload::GenerateRandomProperRegex(&alphabet, params, seed * 13);
  std::string text = ToString(*ast, alphabet);
  auto reparsed = ParseRegex(&alphabet, text);
  ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
  EXPECT_TRUE(Dfa::FromAst(*ast).IsEquivalentTo(Dfa::FromAst(**reparsed)))
      << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexAlgebraTest,
                         ::testing::Range<uint64_t>(1, 81));

}  // namespace
}  // namespace rtp::regex
