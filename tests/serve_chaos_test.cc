// Chaos battery for the serving stack (label `serve`; joins the TSan CI
// leg): seeded fault injection through the resilient serve::Client
// against an in-process Server. The load-bearing properties, in the
// order docs/ROBUSTNESS.md states them:
//
//   * No hangs: every call under injected faults returns within its
//     wall-clock deadline, as a result or a structured Status.
//   * No collateral damage: the daemon survives every fault schedule and
//     stays responsive to a clean client afterwards.
//   * Determinism: the same (spec, chaos seed, threads) triple reproduces
//     identical per-node fault-injection counts — the property the chaos
//     CI leg checks by diffing two rtp_load --counts-out files.
//
// LineFramer unit + torn-wire coverage lives here too, next to the chaos
// machinery that motivates it.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "guard/guard.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace rtp::serve {
namespace {

std::string TempSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/rtp_chaos_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct TestServer {
  std::string socket_path;
  std::unique_ptr<Server> server;
};

TestServer StartTestServer(ServerOptions options = {}) {
  TestServer ts;
  ts.socket_path = TempSocketPath();
  options.socket_path = ts.socket_path;
  auto server_or = Server::Start(options);
  EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
  if (server_or.ok()) ts.server = std::move(server_or).value();
  return ts;
}

constexpr char kTinyXml[] = "<a><b>v0</b><b>v1</b></a>";
constexpr char kTinyPattern[] = "root { a { x = b; } } select x;";

// ---------------------------------------------------------------------------
// LineFramer

TEST(LineFramerTest, SplitsLinesAndStripsCr) {
  LineFramer framer(1024);
  framer.Feed("one\r\ntwo\n\nthree");
  auto l1 = framer.Next();
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->text, "one");
  EXPECT_FALSE(l1->oversized);
  auto l2 = framer.Next();
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->text, "two");
  // The blank line is swallowed; "three" is incomplete.
  EXPECT_FALSE(framer.Next().has_value());
  EXPECT_TRUE(framer.HasBufferedData());
  framer.Feed("\n");
  auto l3 = framer.Next();
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->text, "three");
  EXPECT_FALSE(framer.HasBufferedData());
}

// The fuzzed invariant, pinned as a unit test: byte-at-a-time delivery
// yields exactly the lines whole-buffer delivery yields.
TEST(LineFramerTest, ChunkingInvariant) {
  const std::string input = "alpha\nbeta\r\n\ngamma delta\nepsilon";
  LineFramer whole(64);
  whole.Feed(input);
  LineFramer torn(64);
  std::vector<LineFramer::Line> whole_lines;
  std::vector<LineFramer::Line> torn_lines;
  while (auto line = whole.Next()) whole_lines.push_back(*line);
  for (char c : input) {
    torn.Feed(std::string_view(&c, 1));
    while (auto line = torn.Next()) torn_lines.push_back(*line);
  }
  ASSERT_EQ(whole_lines.size(), torn_lines.size());
  for (size_t i = 0; i < whole_lines.size(); ++i) {
    EXPECT_EQ(whole_lines[i].text, torn_lines[i].text);
    EXPECT_EQ(whole_lines[i].oversized, torn_lines[i].oversized);
  }
  EXPECT_EQ(whole.buffered_bytes(), torn.buffered_bytes());
}

TEST(LineFramerTest, OversizedLineYieldsOneMarkerAndBoundsMemory) {
  LineFramer framer(8);
  framer.Feed("0123456789");  // past the cap, unterminated
  auto marker = framer.Next();
  ASSERT_TRUE(marker.has_value());
  EXPECT_TRUE(marker->oversized);
  // The discarded tail must not accumulate.
  for (int i = 0; i < 1000; ++i) framer.Feed("xxxxxxxxxx");
  EXPECT_LE(framer.buffered_bytes(), 8u);
  EXPECT_FALSE(framer.Next().has_value());  // still the same oversized line
  // The next terminated line is delivered normally.
  framer.Feed("\nok\n");
  auto ok = framer.Next();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(ok->oversized);
  EXPECT_EQ(ok->text, "ok");
}

// ---------------------------------------------------------------------------
// FaultPlan

chaos::ChaosConfig AllKindsConfig(uint64_t seed) {
  chaos::ChaosConfig config;
  config.seed = seed;
  config.connect_refused = 400;
  config.read_stall = 400;
  config.write_stall = 400;
  config.torn_write = 400;
  config.corrupt_byte = 400;
  config.premature_close = 400;
  config.response_delay = 400;
  config.stall_ms = 1;
  config.delay_ms = 1;
  return config;
}

TEST(FaultPlanTest, SameSeedAndStreamAgreeDrawForDraw) {
  chaos::ChaosConfig config = AllKindsConfig(7);
  chaos::FaultPlan a(config, /*stream=*/3);
  chaos::FaultPlan b(config, /*stream=*/3);
  for (int i = 0; i < 2000; ++i) {
    chaos::FaultDecision da = a.Draw();
    chaos::FaultDecision db = b.Draw();
    EXPECT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind));
    EXPECT_EQ(da.detail, db.detail);
  }
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.injected(), b.injected());
  // 2000 draws at 2800 bp inject ~560 faults; all seven kinds must fire.
  EXPECT_GT(a.injected(), 100u);
  for (int kind = 1; kind < chaos::kNumFaultKinds; ++kind) {
    EXPECT_GT(a.counts()[kind], 0u)
        << chaos::FaultKindName(static_cast<chaos::FaultKind>(kind));
  }
}

TEST(FaultPlanTest, DistinctStreamsDiverge) {
  chaos::ChaosConfig config = AllKindsConfig(7);
  chaos::FaultPlan a(config, /*stream=*/0);
  chaos::FaultPlan b(config, /*stream=*/1);
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.Draw().kind != b.Draw().kind) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, DefaultPlanNeverFires) {
  chaos::FaultPlan plan;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(plan.Draw().none());
  EXPECT_EQ(plan.injected(), 0u);
}

TEST(FaultPlanTest, RatesPastTenThousandAreRejected) {
  chaos::ChaosConfig config;
  config.connect_refused = 6000;
  config.read_stall = 5000;
  EXPECT_FALSE(config.Validate().ok());
  config.read_stall = 4000;
  EXPECT_TRUE(config.Validate().ok());
}

// ---------------------------------------------------------------------------
// Resilient client vs injected faults

ClientOptions ResilientOptions(int max_attempts = 3) {
  ClientOptions options;
  options.call_timeout_ms = 2000;
  options.retry.max_attempts = max_attempts;
  options.retry.initial_backoff_ms = 1;
  options.retry.max_backoff_ms = 5;
  return options;
}

chaos::FaultDecision Fault(chaos::FaultKind kind, uint32_t stall_ms = 1) {
  chaos::FaultDecision fault;
  fault.kind = kind;
  fault.stall_ms = stall_ms;
  fault.delay_ms = 1;
  // detail 0 pins the fault shape: corruption hits the opening '{' (the
  // request is guaranteed unparseable, so recovery is via retry, not a
  // semantic op error) and torn writes use two pieces.
  fault.detail = 0;
  return fault;
}

Request EvalRequest() {
  Request req;
  req.op = "eval";
  req.tenant = "chaos";
  req.doc = "d";
  req.text = kTinyPattern;
  return req;
}

class ClientChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ts_ = StartTestServer();
    ASSERT_NE(ts_.server, nullptr);
    auto client_or = Client::Connect(ts_.socket_path, ResilientOptions());
    ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
    client_ = std::make_unique<Client>(std::move(client_or).value());
    ASSERT_TRUE(client_->Load("chaos", "d", kTinyXml).ok());
  }

  void TearDown() override {
    client_.reset();
    if (ts_.server != nullptr) ts_.server->Stop();
  }

  TestServer ts_;
  std::unique_ptr<Client> client_;
};

// Every failing fault kind on an idempotent op: the retry machinery must
// recover (the server is healthy, only the injected attempt fails).
TEST_F(ClientChaosTest, IdempotentCallsRecoverFromEveryFailingKind) {
  const chaos::FaultKind failing[] = {
      chaos::FaultKind::kConnectRefused,
      chaos::FaultKind::kReadStall,
      chaos::FaultKind::kCorruptByte,
      chaos::FaultKind::kPrematureClose,
  };
  uint64_t retries_before = client_->retries();
  for (chaos::FaultKind kind : failing) {
    auto result = client_->Call(EvalRequest(), Fault(kind));
    EXPECT_TRUE(result.ok()) << chaos::FaultKindName(kind) << ": "
                             << result.status().ToString();
  }
  // kReadStall's first attempt burns its socket-timeout share of the
  // deadline, so just require that retries happened at all.
  EXPECT_GE(client_->retries(), retries_before + 4);
  EXPECT_GE(client_->reconnects(), 1u);
}

// Benign kinds perturb framing/timing but the single attempt succeeds.
TEST_F(ClientChaosTest, BenignKindsSucceedWithoutRetry) {
  const chaos::FaultKind benign[] = {
      chaos::FaultKind::kTornWrite,
      chaos::FaultKind::kWriteStall,
      chaos::FaultKind::kResponseDelay,
  };
  for (chaos::FaultKind kind : benign) {
    uint64_t retries_before = client_->retries();
    auto result = client_->Call(EvalRequest(), Fault(kind));
    EXPECT_TRUE(result.ok()) << chaos::FaultKindName(kind) << ": "
                             << result.status().ToString();
    EXPECT_EQ(client_->retries(), retries_before)
        << chaos::FaultKindName(kind);
  }
}

// Non-idempotent ops surface the transport failure instead of retrying:
// a duplicated load/drop/quota would repeat the side effect.
TEST_F(ClientChaosTest, NonIdempotentOpsAreNeverRetried) {
  uint64_t retries_before = client_->retries();
  Request req;
  req.op = "load";
  req.tenant = "chaos";
  req.doc = "d2";
  req.text = kTinyXml;
  auto result = client_->Call(std::move(req),
                              Fault(chaos::FaultKind::kPrematureClose));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
  EXPECT_EQ(client_->retries(), retries_before);
  // The connection is broken but the *client* recovers on the next call.
  auto stats = client_->Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
}

TEST_F(ClientChaosTest, RetriesExhaustToStructuredStatus) {
  auto client_or = Client::Connect(ts_.socket_path, ResilientOptions(2));
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(client_or).value();
  // Both attempts fail: the injected fault breaks the first, then we stop
  // the server so the retry cannot reconnect.
  ts_.server->Stop();
  auto result = client.Call(EvalRequest(),
                            Fault(chaos::FaultKind::kPrematureClose));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
}

// A server that accepts but never answers: the call must come back as
// UNAVAILABLE within the configured deadline, not hang the thread.
TEST(ClientDeadlineTest, SilentServerSurfacesAsUnavailableNotAHang) {
  std::string path = TempSocketPath();
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  std::atomic<bool> stop{false};
  std::thread accepter([listen_fd, &stop] {
    std::vector<int> fds;
    while (!stop.load()) {
      pollfd p{listen_fd, POLLIN, 0};
      if (::poll(&p, 1, 50) > 0) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) fds.push_back(fd);  // accept, then stay silent
      }
    }
    for (int fd : fds) ::close(fd);
  });

  ClientOptions options;
  options.call_timeout_ms = 300;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 1;
  options.retry.max_backoff_ms = 2;
  auto client_or = Client::Connect(path, options);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  Client client = std::move(client_or).value();

  int64_t start_ns = guard::MonotonicNowNs();
  auto result = client.Call(EvalRequest());
  int64_t elapsed_ms = (guard::MonotonicNowNs() - start_ns) / 1000000;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
  // One deadline's worth of waiting plus scheduling slack — far below a
  // hang, and the retry loop must not restart the clock.
  EXPECT_LT(elapsed_ms, 3000);

  stop.store(true);
  accepter.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
}

TEST(ClientChaosConnectTest, ConnectToMissingSocketIsUnavailable) {
  auto client_or =
      Client::Connect("/tmp/rtp_chaos_no_such_socket.sock", ResilientOptions());
  ASSERT_FALSE(client_or.ok());
  EXPECT_EQ(client_or.status().code(), StatusCode::kUnavailable)
      << client_or.status().ToString();
}

// ---------------------------------------------------------------------------
// Overload: shed responses carry retry_after_ms and the client honors it.

TEST(OverloadTest, AlwaysShedServerYieldsResourceExhaustedWithHint) {
  ServerOptions options;
  options.queue_capacity = 0;  // degenerate always-shed config
  options.jobs = 1;
  TestServer ts = StartTestServer(options);
  ASSERT_NE(ts.server, nullptr);

  auto client_or = Client::Connect(ts.socket_path, ResilientOptions(2));
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(client_or).value();

  uint64_t retries_before = client.retries();
  auto result = client.Call(EvalRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  // The shed carried a retry hint, so the idempotent eval was retried
  // (and shed again) before the error surfaced.
  EXPECT_EQ(client.retries(), retries_before + 1);

  // stats runs on the connection thread, not the pool: still answered.
  auto stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  ts.server->Stop();
}

TEST(OverloadTest, ShedResponseWireShapeCarriesRetryAfterMs) {
  JsonValue shed = MakeShedResponse(7, 42);
  EXPECT_EQ(ResponseRetryAfterMs(shed), 42);
  Status status = ResponseStatus(shed);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Budget trips share the code but never the hint.
  JsonValue trip = MakeErrorResponse(
      7, ResourceExhaustedError("step budget exceeded"));
  EXPECT_EQ(ResponseRetryAfterMs(trip), 0);
}

// ---------------------------------------------------------------------------
// Torn wire input against the real server

TEST(TornWireTest, RequestSplitAcrossManyWritesGetsOneResponse) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  auto client_or = Client::Connect(ts.socket_path, ResilientOptions());
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(client_or).value();

  Request req = EvalRequest();
  req.op = "stats";
  req.id = 99;
  std::string line = EncodeRequest(req).Serialize();
  // Dribble the request a few bytes at a time with real pauses.
  for (size_t i = 0; i < line.size(); i += 5) {
    ASSERT_EQ(::send(client.fd(), line.data() + i,
                     std::min<size_t>(5, line.size() - i), MSG_NOSIGNAL),
              static_cast<ssize_t>(std::min<size_t>(5, line.size() - i)));
    chaos::SleepMs(1);
  }
  ASSERT_EQ(::send(client.fd(), "\n", 1, MSG_NOSIGNAL), 1);
  auto response_line = client.ReadLine();
  ASSERT_TRUE(response_line.ok()) << response_line.status().ToString();
  auto response = JsonValue::Parse(*response_line);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->FindInt("id"), 99);
  EXPECT_TRUE(ResponseStatus(*response).ok());
  ts.server->Stop();
}

// ---------------------------------------------------------------------------
// Server-side degradation: idle reap and graceful drain

TEST(ServerDegradationTest, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts = StartTestServer(options);
  ASSERT_NE(ts.server, nullptr);
  auto client_or = Client::Connect(ts.socket_path, ResilientOptions());
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(client_or).value();

  // Stay silent past the idle timeout: the server closes the connection.
  pollfd p{client.fd(), POLLIN, 0};
  int rv = ::poll(&p, 1, 2000);
  ASSERT_EQ(rv, 1) << "connection was not reaped within 2s";
  char byte;
  EXPECT_EQ(::recv(client.fd(), &byte, 1, 0), 0);  // clean EOF

  // The reap is per-connection: a fresh, active client is served.
  auto fresh_or = Client::Connect(ts.socket_path, ResilientOptions());
  ASSERT_TRUE(fresh_or.ok());
  Client fresh = std::move(fresh_or).value();
  EXPECT_TRUE(fresh.Stats().ok());
  ts.server->Stop();
}

TEST(ServerDegradationTest, DrainStopsAcceptingAndCompletes) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  auto client_or = Client::Connect(ts.socket_path, ResilientOptions());
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(client_or).value();
  ASSERT_TRUE(client.Load("chaos", "d", kTinyXml).ok());

  ts.server->Drain(/*grace_ms=*/1000);

  // The socket is gone: new connects fail as UNAVAILABLE.
  auto late = Client::Connect(ts.socket_path, ResilientOptions());
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  // Idempotent: a second drain (and the destructor's Stop) are no-ops.
  ts.server->Drain(/*grace_ms=*/10);
}

// ---------------------------------------------------------------------------
// Workload integration: closed-loop traffic under a seeded fault schedule

constexpr char kChaosSpec[] = R"({
  "name": "chaos-test",
  "tenant": "chaos-test",
  "setup": ["load_doc"],
  "root": "main",
  "chaos": {
    "seed": 11,
    "connect_refused": 300,
    "read_stall": 300,
    "corrupt_byte": 300,
    "premature_close": 300,
    "response_delay": 300,
    "torn_write": 300,
    "stall_ms": 1,
    "delay_ms": 1,
    "max_attempts": 4,
    "call_timeout_ms": 2000
  },
  "nodes": {
    "load_doc": {"op": "load", "doc": "d", "text": "<a><b>v0</b></a>"},
    "main": {"op": "loop", "count": 40, "body": "mix"},
    "mix": {
      "op": "random_choice",
      "children": ["eval_b", "stats"],
      "weights": [3, 1]
    },
    "eval_b": {"op": "eval", "doc": "d",
               "text": "root { a { x = b; } } select x;"},
    "stats": {"op": "stats"}
  }
})";

TEST(WorkloadChaosTest, FaultScheduleIsReproducibleAndNothingHangs) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  auto spec_or = workload::ParseWorkloadSpec(kChaosSpec, "");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  const workload::WorkloadSpec& spec = *spec_or;
  EXPECT_TRUE(spec.chaos.enabled());

  workload::RunnerOptions options;
  options.socket_path = ts.socket_path;
  options.threads = 3;
  options.seed = 42;

  auto run1 = workload::RunWorkload(spec, options);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  auto run2 = workload::RunWorkload(spec, options);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();

  // Traffic flowed and faults actually fired (3 threads × 40 ops at
  // 1800 bp injects ~21 faults per run; the single setup load makes 121).
  EXPECT_EQ(run1->ops, 121u);
  EXPECT_GT(run1->faults_injected, 0u);
  // The whole point: per-node counts — including the fault.<kind> lines —
  // are byte-identical across same-seed runs.
  EXPECT_EQ(run1->stats.ToCountsText(), run2->stats.ToCountsText());
  EXPECT_EQ(run1->faults_injected, run2->faults_injected);
  EXPECT_NE(run1->stats.ToCountsText().find(".fault."), std::string::npos);
  // Every op either succeeded after retries or surfaced a structured
  // error; transport errors are possible (read stalls can outlast the
  // per-attempt share) but must be recorded, never hung.
  EXPECT_EQ(run1->transport_errors, run2->transport_errors);

  // The daemon survived both schedules and still answers a clean client.
  auto client_or = Client::Connect(ts.socket_path, ResilientOptions());
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(client_or).value();
  EXPECT_TRUE(client.Stats().ok());
  ts.server->Stop();
}

TEST(WorkloadChaosTest, ChaosBlockIsRejectedBelowTopLevel) {
  auto spec_or = workload::ParseWorkloadSpec(R"({
    "name": "bad", "tenant": "bad", "root": "main",
    "nodes": {
      "main": {
        "op": "workload",
        "spec": {
          "name": "inner", "tenant": "bad", "root": "ping",
          "chaos": {"seed": 1, "read_stall": 100},
          "nodes": {"ping": {"op": "stats"}}
        }
      }
    }
  })",
                                             "");
  ASSERT_FALSE(spec_or.ok());
  EXPECT_NE(spec_or.status().message().find("top-level"), std::string::npos)
      << spec_or.status().ToString();
}

TEST(WorkloadChaosTest, CleanSpecReportsNoFaults) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  auto spec_or = workload::ParseWorkloadSpec(R"({
    "name": "clean", "tenant": "clean", "root": "main",
    "nodes": {
      "main": {"op": "loop", "count": 5, "body": "ping"},
      "ping": {"op": "stats"}
    }
  })",
                                             "");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  workload::RunnerOptions options;
  options.socket_path = ts.socket_path;
  options.threads = 2;
  auto run = workload::RunWorkload(*spec_or, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->faults_injected, 0u);
  EXPECT_EQ(run->transport_errors, 0u);
  EXPECT_EQ(run->stats.ToCountsText().find(".fault."), std::string::npos);
  ts.server->Stop();
}

}  // namespace
}  // namespace rtp::serve
