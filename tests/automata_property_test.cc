// Randomized properties of the hedge-automata layer: witness documents are
// genuine, products agree with component semantics, and the meet product
// agrees with a direct (evaluator-based) computation of the meet condition.

#include <gtest/gtest.h>

#include <set>

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "pattern/evaluator.h"
#include "workload/random_pattern.h"
#include "xml/value_equality.h"
#include "xml/xml_io.h"

namespace rtp::automata {
namespace {

using pattern::Mapping;
using pattern::TreePattern;
using xml::Document;
using xml::NodeId;

// Direct computation of the meet condition on a document: is there an
// A-mapping and a B-mapping such that some B-selected image lies on the
// A-trace or inside an A-selected subtree?
bool DirectMeet(const TreePattern& a, const TreePattern& b,
                const Document& doc) {
  // Collect all B-selected images over all B-mappings.
  pattern::MatchTables tables_b = pattern::MatchTables::Build(b, doc);
  pattern::MappingEnumerator enum_b(tables_b);
  std::set<NodeId> b_selected;
  enum_b.ForEach([&](const Mapping& m) {
    for (const pattern::SelectedNode& s : b.selected()) {
      b_selected.insert(m.image[s.node]);
    }
    return true;
  });
  if (b_selected.empty()) return false;

  pattern::MatchTables tables_a = pattern::MatchTables::Build(a, doc);
  pattern::MappingEnumerator enum_a(tables_a);
  bool met = false;
  enum_a.ForEach([&](const Mapping& m) {
    std::set<NodeId> a_set;
    for (NodeId n : pattern::TraceOf(doc, m)) a_set.insert(n);
    for (const pattern::SelectedNode& s : a.selected()) {
      // Mirror the compiler's refinement: only value-compared selected
      // nodes contribute their subtrees.
      if (s.equality != pattern::EqualityType::kValue) continue;
      doc.VisitFrom(m.image[s.node], [&a_set](NodeId n) {
        a_set.insert(n);
        return true;
      });
    }
    for (NodeId n : b_selected) {
      if (a_set.count(n)) {
        met = true;
        return false;
      }
    }
    return true;
  });
  return met;
}

class AutomataPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutomataPropertyTest, WitnessDocumentsContainTraces) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.seed = seed;
  TreePattern pattern = workload::GenerateRandomPattern(&alphabet, params);
  HedgeAutomaton automaton = CompilePattern(pattern, MarkMode::kNone);

  // Pattern languages are never empty (edges are proper and satisfiable).
  ASSERT_FALSE(automaton.IsEmptyLanguage()) << "seed " << seed;
  auto witness = automaton.FindWitnessDocument(&alphabet);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(automaton.Accepts(*witness)) << "seed " << seed;
  pattern::MatchTables tables = pattern::MatchTables::Build(pattern, *witness);
  EXPECT_TRUE(tables.HasTrace())
      << "seed " << seed << "\n"
      << xml::WriteXml(*witness);
}

TEST_P(AutomataPropertyTest, IntersectionAgreesWithComponents) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.seed = seed;
  TreePattern pa = workload::GenerateRandomPattern(&alphabet, params);
  params.seed = seed + 40000;
  TreePattern pb = workload::GenerateRandomPattern(&alphabet, params);
  HedgeAutomaton a = CompilePattern(pa, MarkMode::kNone);
  HedgeAutomaton b = CompilePattern(pb, MarkMode::kNone);
  HedgeAutomaton both = Intersect(a, b);

  for (uint64_t doc_seed = 1; doc_seed <= 4; ++doc_seed) {
    workload::RandomTreeParams tree_params;
    tree_params.seed = seed * 31337 + doc_seed;
    tree_params.max_nodes = 10;
    Document doc = workload::GenerateRandomTree(&alphabet, tree_params);
    EXPECT_EQ(both.Accepts(doc), a.Accepts(doc) && b.Accepts(doc))
        << "seed " << seed << "/" << doc_seed;
  }
}

TEST_P(AutomataPropertyTest, MeetProductAgreesWithDirectComputation) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.seed = seed;
  params.num_selected = 1;
  TreePattern pa = workload::GenerateRandomPattern(&alphabet, params);
  params.seed = seed + 80000;
  TreePattern pb = workload::GenerateRandomPattern(&alphabet, params);
  if (pa.selected().empty() || pb.selected().empty()) return;

  HedgeAutomaton a = CompilePattern(pa, MarkMode::kTraceAndSelectedSubtrees);
  HedgeAutomaton b = CompilePattern(pb, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet = MeetProduct(a, b);

  for (uint64_t doc_seed = 1; doc_seed <= 4; ++doc_seed) {
    workload::RandomTreeParams tree_params;
    tree_params.seed = seed * 65537 + doc_seed;
    tree_params.max_nodes = 10;
    Document doc = workload::GenerateRandomTree(&alphabet, tree_params);
    EXPECT_EQ(meet.Accepts(doc), DirectMeet(pa, pb, doc))
        << "seed " << seed << "/" << doc_seed << "\n"
        << xml::WriteXml(doc);
  }
}

TEST_P(AutomataPropertyTest, MeetWitnessSatisfiesDirectComputation) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.seed = seed * 11;
  params.num_selected = 1;
  TreePattern pa = workload::GenerateRandomPattern(&alphabet, params);
  params.seed = seed * 11 + 120000;
  TreePattern pb = workload::GenerateRandomPattern(&alphabet, params);
  if (pa.selected().empty() || pb.selected().empty()) return;

  HedgeAutomaton a = CompilePattern(pa, MarkMode::kTraceAndSelectedSubtrees);
  HedgeAutomaton b = CompilePattern(pb, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet = MeetProduct(a, b);
  if (meet.IsEmptyLanguage()) return;
  auto witness = meet.FindWitnessDocument(&alphabet);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(DirectMeet(pa, pb, *witness))
      << "seed " << seed << "\n"
      << xml::WriteXml(*witness);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomataPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripTest, WriteThenParsePreservesValueEquality) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomTreeParams params;
  params.seed = seed;
  params.max_nodes = 20;
  Document doc = workload::GenerateRandomTree(&alphabet, params);
  if (doc.ChildCount(doc.root()) != 1) return;  // XML needs a single root

  // XML cannot represent adjacent text siblings distinctly (the parser
  // merges maximal text runs); skip such documents.
  bool adjacent_text = false;
  doc.Visit([&](xml::NodeId n) {
    if (doc.type(n) == xml::NodeType::kText) {
      xml::NodeId next = doc.next_sibling(n);
      if (next != xml::kInvalidNode &&
          doc.type(next) == xml::NodeType::kText) {
        adjacent_text = true;
      }
    }
    return true;
  });
  if (adjacent_text) return;

  std::string text = xml::WriteXml(doc, /*indent=*/false);
  auto reparsed = xml::ParseXml(&alphabet, text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_TRUE(
      xml::ValueEqual(doc, doc.root(), *reparsed, reparsed->root()))
      << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace rtp::automata
