#include "fd/fd_index.h"

#include <gtest/gtest.h>

#include <random>

#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"

namespace rtp::fd {
namespace {

using xml::Document;
using xml::NodeId;

FunctionalDependency MustFd(pattern::ParsedPattern parsed) {
  auto fd = FunctionalDependency::FromParsed(std::move(parsed));
  RTP_CHECK_MSG(fd.ok(), fd.status().ToString().c_str());
  return std::move(fd).value();
}

update::UpdateClass MustUpdate(Alphabet* alphabet, std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  auto u = update::UpdateClass::FromParsed(std::move(parsed).value());
  RTP_CHECK_MSG(u.ok(), u.status().ToString().c_str());
  return std::move(u).value();
}

TEST(FdIndexTest, BuildMatchesFullCheck) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  for (auto maker : {workload::PaperFd1, workload::PaperFd2,
                     workload::PaperFd3, workload::PaperFd5}) {
    FunctionalDependency fd = MustFd(maker(&alphabet));
    FdIndex index = FdIndex::Build(fd, doc);
    EXPECT_TRUE(index.supports_incremental());
    EXPECT_EQ(index.satisfied(), CheckFd(fd, doc).satisfied);
  }
}

TEST(FdIndexTest, RevalidateDetectsIntroducedViolation) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  FdIndex index = FdIndex::Build(fd1, doc);
  ASSERT_TRUE(index.satisfied());

  // Rewrite one rank: the two math/15 exams disagree now.
  update::UpdateClass ranks =
      MustUpdate(&alphabet, "root { s = session/candidate/exam/rank; } select s;");
  std::vector<NodeId> targets = ranks.SelectNodes(doc);
  auto stats = update::ApplyOperationAt(
      &doc, {targets.front()},
      update::TransformValues{[](std::string_view) { return "99"; }});
  ASSERT_TRUE(stats.ok());

  EXPECT_FALSE(index.Revalidate(doc, stats->updated_roots));
  EXPECT_EQ(index.satisfied(), CheckFd(fd1, doc).satisfied);
}

TEST(FdIndexTest, RevalidateDetectsRepairedViolation) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));

  // Break fd1 first.
  update::UpdateClass ranks =
      MustUpdate(&alphabet, "root { s = session/candidate/exam/rank; } select s;");
  std::vector<NodeId> targets = ranks.SelectNodes(doc);
  auto broke = update::ApplyOperationAt(
      &doc, {targets.front()},
      update::TransformValues{[](std::string_view) { return "99"; }});
  ASSERT_TRUE(broke.ok());

  FdIndex index = FdIndex::Build(fd1, doc);
  ASSERT_FALSE(index.satisfied());

  // Repair it again.
  auto fixed = update::ApplyOperationAt(
      &doc, {targets.front()},
      update::TransformValues{[](std::string_view) { return "2"; }});
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(index.Revalidate(doc, fixed->updated_roots));
}

TEST(FdIndexTest, IncrementalPassTouchesFewerMappings) {
  Alphabet alphabet;
  workload::ExamWorkloadParams params;
  params.num_candidates = 300;
  Document doc = workload::GenerateExamDocument(&alphabet, params);
  // fd2 has context 'candidate': summaries decompose per candidate, so an
  // update inside one candidate re-enumerates that candidate only.
  FunctionalDependency fd2 = MustFd(workload::PaperFd2(&alphabet));
  FdIndex index = FdIndex::Build(fd2, doc);
  size_t full_pass = index.last_pass_mappings();

  update::UpdateClass dates = MustUpdate(
      &alphabet, "root { s = session/candidate/exam/date; } select s;");
  std::vector<NodeId> targets = dates.SelectNodes(doc);
  ASSERT_FALSE(targets.empty());
  auto stats = update::ApplyOperationAt(
      &doc, {targets.front()},
      update::TransformValues{[](std::string_view v) { return std::string(v); }});
  ASSERT_TRUE(stats.ok());

  bool verdict = index.Revalidate(doc, stats->updated_roots);
  EXPECT_EQ(verdict, CheckFd(fd2, doc).satisfied);
  EXPECT_LT(index.last_pass_mappings(), full_pass / 10)
      << "incremental pass should touch far fewer mappings";
}

// Randomized agreement: after arbitrary update sequences, Revalidate and
// the full checker agree.
class FdIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdIndexPropertyTest, RevalidateAgreesWithFullCheck) {
  uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  Alphabet alphabet;
  workload::ExamWorkloadParams params;
  params.num_candidates = 12;
  params.exams_per_candidate = 2;
  params.seed = seed;
  params.consistent_ranks = (seed % 2) == 0;
  Document doc = workload::GenerateExamDocument(&alphabet, params);

  FunctionalDependency fd = (seed % 3 == 0)
                                ? MustFd(workload::PaperFd2(&alphabet))
                                : MustFd(workload::PaperFd1(&alphabet));
  FdIndex index = FdIndex::Build(fd, doc);
  EXPECT_EQ(index.satisfied(), CheckFd(fd, doc).satisfied);

  update::UpdateClass cls = MustUpdate(
      &alphabet,
      (seed % 2 == 0)
          ? "root { s = session/candidate/exam/rank; } select s;"
          : "root { s = session/candidate/exam; } select s;");

  for (int step = 0; step < 4; ++step) {
    std::vector<NodeId> targets = cls.SelectNodes(doc);
    if (targets.empty()) break;
    // Update a random subset.
    std::vector<NodeId> chosen;
    for (NodeId n : targets) {
      if (rng() % 3 == 0) chosen.push_back(n);
    }
    if (chosen.empty()) chosen.push_back(targets[rng() % targets.size()]);
    uint64_t salt = rng();
    auto stats = update::ApplyOperationAt(
        &doc, chosen, update::TransformValues{[salt](std::string_view v) {
          uint64_t h = salt;
          for (char c : v) h = h * 31 + static_cast<unsigned char>(c);
          return "v" + std::to_string(h % 4);
        }});
    ASSERT_TRUE(stats.ok());
    bool incremental = index.Revalidate(doc, stats->updated_roots);
    bool full = CheckFd(fd, doc).satisfied;
    EXPECT_EQ(incremental, full) << "seed " << seed << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdIndexPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace rtp::fd
