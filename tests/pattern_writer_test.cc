#include "pattern/pattern_writer.h"

#include <gtest/gtest.h>

#include "fd/path_fd.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "workload/exam_generator.h"
#include "workload/paper_patterns.h"
#include "workload/random_pattern.h"
#include "xpath/xpath.h"

namespace rtp::pattern {
namespace {

// Structural equality of the original pattern and its reparse, mapped
// through the writer's n<k> names (node ids are renumbered in DFS order by
// the parser when the original creation order differed).
void ExpectStructurallyEqual(const TreePattern& a, const ParsedPattern& b) {
  ASSERT_EQ(a.NumNodes(), b.pattern.NumNodes());
  std::vector<PatternNodeId> map(a.NumNodes(), kInvalidPatternNode);
  map[TreePattern::kRoot] = TreePattern::kRoot;
  for (PatternNodeId w = 1; w < a.NumNodes(); ++w) {
    auto it = b.names.find("n" + std::to_string(w));
    ASSERT_NE(it, b.names.end()) << "missing node n" << w;
    map[w] = it->second;
  }
  for (PatternNodeId w = 0; w < a.NumNodes(); ++w) {
    std::vector<PatternNodeId> mapped_children;
    for (PatternNodeId c : a.children(w)) mapped_children.push_back(map[c]);
    EXPECT_EQ(mapped_children, b.pattern.children(map[w])) << "node " << w;
    if (w != TreePattern::kRoot) {
      EXPECT_EQ(map[a.parent(w)], b.pattern.parent(map[w]));
      EXPECT_TRUE(
          a.edge(w).dfa().IsEquivalentTo(b.pattern.edge(map[w]).dfa()))
          << "edge language differs at node " << w;
    }
  }
  ASSERT_EQ(a.selected().size(), b.pattern.selected().size());
  for (size_t i = 0; i < a.selected().size(); ++i) {
    EXPECT_EQ(map[a.selected()[i].node], b.pattern.selected()[i].node);
    EXPECT_EQ(a.selected()[i].equality, b.pattern.selected()[i].equality);
  }
}

TEST(PatternWriterTest, PaperPatternsRoundTrip) {
  Alphabet alphabet;
  struct Case {
    ParsedPattern parsed;
  };
  for (auto maker : {workload::PaperR1, workload::PaperR2, workload::PaperFd1,
                     workload::PaperFd2, workload::PaperFd3,
                     workload::PaperUpdateU}) {
    ParsedPattern original = maker(&alphabet);
    std::string dsl =
        PatternToDsl(original.pattern, alphabet, original.context);
    auto reparsed = ParsePattern(&alphabet, dsl);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << dsl;
    ExpectStructurallyEqual(original.pattern, *reparsed);
    EXPECT_EQ(original.context, reparsed->context) << dsl;
  }
}

TEST(PatternWriterTest, CompiledXPathRoundTrips) {
  Alphabet alphabet;
  auto compiled =
      xpath::CompileXPath(&alphabet, "/session/candidate[exam/mark]//rank");
  ASSERT_TRUE(compiled.ok());
  std::string dsl = PatternToDsl(compiled->branches[0], alphabet);
  auto reparsed = ParsePattern(&alphabet, dsl);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << dsl;
  ExpectStructurallyEqual(compiled->branches[0], *reparsed);

  // Same evaluation on a document.
  xml::Document doc = workload::BuildPaperFigure1Document(&alphabet);
  EXPECT_EQ(EvaluateSelected(compiled->branches[0], doc),
            EvaluateSelected(reparsed->pattern, doc));
}

TEST(PatternWriterTest, CompiledPathFdRoundTripsWithRootContext) {
  Alphabet alphabet;
  auto fd = fd::ParseAndCompilePathFd(&alphabet, "(/, (a/b, a/b/c) -> d[N])");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  std::string dsl = PatternToDsl(fd->pattern(), alphabet, fd->context());
  EXPECT_NE(dsl.find("context root;"), std::string::npos);
  auto reparsed = ParsePattern(&alphabet, dsl);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << dsl;
  ExpectStructurallyEqual(fd->pattern(), *reparsed);
  ASSERT_TRUE(reparsed->context.has_value());
  EXPECT_EQ(*reparsed->context, TreePattern::kRoot);
}

class PatternWriterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternWriterPropertyTest, RandomPatternsRoundTrip) {
  Alphabet alphabet;
  workload::RandomPatternParams params;
  params.seed = GetParam();
  params.num_selected = 2;
  TreePattern original = workload::GenerateRandomPattern(&alphabet, params);
  std::string dsl = PatternToDsl(original, alphabet);
  auto reparsed = ParsePattern(&alphabet, dsl);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << dsl;
  ExpectStructurallyEqual(original, *reparsed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternWriterPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace rtp::pattern
