// Concurrency tests for the rtp::exec engine: ThreadPool scheduling,
// ParallelFor coverage and error propagation, and the build-once contract
// of AutomatonCache. These run under -DRTP_SANITIZE=thread in CI (the
// `exec` ctest label), so every test doubles as a data-race probe: keep
// iteration counts small but contention real.

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "automata/pattern_compiler.h"
#include "exec/automaton_cache.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "workload/paper_patterns.h"

namespace rtp::exec {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::Registry().FindOrCreateCounter(name)->value();
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Drain: the destructor must run everything already queued.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, TaskExceptionDoesNotWedgePool) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Drain();
  // The pool is still functional afterwards.
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, BoundedQueueBackpressureStillRunsEverything) {
  // Capacity far below the submission count: non-worker Submit must block
  // for space rather than drop or deadlock.
  ThreadPool pool(2, /*queue_capacity=*/4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultJobs(), 1);
}

TEST(ParallelForTest, NullPoolRunsInlineInIndexOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, RethrowsLowestFailingChunkAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](size_t i) {
                    if (i % 10 == 3) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool is not wedged: a subsequent ParallelFor completes.
  std::atomic<int> count{0};
  ParallelFor(&pool, 50, [&count](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelForTest, NestedCallFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  // Outer iterations run on workers; each runs an inner ParallelFor on the
  // same (already busy) pool. The chunk-claiming design lets the worker
  // execute the inner chunks itself, so this must terminate.
  ParallelFor(&pool, 4, [&pool, &inner](size_t) {
    ParallelFor(&pool, 8, [&inner](size_t) {
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner.load(), 32);
}

TEST(MemoMapTest, ContendedGetOrBuildBuildsExactlyOnce) {
  internal::MemoMap<int> map;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&map, &builds, &results, t] {
      results[t] = map.GetOrBuild("key", [&builds] {
        builds.fetch_add(1, std::memory_order_relaxed);
        // Widen the race window so waiters really block on the future.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return 42;
      });
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 0; t < 8; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(*results[t], 42);
    // Everyone shares the one built object.
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(map.size(), 1u);
}

TEST(MemoMapTest, BuilderExceptionPropagatesAndEntryRetries) {
  internal::MemoMap<int> map;
  EXPECT_THROW(map.GetOrBuild(
                   "key", []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(map.size(), 0u);  // failed entry was erased...
  auto value = map.GetOrBuild("key", [] { return 7; });  // ...so retry works
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 7);
}

TEST(MemoMapTest, ClearKeepsOutstandingPointersValid) {
  internal::MemoMap<std::string> map;
  auto value = map.GetOrBuild("key", [] { return std::string("alive"); });
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(*value, "alive");  // shared_ptr keeps the object alive
}

TEST(AutomatonCacheTest, PatternKeyDistinguishesMarkModes) {
  Alphabet alphabet;
  pattern::ParsedPattern parsed = workload::PaperUpdateU(&alphabet);
  std::string trace_key = AutomatonCache::PatternKey(
      parsed.pattern, alphabet, automata::MarkMode::kTraceAndSelectedSubtrees);
  std::string image_key = AutomatonCache::PatternKey(
      parsed.pattern, alphabet, automata::MarkMode::kSelectedImagesOnly);
  EXPECT_NE(trace_key, image_key);
}

TEST(AutomatonCacheTest, RepeatedGetReturnsSameAutomaton) {
  Alphabet alphabet;
  pattern::ParsedPattern parsed = workload::PaperUpdateU(&alphabet);
  AutomatonCache cache;
  auto first = cache.GetPatternAutomaton(
      parsed.pattern, alphabet, automata::MarkMode::kSelectedImagesOnly);
  auto second = cache.GetPatternAutomaton(
      parsed.pattern, alphabet, automata::MarkMode::kSelectedImagesOnly);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AutomatonCacheTest, ContendedCompileBuildsOnce) {
  Alphabet alphabet;
  pattern::ParsedPattern parsed = workload::PaperFd1(&alphabet);
  AutomatonCache cache;
  uint64_t builds_before = CounterValue("exec.cache.builds");
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const automata::HedgeAutomaton>> results(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache.GetPatternAutomaton(
          parsed.pattern, alphabet,
          automata::MarkMode::kTraceAndSelectedSubtrees);
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < 6; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t].get(), results[0].get());
  }
#ifndef RTP_OBS_DISABLED
  EXPECT_EQ(CounterValue("exec.cache.builds") - builds_before, 1u);
#else
  (void)builds_before;
#endif
}

TEST(AutomatonCacheTest, GlobalIsASingleton) {
  EXPECT_EQ(&AutomatonCache::Global(), &AutomatonCache::Global());
}

}  // namespace
}  // namespace rtp::exec
