// Tests for the rtp::obs metrics / tracing subsystem.
//
// The registry is process-global and shared with every other test in this
// binary (the pipeline registers its own metrics as a side effect), so all
// metrics created here use an "obstest." prefix and assertions never assume
// the registry contains *only* what this file created.

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace rtp::obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter* c = Registry().FindOrCreateCounter("obstest.counter.basic");
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(CounterTest, FindOrCreateIsIdempotent) {
  Counter* a = Registry().FindOrCreateCounter("obstest.counter.same");
  Counter* b = Registry().FindOrCreateCounter("obstest.counter.same");
  EXPECT_EQ(a, b);
}

TEST(CounterTest, FindDoesNotCreate) {
  EXPECT_EQ(Registry().FindCounter("obstest.counter.never-created"), nullptr);
  Registry().FindOrCreateCounter("obstest.counter.created");
  EXPECT_NE(Registry().FindCounter("obstest.counter.created"), nullptr);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter* c = Registry().FindOrCreateCounter("obstest.counter.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge* g = Registry().FindOrCreateGauge("obstest.gauge.basic");
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Set(-5);
  EXPECT_EQ(g->value(), -5);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.basic");
  h->Reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->min(), 0u);  // empty histogram reports 0
  h->Record(10);
  h->Record(20);
  h->Record(30);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 60u);
  EXPECT_EQ(h->min(), 10u);
  EXPECT_EQ(h->max(), 30u);
  EXPECT_DOUBLE_EQ(h->mean(), 20.0);
}

TEST(HistogramTest, BucketPlacement) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.buckets");
  h->Reset();
  h->Record(0);  // bucket 0 counts zeros
  h->Record(1);  // [1,2) -> bucket 1
  h->Record(2);  // [2,4) -> bucket 2
  h->Record(3);
  h->Record(1024);  // [1024,2048) -> bucket 11
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 2u);
  EXPECT_EQ(h->bucket(11), 1u);
}

TEST(HistogramTest, QuantilesAreOrderedAndBounded) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.quantiles");
  h->Reset();
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  uint64_t p50 = h->ApproxQuantile(0.5);
  uint64_t p99 = h->ApproxQuantile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p50, 0u);
  // Log2 buckets are coarse; just require the right order of magnitude.
  EXPECT_LE(p99, 2048u);
  EXPECT_GE(p99, 256u);
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.concurrent");
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t) * kPerThread + i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ScopedTimerTest, RecordsElapsedIntoHistogram) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.timer.record");
  h->Reset();
  {
    ScopedTimer timer(h);
    // Burn a little time so elapsed > 0 even at coarse clock resolution.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->sum(), 0u);
}

TEST(ScopedTimerTest, CancelSuppressesRecording) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.timer.cancel");
  h->Reset();
  {
    ScopedTimer timer(h);
    timer.Cancel();
  }
  EXPECT_EQ(h->count(), 0u);
}

TEST(ScopedTimerTest, NestedTimersEachRecordTheirOwnSpan) {
  Histogram* outer = Registry().FindOrCreateHistogram("obstest.timer.outer");
  Histogram* inner = Registry().FindOrCreateHistogram("obstest.timer.inner");
  outer->Reset();
  inner->Reset();
  {
    ScopedTimer t_outer(outer);
    {
      ScopedTimer t_inner(inner);
      volatile uint64_t sink = 0;
      for (int i = 0; i < 10000; ++i) sink += i;
    }
  }
  ASSERT_EQ(outer->count(), 1u);
  ASSERT_EQ(inner->count(), 1u);
  // The outer span strictly contains the inner one.
  EXPECT_GE(outer->sum(), inner->sum());
}

TEST(DumpTest, JsonHasStableShapeAndSortedKeys) {
  Registry().FindOrCreateCounter("obstest.zz.counter")->Reset();
  Registry().FindOrCreateCounter("obstest.aa.counter")->Reset();
  Registry().FindOrCreateCounter("obstest.aa.counter")->Add(7);
  Histogram* h = Registry().FindOrCreateHistogram("obstest.zz.hist");
  h->Reset();
  h->Record(5);

  std::string json = DumpJson();
  // Top-level sections, in order.
  size_t counters_pos = json.find("\"counters\":{");
  size_t gauges_pos = json.find("\"gauges\":{");
  size_t histograms_pos = json.find("\"histograms\":{");
  ASSERT_NE(counters_pos, std::string::npos);
  ASSERT_NE(gauges_pos, std::string::npos);
  ASSERT_NE(histograms_pos, std::string::npos);
  EXPECT_LT(counters_pos, gauges_pos);
  EXPECT_LT(gauges_pos, histograms_pos);

  // Counter values are emitted as bare integers, sorted by name.
  size_t aa = json.find("\"obstest.aa.counter\":7");
  size_t zz = json.find("\"obstest.zz.counter\":0");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);

  // Histogram entries carry the full summary shape.
  size_t hist = json.find("\"obstest.zz.hist\":{");
  ASSERT_NE(hist, std::string::npos);
  for (const char* key :
       {"\"count\":", "\"sum\":", "\"min\":", "\"max\":", "\"mean\":",
        "\"p50\":", "\"p99\":"}) {
    EXPECT_NE(json.find(key, hist), std::string::npos) << key;
  }

  // Dumping twice with no metric activity in between is byte-identical.
  EXPECT_EQ(json, DumpJson());

  // Text dump mentions the same metrics.
  std::string text = DumpText();
  EXPECT_NE(text.find("obstest.aa.counter"), std::string::npos);
  EXPECT_NE(text.find("obstest.zz.hist"), std::string::npos);
}

TEST(TraceTest, InactiveByDefaultAndSpansAreFree) {
  ASSERT_EQ(TraceSession::Active(), nullptr);
  // Constructing a span with no active session is a no-op.
  { RTP_OBS_TRACE_SPAN("obstest.noop"); }
  EXPECT_EQ(TraceSession::Active(), nullptr);
}

TEST(TraceTest, RecordsNestedSpansWithDepth) {
  TraceSession session;
  session.Start();
  ASSERT_EQ(TraceSession::Active(), &session);
  {
    TraceSpan outer("obstest.outer");
    {
      TraceSpan inner("obstest.inner");
      volatile uint64_t sink = 0;
      for (int i = 0; i < 1000; ++i) sink += i;
    }
  }
  session.Stop();
  EXPECT_EQ(TraceSession::Active(), nullptr);

  std::vector<TraceSession::Span> spans = session.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded at destruction, so the inner span lands first.
  EXPECT_STREQ(spans[0].name, "obstest.inner");
  EXPECT_STREQ(spans[1].name, "obstest.outer");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].depth, 0);
  // The outer span contains the inner one.
  EXPECT_LE(spans[1].start_us, spans[0].start_us);
  EXPECT_GE(spans[1].start_us + spans[1].dur_us,
            spans[0].start_us + spans[0].dur_us);
}

TEST(TraceTest, SpansStartedAfterStopAreDropped) {
  TraceSession session;
  session.Start();
  session.Stop();
  { TraceSpan span("obstest.after-stop"); }
  EXPECT_EQ(session.NumSpans(), 0u);
}

TEST(TraceTest, ChromeTracingExportShape) {
  TraceSession session;
  session.Start();
  {
    TraceSpan span("obstest.export \"quoted\"");
    volatile uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  session.Stop();

  std::string json = session.ExportChromeTracing();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.rfind(']'), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"depth\":0}"), std::string::npos);
  // Quotes in span names are escaped.
  EXPECT_NE(json.find("obstest.export \\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace rtp::obs
