// Tests for the rtp::obs metrics / tracing subsystem.
//
// The registry is process-global and shared with every other test in this
// binary (the pipeline registers its own metrics as a side effect), so all
// metrics created here use an "obstest." prefix and assertions never assume
// the registry contains *only* what this file created.

#include <algorithm>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace rtp::obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter* c = Registry().FindOrCreateCounter("obstest.counter.basic");
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(CounterTest, FindOrCreateIsIdempotent) {
  Counter* a = Registry().FindOrCreateCounter("obstest.counter.same");
  Counter* b = Registry().FindOrCreateCounter("obstest.counter.same");
  EXPECT_EQ(a, b);
}

TEST(CounterTest, FindDoesNotCreate) {
  EXPECT_EQ(Registry().FindCounter("obstest.counter.never-created"), nullptr);
  Registry().FindOrCreateCounter("obstest.counter.created");
  EXPECT_NE(Registry().FindCounter("obstest.counter.created"), nullptr);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter* c = Registry().FindOrCreateCounter("obstest.counter.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge* g = Registry().FindOrCreateGauge("obstest.gauge.basic");
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Set(-5);
  EXPECT_EQ(g->value(), -5);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.basic");
  h->Reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->min(), 0u);  // empty histogram reports 0
  h->Record(10);
  h->Record(20);
  h->Record(30);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 60u);
  EXPECT_EQ(h->min(), 10u);
  EXPECT_EQ(h->max(), 30u);
  EXPECT_DOUBLE_EQ(h->mean(), 20.0);
}

TEST(HistogramTest, BucketPlacement) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.buckets");
  h->Reset();
  h->Record(0);  // bucket 0 counts zeros
  h->Record(1);  // [1,2) -> bucket 1
  h->Record(2);  // [2,4) -> bucket 2
  h->Record(3);
  h->Record(1024);  // [1024,2048) -> bucket 11
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 2u);
  EXPECT_EQ(h->bucket(11), 1u);
}

TEST(HistogramTest, QuantilesAreOrderedAndBounded) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.quantiles");
  h->Reset();
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  uint64_t p50 = h->ApproxQuantile(0.5);
  uint64_t p99 = h->ApproxQuantile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p50, 0u);
  // Log2 buckets are coarse; just require the right order of magnitude.
  EXPECT_LE(p99, 2048u);
  EXPECT_GE(p99, 256u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.interp");
  h->Reset();
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  // Exact quantiles of uniform 1..1000 are 500.5 (p50) and 990 (p99);
  // linear interpolation inside the containing log2 bucket must land
  // close, where a bucket bound alone would be off by hundreds.
  EXPECT_GE(h->Quantile(0.5), 450.0);
  EXPECT_LE(h->Quantile(0.5), 550.0);
  EXPECT_GE(h->Quantile(0.99), 950.0);
  EXPECT_LE(h->Quantile(0.99), 1000.0);
  // The extremes clamp to the observed [min, max] range.
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 1000.0);
  EXPECT_EQ(h->ApproxQuantile(1.0), 1000u);
}

TEST(HistogramTest, QuantileOfSingleSampleIsTheSample) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.single");
  h->Reset();
  h->Record(42);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h->Quantile(q), 42.0) << q;
  }
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.emptyq");
  h->Reset();
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);
}

TEST(HistogramDeltaTest, RecordMergeAndQuantileMatchHistogram) {
  HistogramDelta a;
  HistogramDelta b;
  for (uint64_t v = 1; v <= 500; ++v) a.Record(v);
  for (uint64_t v = 501; v <= 1000; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count, 1000u);
  EXPECT_EQ(a.sum, 500500u);
  EXPECT_EQ(a.ReportedMin(), 1u);
  EXPECT_EQ(a.max, 1000u);
  EXPECT_DOUBLE_EQ(a.Mean(), 500.5);

  // The merged delta quantiles agree with a Histogram that saw the same
  // samples (both run the shared interpolation).
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.delta-ref");
  h->Reset();
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), h->Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), h->Quantile(0.99));
}

TEST(HistogramDeltaTest, EmptyDeltaReportsZeros) {
  HistogramDelta d;
  EXPECT_EQ(d.ReportedMin(), 0u);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.hist.concurrent");
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t) * kPerThread + i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ScopedTimerTest, RecordsElapsedIntoHistogram) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.timer.record");
  h->Reset();
  {
    ScopedTimer timer(h);
    // Burn a little time so elapsed > 0 even at coarse clock resolution.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->sum(), 0u);
}

TEST(ScopedTimerTest, CancelSuppressesRecording) {
  Histogram* h = Registry().FindOrCreateHistogram("obstest.timer.cancel");
  h->Reset();
  {
    ScopedTimer timer(h);
    timer.Cancel();
  }
  EXPECT_EQ(h->count(), 0u);
}

TEST(ScopedTimerTest, NestedTimersEachRecordTheirOwnSpan) {
  Histogram* outer = Registry().FindOrCreateHistogram("obstest.timer.outer");
  Histogram* inner = Registry().FindOrCreateHistogram("obstest.timer.inner");
  outer->Reset();
  inner->Reset();
  {
    ScopedTimer t_outer(outer);
    {
      ScopedTimer t_inner(inner);
      volatile uint64_t sink = 0;
      for (int i = 0; i < 10000; ++i) sink += i;
    }
  }
  ASSERT_EQ(outer->count(), 1u);
  ASSERT_EQ(inner->count(), 1u);
  // The outer span strictly contains the inner one.
  EXPECT_GE(outer->sum(), inner->sum());
}

TEST(DumpTest, JsonHasStableShapeAndSortedKeys) {
  Registry().FindOrCreateCounter("obstest.zz.counter")->Reset();
  Registry().FindOrCreateCounter("obstest.aa.counter")->Reset();
  Registry().FindOrCreateCounter("obstest.aa.counter")->Add(7);
  Histogram* h = Registry().FindOrCreateHistogram("obstest.zz.hist");
  h->Reset();
  h->Record(5);

  std::string json = DumpJson();
  // Top-level sections, in order.
  size_t counters_pos = json.find("\"counters\":{");
  size_t gauges_pos = json.find("\"gauges\":{");
  size_t histograms_pos = json.find("\"histograms\":{");
  ASSERT_NE(counters_pos, std::string::npos);
  ASSERT_NE(gauges_pos, std::string::npos);
  ASSERT_NE(histograms_pos, std::string::npos);
  EXPECT_LT(counters_pos, gauges_pos);
  EXPECT_LT(gauges_pos, histograms_pos);

  // Counter values are emitted as bare integers, sorted by name.
  size_t aa = json.find("\"obstest.aa.counter\":7");
  size_t zz = json.find("\"obstest.zz.counter\":0");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);

  // Histogram entries carry the full summary shape.
  size_t hist = json.find("\"obstest.zz.hist\":{");
  ASSERT_NE(hist, std::string::npos);
  for (const char* key :
       {"\"count\":", "\"sum\":", "\"min\":", "\"max\":", "\"mean\":",
        "\"p50\":", "\"p99\":"}) {
    EXPECT_NE(json.find(key, hist), std::string::npos) << key;
  }

  // Dumping twice with no metric activity in between is byte-identical.
  EXPECT_EQ(json, DumpJson());

  // Text dump mentions the same metrics.
  std::string text = DumpText();
  EXPECT_NE(text.find("obstest.aa.counter"), std::string::npos);
  EXPECT_NE(text.find("obstest.zz.hist"), std::string::npos);
}

TEST(DumpTest, JsonCarriesSchemaVersion) {
  std::string json = DumpJson();
  EXPECT_EQ(json.rfind("{\"schema_version\":2,", 0), 0u) << json;
  EXPECT_EQ(kDumpSchemaVersion, 2);
}

// ---------------------------------------------------------------------------
// Exposition: snapshots, deltas, Prometheus text format.

TEST(ExpositionTest, SnapshotDeltaSubtractsCountersAndHistograms) {
  Counter* c = Registry().FindOrCreateCounter("obstest.expo.counter");
  Histogram* h = Registry().FindOrCreateHistogram("obstest.expo.hist");
  Gauge* g = Registry().FindOrCreateGauge("obstest.expo.gauge");
  c->Reset();
  h->Reset();
  g->Set(1);
  c->Add(10);
  h->Record(7);

  MetricsSnapshot before = TakeSnapshot();
  c->Add(5);
  h->Record(9);
  h->Record(100);
  g->Set(33);
  MetricsSnapshot delta = SnapshotDelta(before, TakeSnapshot());

  bool found_counter = false;
  for (const auto& [name, value] : delta.counters) {
    if (name != "obstest.expo.counter") continue;
    found_counter = true;
    EXPECT_EQ(value, 5u);
  }
  EXPECT_TRUE(found_counter);

  bool found_hist = false;
  for (const auto& [name, d] : delta.histograms) {
    if (name != "obstest.expo.hist") continue;
    found_hist = true;
    EXPECT_EQ(d.count, 2u);
    EXPECT_EQ(d.sum, 109u);
    EXPECT_EQ(d.max, 100u);  // min/max are instantaneous, from `after`
  }
  EXPECT_TRUE(found_hist);

  bool found_gauge = false;
  for (const auto& [name, value] : delta.gauges) {
    if (name != "obstest.expo.gauge") continue;
    found_gauge = true;
    EXPECT_EQ(value, 33);  // gauges are instantaneous, from `after`
  }
  EXPECT_TRUE(found_gauge);
}

TEST(ExpositionTest, SnapshotJsonMatchesDumpShape) {
  Registry().FindOrCreateCounter("obstest.expo.json")->Reset();
  std::string json = SnapshotToJson(TakeSnapshot());
  EXPECT_EQ(json.rfind("{\"schema_version\":2,", 0), 0u) << json;
  EXPECT_NE(json.find("\"obstest.expo.json\":0"), std::string::npos) << json;
}

TEST(ExpositionTest, PrometheusExpositionShape) {
  Counter* c = Registry().FindOrCreateCounter("obstest.promo-counter");
  c->Reset();
  c->Add(3);
  Histogram* h = Registry().FindOrCreateHistogram("obstest.promo.hist");
  h->Reset();
  h->Record(0);
  h->Record(3);

  std::string text = DumpPrometheus();
  // Names get the rtp_ prefix and '-'/'.' sanitize to '_'.
  EXPECT_NE(text.find("# TYPE rtp_obstest_promo_counter counter\n"
                      "rtp_obstest_promo_counter 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE rtp_obstest_promo_hist histogram\n"),
            std::string::npos)
      << text;
  // Cumulative le buckets at the integer-exact log2 upper bounds: the
  // zero lands at le="0", the 3 in (1,3]; +Inf closes the series.
  EXPECT_NE(text.find("rtp_obstest_promo_hist_bucket{le=\"0\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rtp_obstest_promo_hist_bucket{le=\"3\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rtp_obstest_promo_hist_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rtp_obstest_promo_hist_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("rtp_obstest_promo_hist_count 2\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured logging. RTP_LOG compiles to nothing under RTP_OBS_DISABLED,
// so the emission tests only exist in the enabled build.

#ifndef RTP_OBS_DISABLED

class LogCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    });
  }
  void TearDown() override {
    SetLogLevel(LogLevel::kOff);
    SetLogSink(nullptr);
  }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST_F(LogCaptureTest, EmitsStructuredJsonLine) {
  SetLogLevel(LogLevel::kInfo);
  RTP_LOG(INFO) << "hello " << 42;
  std::vector<std::string> captured = lines();
  ASSERT_EQ(captured.size(), 1u);
  const std::string& line = captured[0];
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"file\":\"obs_test.cc\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"line\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"hello 42\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos) << line;
}

TEST_F(LogCaptureTest, LevelsBelowMinimumAreSilentAndUnevaluated) {
  SetLogLevel(LogLevel::kWarn);
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return "side effect";
  };
  RTP_LOG(INFO) << touch();
  EXPECT_FALSE(evaluated);  // operands of a disabled line never run
  EXPECT_TRUE(lines().empty());
  RTP_LOG(ERROR) << touch();
  EXPECT_TRUE(evaluated);
  EXPECT_EQ(lines().size(), 1u);
}

TEST_F(LogCaptureTest, PerSiteRateLimitSuppresses) {
  SetLogLevel(LogLevel::kInfo);
  constexpr int kAttempts = 200;
  for (int i = 0; i < kAttempts; ++i) {
    RTP_LOG(INFO) << "spam " << i;
  }
  size_t emitted = lines().size();
  // One window's worth per second per site; the loop takes far less than
  // a second but may straddle one boundary.
  EXPECT_GE(emitted, static_cast<size_t>(kMaxLogsPerSitePerSecond));
  EXPECT_LE(emitted, 2u * kMaxLogsPerSitePerSecond);
  EXPECT_LT(emitted, static_cast<size_t>(kAttempts));
}

#endif  // RTP_OBS_DISABLED

TEST(TraceTest, InactiveByDefaultAndSpansAreFree) {
  ASSERT_EQ(TraceSession::Active(), nullptr);
  // Constructing a span with no active session is a no-op.
  { RTP_OBS_TRACE_SPAN("obstest.noop"); }
  EXPECT_EQ(TraceSession::Active(), nullptr);
}

TEST(TraceTest, RecordsNestedSpansWithDepth) {
  TraceSession session;
  session.Start();
  ASSERT_EQ(TraceSession::Active(), &session);
  {
    TraceSpan outer("obstest.outer");
    {
      TraceSpan inner("obstest.inner");
      volatile uint64_t sink = 0;
      for (int i = 0; i < 1000; ++i) sink += i;
    }
  }
  session.Stop();
  EXPECT_EQ(TraceSession::Active(), nullptr);

  std::vector<TraceSession::Span> spans = session.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded at destruction, so the inner span lands first.
  EXPECT_STREQ(spans[0].name, "obstest.inner");
  EXPECT_STREQ(spans[1].name, "obstest.outer");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].depth, 0);
  // The outer span contains the inner one.
  EXPECT_LE(spans[1].start_us, spans[0].start_us);
  EXPECT_GE(spans[1].start_us + spans[1].dur_us,
            spans[0].start_us + spans[0].dur_us);
}

TEST(TraceTest, SpansStartedAfterStopAreDropped) {
  TraceSession session;
  session.Start();
  session.Stop();
  { TraceSpan span("obstest.after-stop"); }
  EXPECT_EQ(session.NumSpans(), 0u);
}

TEST(TraceTest, ChromeTracingExportShape) {
  TraceSession session;
  session.Start();
  {
    TraceSpan span("obstest.export \"quoted\"");
    volatile uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  session.Stop();

  std::string json = session.ExportChromeTracing();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.rfind(']'), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"depth\":0}"), std::string::npos);
  // Quotes in span names are escaped.
  EXPECT_NE(json.find("obstest.export \\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace rtp::obs
