// Table-driven regression suite for the independence criterion: a broad
// set of (fd, update-class, schema?) cases with expected verdicts,
// covering descendant wildcards, attribute/text updates, node-equality
// targets, deep patterns and schema-dependent decisions. Every "unknown"
// verdict is additionally justified by a synthesized conflict candidate
// that passes the direct L-membership test.

#include <gtest/gtest.h>

#include "independence/criterion.h"
#include "workload/exam_schema.h"

namespace rtp::independence {
namespace {

struct Case {
  const char* name;
  const char* fd_text;
  const char* update_text;
  bool with_schema;  // exam schema
  bool expect_independent;
};

// fd templates reused across cases.
constexpr const char* kFd1 = R"(
  root { c = session { x = candidate/exam { p1 = discipline; p2 = mark; q = rank; } } }
  select p1, p2, q; context c;
)";
constexpr const char* kFd2 = R"(
  root { session { c = candidate { x = exam { p2 = discipline; p1 = date; } } } }
  select p1, p2, x[N]; context c;
)";
constexpr const char* kDeepFd = R"(
  root { c = session { x = candidate { q = exam/_*/rank; } } }
  select q; context c;
)";
constexpr const char* kAttrKey = R"(
  root { c = session { x = candidate { p = @IDN; } } }
  select p, x[N]; context c;
)";

const Case kCases[] = {
    // 1. Disjoint labels, no schema needed.
    {"fd1_vs_unrelated_label", kFd1,
     "root { s = session/candidate/firstJob-Year; } select s;", false, true},
    // 2. Target hit directly.
    {"fd1_vs_rank", kFd1, "root { s = session/candidate/exam/rank; } select s;",
     false, false},
    // 3. Condition hit.
    {"fd1_vs_discipline", kFd1,
     "root { s = session/candidate/exam/discipline; } select s;", false, false},
    // 4. Text node below a condition: still inside the covered subtree.
    {"fd1_vs_mark_text", kFd1,
     "root { s = session/candidate/exam/mark/#text; } select s;", false, false},
    // 5. Wildcard update class overlapping everything.
    {"fd1_vs_wildcard", kFd1, "root { s = _*/rank; } select s;", false, false},
    // 6. Wildcard that cannot reach fd1's covered set: anything below a
    // toBePassed node (fd1 has no toBePassed on its trace).
    {"fd1_vs_below_tbp", kFd1,
     "root { s = session/candidate/toBePassed/_+; } select s;", false, true},
    // 7. fd2's N-target: updates below the exam (not on condition paths)
    // are safe thanks to the node-equality refinement.
    {"fd2_vs_rank", kFd2, "root { s = session/candidate/exam/rank; } select s;",
     false, true},
    // 8. fd2 condition (date) hit.
    {"fd2_vs_date", kFd2, "root { s = session/candidate/exam/date; } select s;",
     false, false},
    // 9. Trace hit: updating exam nodes themselves... selected nodes must
    // be template leaves; 'exam' as a leaf selection IS allowed (the doc
    // node has children; the template node has none).
    {"fd2_vs_exam", kFd2, "root { s = session/candidate/exam; } select s;",
     false, false},
    // 10. Deep descendant target: a wildcard in the FD edge overlaps a
    // concrete update path.
    {"deepfd_vs_rank", kDeepFd,
     "root { s = session/candidate/exam/extra/rank; } select s;", false, false},
    // 11. But the deep FD is safe from level updates.
    {"deepfd_vs_level", kDeepFd,
     "root { s = session/candidate/level; } select s;", false, true},
    // 12. Attribute-keyed FD vs attribute updates.
    {"attrkey_vs_idn", kAttrKey,
     "root { s = session/candidate/@IDN; } select s;", false, false},
    // 13. Attribute-keyed FD vs other attributes.
    {"attrkey_vs_other_attr", kAttrKey,
     "root { s = session/candidate/exam/@weight; } select s;", false, true},
    // 14. Schema-dependent: without the schema a 'rank' could appear under
    // toBePassed (label-only reasoning says paths diverge... they do:
    // anchored paths; this one is independent either way).
    {"fd1_vs_below_tbp_schema", kFd1,
     "root { s = session/candidate/toBePassed/_+; } select s;", true, true},
    // 15. Schema rules out exam-under-exam nesting: without it, the
    // descendant update _*/exam/_*/mark could hit fd1's mark inside a
    // nested exam chain... it hits fd1's mark directly anyway.
    {"fd1_vs_any_mark", kFd1, "root { s = _*/mark; } select s;", true, false},
    // 16. Multiple selected update nodes: one overlaps, one does not.
    {"fd1_vs_level_and_rank", kFd1, R"(
       root { session/candidate { exam { a = rank; } b = level; } }
       select a, b;
     )",
     false, false},
    // 17. Multiple selected update nodes, none overlapping.
    {"fd1_vs_level_and_fj", kFd1, R"(
       root { session/candidate { a = level; b = firstJob-Year; } }
       select a, b;
     )",
     false, true},
};

class CriterionCasesTest : public ::testing::TestWithParam<Case> {};

TEST_P(CriterionCasesTest, VerdictMatches) {
  const Case& c = GetParam();
  Alphabet alphabet;
  std::optional<schema::Schema> schema;
  if (c.with_schema) schema = workload::BuildExamSchema(&alphabet);

  auto fd_parsed = pattern::ParsePattern(&alphabet, c.fd_text);
  ASSERT_TRUE(fd_parsed.ok()) << fd_parsed.status().ToString();
  auto fd = fd::FunctionalDependency::FromParsed(std::move(fd_parsed).value());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  auto u_parsed = pattern::ParsePattern(&alphabet, c.update_text);
  ASSERT_TRUE(u_parsed.ok()) << u_parsed.status().ToString();
  auto cls = update::UpdateClass::FromParsed(std::move(u_parsed).value());
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();

  CriterionOptions options;
  options.want_conflict_candidate = true;
  auto result = CheckIndependence(*fd, *cls, schema ? &*schema : nullptr,
                                  &alphabet, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->independent, c.expect_independent) << c.name;

  if (!result->independent) {
    ASSERT_TRUE(result->conflict_candidate.has_value()) << c.name;
    EXPECT_TRUE(IsInCriterionLanguage(*result->conflict_candidate, *fd, *cls,
                                      schema ? &*schema : nullptr))
        << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, CriterionCasesTest, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace rtp::independence
