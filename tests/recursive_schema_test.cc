// Recursive schemas (parts-within-parts): stress for the hedge-automata
// layer, the schema-driven generator, descendant patterns and the
// criterion under unbounded nesting.

#include <gtest/gtest.h>

#include "fd/fd_checker.h"
#include "independence/criterion.h"
#include "pattern/evaluator.h"
#include "schema/schema.h"
#include "workload/random_document.h"

namespace rtp {
namespace {

using xml::Document;
using xml::NodeId;

schema::Schema PartsSchema(Alphabet* alphabet) {
  auto schema = schema::Schema::Parse(alphabet, R"(
    schema {
      root assembly;
      element assembly { part+ }
      element part { @id / weight? / part* }
      element weight { #text }
    }
  )");
  RTP_CHECK_MSG(schema.ok(), schema.status().ToString().c_str());
  return std::move(schema).value();
}

Document NestedParts(Alphabet* alphabet, int depth) {
  Document doc(alphabet);
  NodeId assembly = doc.AddElement(doc.root(), "assembly");
  NodeId cur = assembly;
  for (int i = 0; i < depth; ++i) {
    cur = doc.AddElement(cur, "part");
    doc.AddAttribute(cur, "@id", "p" + std::to_string(i));
    NodeId w = doc.AddElement(cur, "weight");
    doc.AddText(w, std::to_string(i));
  }
  return doc;
}

TEST(RecursiveSchemaTest, ValidatesUnboundedNesting) {
  Alphabet alphabet;
  schema::Schema schema = PartsSchema(&alphabet);
  for (int depth : {1, 5, 40}) {
    Document doc = NestedParts(&alphabet, depth);
    EXPECT_TRUE(schema.Validate(doc)) << "depth " << depth;
  }
  // A part without @id is invalid at any depth.
  Document bad = NestedParts(&alphabet, 3);
  NodeId assembly = bad.first_child(bad.root());
  NodeId inner = bad.first_child(assembly);
  inner = bad.Children(inner)[2];  // the nested part
  bad.DetachSubtree(bad.first_child(inner));  // drop its @id
  EXPECT_FALSE(schema.Validate(bad));
}

TEST(RecursiveSchemaTest, RandomGenerationTerminates) {
  Alphabet alphabet;
  schema::Schema schema = PartsSchema(&alphabet);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    workload::RandomDocumentParams params;
    params.seed = seed;
    params.max_depth = 8;
    auto doc = workload::GenerateRandomDocument(schema, params);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_TRUE(schema.Validate(*doc)) << "seed " << seed;
  }
}

TEST(RecursiveSchemaTest, DescendantPatternsAcrossRecursion) {
  Alphabet alphabet;
  Document doc = NestedParts(&alphabet, 12);
  auto parsed = pattern::ParsePattern(&alphabet, R"(
    root { s = assembly/part/_*/weight; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  // Every nesting level's weight matches (part/.../weight).
  auto result = pattern::EvaluateSelected(parsed->pattern, doc);
  EXPECT_EQ(result.size(), 12u);
}

TEST(RecursiveSchemaTest, RecursiveFdAndCriterion) {
  Alphabet alphabet;
  schema::Schema schema = PartsSchema(&alphabet);
  // FD: within the whole assembly, a part's @id determines its weight
  // value, at any nesting depth.
  auto fd_parsed = pattern::ParsePattern(&alphabet, R"(
    root {
      c = assembly {
        x = part/(part)* {
          p = @id;
          q = weight;
        }
      }
    }
    select p, q;
    context c;
  )");
  ASSERT_TRUE(fd_parsed.ok()) << fd_parsed.status().ToString();
  auto fd = fd::FunctionalDependency::FromParsed(std::move(fd_parsed).value());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  // Satisfied on distinct ids.
  Document doc = NestedParts(&alphabet, 6);
  EXPECT_TRUE(fd::CheckFd(*fd, doc).satisfied);

  // Duplicate an id with a different weight: violated (across depths).
  NodeId assembly = doc.first_child(doc.root());
  NodeId extra = doc.AddElement(assembly, "part");
  doc.AddAttribute(extra, "@id", "p3");
  NodeId w = doc.AddElement(extra, "weight");
  doc.AddText(w, "999");
  EXPECT_FALSE(fd::CheckFd(*fd, doc).satisfied);

  // Criterion: @id rewrites at any depth are flagged, weight rewrites are
  // flagged, but updates to a label outside the schema's vocabulary are
  // provably independent.
  auto check = [&](const char* update_text, bool expect_independent) {
    auto u_parsed = pattern::ParsePattern(&alphabet, update_text);
    ASSERT_TRUE(u_parsed.ok());
    auto cls = update::UpdateClass::FromParsed(std::move(u_parsed).value());
    ASSERT_TRUE(cls.ok());
    auto verdict =
        independence::CheckIndependence(*fd, *cls, &schema, &alphabet);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_EQ(verdict->independent, expect_independent) << update_text;
  };
  check("root { s = _*/@id; } select s;", false);
  check("root { s = _*/weight; } select s;", false);
  // 'color' never occurs in valid documents: the schema makes the update
  // class empty on valid(S), so the pair is independent.
  check("root { s = _*/color; } select s;", true);
}

}  // namespace
}  // namespace rtp
