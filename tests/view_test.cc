#include "view/view.h"

#include <gtest/gtest.h>

#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "xml/value_equality.h"
#include "xml/xml_io.h"

namespace rtp::view {
namespace {

using xml::Document;
using xml::NodeId;

View MustView(Alphabet* alphabet, std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  auto v = View::FromParsed(std::move(parsed).value());
  RTP_CHECK_MSG(v.ok(), v.status().ToString().c_str());
  return std::move(v).value();
}

update::UpdateClass MustUpdate(Alphabet* alphabet, std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  auto u = update::UpdateClass::FromParsed(std::move(parsed).value());
  RTP_CHECK_MSG(u.ok(), u.status().ToString().c_str());
  return std::move(u).value();
}

TEST(ViewTest, CreateRequiresSelection) {
  Alphabet alphabet;
  auto parsed = pattern::ParsePattern(&alphabet, "root { a; }");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(View::FromParsed(std::move(parsed).value()).ok());
}

TEST(ViewTest, MaterializeCollectsSelectedSubtrees) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  View levels = MustView(&alphabet, R"(
    root { s = session/candidate/level; }
    select s;
  )");
  Document result = levels.Materialize(doc);
  NodeId holder = result.first_child(result.root());
  EXPECT_EQ(result.label_name(holder), "result");
  std::vector<NodeId> tuples = result.Children(holder);
  ASSERT_EQ(tuples.size(), 2u);
  for (NodeId tuple : tuples) {
    ASSERT_EQ(result.ChildCount(tuple), 1u);
    EXPECT_EQ(result.label_name(result.first_child(tuple)), "level");
  }
}

TEST(ViewTest, MaterializeBinaryView) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  View pairs = MustView(&alphabet, R"(
    root {
      session/candidate {
        a = exam/discipline;
        b = exam/mark;
      }
    }
    select a, b;
  )");
  Document result = pairs.Materialize(doc);
  NodeId holder = result.first_child(result.root());
  for (NodeId tuple : result.Children(holder)) {
    std::vector<NodeId> parts = result.Children(tuple);
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(result.label_name(parts[0]), "discipline");
    EXPECT_EQ(result.label_name(parts[1]), "mark");
  }
}

TEST(ViewTest, IndependenceProvenForDisjointUpdates) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  View ranks = MustView(&alphabet, R"(
    root { s = session/candidate/exam/rank; }
    select s;
  )");
  update::UpdateClass levels = MustUpdate(&alphabet, R"(
    root { s = session/candidate/level; }
    select s;
  )");
  auto result =
      CheckViewIndependence(ranks, levels, &schema, &alphabet);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->independent);
}

TEST(ViewTest, IndependenceNotProvenForOverlappingUpdates) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  View ranks = MustView(&alphabet, R"(
    root { s = session/candidate/exam/rank; }
    select s;
  )");
  update::UpdateClass rank_updates = MustUpdate(&alphabet, R"(
    root { s = session/candidate/exam/rank; }
    select s;
  )");
  independence::CriterionOptions options;
  options.want_conflict_candidate = true;
  auto result = CheckViewIndependence(ranks, rank_updates, &schema, &alphabet,
                                      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->independent);
  ASSERT_TRUE(result->conflict_candidate.has_value());
  EXPECT_TRUE(schema.Validate(*result->conflict_candidate));
}

TEST(ViewTest, ProvenIndependenceHoldsOnConcreteUpdates) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  View ranks = MustView(&alphabet, R"(
    root { s = session/candidate/exam/rank; }
    select s;
  )");
  update::UpdateClass levels = MustUpdate(&alphabet, R"(
    root { session/candidate { s = level; toBePassed; } }
    select s;
  )");
  auto criterion = CheckViewIndependence(ranks, levels, &schema, &alphabet);
  ASSERT_TRUE(criterion.ok());
  ASSERT_TRUE(criterion->independent);

  // Apply several concrete updates of the class: the materialized view
  // never changes.
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  Document before = ranks.Materialize(doc);
  update::Update q1{&levels, update::TransformValues{[](std::string_view) {
                      return std::string("Z");
                    }}};
  ASSERT_TRUE(update::ApplyUpdate(&doc, q1).ok());
  auto comment = std::make_shared<Document>(&alphabet);
  NodeId c = comment->AddElement(comment->root(), "comment");
  comment->AddText(c, "x");
  update::Update q2{&levels, update::AppendChild{comment, c}};
  ASSERT_TRUE(update::ApplyUpdate(&doc, q2).ok());

  Document after = ranks.Materialize(doc);
  EXPECT_TRUE(xml::ValueEqual(before, before.root(), after, after.root()));
}

TEST(ViewTest, NonLeafUpdateSelectionRejected) {
  Alphabet alphabet;
  View ranks = MustView(&alphabet, "root { s = a; } select s;");
  update::UpdateClass internal = MustUpdate(&alphabet, R"(
    root { s = a { b; } }
    select s;
  )");
  EXPECT_FALSE(CheckViewIndependence(ranks, internal, nullptr, &alphabet).ok());
}

}  // namespace
}  // namespace rtp::view
