// Mathematical invariants of mapping enumeration: on documents with known
// combinatorial structure, the number of mappings equals a closed-form
// count — a sharp end-to-end check of Definition 2's semantics (order
// condition + prefix divergence).

#include <gtest/gtest.h>

#include <cstdint>

#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"

namespace rtp::pattern {
namespace {

using xml::Document;
using xml::NodeId;

uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

ParsedPattern MustParse(Alphabet* alphabet, std::string_view text) {
  auto parsed = ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

// k sibling edges labeled 'b' under an 'a' node with n 'b' children:
// ordered distinct choices = C(n, k).
class ChooseTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChooseTest, SiblingEdgesCountBinomially) {
  auto [n, k] = GetParam();
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  for (int i = 0; i < n; ++i) doc.AddElement(a, "b");

  std::string text = "root { a { ";
  for (int i = 0; i < k; ++i) {
    text += "s" + std::to_string(i) + " = b; ";
  }
  text += "} } select s0";
  for (int i = 1; i < k; ++i) text += ", s" + std::to_string(i);
  text += ";";

  ParsedPattern p = MustParse(&alphabet, text);
  MatchTables tables = MatchTables::Build(p.pattern, doc);
  MappingEnumerator enumerator(tables);
  EXPECT_EQ(enumerator.Count(), Binomial(n, k)) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    NK, ChooseTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12),
                       ::testing::Values(1, 2, 3, 4)));

TEST(CombinatoricsTest, IndependentBranchesMultiply) {
  // Two independent branch groups: counts multiply: C(n1,k1) * C(n2,k2).
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId u = doc.AddElement(a, "u");
  NodeId v = doc.AddElement(a, "v");
  for (int i = 0; i < 5; ++i) doc.AddElement(u, "x");
  for (int i = 0; i < 4; ++i) doc.AddElement(v, "y");

  ParsedPattern p = MustParse(&alphabet, R"(
    root { a { u { s1 = x; s2 = x; } v { s3 = y; s4 = y; s5 = y; } } }
    select s1, s2, s3, s4, s5;
  )");
  MatchTables tables = MatchTables::Build(p.pattern, doc);
  MappingEnumerator enumerator(tables);
  EXPECT_EQ(enumerator.Count(), Binomial(5, 2) * Binomial(4, 3));
}

TEST(CombinatoricsTest, ChainsOfChoicesMultiply) {
  // a -> b (n1 options), each b -> c (n2 options): n1 * n2 mappings for
  // the two-edge chain pattern.
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  constexpr int kN1 = 4;
  constexpr int kN2 = 3;
  for (int i = 0; i < kN1; ++i) {
    NodeId b = doc.AddElement(a, "b");
    for (int j = 0; j < kN2; ++j) doc.AddElement(b, "c");
  }
  ParsedPattern p = MustParse(&alphabet, "root { a/b { s = c; } } select s;");
  MatchTables tables = MatchTables::Build(p.pattern, doc);
  MappingEnumerator enumerator(tables);
  EXPECT_EQ(enumerator.Count(), static_cast<size_t>(kN1 * kN2));
}

TEST(CombinatoricsTest, DescendantChainCountsDepth) {
  // Unary chain of n 'a' nodes: pattern a+ has n endpoints from the root's
  // child; pattern a/a+ has n-1; a+/a+ counts pairs: C(n, 2)... each
  // mapping = split point: the template path root -a+-> x -a+-> y picks
  // 1 <= |x| < |y| <= n: C(n, 2).
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId cur = doc.root();
  constexpr int kDepth = 7;
  for (int i = 0; i < kDepth; ++i) cur = doc.AddElement(cur, "a");

  ParsedPattern one = MustParse(&alphabet, "root { s = a+; } select s;");
  MatchTables t1 = MatchTables::Build(one.pattern, doc);
  EXPECT_EQ(MappingEnumerator(t1).Count(), static_cast<size_t>(kDepth));

  ParsedPattern two =
      MustParse(&alphabet, "root { a+ { s = a+; } } select s;");
  MatchTables t2 = MatchTables::Build(two.pattern, doc);
  EXPECT_EQ(MappingEnumerator(t2).Count(), Binomial(kDepth, 2));
}

TEST(CombinatoricsTest, PrefixDivergenceEliminatesSharedBranches) {
  // Complete binary tree of 'n' nodes with depth 3 below 'a'; two sibling
  // edges n/n/n from 'a' must use different depth-1 children: 2 choices
  // for the ordered pair... each path picks one leaf in its child's
  // subtree (4 leaves per side at depth 3 from a: 2*2=4): pairs =
  // 4 * 4 (left endpoints x right endpoints) with left child < right
  // child: exactly 1 ordered child pair, so 16.
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  // Build complete binary tree of 'n' labels, depth 3.
  std::vector<NodeId> level = {a};
  for (int d = 0; d < 3; ++d) {
    std::vector<NodeId> next;
    for (NodeId v : level) {
      next.push_back(doc.AddElement(v, "n"));
      next.push_back(doc.AddElement(v, "n"));
    }
    level = std::move(next);
  }
  ParsedPattern p = MustParse(&alphabet, R"(
    root { a { s1 = n/n/n; s2 = n/n/n; } }
    select s1, s2;
  )");
  MatchTables tables = MatchTables::Build(p.pattern, doc);
  EXPECT_EQ(MappingEnumerator(tables).Count(), 16u);
}

}  // namespace
}  // namespace rtp::pattern
