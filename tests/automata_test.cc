#include "automata/hedge_automaton.h"

#include <gtest/gtest.h>

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "workload/exam_generator.h"
#include "workload/paper_patterns.h"

namespace rtp::automata {
namespace {

using pattern::ParsedPattern;
using xml::Document;
using xml::NodeId;

ParsedPattern MustParse(Alphabet* alphabet, std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

TEST(GuardTest, LabelAndAnyExcept) {
  Guard label = Guard::Label(3);
  EXPECT_TRUE(label.Admits(3));
  EXPECT_FALSE(label.Admits(4));

  Guard any = Guard::Any();
  EXPECT_TRUE(any.Admits(3));

  Guard except = Guard::AnyExcept({2, 5});
  EXPECT_TRUE(except.Admits(3));
  EXPECT_FALSE(except.Admits(5));
}

TEST(GuardTest, Intersection) {
  auto g1 = Guard::Intersect(Guard::Label(3), Guard::Any());
  ASSERT_TRUE(g1.has_value());
  EXPECT_TRUE(g1->Admits(3));
  EXPECT_FALSE(g1->Admits(4));

  EXPECT_FALSE(Guard::Intersect(Guard::Label(3), Guard::Label(4)).has_value());
  EXPECT_FALSE(
      Guard::Intersect(Guard::Label(5), Guard::AnyExcept({5})).has_value());

  auto g2 = Guard::Intersect(Guard::AnyExcept({1}), Guard::AnyExcept({2}));
  ASSERT_TRUE(g2.has_value());
  EXPECT_FALSE(g2->Admits(1));
  EXPECT_FALSE(g2->Admits(2));
  EXPECT_TRUE(g2->Admits(3));
}

TEST(HedgeAutomatonTest, UniversalAcceptsEverything) {
  Alphabet alphabet;
  HedgeAutomaton universal = HedgeAutomaton::Universal();
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  EXPECT_TRUE(universal.Accepts(doc));
  Document empty(&alphabet);
  EXPECT_TRUE(universal.Accepts(empty));
  EXPECT_FALSE(universal.IsEmptyLanguage());
}

TEST(HedgeAutomatonTest, WitnessOfUniversalIsValid) {
  Alphabet alphabet;
  HedgeAutomaton universal = HedgeAutomaton::Universal();
  auto witness = universal.FindWitnessDocument(&alphabet);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(universal.Accepts(*witness));
}

TEST(PatternCompilerTest, AgreesWithEvaluatorOnPaperDocument) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  for (auto maker : {workload::PaperR1, workload::PaperR2, workload::PaperR3,
                     workload::PaperR4, workload::PaperUpdateU}) {
    ParsedPattern p = maker(&alphabet);
    HedgeAutomaton automaton = CompilePattern(p.pattern, MarkMode::kNone);
    pattern::MatchTables tables = pattern::MatchTables::Build(p.pattern, doc);
    EXPECT_EQ(automaton.Accepts(doc), tables.HasTrace());
  }
}

TEST(PatternCompilerTest, SimplePatternAcceptance) {
  Alphabet alphabet;
  ParsedPattern p = MustParse(&alphabet, "root { s = a/b; } select s;");
  HedgeAutomaton automaton = CompilePattern(p.pattern, MarkMode::kNone);

  Document yes(&alphabet);
  NodeId a = yes.AddElement(yes.root(), "a");
  yes.AddElement(a, "b");
  EXPECT_TRUE(automaton.Accepts(yes));

  Document no(&alphabet);
  no.AddElement(no.root(), "a");
  EXPECT_FALSE(automaton.Accepts(no));

  Document wrong_nesting(&alphabet);
  NodeId b = wrong_nesting.AddElement(wrong_nesting.root(), "b");
  wrong_nesting.AddElement(b, "a");
  EXPECT_FALSE(automaton.Accepts(wrong_nesting));
}

TEST(PatternCompilerTest, SiblingOrderEnforced) {
  Alphabet alphabet;
  ParsedPattern xy = MustParse(&alphabet, "root { a { s1 = x; s2 = y; } } select s1, s2;");
  ParsedPattern yx = MustParse(&alphabet, "root { a { s1 = y; s2 = x; } } select s1, s2;");
  HedgeAutomaton axy = CompilePattern(xy.pattern, MarkMode::kNone);
  HedgeAutomaton ayx = CompilePattern(yx.pattern, MarkMode::kNone);

  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  doc.AddElement(a, "x");
  doc.AddElement(a, "y");
  EXPECT_TRUE(axy.Accepts(doc));
  EXPECT_FALSE(ayx.Accepts(doc));
}

TEST(PatternCompilerTest, DivergenceConditionEnforced) {
  Alphabet alphabet;
  ParsedPattern p = MustParse(&alphabet, R"(
    root { a { s1 = b/c; s2 = b/c; } }
    select s1, s2;
  )");
  HedgeAutomaton automaton = CompilePattern(p.pattern, MarkMode::kNone);

  // One shared b with two c children: paths share the b prefix — rejected.
  Document shared(&alphabet);
  NodeId a = shared.AddElement(shared.root(), "a");
  NodeId b = shared.AddElement(a, "b");
  shared.AddElement(b, "c");
  shared.AddElement(b, "c");
  EXPECT_FALSE(automaton.Accepts(shared));

  // Two separate b's: accepted.
  Document split(&alphabet);
  NodeId a2 = split.AddElement(split.root(), "a");
  NodeId b1 = split.AddElement(a2, "b");
  split.AddElement(b1, "c");
  NodeId b2 = split.AddElement(a2, "b");
  split.AddElement(b2, "c");
  EXPECT_TRUE(automaton.Accepts(split));
}

TEST(PatternCompilerTest, EmptinessAndWitness) {
  Alphabet alphabet;
  ParsedPattern p = MustParse(&alphabet, R"(
    root {
      session {
        candidate {
          s = exam/mark;
          level;
        }
      }
    }
    select s;
  )");
  HedgeAutomaton automaton = CompilePattern(p.pattern, MarkMode::kNone);
  EXPECT_FALSE(automaton.IsEmptyLanguage());

  auto witness = automaton.FindWitnessDocument(&alphabet);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(automaton.Accepts(*witness));
  // The witness also has a trace per the evaluator.
  pattern::MatchTables tables = pattern::MatchTables::Build(p.pattern, *witness);
  EXPECT_TRUE(tables.HasTrace());
}

TEST(PatternCompilerTest, SizeIsLinearInPattern) {
  // Chain patterns of growing depth: automaton size must grow linearly.
  Alphabet alphabet;
  int64_t prev_size = 0;
  int64_t prev_delta = 0;
  for (int depth : {2, 4, 8, 16}) {
    pattern::TreePattern p;
    pattern::PatternNodeId cur = pattern::TreePattern::kRoot;
    for (int i = 0; i < depth; ++i) {
      auto re = regex::Regex::Parse(&alphabet, "a/b");
      RTP_CHECK(re.ok());
      cur = p.AddChild(cur, std::move(re).value());
    }
    p.AddSelected(cur);
    HedgeAutomaton automaton = CompilePattern(p, MarkMode::kNone);
    int64_t size = automaton.TotalSize();
    if (prev_size > 0) {
      int64_t delta = size - prev_size;
      if (prev_delta > 0) {
        // Linear growth: per-level increment roughly doubles as the depth
        // doubles.
        EXPECT_LE(delta, prev_delta * 2 + 16);
      }
      prev_delta = delta;
    }
    prev_size = size;
  }
}

TEST(ProductTest, IntersectionAcceptsConjunction) {
  Alphabet alphabet;
  ParsedPattern pa = MustParse(&alphabet, "root { s = a; } select s;");
  ParsedPattern pb = MustParse(&alphabet, "root { s = b; } select s;");
  HedgeAutomaton a = CompilePattern(pa.pattern, MarkMode::kNone);
  HedgeAutomaton b = CompilePattern(pb.pattern, MarkMode::kNone);
  HedgeAutomaton both = Intersect(a, b);

  Document only_a(&alphabet);
  only_a.AddElement(only_a.root(), "a");
  Document only_b(&alphabet);
  only_b.AddElement(only_b.root(), "b");
  Document ab(&alphabet);
  ab.AddElement(ab.root(), "a");
  ab.AddElement(ab.root(), "b");

  EXPECT_FALSE(both.Accepts(only_a));
  EXPECT_FALSE(both.Accepts(only_b));
  EXPECT_TRUE(both.Accepts(ab));
  EXPECT_FALSE(both.IsEmptyLanguage());

  auto witness = both.FindWitnessDocument(&alphabet);
  ASSERT_TRUE(witness.ok());
  EXPECT_TRUE(a.Accepts(*witness));
  EXPECT_TRUE(b.Accepts(*witness));
}

TEST(ProductTest, IntersectionEmptiness) {
  Alphabet alphabet;
  // 'a' as only child vs 'b' as only child: both constraints can hold in
  // one document only if it has both children — build patterns that demand
  // the SAME single child be a and b.
  ParsedPattern pa = MustParse(&alphabet, "root { s = a; } select s;");
  HedgeAutomaton a = CompilePattern(pa.pattern, MarkMode::kNone);
  // Schema-like automaton accepting only documents whose every node is
  // labeled 'b' (no 'a' anywhere): single state with Label(b) guard plus
  // the root.
  HedgeAutomaton only_b;
  StateId qb = only_b.AddState(false);
  {
    regex::Dfa::State h;
    h.accepting = true;
    h.next.emplace(static_cast<LabelId>(qb), 0);
    only_b.AddTransition(Guard::Label(alphabet.Intern("b")),
                         regex::Dfa::FromStates({h}, 0), qb);
  }
  StateId qroot = only_b.AddState(false);
  {
    regex::Dfa::State h;
    h.accepting = true;
    h.next.emplace(static_cast<LabelId>(qb), 0);
    only_b.AddTransition(Guard::Label(Alphabet::kRootLabel),
                         regex::Dfa::FromStates({h}, 0), qroot);
  }
  only_b.AddRootAccepting(qroot);

  EXPECT_FALSE(only_b.IsEmptyLanguage());
  HedgeAutomaton impossible = Intersect(a, only_b);
  EXPECT_TRUE(impossible.IsEmptyLanguage());
  EXPECT_FALSE(impossible.FindWitnessDocument(&alphabet).ok());
}

TEST(ProductTest, MeetProductRequiresSharedMarkedNode) {
  Alphabet alphabet;
  // A marks images of 'x = a/b' (selected images only); B marks images of
  // 'y = c' — no document node can be both, unless the same node matches
  // both selections.
  ParsedPattern pa = MustParse(&alphabet, "root { s = a/b; } select s;");
  ParsedPattern pb = MustParse(&alphabet, "root { s = _/b; } select s;");
  HedgeAutomaton a = CompilePattern(pa.pattern, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton b = CompilePattern(pb.pattern, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet = MeetProduct(a, b);

  // Both patterns can select the same node: meet nonempty.
  EXPECT_FALSE(meet.IsEmptyLanguage());
  auto witness = meet.FindWitnessDocument(&alphabet);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(a.Accepts(*witness));
  EXPECT_TRUE(b.Accepts(*witness));

  // A document where the selections cannot coincide is rejected even
  // though both accept it separately.
  Document disjoint(&alphabet);
  NodeId an = disjoint.AddElement(disjoint.root(), "a");
  disjoint.AddElement(an, "b");
  NodeId cn = disjoint.AddElement(disjoint.root(), "c");
  disjoint.AddElement(cn, "b");
  EXPECT_TRUE(a.Accepts(disjoint));
  EXPECT_TRUE(b.Accepts(disjoint));
  // The only a/b image is node (a,b)'s b; _/b can also select c's b. They
  // CAN coincide on a's b, so the meet accepts this document.
  EXPECT_TRUE(meet.Accepts(disjoint));

  // Remove the shared possibility: a document where a/b selects one node
  // and the other pattern cannot reach it.
  ParsedPattern pc = MustParse(&alphabet, "root { s = c/b; } select s;");
  HedgeAutomaton c = CompilePattern(pc.pattern, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet_ac = MeetProduct(a, c);
  EXPECT_TRUE(a.Accepts(disjoint));
  EXPECT_TRUE(c.Accepts(disjoint));
  EXPECT_FALSE(meet_ac.Accepts(disjoint));
  // But some document satisfies both with a shared node? a/b and c/b can
  // never share the selected b node (its parent cannot be both a and c):
  // the meet language is empty.
  EXPECT_TRUE(meet_ac.IsEmptyLanguage());
}

TEST(ProductTest, MeetProductTraceMarks) {
  Alphabet alphabet;
  // FD-side marking includes the whole trace; U-side marks a selected
  // leaf. U selecting a node *on* the FD trace (not the FD selected node)
  // must satisfy the meet.
  ParsedPattern fd_like = MustParse(&alphabet, "root { s = a/b/c; } select s;");
  ParsedPattern u_like = MustParse(&alphabet, "root { s = a; } select s;");
  HedgeAutomaton fd_automaton =
      CompilePattern(fd_like.pattern, MarkMode::kTraceAndSelectedSubtrees);
  HedgeAutomaton u_automaton =
      CompilePattern(u_like.pattern, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet = MeetProduct(fd_automaton, u_automaton);

  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b = doc.AddElement(a, "b");
  doc.AddElement(b, "c");
  // 'a' is on the trace of a/b/c and is the U-selected node.
  EXPECT_TRUE(meet.Accepts(doc));
}

TEST(ProductTest, MeetProductCoveredSubtreeMarks) {
  Alphabet alphabet;
  // FD selects the subtree rooted at 'b'; U updates 'b/c' nodes — strictly
  // below the FD selected node, inside the covered subtree.
  ParsedPattern fd_like = MustParse(&alphabet, "root { s = a/b; } select s;");
  ParsedPattern u_like = MustParse(&alphabet, "root { s = a/b/c; } select s;");
  HedgeAutomaton fd_automaton =
      CompilePattern(fd_like.pattern, MarkMode::kTraceAndSelectedSubtrees);
  HedgeAutomaton u_automaton =
      CompilePattern(u_like.pattern, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet = MeetProduct(fd_automaton, u_automaton);

  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b = doc.AddElement(a, "b");
  doc.AddElement(b, "c");
  EXPECT_TRUE(meet.Accepts(doc));

  // Without covered-subtree marks (U-side style marking), the node below
  // the selection is NOT marked, so the meet fails.
  HedgeAutomaton fd_images_only =
      CompilePattern(fd_like.pattern, MarkMode::kSelectedImagesOnly);
  HedgeAutomaton meet2 = MeetProduct(fd_images_only, u_automaton);
  EXPECT_FALSE(meet2.Accepts(doc));
}

}  // namespace
}  // namespace rtp::automata
