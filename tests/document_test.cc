#include "xml/document.h"

#include <gtest/gtest.h>

#include "xml/value_equality.h"
#include "xml/xml_io.h"

namespace rtp::xml {
namespace {

TEST(DocumentTest, RootIsSlashLabeledElement) {
  Alphabet alphabet;
  Document doc(&alphabet);
  EXPECT_EQ(doc.label(doc.root()), Alphabet::kRootLabel);
  EXPECT_EQ(doc.label_name(doc.root()), "/");
  EXPECT_EQ(doc.type(doc.root()), NodeType::kElement);
  EXPECT_EQ(doc.LiveNodeCount(), 1u);
}

TEST(DocumentTest, AddChildrenBuildsOrderedTree) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId session = doc.AddElement(doc.root(), "session");
  NodeId c1 = doc.AddElement(session, "candidate");
  NodeId c2 = doc.AddElement(session, "candidate");
  doc.AddAttribute(c1, "@IDN", "001");
  doc.AddAttribute(c2, "@IDN", "012");

  EXPECT_EQ(doc.Children(session), (std::vector<NodeId>{c1, c2}));
  EXPECT_EQ(doc.parent(c1), session);
  EXPECT_EQ(doc.next_sibling(c1), c2);
  EXPECT_EQ(doc.prev_sibling(c2), c1);
  EXPECT_EQ(doc.ChildCount(session), 2u);
  EXPECT_EQ(doc.Depth(c1), 2u);
  EXPECT_EQ(doc.Height(), 3u);
  EXPECT_EQ(doc.LiveNodeCount(), 6u);
}

TEST(DocumentTest, DocumentOrderIsPreorder) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId a1 = doc.AddElement(a, "x");
  NodeId b = doc.AddElement(doc.root(), "b");
  EXPECT_TRUE(doc.DocumentOrderLess(doc.root(), a));
  EXPECT_TRUE(doc.DocumentOrderLess(a, a1));
  EXPECT_TRUE(doc.DocumentOrderLess(a1, b));
  EXPECT_FALSE(doc.DocumentOrderLess(b, a1));
  EXPECT_EQ(doc.PreorderIndex(doc.root()), 0u);
  EXPECT_EQ(doc.PreorderIndex(b), 3u);
}

TEST(DocumentTest, IsAncestorOrSelf) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b = doc.AddElement(a, "b");
  NodeId c = doc.AddElement(doc.root(), "c");
  EXPECT_TRUE(doc.IsAncestorOrSelf(a, b));
  EXPECT_TRUE(doc.IsAncestorOrSelf(b, b));
  EXPECT_TRUE(doc.IsAncestorOrSelf(doc.root(), c));
  EXPECT_FALSE(doc.IsAncestorOrSelf(b, a));
  EXPECT_FALSE(doc.IsAncestorOrSelf(a, c));
}

TEST(DocumentTest, DetachSubtreeRemovesFromTraversal) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b = doc.AddElement(doc.root(), "b");
  doc.AddElement(b, "x");
  NodeId c = doc.AddElement(doc.root(), "c");
  doc.DetachSubtree(b);
  EXPECT_EQ(doc.Children(doc.root()), (std::vector<NodeId>{a, c}));
  EXPECT_EQ(doc.LiveNodeCount(), 3u);
  EXPECT_GT(doc.ArenaSize(), doc.LiveNodeCount());
}

TEST(DocumentTest, CopySubtreeDeepCopies) {
  Alphabet alphabet;
  Document src(&alphabet);
  NodeId e = src.AddElement(src.root(), "exam");
  src.AddAttribute(e, "@id", "7");
  NodeId m = src.AddElement(e, "mark");
  src.AddText(m, "15");

  Document dst(&alphabet);
  NodeId copy = dst.CopySubtree(src, e, dst.root());
  EXPECT_TRUE(ValueEqual(src, e, dst, copy));
  // Mutating the copy does not affect the source.
  dst.set_value(dst.first_child(copy), "8");
  EXPECT_FALSE(ValueEqual(src, e, dst, copy));
}

TEST(DocumentTest, ReplaceSubtreeSplicesInPlace) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b = doc.AddElement(doc.root(), "b");
  NodeId c = doc.AddElement(doc.root(), "c");
  (void)a;
  (void)c;

  Document repl(&alphabet);
  NodeId r = repl.AddElement(repl.root(), "new");
  repl.AddText(r, "v");

  NodeId inserted = doc.ReplaceSubtree(b, repl, r);
  std::vector<NodeId> kids = doc.Children(doc.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(doc.label_name(kids[1]), "new");
  EXPECT_EQ(kids[1], inserted);
  EXPECT_EQ(doc.label_name(kids[0]), "a");
  EXPECT_EQ(doc.label_name(kids[2]), "c");
}

TEST(DocumentTest, InsertSubtreePositions) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  Document repl(&alphabet);
  NodeId x = repl.AddElement(repl.root(), "x");

  // Insert before a, then append at end.
  doc.InsertSubtree(doc.root(), a, repl, x);
  doc.InsertSubtree(doc.root(), kInvalidNode, repl, x);
  std::vector<NodeId> kids = doc.Children(doc.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(doc.label_name(kids[0]), "x");
  EXPECT_EQ(doc.label_name(kids[1]), "a");
  EXPECT_EQ(doc.label_name(kids[2]), "x");
}

TEST(ValueEqualityTest, LeafValueEquality) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId e = doc.AddElement(doc.root(), "e");
  NodeId t1 = doc.AddText(e, "hello");
  NodeId t2 = doc.AddText(e, "hello");
  NodeId t3 = doc.AddText(e, "world");
  NodeId a1 = doc.AddAttribute(e, "@x", "hello");
  EXPECT_TRUE(ValueEqual(doc, t1, t2));
  EXPECT_FALSE(ValueEqual(doc, t1, t3));
  // Same value but different label/type.
  EXPECT_FALSE(ValueEqual(doc, t1, a1));
}

TEST(ValueEqualityTest, ElementStructuralEquality) {
  Alphabet alphabet;
  Document doc(&alphabet);
  auto make_exam = [&](std::string_view mark, std::string_view rank) {
    NodeId e = doc.AddElement(doc.root(), "exam");
    NodeId m = doc.AddElement(e, "mark");
    doc.AddText(m, mark);
    NodeId r = doc.AddElement(e, "rank");
    doc.AddText(r, rank);
    return e;
  };
  NodeId e1 = make_exam("15", "2");
  NodeId e2 = make_exam("15", "2");
  NodeId e3 = make_exam("15", "3");
  EXPECT_TRUE(ValueEqual(doc, e1, e2));
  EXPECT_FALSE(ValueEqual(doc, e1, e3));
  EXPECT_EQ(SubtreeHash(doc, e1), SubtreeHash(doc, e2));
  EXPECT_EQ(CanonicalForm(doc, e1), CanonicalForm(doc, e2));
  EXPECT_NE(CanonicalForm(doc, e1), CanonicalForm(doc, e3));
}

TEST(ValueEqualityTest, ChildOrderMatters) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId e1 = doc.AddElement(doc.root(), "e");
  doc.AddElement(e1, "a");
  doc.AddElement(e1, "b");
  NodeId e2 = doc.AddElement(doc.root(), "e");
  doc.AddElement(e2, "b");
  doc.AddElement(e2, "a");
  EXPECT_FALSE(ValueEqual(doc, e1, e2));
}

TEST(ValueEqualityTest, DifferentChildCounts) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId e1 = doc.AddElement(doc.root(), "e");
  doc.AddElement(e1, "a");
  NodeId e2 = doc.AddElement(doc.root(), "e");
  doc.AddElement(e2, "a");
  doc.AddElement(e2, "a");
  EXPECT_FALSE(ValueEqual(doc, e1, e2));
  EXPECT_FALSE(ValueEqual(doc, e2, e1));
}

TEST(XmlIoTest, ParseSimpleDocument) {
  Alphabet alphabet;
  auto doc = ParseXml(&alphabet, R"(
    <session date="2009-06">
      <candidate IDN="001">
        <level>B</level>
      </candidate>
    </session>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Document& d = *doc;
  std::vector<NodeId> top = d.Children(d.root());
  ASSERT_EQ(top.size(), 1u);
  NodeId session = top[0];
  EXPECT_EQ(d.label_name(session), "session");
  std::vector<NodeId> kids = d.Children(session);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(d.label_name(kids[0]), "@date");
  EXPECT_EQ(d.type(kids[0]), NodeType::kAttribute);
  EXPECT_EQ(d.value(kids[0]), "2009-06");
  EXPECT_EQ(d.label_name(kids[1]), "candidate");
  std::vector<NodeId> ckids = d.Children(kids[1]);
  ASSERT_EQ(ckids.size(), 2u);
  NodeId level = ckids[1];
  EXPECT_EQ(d.label_name(level), "level");
  std::vector<NodeId> lk = d.Children(level);
  ASSERT_EQ(lk.size(), 1u);
  EXPECT_EQ(d.type(lk[0]), NodeType::kText);
  EXPECT_EQ(d.value(lk[0]), "B");
}

TEST(XmlIoTest, RoundTrip) {
  Alphabet alphabet;
  const char* kXml =
      "<a x=\"1\"><b>text</b><c/><d>mixed &amp; escaped &lt;</d></a>";
  auto doc = ParseXml(&alphabet, kXml);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  std::string out = WriteXml(*doc, /*indent=*/false);
  auto doc2 = ParseXml(&alphabet, out);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString() << " in " << out;
  EXPECT_TRUE(ValueEqual(*doc, doc->root(), *doc2, doc2->root()));
}

TEST(XmlIoTest, SelfClosingAndComments) {
  Alphabet alphabet;
  auto doc = ParseXml(&alphabet,
                      "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  NodeId a = doc->Children(doc->root())[0];
  ASSERT_EQ(doc->ChildCount(a), 1u);
  EXPECT_EQ(doc->label_name(doc->first_child(a)), "b");
}

TEST(XmlIoTest, ErrorsAreReported) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseXml(&alphabet, "").ok());
  EXPECT_FALSE(ParseXml(&alphabet, "<a>").ok());
  EXPECT_FALSE(ParseXml(&alphabet, "<a></b>").ok());
  EXPECT_FALSE(ParseXml(&alphabet, "<a b=c></a>").ok());
  EXPECT_FALSE(ParseXml(&alphabet, "<a/><b/>").ok());
  EXPECT_FALSE(ParseXml(&alphabet, "<a>&unknown;</a>").ok());
}

TEST(XmlIoTest, WhitespaceOnlyTextDropped) {
  Alphabet alphabet;
  auto doc = ParseXml(&alphabet, "<a>\n  <b/>\n</a>");
  ASSERT_TRUE(doc.ok());
  NodeId a = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->ChildCount(a), 1u);
}

}  // namespace
}  // namespace rtp::xml
