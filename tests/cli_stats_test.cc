// Integration test: `rtp_cli --stats` on the examples/ inputs emits
// parseable JSON containing the expected metric keys. This is a golden-KEY
// check — values vary with implementation details, so assertions are about
// the presence (and coarse nonzero-ness) of keys, never exact numbers.
//
// The build injects RTP_CLI_BINARY and RTP_EXAMPLES_DATA_DIR as absolute
// paths (tests/CMakeLists.txt), so the test is independent of the ctest
// working directory.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

// The CLI is built with the same flags as this test; under
// RTP_OBS_DISABLED the pipeline records no metrics, spans, or profiles,
// so content assertions about them only hold in the enabled build.
#ifdef RTP_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "RTP_OBS_DISABLED: call-site instrumentation compiled out"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

struct RunResult {
  int exit_code;
  std::string stdout_text;
};

RunResult RunCli(const std::string& args, bool merge_stderr = false) {
  std::string cmd = Quoted(RTP_CLI_BINARY) + " " + args +
                    (merge_stderr ? " 2>&1" : " 2>/dev/null");
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  int status = pclose(pipe);
  return RunResult{WIFEXITED(status) ? WEXITSTATUS(status) : -1, out};
}

std::string DataPath(const std::string& name) {
  return std::string(RTP_EXAMPLES_DATA_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Extracts the integer value of `"key":<digits>` from a JSON dump. Returns
// -1 when the key is absent.
long long IntValueOf(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(json.c_str() + pos + needle.size());
}

// Structural sanity: balanced braces, starts with '{', ends with '}'.
void ExpectParseableJsonObject(const std::string& json) {
  ASSERT_FALSE(json.empty());
  size_t first = json.find_first_not_of(" \t\r\n");
  size_t last = json.find_last_not_of(" \t\r\n");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(json[first], '{');
  EXPECT_EQ(json[last], '}');
  int depth = 0;
  bool in_string = false;
  for (size_t i = first; i <= last; ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0) << "unbalanced braces at offset " << i;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(CliStatsTest, IndependentEmitsPipelineMetrics) {
  SKIP_IF_OBS_DISABLED();
  std::string stats_file = testing::TempDir() + "/cli_stats_independent.json";
  std::remove(stats_file.c_str());

  // fd5 is independent of update class U (the paper's Figure 6 example);
  // the schema is needed to exclude the candidate-with-both-children
  // conflict documents, exactly as IC intersects with A_S in Section 5.
  RunResult r = RunCli("--stats=" + Quoted(stats_file) + " independent " +
                    Quoted(DataPath("fd5.fd")) + " " +
                    Quoted(DataPath("update_u.pattern")) + " " +
                    Quoted(DataPath("exam.schema")));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;

  std::string json = ReadFileOrDie(stats_file);
  ExpectParseableJsonObject(json);

  // The dump shape is versioned.
  EXPECT_EQ(IntValueOf(json, "schema_version"), 2) << json;
  // Acceptance keys: the product construction and the criterion ran.
  EXPECT_GT(IntValueOf(json, "automata.product.states_built"), 0) << json;
  EXPECT_GT(IntValueOf(json, "independence.criterion.checks"), 0) << json;
  EXPECT_EQ(IntValueOf(json, "independence.criterion.independent"), 1)
      << json;
  // The rest of the pipeline reported too.
  for (const char* key :
       {"automata.compile.patterns", "automata.emptiness.checks",
        "regex.compilations"}) {
    EXPECT_GT(IntValueOf(json, key), 0) << key << "\n" << json;
  }
  // Latency histograms are present (key existence only).
  for (const char* key :
       {"independence.criterion.ns", "automata.emptiness.ns"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":{"), std::string::npos)
        << key << "\n" << json;
  }
  std::remove(stats_file.c_str());
}

TEST(CliStatsTest, CheckFdEmitsEvaluatorAndFdMetrics) {
  SKIP_IF_OBS_DISABLED();
  std::string stats_file = testing::TempDir() + "/cli_stats_check.json";
  std::remove(stats_file.c_str());

  RunResult r = RunCli("--stats=" + Quoted(stats_file) + " checkfd " +
                    Quoted(DataPath("fd1.fd")) + " " +
                    Quoted(DataPath("exam.xml")));
  // fd1 holds on the Figure 1 document.
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;

  std::string json = ReadFileOrDie(stats_file);
  ExpectParseableJsonObject(json);

  EXPECT_GT(IntValueOf(json, "fd.check.calls"), 0) << json;
  EXPECT_GT(IntValueOf(json, "fd.check.traces_enumerated"), 0) << json;
  EXPECT_GT(IntValueOf(json, "pattern.eval.enumerations"), 0) << json;
  EXPECT_GT(IntValueOf(json, "xml.parse.documents"), 0) << json;
  EXPECT_EQ(IntValueOf(json, "fd.check.violations"), -1) << json;
  std::remove(stats_file.c_str());
}

TEST(CliStatsTest, ValidateAgainstSchemaCountsValidation) {
  SKIP_IF_OBS_DISABLED();
  std::string stats_file = testing::TempDir() + "/cli_stats_validate.json";
  std::remove(stats_file.c_str());

  RunResult r = RunCli("--stats=" + Quoted(stats_file) + " validate " +
                    Quoted(DataPath("exam.schema")) + " " +
                    Quoted(DataPath("exam.xml")));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;

  std::string json = ReadFileOrDie(stats_file);
  ExpectParseableJsonObject(json);
  EXPECT_GT(IntValueOf(json, "schema.validations"), 0) << json;
  std::remove(stats_file.c_str());
}

TEST(CliStatsTest, BareStatsFlagDumpsToStderr) {
  SKIP_IF_OBS_DISABLED();
  RunResult r = RunCli("--stats eval " + Quoted(DataPath("update_u.pattern")) +
                        " " + Quoted(DataPath("exam.xml")),
                    /*merge_stderr=*/true);
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;
  // With no =<file>, the JSON dump goes to stderr after the command's
  // normal stdout output.
  size_t pos = r.stdout_text.find("\"counters\":{");
  ASSERT_NE(pos, std::string::npos) << r.stdout_text;
  EXPECT_NE(r.stdout_text.find("pattern.eval.enumerations"),
            std::string::npos)
      << r.stdout_text;
}

TEST(CliStatsTest, TraceOutWritesChromeTracingJson) {
  SKIP_IF_OBS_DISABLED();
  std::string trace_file = testing::TempDir() + "/cli_trace.json";
  std::remove(trace_file.c_str());

  RunResult r = RunCli("--trace-out=" + Quoted(trace_file) + " independent " +
                    Quoted(DataPath("fd5.fd")) + " " +
                    Quoted(DataPath("update_u.pattern")) + " " +
                    Quoted(DataPath("exam.schema")));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;

  std::string json = ReadFileOrDie(trace_file);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("independence.CheckIndependence"), std::string::npos)
      << json;
  std::remove(trace_file.c_str());
}

TEST(CliProfileTest, ProfileFlagWritesQueryProfiles) {
  SKIP_IF_OBS_DISABLED();
  std::string profile_file = testing::TempDir() + "/cli_profile_eval.json";
  std::remove(profile_file.c_str());

  RunResult r = RunCli("--profile=" + Quoted(profile_file) + " eval " +
                    Quoted(DataPath("update_u.pattern")) + " " +
                    Quoted(DataPath("exam.xml")));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;

  std::string json = ReadFileOrDie(profile_file);
  ASSERT_FALSE(json.empty());
  // One QueryProfile object with op, wall, phase tree, and counter deltas.
  EXPECT_NE(json.find("\"op\":\"pattern.EvaluateSelected\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"wall_ns\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"phases\":["), std::string::npos) << json;
  EXPECT_NE(json.find("pattern.build_tables"), std::string::npos) << json;
  EXPECT_NE(json.find("pattern.enumerate"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pattern.eval.enumerations\":"), std::string::npos)
      << json;
  std::remove(profile_file.c_str());
}

TEST(CliProfileTest, ExplainWrapsCommandAndPrintsTextProfile) {
  SKIP_IF_OBS_DISABLED();
  RunResult r = RunCli("explain checkfd " + Quoted(DataPath("fd1.fd")) + " " +
                    Quoted(DataPath("exam.xml")));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;
  // The wrapped command's own output comes first...
  EXPECT_NE(r.stdout_text.find("satisfied"), std::string::npos)
      << r.stdout_text;
  // ...followed by the rendered profile: operation, phases, counters.
  EXPECT_NE(r.stdout_text.find("fd.CheckFd"), std::string::npos)
      << r.stdout_text;
  EXPECT_NE(r.stdout_text.find("pattern.build_tables"), std::string::npos)
      << r.stdout_text;
  EXPECT_NE(r.stdout_text.find("fd.group_and_compare"), std::string::npos)
      << r.stdout_text;
}

TEST(CliProfileTest, ExplainRejectsUnwrappableCommand) {
  RunResult r = RunCli("explain validate a b", /*merge_stderr=*/true);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.stdout_text.find("explain"), std::string::npos)
      << r.stdout_text;
}

TEST(CliPrometheusTest, PrometheusFlagWritesExposition) {
  SKIP_IF_OBS_DISABLED();
  std::string prom_file = testing::TempDir() + "/cli_prometheus.txt";
  std::remove(prom_file.c_str());

  RunResult r = RunCli("--prometheus=" + Quoted(prom_file) + " checkfd " +
                    Quoted(DataPath("fd1.fd")) + " " +
                    Quoted(DataPath("exam.xml")));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;

  std::string text = ReadFileOrDie(prom_file);
  EXPECT_NE(text.find("# TYPE rtp_fd_check_calls counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rtp_fd_check_calls 1"), std::string::npos) << text;
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"}"), std::string::npos) << text;
  std::remove(prom_file.c_str());
}

TEST(CliStatsTest, UnknownCommandReportsDetail) {
  RunResult r = RunCli("frobnicate", /*merge_stderr=*/true);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.stdout_text.find("unknown command 'frobnicate'"),
            std::string::npos)
      << r.stdout_text;
}

}  // namespace
