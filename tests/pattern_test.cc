#include "pattern/evaluator.h"

#include <gtest/gtest.h>

#include "pattern/pattern_parser.h"
#include "workload/exam_generator.h"
#include "workload/paper_patterns.h"

namespace rtp::pattern {
namespace {

using xml::Document;
using xml::NodeId;

ParsedPattern MustParse(Alphabet* alphabet, std::string_view text) {
  auto parsed = ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

TEST(TreePatternTest, StructureAndSize) {
  Alphabet alphabet;
  ParsedPattern p = MustParse(&alphabet, R"(
    root {
      c = session {
        x = candidate {
          a = exam;
          b = level;
        }
      }
    }
    select a, b;
    context c;
  )");
  const TreePattern& t = p.pattern;
  EXPECT_EQ(t.NumNodes(), 5u);
  EXPECT_EQ(t.MaxArity(), 2u);
  ASSERT_TRUE(p.context.has_value());
  EXPECT_EQ(*p.context, p.names.at("c"));
  EXPECT_EQ(t.selected().size(), 2u);
  EXPECT_EQ(t.parent(p.names.at("x")), p.names.at("c"));
  EXPECT_TRUE(t.IsAncestorOrSelf(p.names.at("c"), p.names.at("a")));
  EXPECT_FALSE(t.IsAncestorOrSelf(p.names.at("a"), p.names.at("c")));
  EXPECT_GT(t.Size(alphabet), 0);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreePatternTest, ValidateRejectsNonProperEdge) {
  Alphabet alphabet;
  auto parsed = ParsePattern(&alphabet, R"(
    root { x = a*; }
    select x;
  )");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(PatternParserTest, Errors) {
  Alphabet alphabet;
  EXPECT_FALSE(ParsePattern(&alphabet, "").ok());
  EXPECT_FALSE(ParsePattern(&alphabet, "root { a }").ok());
  EXPECT_FALSE(ParsePattern(&alphabet, "root { a; } select zzz;").ok());
  EXPECT_FALSE(ParsePattern(&alphabet, "root { x = a; x = b; }").ok());
  EXPECT_FALSE(ParsePattern(&alphabet, "root { a; } context q;").ok());
  EXPECT_FALSE(ParsePattern(&alphabet, "root { a; } bogus x;").ok());
}

TEST(PatternParserTest, CommentsAndAnonymousNodes) {
  Alphabet alphabet;
  ParsedPattern p = MustParse(&alphabet, R"(
    # a pattern
    root {
      a/b;      # anonymous internal path
      x = c;    # named leaf
    }
    select x;
  )");
  EXPECT_EQ(p.pattern.NumNodes(), 3u);
  EXPECT_EQ(p.names.size(), 1u);
}

// --- Evaluation on a small handcrafted tree. ---

TEST(EvaluatorTest, SingleEdgeMonadicPattern) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b1 = doc.AddElement(a, "b");
  NodeId b2 = doc.AddElement(a, "b");
  doc.AddElement(b1, "c");

  ParsedPattern p = MustParse(&alphabet, "root { s = a/b; } select s;");
  auto result = EvaluateSelected(p.pattern, doc);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0][0], b1);
  EXPECT_EQ(result[1][0], b2);
}

TEST(EvaluatorTest, DescendantAxisViaWildcardStar) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b = doc.AddElement(a, "b");
  NodeId target1 = doc.AddElement(b, "x");
  NodeId target2 = doc.AddElement(a, "x");

  ParsedPattern p = MustParse(&alphabet, "root { s = _*/x; } select s;");
  auto result = EvaluateSelected(p.pattern, doc);
  ASSERT_EQ(result.size(), 2u);
  std::set<NodeId> got = {result[0][0], result[1][0]};
  EXPECT_TRUE(got.count(target1));
  EXPECT_TRUE(got.count(target2));
}

TEST(EvaluatorTest, NoMappingWhenLabelMissing) {
  Alphabet alphabet;
  Document doc(&alphabet);
  doc.AddElement(doc.root(), "a");
  ParsedPattern p = MustParse(&alphabet, "root { s = zz; } select s;");
  MatchTables tables = MatchTables::Build(p.pattern, doc);
  EXPECT_FALSE(tables.HasTrace());
  EXPECT_TRUE(EvaluateSelected(p.pattern, doc).empty());
}

TEST(EvaluatorTest, SiblingEdgesRequireDistinctIncreasingChildren) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  doc.AddElement(a, "b");

  // Two sibling edges both needing a 'b' child: only one 'b' exists, so
  // condition (b) of Definition 2 leaves no mapping.
  ParsedPattern p = MustParse(&alphabet, R"(
    root { a { s1 = b; s2 = b; } }
    select s1, s2;
  )");
  EXPECT_TRUE(EvaluateSelected(p.pattern, doc).empty());

  // With a second 'b' child there is exactly one (ordered) mapping.
  doc.AddElement(a, "b");
  auto result = EvaluateSelected(p.pattern, doc);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(doc.DocumentOrderLess(result[0][0], result[0][1]));
}

TEST(EvaluatorTest, SiblingOrderConstraint) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  doc.AddElement(a, "x");
  doc.AddElement(a, "y");

  ParsedPattern xy = MustParse(&alphabet, "root { a { s1 = x; s2 = y; } } select s1, s2;");
  ParsedPattern yx = MustParse(&alphabet, "root { a { s1 = y; s2 = x; } } select s1, s2;");
  EXPECT_EQ(EvaluateSelected(xy.pattern, doc).size(), 1u);
  EXPECT_TRUE(EvaluateSelected(yx.pattern, doc).empty());
}

TEST(EvaluatorTest, PathsDivergingAtDifferentDepths) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b1 = doc.AddElement(a, "b");
  NodeId b2 = doc.AddElement(a, "b");
  NodeId c1 = doc.AddElement(b1, "c");
  NodeId c2 = doc.AddElement(b2, "c");

  // Divergence at the 'a' node: pairs (c under b1, c under b2) only.
  ParsedPattern p = MustParse(&alphabet, R"(
    root { a { s1 = b/c; s2 = b/c; } }
    select s1, s2;
  )");
  auto result = EvaluateSelected(p.pattern, doc);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0][0], c1);
  EXPECT_EQ(result[0][1], c2);
}

TEST(EvaluatorTest, MappingCountMultiplicative) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId u = doc.AddElement(a, "u");
  NodeId v = doc.AddElement(a, "v");
  for (int i = 0; i < 3; ++i) doc.AddElement(u, "x");
  for (int i = 0; i < 2; ++i) doc.AddElement(v, "y");

  ParsedPattern p2 = MustParse(&alphabet, R"(
    root { a { s1 = u/x; s2 = v/y; } }
    select s1, s2;
  )");
  MatchTables tables = MatchTables::Build(p2.pattern, doc);
  MappingEnumerator enumerator(tables);
  EXPECT_EQ(enumerator.Count(), 6u);
}

TEST(EvaluatorTest, EarlyTerminationStopsEnumeration) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  for (int i = 0; i < 10; ++i) doc.AddElement(a, "b");
  ParsedPattern p = MustParse(&alphabet, "root { s = a/b; } select s;");
  MatchTables tables = MatchTables::Build(p.pattern, doc);
  MappingEnumerator enumerator(tables);
  EXPECT_EQ(enumerator.Count(3), 3u);
  EXPECT_EQ(enumerator.Count(), 10u);
}

TEST(EvaluatorTest, TraceIsUnionOfRootPaths) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId a = doc.AddElement(doc.root(), "a");
  NodeId b = doc.AddElement(a, "b");
  NodeId c = doc.AddElement(a, "c");
  ParsedPattern p = MustParse(&alphabet, "root { a { s1 = b; s2 = c; } } select s1, s2;");
  MatchTables tables = MatchTables::Build(p.pattern, doc);
  MappingEnumerator enumerator(tables);
  std::vector<xml::NodeId> trace;
  enumerator.ForEach([&](const Mapping& m) {
    trace = TraceOf(doc, m);
    return false;
  });
  EXPECT_EQ(trace, (std::vector<NodeId>{doc.root(), a, b, c}));
}

// --- The paper's Figure 2/3 examples on the Figure 1 document. ---

class PaperExamplesTest : public ::testing::Test {
 protected:
  PaperExamplesTest()
      : doc_(workload::BuildPaperFigure1Document(&alphabet_)) {}

  Alphabet alphabet_;
  Document doc_;
};

TEST_F(PaperExamplesTest, R1SelectsFourCrossCandidatePairs) {
  ParsedPattern r1 = workload::PaperR1(&alphabet_);
  auto result = EvaluateSelected(r1.pattern, doc_);
  EXPECT_EQ(result.size(), 4u);
  // Every pair spans two different candidates.
  for (const auto& tuple : result) {
    NodeId cand1 = doc_.parent(tuple[0]);
    NodeId cand2 = doc_.parent(tuple[1]);
    EXPECT_NE(cand1, cand2);
    EXPECT_TRUE(doc_.DocumentOrderLess(tuple[0], tuple[1]));
  }
}

TEST_F(PaperExamplesTest, R2SelectsTwoSameCandidatePairs) {
  ParsedPattern r2 = workload::PaperR2(&alphabet_);
  auto result = EvaluateSelected(r2.pattern, doc_);
  EXPECT_EQ(result.size(), 2u);
  for (const auto& tuple : result) {
    EXPECT_EQ(doc_.parent(tuple[0]), doc_.parent(tuple[1]));
    EXPECT_NE(tuple[0], tuple[1]);
  }
}

TEST_F(PaperExamplesTest, R3SelectsLevelsOfCandidatesWithExams) {
  ParsedPattern r3 = workload::PaperR3(&alphabet_);
  auto result = EvaluateSelected(r3.pattern, doc_);
  ASSERT_EQ(result.size(), 2u);
  for (const auto& tuple : result) {
    EXPECT_EQ(doc_.label_name(tuple[0]), "level");
  }
}

TEST_F(PaperExamplesTest, R4IsEmptyBecauseOrderIsViolated) {
  ParsedPattern r4 = workload::PaperR4(&alphabet_);
  EXPECT_TRUE(EvaluateSelected(r4.pattern, doc_).empty());
}

TEST_F(PaperExamplesTest, UpdateClassUSelectsOnlyCandidate001Level) {
  ParsedPattern u = workload::PaperUpdateU(&alphabet_);
  auto result = EvaluateSelected(u.pattern, doc_);
  ASSERT_EQ(result.size(), 1u);
  NodeId level = result[0][0];
  EXPECT_EQ(doc_.label_name(level), "level");
  // It is candidate 001's level (the candidate with toBePassed).
  NodeId candidate = doc_.parent(level);
  NodeId idn = doc_.first_child(candidate);
  EXPECT_EQ(doc_.value(idn), "001");
}

TEST_F(PaperExamplesTest, MatchTablesAgreeWithEnumerationOnTraceExistence) {
  for (auto maker : {workload::PaperR1, workload::PaperR2, workload::PaperR3,
                     workload::PaperR4, workload::PaperUpdateU}) {
    ParsedPattern p = maker(&alphabet_);
    MatchTables tables = MatchTables::Build(p.pattern, doc_);
    MappingEnumerator enumerator(tables);
    EXPECT_EQ(tables.HasTrace(), enumerator.Count() > 0);
  }
}

}  // namespace
}  // namespace rtp::pattern
