// Tests for rtp::guard: budget axes, sticky trips, cancellation, scoped
// installation, parser depth caps, per-item degradation of the batch
// APIs, per-cell degradation of the independence matrix on the PSPACE
// hardness gadget, and (in -DRTP_FAILPOINTS=ON builds) fault injection.

#include "guard/guard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "fd/fd_checker.h"
#include "fd/functional_dependency.h"
#include "guard/failpoints.h"
#include "independence/criterion.h"
#include "independence/hardness.h"
#include "independence/matrix.h"
#include "obs/metrics.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "regex/regex.h"
#include "xml/document.h"
#include "xml/xml_io.h"

namespace rtp {
namespace {

uint64_t CounterValue(const std::string& name) {
  const obs::Counter* counter = obs::Registry().FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

TEST(GuardTest, UnlimitedBudgetNeverTrips) {
  guard::ExecutionBudget budget;
  EXPECT_FALSE(budget.Limited());
  guard::GuardContext ctx(budget);
  for (int i = 0; i < 10'000; ++i) ctx.Poll();
  ctx.AddStates(1'000'000);
  ctx.AddMemory(int64_t{1} << 40);
  EXPECT_TRUE(ctx.ok());
  EXPECT_TRUE(ctx.status().ok());
}

TEST(GuardTest, StepQuotaTrips) {
  guard::ExecutionBudget budget;
  budget.max_steps = 10;
  guard::GuardContext ctx(budget);
  for (int i = 0; i < 10; ++i) ctx.Poll();
  EXPECT_TRUE(ctx.ok());  // exactly at the quota is still fine
  ctx.Poll();
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.steps(), 11);
}

TEST(GuardTest, StateQuotaTrips) {
  guard::ExecutionBudget budget;
  budget.max_automaton_states = 100;
  guard::GuardContext ctx(budget);
  ctx.AddStates(100);
  EXPECT_TRUE(ctx.ok());
  ctx.AddStates(1);
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(ctx.status().message().find("state quota"), std::string::npos);
}

TEST(GuardTest, MemoryQuotaTrips) {
  guard::ExecutionBudget budget;
  budget.max_memory_bytes = 1 << 20;
  guard::GuardContext ctx(budget);
  ctx.AddMemory(1 << 20);
  EXPECT_TRUE(ctx.ok());
  ctx.AddMemory(1);
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(ctx.status().message().find("memory budget"), std::string::npos);
}

TEST(GuardTest, DeadlineTrips) {
  guard::ExecutionBudget budget;
  budget.deadline_ms = 5;
  guard::GuardContext ctx(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The deadline is checked every 256th poll; a few hundred polls are
  // guaranteed to cross the check interval.
  for (int i = 0; i < 1024 && ctx.ok(); ++i) ctx.Poll();
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GuardTest, CancelTokenTrips) {
  guard::CancelToken cancel;
  guard::GuardContext ctx(guard::ExecutionBudget{}, &cancel);
  ctx.Poll();
  EXPECT_TRUE(ctx.ok());
  cancel.Cancel();
  ctx.Poll();
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kCancelled);
}

TEST(GuardTest, FirstTripWinsAndIsSticky) {
  guard::ExecutionBudget budget;
  budget.max_steps = 1;
  guard::GuardContext ctx(budget);
  ctx.Poll();
  ctx.Poll();  // trips on the step quota
  ASSERT_FALSE(ctx.ok());
  Status first = ctx.status();
  ctx.ForceTrip(StatusCode::kCancelled, "late cancellation");
  EXPECT_EQ(ctx.status().code(), first.code());
  EXPECT_EQ(ctx.status().message(), first.message());
}

TEST(GuardTest, ScopedGuardInstallsAndRestores) {
  EXPECT_FALSE(guard::Active());
  EXPECT_TRUE(guard::CurrentStatus().ok());
  guard::ExecutionBudget budget;
  budget.max_steps = 2;
  {
    guard::GuardContext ctx(budget);
    guard::ScopedGuard scope(&ctx);
    EXPECT_TRUE(guard::Active());
    EXPECT_EQ(guard::Current(), &ctx);
    EXPECT_TRUE(guard::KeepGoing());
    EXPECT_TRUE(guard::KeepGoing());
    EXPECT_FALSE(guard::KeepGoing());  // third poll exceeds max_steps=2
    EXPECT_FALSE(guard::Ok());
    EXPECT_EQ(guard::CurrentStatus().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_FALSE(guard::Active());
  EXPECT_TRUE(guard::KeepGoing());
  EXPECT_TRUE(guard::CurrentStatus().ok());
}

TEST(GuardTest, OptionalGuardScopeEngagesOnlyWhenLimited) {
  {
    guard::OptionalGuardScope scope(guard::ExecutionBudget{}, nullptr);
    EXPECT_FALSE(scope.engaged());
    EXPECT_FALSE(guard::Active());
  }
  guard::ExecutionBudget budget;
  budget.deadline_ms = 60'000;
  {
    guard::OptionalGuardScope scope(budget, nullptr);
    EXPECT_TRUE(scope.engaged());
    EXPECT_TRUE(guard::Active());
  }
  EXPECT_FALSE(guard::Active());
  guard::CancelToken cancel;
  {
    guard::OptionalGuardScope scope(guard::ExecutionBudget{}, &cancel);
    EXPECT_TRUE(scope.engaged());  // a cancel token alone engages the scope
  }
  EXPECT_FALSE(guard::Active());
}

TEST(GuardTest, TripsAreCountedInObsMetrics) {
#ifdef RTP_OBS_DISABLED
  GTEST_SKIP() << "RTP_OBS_DISABLED: trip counters compiled out";
#endif
  uint64_t resource_before = CounterValue("guard.trips.resource");
  uint64_t cancelled_before = CounterValue("guard.trips.cancelled");
  uint64_t contexts_before = CounterValue("guard.contexts");
  {
    guard::ExecutionBudget budget;
    budget.max_steps = 1;
    guard::GuardContext ctx(budget);
    ctx.Poll();
    ctx.Poll();
    ASSERT_FALSE(ctx.ok());
  }
  {
    guard::CancelToken cancel;
    cancel.Cancel();
    guard::GuardContext ctx(guard::ExecutionBudget{}, &cancel);
    ctx.Poll();
    ASSERT_FALSE(ctx.ok());
  }
  EXPECT_EQ(CounterValue("guard.trips.resource"), resource_before + 1);
  EXPECT_EQ(CounterValue("guard.trips.cancelled"), cancelled_before + 1);
  EXPECT_EQ(CounterValue("guard.contexts"), contexts_before + 2);
}

// ---------------------------------------------------------------------------
// Parser nesting-depth caps.

TEST(GuardParserTest, RegexDepthCapReturnsResourceExhausted) {
  Alphabet alphabet;
  std::string deep = std::string(250, '(') + "a" + std::string(250, ')');
  auto re = regex::Regex::Parse(&alphabet, deep);
  ASSERT_FALSE(re.ok());
  EXPECT_EQ(re.status().code(), StatusCode::kResourceExhausted);

  std::string fine = std::string(50, '(') + "a" + std::string(50, ')');
  EXPECT_TRUE(regex::Regex::Parse(&alphabet, fine).ok());
}

TEST(GuardParserTest, PatternDepthCapReturnsResourceExhausted) {
  Alphabet alphabet;
  std::string deep = "root";
  for (int i = 0; i < 300; ++i) deep += "{a";
  deep += ";";
  deep += std::string(300, '}');
  auto parsed = pattern::ParsePattern(&alphabet, deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);

  std::string fine = "root";
  for (int i = 0; i < 50; ++i) fine += "{a";
  fine += ";";
  fine += std::string(50, '}');
  auto ok = pattern::ParsePattern(&alphabet, fine);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(GuardParserTest, XmlDepthCapReturnsResourceExhausted) {
  Alphabet alphabet;
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "<a>";
  for (int i = 0; i < 300; ++i) deep += "</a>";
  auto doc = xml::ParseXml(&alphabet, deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);

  std::string fine;
  for (int i = 0; i < 50; ++i) fine += "<a>";
  for (int i = 0; i < 50; ++i) fine += "</a>";
  EXPECT_TRUE(xml::ParseXml(&alphabet, fine).ok());
}

// ---------------------------------------------------------------------------
// Per-item degradation of the batch APIs.

// One small and one large document with identical shape: items carrying a
// key and a value leaf. The step quota is sized so that the small document
// completes and the large one trips (MatchTables::Build polls at least
// once per document node).
xml::Document MakeItemDoc(Alphabet* alphabet, int items) {
  xml::Document doc(alphabet);
  for (int i = 0; i < items; ++i) {
    xml::NodeId item = doc.AddElement(doc.root(), "item");
    xml::NodeId k = doc.AddElement(item, "k");
    doc.AddText(k, "key" + std::to_string(i % 3));
    xml::NodeId v = doc.AddElement(item, "v");
    doc.AddText(v, "val");
  }
  return doc;
}

constexpr int kSmallItems = 4;
constexpr int kLargeItems = 10'000;
constexpr int64_t kBatchStepQuota = 3'000;

TEST(GuardBatchTest, EvaluateSelectedBatchDegradesPerDocument) {
  Alphabet alphabet;
  auto parsed = pattern::ParsePattern(&alphabet, "root { s = item; } select s;");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  xml::Document small = MakeItemDoc(&alphabet, kSmallItems);
  xml::Document large = MakeItemDoc(&alphabet, kLargeItems);
  std::vector<const xml::Document*> docs = {&small, &large};

  pattern::EvalBatchOptions options;
  options.budget.max_steps = kBatchStepQuota;
  std::vector<Status> statuses;
  auto results = pattern::EvaluateSelectedBatch(parsed->pattern, docs,
                                                options, &statuses);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(statuses.size(), 2u);

  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  EXPECT_EQ(results[0].size(), static_cast<size_t>(kSmallItems));

  EXPECT_EQ(statuses[1].code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(results[1].empty());  // partial tuples are never surfaced

  // The same batch without a budget completes both documents.
  auto unlimited = pattern::EvaluateSelectedBatch(parsed->pattern, docs, 1);
  EXPECT_EQ(unlimited[0], results[0]);
  EXPECT_EQ(unlimited[1].size(), static_cast<size_t>(kLargeItems));
}

pattern::ParsedPattern MustParse(Alphabet* alphabet, const std::string& dsl) {
  auto parsed = pattern::ParsePattern(alphabet, dsl);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

fd::FunctionalDependency MakeKeyValueFd(Alphabet* alphabet) {
  auto fd = fd::FunctionalDependency::FromParsed(MustParse(alphabet, R"(
    root {
      c = item {
        k = k;
        v = v;
      }
    }
    select k, v;
    context root;
  )"));
  RTP_CHECK_MSG(fd.ok(), fd.status().ToString().c_str());
  return std::move(fd).value();
}

TEST(GuardBatchTest, CheckFdBatchDegradesPerDocument) {
  Alphabet alphabet;
  fd::FunctionalDependency fd = MakeKeyValueFd(&alphabet);
  xml::Document small = MakeItemDoc(&alphabet, kSmallItems);
  xml::Document large = MakeItemDoc(&alphabet, kLargeItems);
  std::vector<const xml::Document*> docs = {&small, &large};

  fd::BatchCheckOptions options;
  options.check.budget.max_steps = kBatchStepQuota;
  std::vector<fd::CheckResult> results = fd::CheckFdBatch(fd, docs, options);
  ASSERT_EQ(results.size(), 2u);

  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  fd::CheckResult small_ref = fd::CheckFd(fd, small);
  EXPECT_EQ(results[0].satisfied, small_ref.satisfied);
  EXPECT_EQ(results[0].num_mappings, small_ref.num_mappings);

  EXPECT_EQ(results[1].status.code(), StatusCode::kResourceExhausted);
}

TEST(GuardBatchTest, CancelledTokenDrainsBatchWithoutWork) {
  Alphabet alphabet;
  fd::FunctionalDependency fd = MakeKeyValueFd(&alphabet);
  std::vector<xml::Document> docs_storage;
  std::vector<const xml::Document*> docs;
  for (int i = 0; i < 6; ++i) {
    docs_storage.push_back(MakeItemDoc(&alphabet, kSmallItems));
  }
  for (const xml::Document& doc : docs_storage) docs.push_back(&doc);

  guard::CancelToken cancel;
  cancel.Cancel();  // cancelled before the batch even starts
  fd::BatchCheckOptions options;
  options.check.cancel = &cancel;
  options.jobs = 2;
  std::vector<fd::CheckResult> results = fd::CheckFdBatch(fd, docs, options);
  ASSERT_EQ(results.size(), docs.size());
  for (const fd::CheckResult& result : results) {
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  }
}

TEST(GuardBatchTest, CancelledTokenYieldsCancelledCriterion) {
  Alphabet alphabet;
  auto reduction =
      independence::BuildInclusionReduction(&alphabet, "a", "a|b");
  ASSERT_TRUE(reduction.ok());
  guard::CancelToken cancel;
  cancel.Cancel();
  independence::CriterionOptions options;
  options.cancel = &cancel;
  auto result = independence::CheckIndependence(
      reduction->fd, reduction->update_class, nullptr, &alphabet, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Per-cell degradation on the PSPACE hardness gadget.

TEST(GuardGadgetTest, MatrixDegradesPathologicalCellsPerCell) {
  Alphabet alphabet;
  // Cheap pair: tiny regexes on both sides.
  auto cheap = independence::BuildInclusionReduction(&alphabet, "a", "a|b");
  ASSERT_TRUE(cheap.ok()) << cheap.status().ToString();
  // Pathological pair: the update-class side carries (a|b)*a(a|b)^n, whose
  // DFA needs ~2^n states — the determinization blowup behind the PSPACE
  // hardness reduction. n=5 keeps the unbudgeted calibration run feasible
  // while consuming an order of magnitude more states than the cheap pair.
  std::string eta = "(a|b)*/a";
  for (int i = 0; i < 5; ++i) eta += "/(a|b)";
  auto patho =
      independence::BuildInclusionReduction(&alphabet, eta, "(a|b)*");
  ASSERT_TRUE(patho.ok()) << patho.status().ToString();

  // Calibrate the state budget from measured consumption: state counting
  // is deterministic (no wall clock), so a quota strictly between the
  // cheap pair's total and the pathological pair's total separates the
  // two cells exactly.
  auto measure_states = [&](const update::UpdateClass& cls) {
    guard::ExecutionBudget huge;
    huge.max_automaton_states = int64_t{1} << 40;
    guard::GuardContext ctx(huge);
    guard::ScopedGuard scope(&ctx);
    auto result = independence::CheckIndependence(cheap->fd, cls, nullptr,
                                                  &alphabet);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return ctx.states();
  };
  int64_t cheap_states = measure_states(cheap->update_class);
  int64_t patho_states = measure_states(patho->update_class);
  ASSERT_LT(cheap_states, patho_states);

  // Unbudgeted serial reference for the cheap cell.
  auto reference = independence::CheckIndependence(
      cheap->fd, cheap->update_class, nullptr, &alphabet);
  ASSERT_TRUE(reference.ok());

  uint64_t trips_before = CounterValue("guard.trips.resource");

  independence::MatrixOptions options;
  options.budget.max_automaton_states =
      cheap_states + (patho_states - cheap_states) / 2;
  auto matrix = independence::ComputeIndependenceMatrix(
      {&cheap->fd}, {&cheap->update_class, &patho->update_class}, nullptr,
      &alphabet, options);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();

  // The cheap cell completes and agrees with the serial reference.
  const independence::MatrixEntry& ok_cell = matrix->at(0, 0);
  EXPECT_TRUE(ok_cell.status.ok()) << ok_cell.status.ToString();
  EXPECT_EQ(ok_cell.independent, reference->independent);

  // The pathological cell degrades alone: resource status, conservative
  // not-independent verdict, and the whole matrix still succeeds.
  const independence::MatrixEntry& tripped_cell = matrix->at(0, 1);
  EXPECT_EQ(tripped_cell.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(tripped_cell.independent);

  // Every trip is counted in the guard metrics (unless compiled out).
#ifndef RTP_OBS_DISABLED
  EXPECT_GE(CounterValue("guard.trips.resource"), trips_before + 1);
#else
  (void)trips_before;
#endif

  // The rendering distinguishes tripped cells from negative verdicts.
  std::string rendered = matrix->ToString({"fd"}, {"cheap", "patho"});
  EXPECT_NE(rendered.find("resource"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injection (compiled in by the failpoints CI leg).

class GuardFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!guard::FailpointsCompiledIn()) {
      GTEST_SKIP() << "build without -DRTP_FAILPOINTS=ON";
    }
    guard::DisarmAllFailpoints();
  }
  void TearDown() override { guard::DisarmAllFailpoints(); }
};

TEST_F(GuardFailpointTest, DeterminizeFailpointTripsTheInstalledGuard) {
  guard::ArmFailpoint("regex.determinize", guard::FailAction::kStates);
  guard::ExecutionBudget budget;
  budget.max_steps = int64_t{1} << 40;  // engaged but far from tripping
  guard::GuardContext ctx(budget);
  guard::ScopedGuard scope(&ctx);
  Alphabet alphabet;
  (void)regex::Regex::Parse(&alphabet, "a/b|c*");
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(ctx.status().message().find("regex.determinize"),
            std::string::npos);
  EXPECT_GE(guard::FailpointHits("regex.determinize"), 1);
}

TEST_F(GuardFailpointTest, FdCheckFailpointSurfacesInResultStatus) {
  Alphabet alphabet;
  fd::FunctionalDependency fd = MakeKeyValueFd(&alphabet);
  xml::Document doc = MakeItemDoc(&alphabet, kSmallItems);

  guard::ArmFailpoint("fd.check", guard::FailAction::kDeadline);
  fd::CheckOptions options;
  options.budget.max_steps = int64_t{1} << 40;
  fd::CheckResult result = fd::CheckFd(fd, doc, options);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);

  // Disarmed after firing: the next check is clean.
  fd::CheckResult clean = fd::CheckFd(fd, doc, options);
  EXPECT_TRUE(clean.status.ok()) << clean.status.ToString();
}

TEST_F(GuardFailpointTest, AfterHitsDelaysFiring) {
  Alphabet alphabet;
  fd::FunctionalDependency fd = MakeKeyValueFd(&alphabet);
  xml::Document doc = MakeItemDoc(&alphabet, kSmallItems);

  guard::ArmFailpoint("fd.check", guard::FailAction::kCancel,
                      /*after_hits=*/1);
  fd::CheckOptions options;
  options.budget.max_steps = int64_t{1} << 40;
  fd::CheckResult first = fd::CheckFd(fd, doc, options);
  EXPECT_TRUE(first.status.ok()) << first.status.ToString();
  fd::CheckResult second = fd::CheckFd(fd, doc, options);
  EXPECT_EQ(second.status.code(), StatusCode::kCancelled);
}

TEST_F(GuardFailpointTest, FiringWithoutGuardIsHarmless) {
  guard::ArmFailpoint("regex.determinize", guard::FailAction::kStates);
  Alphabet alphabet;
  auto re = regex::Regex::Parse(&alphabet, "a|b");
  EXPECT_TRUE(re.ok()) << re.status().ToString();
  EXPECT_GE(guard::FailpointHits("regex.determinize"), 1);
}

}  // namespace
}  // namespace rtp
