// Differential battery for the parallel batch paths: every parallel API
// must be bit-identical to its serial counterpart for jobs in {1, 2, 8},
// and the serial counterpart is itself cross-checked against the reference
// oracles (ReferenceEnumerateMappings / ReferenceCheckFd) on randomized
// workloads with fixed seeds. Inputs stay tiny: the oracles are
// exponential, and the whole file runs under TSan in CI (`exec` label).

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/automaton_cache.h"
#include "exec/thread_pool.h"
#include "fd/fd_checker.h"
#include "fd/fd_index.h"
#include "fd/functional_dependency.h"
#include "fd/reference_checker.h"
#include "independence/matrix.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "pattern/reference_evaluator.h"
#include "update/update_class.h"
#include "workload/exam_generator.h"
#include "xml/doc_index.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"
#include "workload/random_pattern.h"

namespace rtp {
namespace {

constexpr int kJobs[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// Independence matrix: paper FDs x paper update class, all jobs values.

std::string MatrixFingerprint(const independence::IndependenceMatrix& m) {
  std::string out;
  for (const auto& e : m.entries) {
    out += std::to_string(e.fd_index) + "," + std::to_string(e.class_index) +
           "," + (e.independent ? "1" : "0") + "," +
           std::to_string(e.product_size) + ";";
  }
  return out;
}

TEST(ParallelMatrixTest, PaperWorkloadIdenticalAcrossJobs) {
  Alphabet alphabet;
  std::vector<fd::FunctionalDependency> fds;
  for (auto* make : {workload::PaperFd1, workload::PaperFd2,
                     workload::PaperFd3, workload::PaperFd4,
                     workload::PaperFd5}) {
    auto fd = fd::FunctionalDependency::FromParsed(make(&alphabet));
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    fds.push_back(std::move(fd).value());
  }
  auto cls = update::UpdateClass::FromParsed(workload::PaperUpdateU(&alphabet));
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  schema::Schema schema = workload::BuildExamSchema(&alphabet);

  std::vector<const fd::FunctionalDependency*> fd_ptrs;
  for (const auto& fd : fds) fd_ptrs.push_back(&fd);
  std::vector<const update::UpdateClass*> class_ptrs = {&cls.value()};

  std::string serial_fingerprint;
  for (int jobs : kJobs) {
    // A fresh cache per jobs value: hits/misses differ, results must not.
    exec::AutomatonCache cache;
    independence::MatrixOptions options;
    options.jobs = jobs;
    options.cache = &cache;
    auto matrix = independence::ComputeIndependenceMatrix(
        fd_ptrs, class_ptrs, &schema, &alphabet, options);
    ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
    EXPECT_EQ(matrix->num_fds, fds.size());
    EXPECT_EQ(matrix->num_classes, 1u);
    std::string fingerprint = MatrixFingerprint(*matrix);
    if (jobs == 1) {
      serial_fingerprint = fingerprint;
      // fd5 x U with the exam schema is the paper's independent pair.
      EXPECT_TRUE(matrix->at(4, 0).independent);
    } else {
      EXPECT_EQ(fingerprint, serial_fingerprint) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelMatrixTest, CachedAndUncachedAgree) {
  Alphabet alphabet;
  auto fd = fd::FunctionalDependency::FromParsed(workload::PaperFd5(&alphabet));
  ASSERT_TRUE(fd.ok());
  auto cls = update::UpdateClass::FromParsed(workload::PaperUpdateU(&alphabet));
  ASSERT_TRUE(cls.ok());
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  std::vector<const fd::FunctionalDependency*> fd_ptrs = {&fd.value()};
  std::vector<const update::UpdateClass*> class_ptrs = {&cls.value()};

  auto uncached = independence::ComputeIndependenceMatrix(
      fd_ptrs, class_ptrs, &schema, &alphabet, {});
  ASSERT_TRUE(uncached.ok());

  exec::AutomatonCache cache;
  independence::MatrixOptions options;
  options.jobs = 2;
  options.cache = &cache;
  auto cached = independence::ComputeIndependenceMatrix(
      fd_ptrs, class_ptrs, &schema, &alphabet, options);
  ASSERT_TRUE(cached.ok());

  EXPECT_EQ(MatrixFingerprint(*uncached), MatrixFingerprint(*cached));
  EXPECT_GT(cache.size(), 0u);
}

TEST(ParallelMatrixTest, StructuralErrorIsDeterministicAcrossJobs) {
  Alphabet alphabet;
  auto fd = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  ASSERT_TRUE(fd.ok());
  // The selected node has a template child, so the criterion's leaf
  // restriction rejects the pair with an InvalidArgument error.
  auto bad_parsed = pattern::ParsePattern(&alphabet,
                                          "root {\n"
                                          "  s = session {\n"
                                          "    candidate;\n"
                                          "  }\n"
                                          "}\n"
                                          "select s;\n");
  ASSERT_TRUE(bad_parsed.ok()) << bad_parsed.status().ToString();
  auto bad_cls = update::UpdateClass::FromParsed(std::move(bad_parsed).value());
  ASSERT_TRUE(bad_cls.ok());
  std::vector<const fd::FunctionalDependency*> fd_ptrs = {&fd.value()};
  std::vector<const update::UpdateClass*> class_ptrs = {&bad_cls.value()};

  std::string serial_error;
  for (int jobs : kJobs) {
    independence::MatrixOptions options;
    options.jobs = jobs;
    auto matrix = independence::ComputeIndependenceMatrix(
        fd_ptrs, class_ptrs, /*schema=*/nullptr, &alphabet, options);
    ASSERT_FALSE(matrix.ok());
    if (jobs == 1) {
      serial_error = matrix.status().ToString();
    } else {
      EXPECT_EQ(matrix.status().ToString(), serial_error) << "jobs=" << jobs;
    }
  }
}

// ---------------------------------------------------------------------------
// Batch FD checking: parallel == serial == reference oracle.

std::string CheckFingerprint(const fd::CheckResult& r) {
  std::string out = r.satisfied ? "sat" : "vio";
  out += ":" + std::to_string(r.num_mappings) + ":" +
         std::to_string(r.num_groups);
  if (r.violation.has_value()) {
    for (xml::NodeId n : r.violation->first.image) {
      out += "," + std::to_string(n);
    }
    out += "|";
    for (xml::NodeId n : r.violation->second.image) {
      out += "," + std::to_string(n);
    }
  }
  return out;
}

TEST(ParallelFdCheckTest, ExamWorkloadIdenticalAcrossJobsAndMatchesSerial) {
  Alphabet alphabet;
  auto fd = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  ASSERT_TRUE(fd.ok());

  // A mix of satisfying (consistent ranks) and violating documents.
  std::vector<xml::Document> docs;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::ExamWorkloadParams params;
    params.num_candidates = 6;
    params.exams_per_candidate = 3;
    params.num_disciplines = 2;
    params.num_marks = 3;
    params.consistent_ranks = (seed % 2 == 0);
    params.seed = seed;
    docs.push_back(workload::GenerateExamDocument(&alphabet, params));
  }
  std::vector<const xml::Document*> ptrs;
  for (const auto& doc : docs) ptrs.push_back(&doc);

  std::vector<std::string> serial;
  for (const auto* doc : ptrs) {
    serial.push_back(CheckFingerprint(fd::CheckFd(fd.value(), *doc)));
  }
  for (int jobs : kJobs) {
    fd::BatchCheckOptions options;
    options.jobs = jobs;
    std::vector<fd::CheckResult> batch =
        fd::CheckFdBatch(fd.value(), ptrs, options);
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(CheckFingerprint(batch[i]), serial[i])
          << "jobs=" << jobs << " doc=" << i;
    }
  }
}

TEST(ParallelFdCheckTest, RandomTreesMatchReferenceOracle) {
  Alphabet alphabet;
  // A small FD over the random-tree label set: within the scope of an l0
  // node, the value of an l1 child determines the value of an l2 child.
  workload::RandomPatternParams pattern_params;
  pattern_params.num_labels = 3;

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    pattern_params.seed = seed * 101;
    pattern_params.num_selected = 2;
    pattern::TreePattern pattern =
        workload::GenerateRandomPattern(&alphabet, pattern_params);
    auto fd = fd::FunctionalDependency::Create(std::move(pattern),
                                               pattern::TreePattern::kRoot);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();

    std::vector<xml::Document> docs;
    for (uint64_t tree_seed = 1; tree_seed <= 4; ++tree_seed) {
      workload::RandomTreeParams tree_params;
      tree_params.seed = seed * 1000 + tree_seed;
      tree_params.max_nodes = 10;
      docs.push_back(workload::GenerateRandomTree(&alphabet, tree_params));
    }
    std::vector<const xml::Document*> ptrs;
    for (const auto& doc : docs) ptrs.push_back(&doc);

    for (int jobs : kJobs) {
      fd::BatchCheckOptions options;
      options.jobs = jobs;
      std::vector<fd::CheckResult> batch =
          fd::CheckFdBatch(fd.value(), ptrs, options);
      ASSERT_EQ(batch.size(), docs.size());
      for (size_t i = 0; i < docs.size(); ++i) {
        bool expected = fd::ReferenceCheckFd(fd.value(), docs[i]);
        EXPECT_EQ(batch[i].satisfied, expected)
            << "seed=" << seed << " doc=" << i << " jobs=" << jobs;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batch pattern evaluation: parallel == serial == reference oracle.

std::set<std::vector<xml::NodeId>> ReferenceSelectedTuples(
    const pattern::TreePattern& pattern, const xml::Document& doc) {
  std::set<std::vector<xml::NodeId>> tuples;
  for (const pattern::Mapping& m :
       pattern::ReferenceEnumerateMappings(pattern, doc)) {
    std::vector<xml::NodeId> tuple;
    for (const pattern::SelectedNode& s : pattern.selected()) {
      tuple.push_back(m.image[s.node]);
    }
    tuples.insert(tuple);
  }
  return tuples;
}

TEST(ParallelEvalTest, RandomWorkloadMatchesSerialAndReference) {
  Alphabet alphabet;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomPatternParams pattern_params;
    pattern_params.seed = seed * 7;
    pattern::TreePattern pattern =
        workload::GenerateRandomPattern(&alphabet, pattern_params);

    std::vector<xml::Document> docs;
    for (uint64_t tree_seed = 1; tree_seed <= 5; ++tree_seed) {
      workload::RandomTreeParams tree_params;
      tree_params.seed = seed * 100 + tree_seed;
      docs.push_back(workload::GenerateRandomTree(&alphabet, tree_params));
    }
    std::vector<const xml::Document*> ptrs;
    for (const auto& doc : docs) ptrs.push_back(&doc);

    std::vector<std::vector<std::vector<xml::NodeId>>> serial;
    for (const auto* doc : ptrs) {
      serial.push_back(pattern::EvaluateSelected(pattern, *doc));
    }
    // Serial evaluator vs the Definition 2 oracle (as tuple sets — the
    // oracle's enumeration order differs).
    for (size_t i = 0; i < docs.size(); ++i) {
      std::set<std::vector<xml::NodeId>> got(serial[i].begin(),
                                             serial[i].end());
      EXPECT_EQ(got, ReferenceSelectedTuples(pattern, docs[i]))
          << "seed=" << seed << " doc=" << i;
    }
    // Batch vs serial: exact, order included, for every jobs value.
    for (int jobs : kJobs) {
      auto batch = pattern::EvaluateSelectedBatch(pattern, ptrs, jobs);
      EXPECT_EQ(batch, serial) << "seed=" << seed << " jobs=" << jobs;
    }
  }
}

// Dense kernel leg: the flat-table evaluator (DenseDfa + DocIndex; the
// only evaluator since PR 3) must agree with the Definition 2 oracle, and
// the per-document, shared-snapshot, and batch entry points must all be
// bit-identical to each other at every jobs value.
TEST(DenseKernelDifferentialTest, DocAndIndexAndBatchMatchReference) {
  Alphabet alphabet;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomPatternParams pattern_params;
    pattern_params.seed = seed * 13;
    pattern_params.num_labels = 4;
    pattern::TreePattern pattern =
        workload::GenerateRandomPattern(&alphabet, pattern_params);

    std::vector<xml::Document> docs;
    for (uint64_t tree_seed = 1; tree_seed <= 4; ++tree_seed) {
      workload::RandomTreeParams tree_params;
      tree_params.seed = seed * 500 + tree_seed;
      tree_params.max_nodes = 12;
      docs.push_back(workload::GenerateRandomTree(&alphabet, tree_params));
    }
    std::vector<const xml::Document*> ptrs;
    for (const auto& doc : docs) ptrs.push_back(&doc);

    std::vector<std::vector<std::vector<xml::NodeId>>> serial;
    for (size_t i = 0; i < docs.size(); ++i) {
      serial.push_back(pattern::EvaluateSelected(pattern, docs[i]));
      // Shared prebuilt snapshot: identical, order included.
      const xml::DocIndex index = xml::DocIndex::Build(docs[i]);
      EXPECT_EQ(pattern::EvaluateSelected(pattern, index), serial[i])
          << "seed=" << seed << " doc=" << i;
      // Oracle comparison as tuple sets.
      std::set<std::vector<xml::NodeId>> got(serial[i].begin(),
                                             serial[i].end());
      EXPECT_EQ(got, ReferenceSelectedTuples(pattern, docs[i]))
          << "seed=" << seed << " doc=" << i;
    }
    for (int jobs : kJobs) {
      auto batch = pattern::EvaluateSelectedBatch(pattern, ptrs, jobs);
      EXPECT_EQ(batch, serial) << "seed=" << seed << " jobs=" << jobs;
    }
  }
}

// ---------------------------------------------------------------------------
// FdIndex::BuildMany: same groups as one-at-a-time construction.

TEST(ParallelFdIndexTest, BuildManyMatchesSingleBuilds) {
  Alphabet alphabet;
  auto fd = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  ASSERT_TRUE(fd.ok());

  std::vector<xml::Document> docs;
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    workload::ExamWorkloadParams params;
    params.num_candidates = 5;
    params.exams_per_candidate = 2;
    params.seed = seed;
    docs.push_back(workload::GenerateExamDocument(&alphabet, params));
  }
  std::vector<const xml::Document*> ptrs;
  for (const auto& doc : docs) ptrs.push_back(&doc);

  for (int jobs : kJobs) {
    std::vector<fd::FdIndex> indexes =
        fd::FdIndex::BuildMany(fd.value(), ptrs, jobs);
    ASSERT_EQ(indexes.size(), docs.size());
    for (size_t i = 0; i < docs.size(); ++i) {
      fd::FdIndex single = fd::FdIndex::Build(fd.value(), docs[i]);
      EXPECT_EQ(indexes[i].satisfied(), single.satisfied())
          << "jobs=" << jobs << " doc=" << i;
      EXPECT_EQ(indexes[i].last_pass_mappings(), single.last_pass_mappings())
          << "jobs=" << jobs << " doc=" << i;
      EXPECT_EQ(indexes[i].supports_incremental(),
                single.supports_incremental())
          << "jobs=" << jobs << " doc=" << i;
    }
  }
}

}  // namespace
}  // namespace rtp
