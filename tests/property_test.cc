// Randomized cross-validation (parameterized over seeds):
//  - the match-table evaluator against the literal Definition 2 oracle,
//  - the pattern automaton against both,
//  - the hashed FD checker against the literal Definition 5 oracle,
//  - the criterion automaton against the direct L-membership test.

#include <gtest/gtest.h>

#include <set>

#include "automata/pattern_compiler.h"
#include "fd/fd_checker.h"
#include "fd/reference_checker.h"
#include "independence/criterion.h"
#include "pattern/evaluator.h"
#include "pattern/reference_evaluator.h"
#include "workload/random_pattern.h"

namespace rtp {
namespace {

using pattern::Mapping;
using pattern::TreePattern;
using xml::Document;

std::set<std::vector<xml::NodeId>> ImageSet(const std::vector<Mapping>& ms) {
  std::set<std::vector<xml::NodeId>> out;
  for (const Mapping& m : ms) out.insert(m.image);
  return out;
}

class EvaluatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorPropertyTest, EvaluatorMatchesDefinitionOracle) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams pattern_params;
  pattern_params.seed = seed;
  TreePattern pattern = workload::GenerateRandomPattern(&alphabet, pattern_params);

  for (uint64_t doc_seed = 1; doc_seed <= 3; ++doc_seed) {
    workload::RandomTreeParams tree_params;
    tree_params.seed = seed * 1000 + doc_seed;
    Document doc = workload::GenerateRandomTree(&alphabet, tree_params);

    // Oracle.
    std::vector<Mapping> expected =
        pattern::ReferenceEnumerateMappings(pattern, doc);
    std::set<std::vector<xml::NodeId>> expected_set = ImageSet(expected);

    // Match-table evaluator.
    pattern::MatchTables tables = pattern::MatchTables::Build(pattern, doc);
    pattern::MappingEnumerator enumerator(tables);
    std::vector<Mapping> actual;
    enumerator.ForEach([&](const Mapping& m) {
      actual.push_back(m);
      return true;
    });
    std::set<std::vector<xml::NodeId>> actual_set = ImageSet(actual);

    EXPECT_EQ(actual.size(), actual_set.size())
        << "duplicate mappings emitted (seed " << seed << "/" << doc_seed << ")";
    EXPECT_EQ(actual_set, expected_set)
        << "mapping sets disagree (seed " << seed << "/" << doc_seed << ")";

    // HasTrace and the compiled automaton agree with the oracle.
    EXPECT_EQ(tables.HasTrace(), !expected.empty());
    automata::HedgeAutomaton automaton =
        automata::CompilePattern(pattern, automata::MarkMode::kNone);
    EXPECT_EQ(automaton.Accepts(doc), !expected.empty())
        << "automaton disagrees (seed " << seed << "/" << doc_seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest,
                         ::testing::Range<uint64_t>(1, 61));

class FdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdPropertyTest, CheckerMatchesDefinitionOracle) {
  uint64_t seed = GetParam();
  Alphabet alphabet;
  workload::RandomPatternParams pattern_params;
  pattern_params.seed = seed;
  pattern_params.num_selected = 2;  // one condition + target
  TreePattern tree = workload::GenerateRandomPattern(&alphabet, pattern_params);
  if (tree.selected().size() < 2) return;  // template too small for an FD

  // Context: a random common ancestor of the selected nodes — the root
  // always works; half the time try the first selected node's parent.
  pattern::PatternNodeId context = TreePattern::kRoot;
  auto fd = fd::FunctionalDependency::Create(tree, context);
  ASSERT_TRUE(fd.ok());

  for (uint64_t doc_seed = 1; doc_seed <= 4; ++doc_seed) {
    workload::RandomTreeParams tree_params;
    tree_params.seed = seed * 7919 + doc_seed;
    tree_params.text_leaf_percent = 60;  // values matter for FDs
    Document doc = workload::GenerateRandomTree(&alphabet, tree_params);

    bool expected = fd::ReferenceCheckFd(*fd, doc);
    fd::CheckResult actual = fd::CheckFd(*fd, doc);
    EXPECT_EQ(actual.satisfied, expected)
        << "FD satisfaction disagrees (seed " << seed << "/" << doc_seed << ")";
    if (!actual.satisfied) {
      // The reported violation is genuine: the two mappings agree on
      // context and conditions but not on the target.
      ASSERT_TRUE(actual.violation.has_value());
      const auto& selected = fd->pattern().selected();
      const Mapping& m1 = actual.violation->first;
      const Mapping& m2 = actual.violation->second;
      EXPECT_EQ(m1.image[fd->context()], m2.image[fd->context()]);
      EXPECT_NE(m1.image, m2.image);
      (void)selected;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdPropertyTest,
                         ::testing::Range<uint64_t>(1, 61));

class CriterionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CriterionPropertyTest, EmptinessConsistentWithDirectMembership) {
  uint64_t seed = GetParam();
  Alphabet alphabet;

  workload::RandomPatternParams fd_params;
  fd_params.seed = seed;
  fd_params.num_selected = 2;
  TreePattern fd_tree = workload::GenerateRandomPattern(&alphabet, fd_params);
  if (fd_tree.selected().size() < 2) return;
  auto fd = fd::FunctionalDependency::Create(fd_tree, TreePattern::kRoot);
  ASSERT_TRUE(fd.ok());

  workload::RandomPatternParams u_params;
  u_params.seed = seed + 5000;
  u_params.max_template_nodes = 2;
  TreePattern u_tree = workload::GenerateRandomPattern(&alphabet, u_params);
  // Make sure a leaf is selected.
  pattern::PatternNodeId leaf = 0;
  for (pattern::PatternNodeId w = 1; w < u_tree.NumNodes(); ++w) {
    if (u_tree.IsLeaf(w)) leaf = w;
  }
  if (leaf == 0) return;
  u_tree.set_selected({pattern::SelectedNode{leaf, pattern::EqualityType::kValue}});
  auto update_class = update::UpdateClass::Create(std::move(u_tree));
  ASSERT_TRUE(update_class.ok());

  independence::CriterionOptions options;
  options.want_conflict_candidate = true;
  auto result = independence::CheckIndependence(*fd, *update_class, nullptr,
                                                &alphabet, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  if (result->independent) {
    // No sampled document may be in L.
    for (uint64_t doc_seed = 1; doc_seed <= 6; ++doc_seed) {
      workload::RandomTreeParams tree_params;
      tree_params.seed = seed * 104729 + doc_seed;
      Document doc = workload::GenerateRandomTree(&alphabet, tree_params);
      EXPECT_FALSE(
          independence::IsInCriterionLanguage(doc, *fd, *update_class, nullptr))
          << "seed " << seed << "/" << doc_seed
          << ": document in L although the criterion proved emptiness";
    }
  } else {
    // The synthesized candidate must genuinely be in L.
    ASSERT_TRUE(result->conflict_candidate.has_value()) << "seed " << seed;
    EXPECT_TRUE(independence::IsInCriterionLanguage(
        *result->conflict_candidate, *fd, *update_class, nullptr))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriterionPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace rtp
