// Runner battery for rtp::workload v2 (label `serve`; joins the TSan CI
// leg): in-process serve::Server on a temp AF_UNIX socket, driven by
// workload::RunWorkload with real client threads. The load-bearing test
// is determinism — two same-seed runs of a count-based spec must produce
// byte-identical per-node op counts, the exact property the `load` CI leg
// enforces against a real daemon by diffing two rtp_load --counts-out
// files.

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "serve/json.h"
#include "serve/server.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace rtp::workload {
namespace {

std::string TempSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/rtp_workload_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct TestServer {
  std::string socket_path;
  std::unique_ptr<serve::Server> server;
};

TestServer StartTestServer(serve::ServerOptions options = {}) {
  TestServer ts;
  ts.socket_path = TempSocketPath();
  options.socket_path = ts.socket_path;
  auto server_or = serve::Server::Start(options);
  EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
  if (server_or.ok()) ts.server = std::move(server_or).value();
  return ts;
}

// A small count-based spec exercising every op kind plus random_choice,
// so the determinism check covers both the choice draws and the
// generator draws. The exam document is inlined from examples/data via
// the parser's base_dir mechanism — the same way smoke.json sources it.
constexpr char kDeterministicSpec[] = R"({
  "name": "runner-test",
  "tenant": "runner-test",
  "generators": {
    "gen_pattern": {"kind": "fuzz_pattern", "num_labels": 4,
                    "max_template_nodes": 3, "max_regex_nodes": 4},
    "gen_doc": {"kind": "exam_doc", "candidates": 4}
  },
  "setup": ["load_exam"],
  "root": "main",
  "nodes": {
    "load_exam": {"op": "load", "doc": "exam", "file": "exam.xml"},
    "main": {"op": "loop", "count": 30, "body": "mix"},
    "mix": {
      "op": "random_choice",
      "children": ["eval_marks", "check_fd", "eval_fuzz", "reload", "stats"],
      "weights": [4, 2, 2, 1, 1]
    },
    "eval_marks": {
      "op": "eval",
      "doc": "exam",
      "text": "root { session/candidate { x = exam/mark; } } select x;"
    },
    "check_fd": {
      "op": "checkfd",
      "doc": "exam",
      "text": "root { c = session { candidate/exam { p1 = discipline; p2 = mark; q = rank; } } } select p1[V], p2[V], q[V]; context c;"
    },
    "eval_fuzz": {"op": "eval", "doc": "exam", "generator": "gen_pattern"},
    "reload": {"op": "load", "doc": "scratch", "generator": "gen_doc"},
    "stats": {"op": "stats"}
  }
})";

WorkloadSpec ParseOrDie(const char* text) {
  auto spec = ParseWorkloadSpec(text, RTP_EXAMPLES_DATA_DIR);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

// The reproducibility contract: same (spec, seed, threads) ⇒ identical
// per-node op counts, zero errors, nonzero ops.
TEST(WorkloadRunnerTest, SameSeedRunsAreCountIdentical) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  WorkloadSpec spec = ParseOrDie(kDeterministicSpec);

  RunnerOptions options;
  options.socket_path = ts.socket_path;
  options.threads = 4;
  options.seed = 42;

  auto run1 = RunWorkload(spec, options);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  auto run2 = RunWorkload(spec, options);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();

  EXPECT_GT(run1->ops, 0u);
  EXPECT_EQ(run1->errors, 0u) << run1->stats.ToText("runner-test", 4, 42,
                                                    run1->elapsed_s);
  EXPECT_FALSE(run1->truncated);
  EXPECT_EQ(run1->stats.ToCountsText(), run2->stats.ToCountsText());
  EXPECT_EQ(run1->ops, run2->ops);
  ts.server->Stop();
}

TEST(WorkloadRunnerTest, DifferentSeedsDiverge) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  WorkloadSpec spec = ParseOrDie(kDeterministicSpec);

  RunnerOptions options;
  options.socket_path = ts.socket_path;
  options.threads = 2;
  options.seed = 42;
  auto run1 = RunWorkload(spec, options);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  options.seed = 7;
  auto run2 = RunWorkload(spec, options);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();

  // With 2×30 weighted choices the chance of identical counts across all
  // five leaf nodes is negligible; a collision here means the seed is
  // being ignored.
  EXPECT_NE(run1->stats.ToCountsText(), run2->stats.ToCountsText());
  ts.server->Stop();
}

// Op-level failures are recorded and the walk continues — the harness
// must survive a misbehaving server, and rtp_load turns the error count
// into exit code 1.
TEST(WorkloadRunnerTest, OpErrorsAreCountedNotFatal) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  WorkloadSpec spec = ParseOrDie(R"({
    "name": "errors", "tenant": "errors", "root": "main",
    "nodes": {
      "main": {"op": "loop", "count": 5, "body": "bad_eval"},
      "bad_eval": {
        "op": "eval", "doc": "never_loaded",
        "text": "root { session { x = mark; } } select x;"
      }
    }
  })");

  RunnerOptions options;
  options.socket_path = ts.socket_path;
  options.threads = 2;
  auto run = RunWorkload(spec, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->ops, 10u);     // 2 threads × 5 iterations, all executed
  EXPECT_EQ(run->errors, 10u);  // ...and all failed (doc never loaded)
  auto it = run->stats.nodes().find("bad_eval");
  ASSERT_NE(it, run->stats.nodes().end());
  EXPECT_EQ(it->second.errors, 5u * 2);
  ts.server->Stop();
}

TEST(WorkloadRunnerTest, BenchJsonLinesParseAndCarryCounters) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  WorkloadSpec spec = ParseOrDie(kDeterministicSpec);

  RunnerOptions options;
  options.socket_path = ts.socket_path;
  options.threads = 2;
  auto run = RunWorkload(spec, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::string lines =
      run->stats.ToBenchJsonLines(spec.name, options.threads, run->elapsed_s);
  size_t start = 0;
  int parsed = 0;
  bool saw_total = false;
  while (start < lines.size()) {
    size_t end = lines.find('\n', start);
    if (end == std::string::npos) end = lines.size();
    std::string line = lines.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    auto value = serve::JsonValue::Parse(line);
    ASSERT_TRUE(value.ok()) << line;
    // The bench_compare.py contract: "bench" + "cpu_time" present.
    EXPECT_FALSE(value->FindString("bench").empty()) << line;
    ASSERT_NE(value->Find("cpu_time"), nullptr) << line;
    const serve::JsonValue* counters = value->Find("counters");
    ASSERT_NE(counters, nullptr) << line;
    EXPECT_NE(counters->Find("ops"), nullptr) << line;
    EXPECT_NE(counters->Find("p99_us"), nullptr) << line;
    if (value->FindString("bench") ==
        "rtp_load/runner-test/total/t2") {
      saw_total = true;
      EXPECT_NE(counters->Find("rps"), nullptr) << line;
      EXPECT_EQ(static_cast<uint64_t>(counters->Find("ops")->number_value()),
                run->ops);
    }
    ++parsed;
  }
  EXPECT_TRUE(saw_total);
  // One line per op node that executed, plus the total line.
  EXPECT_GE(parsed, 2);
  ts.server->Stop();
}

TEST(WorkloadRunnerTest, DurationCapTruncates) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  // A duration-based loop far longer than the runner cap.
  WorkloadSpec spec = ParseOrDie(R"({
    "name": "capped", "tenant": "capped", "root": "main",
    "nodes": {
      "main": {"op": "loop", "duration_s": 60, "body": "ping"},
      "ping": {"op": "stats"}
    }
  })");

  RunnerOptions options;
  options.socket_path = ts.socket_path;
  options.threads = 2;
  options.duration_s = 0.2;
  auto run = RunWorkload(spec, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->truncated);
  EXPECT_GT(run->ops, 0u);
  EXPECT_LT(run->elapsed_s, 10.0);  // stopped near the cap, not at 60 s
  ts.server->Stop();
}

TEST(WorkloadRunnerTest, InvalidOptionsRejected) {
  WorkloadSpec spec = ParseOrDie(kDeterministicSpec);
  RunnerOptions options;  // empty socket_path
  options.threads = 1;
  auto no_socket = RunWorkload(spec, options);
  EXPECT_FALSE(no_socket.ok());

  options.socket_path = "/tmp/rtp_workload_no_such_socket.sock";
  options.threads = 0;
  auto no_threads = RunWorkload(spec, options);
  EXPECT_FALSE(no_threads.ok());

  options.threads = 1;
  auto no_daemon = RunWorkload(spec, options);
  EXPECT_FALSE(no_daemon.ok());  // nothing listening
}

}  // namespace
}  // namespace rtp::workload
