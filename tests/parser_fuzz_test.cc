// Robustness fuzzing of every textual front end, driven by the seeded
// rtp::fuzz generators: byte soup and mutated valid inputs must produce
// Status errors, never crashes, and generator output — valid by
// construction — must actually parse. The same generators feed the fuzz/
// harnesses; this test is the cheap always-on subset.

#include <gtest/gtest.h>

#include <string>

#include "fd/path_fd.h"
#include "fuzz/generators.h"
#include "fuzz/rng.h"
#include "pattern/pattern_parser.h"
#include "regex/regex.h"
#include "schema/schema.h"
#include "xml/xml_io.h"
#include "xpath/xpath.h"

namespace rtp {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, AllParsersSurviveGarbage) {
  fuzz::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    Alphabet alphabet;
    std::string input = fuzz::GenerateRandomBytes(&rng, 60);
    // Each parser either errors out or produces a usable object.
    auto re = regex::Regex::Parse(&alphabet, input);
    if (re.ok()) (void)re->IsProper();
    auto pat = pattern::ParsePattern(&alphabet, input);
    if (pat.ok()) (void)pat->pattern.Validate();
    auto sch = schema::Schema::Parse(&alphabet, input);
    auto pfd = fd::ParsePathFd(input);
    auto xp = xpath::CompileXPath(&alphabet, input);
    auto xml = xml::ParseXml(&alphabet, input);
    if (xml.ok()) (void)xml::WriteXml(*xml);
    (void)sch;
    (void)pfd;
    (void)xp;
  }
}

TEST_P(ParserFuzzTest, GeneratedInputsParse) {
  fuzz::Rng rng(GetParam() * 31 + 5);
  fuzz::TextGenParams params;
  for (int i = 0; i < 25; ++i) {
    Alphabet alphabet;

    std::string regex_text = fuzz::GenerateRegexText(&rng, params);
    auto re = regex::Regex::Parse(&alphabet, regex_text);
    ASSERT_TRUE(re.ok()) << regex_text << "\n" << re.status().ToString();

    std::string pattern_text =
        fuzz::GeneratePatternDslText(&rng, params, /*with_context=*/i % 2);
    auto pat = pattern::ParsePattern(&alphabet, pattern_text);
    ASSERT_TRUE(pat.ok()) << pattern_text << "\n" << pat.status().ToString();
    EXPECT_TRUE(pat->pattern.Validate().ok()) << pattern_text;
    EXPECT_FALSE(pat->pattern.selected().empty()) << pattern_text;
    if (i % 2) EXPECT_TRUE(pat->context.has_value()) << pattern_text;

    std::string schema_text = fuzz::GenerateSchemaDslText(&rng, params);
    auto sch = schema::Schema::Parse(&alphabet, schema_text);
    ASSERT_TRUE(sch.ok()) << schema_text << "\n" << sch.status().ToString();

    std::string xml_text = fuzz::GenerateXmlText(&rng, params);
    auto xml = xml::ParseXml(&alphabet, xml_text);
    ASSERT_TRUE(xml.ok()) << xml_text << "\n" << xml.status().ToString();

    std::string path_fd_text = fuzz::GeneratePathFdText(&rng, params);
    auto pfd = fd::ParsePathFd(path_fd_text);
    ASSERT_TRUE(pfd.ok()) << path_fd_text << "\n" << pfd.status().ToString();
  }
}

TEST_P(ParserFuzzTest, MutatedValidInputsSurvive) {
  fuzz::Rng rng(GetParam() + 7777);
  fuzz::TextGenParams params;
  for (int i = 0; i < 25; ++i) {
    Alphabet alphabet;
    (void)pattern::ParsePattern(
        &alphabet,
        fuzz::MutateBytes(fuzz::GeneratePatternDslText(&rng, params), &rng));
    (void)schema::Schema::Parse(
        &alphabet,
        fuzz::MutateBytes(fuzz::GenerateSchemaDslText(&rng, params), &rng));
    (void)xml::ParseXml(
        &alphabet,
        fuzz::MutateBytes(fuzz::GenerateXmlText(&rng, params), &rng));
    (void)fd::ParsePathFd(
        fuzz::MutateBytes(fuzz::GeneratePathFdText(&rng, params), &rng));
    auto re = regex::Regex::Parse(
        &alphabet,
        fuzz::MutateBytes(fuzz::GenerateRegexText(&rng, params), &rng));
    if (re.ok()) (void)re->IsProper();
    (void)xpath::CompileXPath(&alphabet, "/a/b[c]//d | //e/@f");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace rtp
