// Robustness fuzzing of every textual front end: random byte soup and
// mutated valid inputs must produce Status errors, never crashes, and
// accepted inputs must be usable.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "fd/path_fd.h"
#include "pattern/pattern_parser.h"
#include "regex/regex.h"
#include "schema/schema.h"
#include "xml/xml_io.h"
#include "xpath/xpath.h"

namespace rtp {
namespace {

std::string RandomBytes(std::mt19937_64* rng, size_t max_len) {
  static constexpr char kChars[] =
      "abcXYZ019 \t\n(){};[]|/*+?=@#<>&\"'-_.,!";
  size_t len = (*rng)() % (max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kChars[(*rng)() % (sizeof(kChars) - 1)]);
  }
  return out;
}

std::string Mutate(std::string_view base, std::mt19937_64* rng) {
  std::string out(base);
  size_t edits = 1 + (*rng)() % 4;
  for (size_t i = 0; i < edits && !out.empty(); ++i) {
    size_t pos = (*rng)() % out.size();
    switch ((*rng)() % 3) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, static_cast<char>('!' + (*rng)() % 90));
        break;
      default:
        out[pos] = static_cast<char>('!' + (*rng)() % 90);
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, AllParsersSurviveGarbage) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    Alphabet alphabet;
    std::string input = RandomBytes(&rng, 60);
    // Each parser either errors out or produces a usable object.
    auto re = regex::Regex::Parse(&alphabet, input);
    if (re.ok()) (void)re->IsProper();
    auto pat = pattern::ParsePattern(&alphabet, input);
    if (pat.ok()) (void)pat->pattern.Validate();
    auto sch = schema::Schema::Parse(&alphabet, input);
    auto pfd = fd::ParsePathFd(input);
    auto xp = xpath::CompileXPath(&alphabet, input);
    auto xml = xml::ParseXml(&alphabet, input);
    if (xml.ok()) (void)xml::WriteXml(*xml);
    (void)sch;
    (void)pfd;
    (void)xp;
  }
}

TEST_P(ParserFuzzTest, MutatedValidInputsSurvive) {
  std::mt19937_64 rng(GetParam() + 7777);
  constexpr std::string_view kPattern = R"(
    root { c = session { x = candidate/exam { p = mark; q = rank; } } }
    select p, q;
    context c;
  )";
  constexpr std::string_view kSchema = R"(
    schema { root a; element a { b* } element b { #text } }
  )";
  constexpr std::string_view kXml =
      "<a x=\"1\"><b>t</b><c/><d>u&amp;v</d></a>";
  constexpr std::string_view kPathFd = "(/s, (a/b, c) -> d[N])";
  constexpr std::string_view kXPath = "/a/b[c]//d | //e/@f";

  for (int i = 0; i < 40; ++i) {
    Alphabet alphabet;
    (void)pattern::ParsePattern(&alphabet, Mutate(kPattern, &rng));
    (void)schema::Schema::Parse(&alphabet, Mutate(kSchema, &rng));
    (void)xml::ParseXml(&alphabet, Mutate(kXml, &rng));
    (void)fd::ParsePathFd(Mutate(kPathFd, &rng));
    (void)xpath::CompileXPath(&alphabet, Mutate(kXPath, &rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace rtp
