// End-to-end integration on the bibliography domain: schema validation,
// key/FD checking via the [8]-style path formalism, update classes from
// XPath, the independence criterion, incremental maintenance, and views —
// the whole pipeline on a second workload.

#include <gtest/gtest.h>

#include "fd/fd_checker.h"
#include "fd/fd_index.h"
#include "fd/path_fd.h"
#include "independence/criterion.h"
#include "independence/impact_search.h"
#include "update/update_ops.h"
#include "view/view.h"
#include "workload/bib_generator.h"
#include "xml/value_equality.h"
#include "xpath/xpath.h"

namespace rtp {
namespace {

using xml::Document;
using xml::NodeId;

class BibIntegrationTest : public ::testing::Test {
 protected:
  BibIntegrationTest() : schema_(workload::BuildBibSchema(&alphabet_)) {}

  update::UpdateClass XPathClass(const char* query) {
    auto compiled = xpath::CompileXPath(&alphabet_, query);
    RTP_CHECK_MSG(compiled.ok(), compiled.status().ToString().c_str());
    auto cls = update::UpdateClass::Create(compiled->branches[0]);
    RTP_CHECK(cls.ok());
    return std::move(cls).value();
  }

  Alphabet alphabet_;
  schema::Schema schema_;
};

TEST_F(BibIntegrationTest, GeneratedDocumentsAreValid) {
  workload::BibWorkloadParams params;
  Document doc = workload::GenerateBibDocument(&alphabet_, params);
  EXPECT_TRUE(schema_.Validate(doc));
  EXPECT_GT(doc.LiveNodeCount(), 100u);
}

TEST_F(BibIntegrationTest, TitleKeyHoldsWithDistinctTitles) {
  workload::BibWorkloadParams params;
  params.num_titles = 0;  // distinct titles
  Document doc = workload::GenerateBibDocument(&alphabet_, params);
  auto key = fd::ParseAndCompilePathFd(&alphabet_, workload::kBibTitleKey);
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_TRUE(fd::CheckFd(*key, doc).satisfied);
}

TEST_F(BibIntegrationTest, TitleKeyBreaksWithCollidingTitles) {
  workload::BibWorkloadParams params;
  params.num_titles = 3;  // heavy collisions within each conf
  Document doc = workload::GenerateBibDocument(&alphabet_, params);
  auto key = fd::ParseAndCompilePathFd(&alphabet_, workload::kBibTitleKey);
  ASSERT_TRUE(key.ok());
  EXPECT_FALSE(fd::CheckFd(*key, doc).satisfied);
}

TEST_F(BibIntegrationTest, CriterionSeparatesUpdateClasses) {
  auto key = fd::ParseAndCompilePathFd(&alphabet_, workload::kBibTitleKey);
  ASSERT_TRUE(key.ok());

  // Author rewrites never touch the key (below paper[N], not on the key
  // path: the node-equality refinement applies).
  update::UpdateClass authors = XPathClass("/bib/conf/paper/author");
  auto safe =
      independence::CheckIndependence(*key, authors, &schema_, &alphabet_);
  ASSERT_TRUE(safe.ok()) << safe.status().ToString();
  EXPECT_TRUE(safe->independent);

  // Title rewrites are flagged.
  update::UpdateClass titles = XPathClass("/bib/conf/paper/title");
  auto flagged =
      independence::CheckIndependence(*key, titles, &schema_, &alphabet_);
  ASSERT_TRUE(flagged.ok());
  EXPECT_FALSE(flagged->independent);

  // And the flag is justified: impact search finds a real conflict.
  independence::ImpactSearchParams params;
  params.num_documents = 50;
  auto search =
      independence::SearchForImpact(*key, titles, schema_, params);
  EXPECT_TRUE(search.impact_found);
}

TEST_F(BibIntegrationTest, PagesFdAndIncrementalMaintenance) {
  workload::BibWorkloadParams params;
  params.num_confs = 20;
  params.num_titles = 0;
  Document doc = workload::GenerateBibDocument(&alphabet_, params);
  auto pages_fd = fd::ParseAndCompilePathFd(&alphabet_, workload::kBibPagesFd);
  ASSERT_TRUE(pages_fd.ok());
  ASSERT_TRUE(fd::CheckFd(*pages_fd, doc).satisfied);

  fd::FdIndex index = fd::FdIndex::Build(*pages_fd, doc);
  EXPECT_TRUE(index.supports_incremental());
  EXPECT_TRUE(index.satisfied());
  size_t full_mappings = index.last_pass_mappings();

  // Duplicate one title within a conf with different pages: violated.
  update::UpdateClass titles = XPathClass("/bib/conf/paper/title");
  std::vector<NodeId> title_nodes = titles.SelectNodes(doc);
  ASSERT_GE(title_nodes.size(), 2u);
  // Make the second title equal to the first (same conf).
  auto stats = update::ApplyOperationAt(
      &doc, {title_nodes[1]},
      update::TransformValues{[&](std::string_view) {
        return doc.value(doc.first_child(title_nodes[0]));
      }});
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(index.Revalidate(doc, stats->updated_roots));
  EXPECT_FALSE(fd::CheckFd(*pages_fd, doc).satisfied);
  // Incremental pass touched only the one affected conf.
  EXPECT_LT(index.last_pass_mappings(), full_mappings / 4);
}

TEST_F(BibIntegrationTest, TitleViewIndependentOfAuthorUpdates) {
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = bib/conf/paper/title; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  auto titles_view = view::View::FromParsed(std::move(parsed).value());
  ASSERT_TRUE(titles_view.ok());

  update::UpdateClass authors = XPathClass("/bib/conf/paper/author");
  auto verdict = view::CheckViewIndependence(*titles_view, authors, &schema_,
                                             &alphabet_);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->independent);

  // Concretely: materialization unchanged under an author rewrite.
  workload::BibWorkloadParams params;
  Document doc = workload::GenerateBibDocument(&alphabet_, params);
  Document before = titles_view->Materialize(doc);
  update::Update q{&authors, update::TransformValues{[](std::string_view) {
                     return std::string("anonymous");
                   }}};
  ASSERT_TRUE(update::ApplyUpdate(&doc, q).ok());
  Document after = titles_view->Materialize(doc);
  EXPECT_TRUE(xml::ValueEqual(before, before.root(), after, after.root()));
}

}  // namespace
}  // namespace rtp
