// End-to-end battery for rtpd (src/serve): an in-process Server on a
// temp AF_UNIX socket, exercised by real Client connections. The
// concurrency tests run under -DRTP_SANITIZE=thread in CI (labels
// `exec;serve`), so keep iteration counts small but contention real.
//
// The correctness bar everywhere is bit-identity with serial library
// calls: the oracle below re-derives eval/checkfd results straight from
// pattern::EvaluateSelected / fd::CheckFd with no serve code involved.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fd/fd_checker.h"
#include "fd/functional_dependency.h"
#include "fuzz/generators.h"
#include "fuzz/rng.h"
#include "obs/metrics.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "serve/client.h"
#include "serve/server.h"
#include "xml/xml_io.h"

namespace rtp::serve {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string ExamXmlPath() {
  return std::string(RTP_EXAMPLES_DATA_DIR) + "/exam.xml";
}

std::string DataPath(const char* name) {
  return std::string(RTP_EXAMPLES_DATA_DIR) + "/" + name;
}

// Each test gets its own socket path; the server unlinks it on Stop().
std::string TempSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/rtp_serve_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct TestServer {
  std::string socket_path;
  std::unique_ptr<Server> server;
};

TestServer StartTestServer(ServerOptions options = {}) {
  TestServer ts;
  ts.socket_path = TempSocketPath();
  options.socket_path = ts.socket_path;
  auto server_or = Server::Start(options);
  EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
  if (server_or.ok()) ts.server = std::move(server_or).value();
  return ts;
}

Client ConnectOrDie(const std::string& socket_path) {
  auto client_or = Client::Connect(socket_path);
  EXPECT_TRUE(client_or.ok()) << client_or.status().ToString();
  return std::move(client_or).value();
}

// Serial library oracle for eval: same sort + serialization contract the
// server (and rtp_cli) promise, derived with a private alphabet.
std::vector<std::vector<std::string>> OracleEval(
    const std::string& xml_text, const std::string& pattern_text) {
  Alphabet alphabet;
  auto doc_or = xml::ParseXml(&alphabet, xml_text);
  EXPECT_TRUE(doc_or.ok());
  xml::Document doc = std::move(doc_or).value();
  auto parsed_or = pattern::ParsePattern(&alphabet, pattern_text);
  EXPECT_TRUE(parsed_or.ok());
  auto tuples = pattern::EvaluateSelected(parsed_or->pattern, doc);
  std::sort(tuples.begin(), tuples.end(),
            [&doc](const std::vector<xml::NodeId>& a,
                   const std::vector<xml::NodeId>& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                uint32_t pa = doc.PreorderIndex(a[i]);
                uint32_t pb = doc.PreorderIndex(b[i]);
                if (pa != pb) return pa < pb;
              }
              return a.size() < b.size();
            });
  std::vector<std::vector<std::string>> out;
  out.reserve(tuples.size());
  for (const auto& tuple : tuples) {
    std::vector<std::string> row;
    row.reserve(tuple.size());
    for (xml::NodeId n : tuple) {
      row.push_back(xml::WriteXmlSubtree(doc, n, /*indent=*/false));
    }
    out.push_back(std::move(row));
  }
  return out;
}

struct OracleCheckFd {
  bool satisfied;
  int64_t mappings;
  int64_t groups;
};

OracleCheckFd OracleCheck(const std::string& xml_text,
                          const std::string& fd_text) {
  Alphabet alphabet;
  auto doc_or = xml::ParseXml(&alphabet, xml_text);
  EXPECT_TRUE(doc_or.ok());
  xml::Document doc = std::move(doc_or).value();
  auto parsed_or = pattern::ParsePattern(&alphabet, fd_text);
  EXPECT_TRUE(parsed_or.ok());
  auto fd_or = fd::FunctionalDependency::FromParsed(std::move(*parsed_or));
  EXPECT_TRUE(fd_or.ok());
  fd::CheckResult result = fd::CheckFd(fd_or.value(), doc);
  EXPECT_TRUE(result.status.ok());
  return {result.satisfied, static_cast<int64_t>(result.num_mappings),
          static_cast<int64_t>(result.num_groups)};
}

TEST(ServeTest, RoundTripMatchesSerialOracle) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);

  const std::string xml = ReadFileOrDie(ExamXmlPath());
  const std::string pattern = ReadFileOrDie(DataPath("update_u.pattern"));
  const std::string fd1 = ReadFileOrDie(DataPath("fd1.fd"));

  ASSERT_TRUE(client.Load("alpha", "exam", xml).ok());

  auto eval_or = client.Eval("alpha", "exam", pattern);
  ASSERT_TRUE(eval_or.ok()) << eval_or.status().ToString();
  EXPECT_EQ(eval_or->tuples, OracleEval(xml, pattern));

  auto check_or = client.CheckFd("alpha", "exam", fd1);
  ASSERT_TRUE(check_or.ok()) << check_or.status().ToString();
  OracleCheckFd expected = OracleCheck(xml, fd1);
  EXPECT_EQ(check_or->satisfied, expected.satisfied);
  EXPECT_EQ(check_or->mappings, expected.mappings);
  EXPECT_EQ(check_or->groups, expected.groups);

  const std::string fd5 = ReadFileOrDie(DataPath("fd5.fd"));
  const std::string schema = ReadFileOrDie(DataPath("exam.schema"));
  auto matrix_or = client.Matrix("alpha", {fd1, fd5}, {pattern}, schema);
  ASSERT_TRUE(matrix_or.ok()) << matrix_or.status().ToString();
  EXPECT_EQ(matrix_or->num_fds, 2u);
  EXPECT_EQ(matrix_or->num_classes, 1u);
  EXPECT_EQ(matrix_or->cells.size(), 2u);
  // Figure 6 of the paper: U is independent of both fd1 and fd5.
  EXPECT_EQ(matrix_or->independent, 2u);
  for (const MatrixCell& cell : matrix_or->cells) {
    EXPECT_TRUE(cell.independent);
    EXPECT_EQ(cell.status, StatusCode::kOk);
  }

  ts.server->Stop();
}

// The acceptance bar of the issue: >= 8 concurrent clients across >= 2
// tenants, mixed eval/checkfd/matrix against a shared corpus, every
// response bit-identical to the serial oracle.
TEST(ServeTest, ConcurrentClientsAreBitIdenticalToSerialOracle) {
  ServerOptions options;
  options.jobs = 4;
  TestServer ts = StartTestServer(options);
  ASSERT_NE(ts.server, nullptr);

  const std::string xml = ReadFileOrDie(ExamXmlPath());
  const std::string pattern = ReadFileOrDie(DataPath("update_u.pattern"));
  const std::string fd1 = ReadFileOrDie(DataPath("fd1.fd"));
  const std::string fd5 = ReadFileOrDie(DataPath("fd5.fd"));
  const std::string schema = ReadFileOrDie(DataPath("exam.schema"));

  const std::vector<std::string> tenants = {"alpha", "beta"};
  {
    Client loader = ConnectOrDie(ts.socket_path);
    for (const std::string& tenant : tenants) {
      ASSERT_TRUE(loader.Load(tenant, "exam", xml).ok());
    }
  }

  const auto expected_tuples = OracleEval(xml, pattern);
  const OracleCheckFd expected_fd1 = OracleCheck(xml, fd1);
  const OracleCheckFd expected_fd5 = OracleCheck(xml, fd5);

  constexpr int kClients = 8;
  constexpr int kIterations = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client_or = Client::Connect(ts.socket_path);
      if (!client_or.ok()) {
        ++failures;
        return;
      }
      Client client = std::move(client_or).value();
      const std::string& tenant = tenants[c % tenants.size()];
      for (int i = 0; i < kIterations; ++i) {
        switch ((c + i) % 3) {
          case 0: {
            auto eval_or = client.Eval(tenant, "exam", pattern);
            if (!eval_or.ok() || eval_or->tuples != expected_tuples) {
              ++failures;
            }
            break;
          }
          case 1: {
            const bool use_fd1 = (i % 2) == 0;
            auto check_or =
                client.CheckFd(tenant, "exam", use_fd1 ? fd1 : fd5);
            const OracleCheckFd& expect =
                use_fd1 ? expected_fd1 : expected_fd5;
            if (!check_or.ok() || check_or->satisfied != expect.satisfied ||
                check_or->mappings != expect.mappings ||
                check_or->groups != expect.groups) {
              ++failures;
            }
            break;
          }
          default: {
            auto matrix_or =
                client.Matrix(tenant, {fd1, fd5}, {pattern}, schema);
            if (!matrix_or.ok() || matrix_or->independent != 2 ||
                matrix_or->cells.size() != 2) {
              ++failures;
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Per-tenant accounting is deterministic: both tenants served requests,
  // none erred or tripped.
  Client client = ConnectOrDie(ts.socket_path);
  auto stats_or = client.Stats();
  ASSERT_TRUE(stats_or.ok());
  ASSERT_EQ(stats_or->size(), tenants.size());
  for (const TenantStats& t : *stats_or) {
    EXPECT_EQ(t.docs, 1);
    EXPECT_GT(t.requests, 0);
    EXPECT_EQ(t.errors, 0);
    EXPECT_EQ(t.trips, 0);
  }

  ts.server->Stop();
}

// A per-request deadline/quota trip must return a resource status for the
// offending request only: the document, the tenant, and the process-wide
// AutomatonCache all keep serving exact results afterwards.
TEST(ServeTest, BudgetTripDegradesOnlyTheOffendingRequest) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);

  const std::string xml = ReadFileOrDie(ExamXmlPath());
  const std::string pattern = ReadFileOrDie(DataPath("update_u.pattern"));
  ASSERT_TRUE(client.Load("alpha", "exam", xml).ok());

  // Warm path first: correct answer with no budget.
  const auto expected = OracleEval(xml, pattern);
  auto warm_or = client.Eval("alpha", "exam", pattern);
  ASSERT_TRUE(warm_or.ok());
  EXPECT_EQ(warm_or->tuples, expected);

  // max_steps=1 trips deterministically (no wall-clock dependence).
  CallOptions tiny;
  tiny.budget.max_steps = 1;
  auto tripped_or = client.Eval("alpha", "exam", pattern, tiny);
  ASSERT_FALSE(tripped_or.ok());
  EXPECT_TRUE(guard::IsResourceCode(tripped_or.status().code()))
      << tripped_or.status().ToString();

  // The same connection and the same corpus entry still serve exactly.
  auto after_or = client.Eval("alpha", "exam", pattern);
  ASSERT_TRUE(after_or.ok()) << after_or.status().ToString();
  EXPECT_EQ(after_or->tuples, expected);

  // Budgeted matrix: per-cell degradation, response still ok, tripped
  // cells conservatively not-independent — and the warm cache is not
  // poisoned, so the unbudgeted rerun is exact.
  const std::string fd1 = ReadFileOrDie(DataPath("fd1.fd"));
  auto unbudgeted_or = client.Matrix("alpha", {fd1}, {pattern});
  ASSERT_TRUE(unbudgeted_or.ok());
  EXPECT_EQ(unbudgeted_or->independent, 1u);

  CallOptions tiny_states;
  tiny_states.budget.max_automaton_states = 1;
  auto budget_matrix_or =
      client.Matrix("alpha", {fd1}, {pattern}, "", tiny_states);
  ASSERT_TRUE(budget_matrix_or.ok()) << budget_matrix_or.status().ToString();
  ASSERT_EQ(budget_matrix_or->cells.size(), 1u);
  EXPECT_FALSE(budget_matrix_or->cells[0].independent);
  EXPECT_TRUE(guard::IsResourceCode(budget_matrix_or->cells[0].status));

  auto rerun_or = client.Matrix("alpha", {fd1}, {pattern});
  ASSERT_TRUE(rerun_or.ok());
  EXPECT_EQ(rerun_or->independent, 1u);
  ASSERT_EQ(rerun_or->cells.size(), 1u);
  EXPECT_EQ(rerun_or->cells[0].status, StatusCode::kOk);

  // The trips landed in this tenant's ledger, not as request errors.
  auto stats_or = client.Stats();
  ASSERT_TRUE(stats_or.ok());
  ASSERT_EQ(stats_or->size(), 1u);
  EXPECT_GE((*stats_or)[0].trips, 2);

  ts.server->Stop();
}

// Per-tenant default budgets (the quota op) apply to unbudgeted requests
// of that tenant only; an explicit request budget overrides, and other
// tenants never see it.
TEST(ServeTest, QuotaScopesDefaultBudgetToOneTenant) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);

  const std::string xml = ReadFileOrDie(ExamXmlPath());
  const std::string pattern = ReadFileOrDie(DataPath("update_u.pattern"));
  ASSERT_TRUE(client.Load("alpha", "exam", xml).ok());
  ASSERT_TRUE(client.Load("beta", "exam", xml).ok());

  guard::ExecutionBudget strict;
  strict.max_steps = 1;
  ASSERT_TRUE(client.Quota("alpha", strict).ok());

  auto tripped_or = client.Eval("alpha", "exam", pattern);
  ASSERT_FALSE(tripped_or.ok());
  EXPECT_TRUE(guard::IsResourceCode(tripped_or.status().code()));

  // Explicit generous budget on the request overrides the tenant default.
  CallOptions generous;
  generous.budget.max_steps = 1 << 20;
  auto explicit_or = client.Eval("alpha", "exam", pattern, generous);
  EXPECT_TRUE(explicit_or.ok()) << explicit_or.status().ToString();

  // The sibling tenant is untouched.
  auto beta_or = client.Eval("beta", "exam", pattern);
  EXPECT_TRUE(beta_or.ok()) << beta_or.status().ToString();

  ts.server->Stop();
}

// A client that hangs up mid-request must not take the server down; its
// connection token is cancelled and new connections keep being served.
TEST(ServeTest, MidRequestDisconnectLeavesServerHealthy) {
  ServerOptions options;
  options.jobs = 2;
  TestServer ts = StartTestServer(options);
  ASSERT_NE(ts.server, nullptr);

  const std::string xml = ReadFileOrDie(ExamXmlPath());
  const std::string pattern = ReadFileOrDie(DataPath("update_u.pattern"));
  {
    Client loader = ConnectOrDie(ts.socket_path);
    ASSERT_TRUE(loader.Load("alpha", "exam", xml).ok());
  }

  for (int i = 0; i < 4; ++i) {
    Client aborter = ConnectOrDie(ts.socket_path);
    Request req;
    req.id = 1;
    req.op = "eval";
    req.tenant = "alpha";
    req.doc = "exam";
    req.text = pattern;
    ASSERT_TRUE(aborter.SendLine(EncodeRequest(req).Serialize()).ok());
    // Destructor closes the socket without reading the response: the
    // server's disconnect watcher cancels the request token.
  }

  Client client = ConnectOrDie(ts.socket_path);
  auto eval_or = client.Eval("alpha", "exam", pattern);
  ASSERT_TRUE(eval_or.ok()) << eval_or.status().ToString();
  EXPECT_EQ(eval_or->tuples, OracleEval(xml, pattern));

  ts.server->Stop();
}

// Malformed bytes — hand-picked and fuzz-generated — get a structured
// error envelope, never a dropped connection or a crash.
TEST(ServeTest, MalformedRequestsGetStructuredErrors) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);

  std::vector<std::string> lines = {
      "not json at all",
      "{",
      "[1,2,3]",
      "{}",
      "{\"id\":7}",
      "{\"id\":7,\"v\":999,\"op\":\"stats\"}",
      "{\"id\":7,\"v\":1,\"op\":\"frobnicate\"}",
      "{\"id\":7,\"v\":1,\"op\":\"eval\",\"tenant\":\"../etc\"}",
      "{\"id\":7,\"v\":1,\"op\":\"eval\",\"tenant\":\"t\",\"doc\":42}",
      "{\"id\":7,\"v\":1,\"op\":\"load\",\"budget\":\"lots\"}",
  };
  // Reuse the fuzz byte generator for adversarial garbage; newlines would
  // split into several frames, so strip them (each line is one request).
  fuzz::Rng rng(0xC0FFEE);
  for (int i = 0; i < 32; ++i) {
    std::string bytes = fuzz::GenerateRandomBytes(&rng, 200);
    std::string line;
    for (char ch : bytes) {
      if (ch != '\n' && ch != '\r' && ch != '\0') line.push_back(ch);
    }
    if (!line.empty()) lines.push_back(std::move(line));
  }

  for (const std::string& line : lines) {
    ASSERT_TRUE(client.SendLine(line).ok());
    auto reply_or = client.ReadLine();
    ASSERT_TRUE(reply_or.ok()) << "server dropped connection on: " << line;
    auto parsed_or = JsonValue::Parse(*reply_or);
    ASSERT_TRUE(parsed_or.ok()) << "unparseable reply: " << *reply_or;
    const JsonValue* ok = parsed_or->Find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_FALSE(ok->bool_value());
    const JsonValue* error = parsed_or->Find("error");
    ASSERT_NE(error, nullptr) << *reply_or;
    EXPECT_FALSE(error->FindString("code").empty());
    EXPECT_FALSE(error->FindString("message").empty());
  }

  // The connection is still good for real requests afterwards.
  const std::string xml = ReadFileOrDie(ExamXmlPath());
  EXPECT_TRUE(client.Load("alpha", "exam", xml).ok());

  ts.server->Stop();
}

// Oversized request lines are rejected with RESOURCE_EXHAUSTED and the
// connection recovers at the next newline.
TEST(ServeTest, OversizedRequestLineIsRejectedAndSkipped) {
  ServerOptions options;
  options.max_line_bytes = 512;
  TestServer ts = StartTestServer(options);
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);

  ASSERT_TRUE(client.SendLine(std::string(4096, 'x')).ok());
  auto reply_or = client.ReadLine();
  ASSERT_TRUE(reply_or.ok());
  auto parsed_or = JsonValue::Parse(*reply_or);
  ASSERT_TRUE(parsed_or.ok());
  EXPECT_EQ(parsed_or->Find("error")->FindString("code"),
            "RESOURCE_EXHAUSTED");

  // The next (valid, small) request on the same connection succeeds.
  auto stats_or = client.Stats();
  EXPECT_TRUE(stats_or.ok()) << stats_or.status().ToString();

  ts.server->Stop();
}

TEST(ServeTest, DropRemovesDocumentAndReportsMisses) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);

  const std::string xml = ReadFileOrDie(ExamXmlPath());
  const std::string pattern = ReadFileOrDie(DataPath("update_u.pattern"));
  ASSERT_TRUE(client.Load("alpha", "exam", xml).ok());

  auto dropped_or = client.Drop("alpha", "exam");
  ASSERT_TRUE(dropped_or.ok());
  EXPECT_TRUE(*dropped_or);

  auto again_or = client.Drop("alpha", "exam");
  ASSERT_TRUE(again_or.ok());
  EXPECT_FALSE(*again_or);

  auto eval_or = client.Eval("alpha", "exam", pattern);
  ASSERT_FALSE(eval_or.ok());
  EXPECT_EQ(eval_or.status().code(), StatusCode::kNotFound);

  auto ghost_or = client.Eval("ghost-tenant", "exam", pattern);
  ASSERT_FALSE(ghost_or.ok());
  EXPECT_EQ(ghost_or.status().code(), StatusCode::kNotFound);

  ts.server->Stop();
}

TEST(ServeTest, ShutdownIsAcknowledgedBeforeTheServerStops) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);
  EXPECT_TRUE(client.Shutdown().ok());
  // The shutdown request resolves Wait(); Stop() tears down cleanly.
  EXPECT_TRUE(ts.server->WaitFor(5000));
  ts.server->Stop();
  // After Stop() the socket is gone: new connections are refused.
  auto late_or = Client::Connect(ts.socket_path);
  EXPECT_FALSE(late_or.ok());
}

TEST(ServeTest, ProfiledRequestsCarryAProfileField) {
  TestServer ts = StartTestServer();
  ASSERT_NE(ts.server, nullptr);
  Client client = ConnectOrDie(ts.socket_path);

  const std::string xml = ReadFileOrDie(ExamXmlPath());
  const std::string pattern = ReadFileOrDie(DataPath("update_u.pattern"));
  ASSERT_TRUE(client.Load("alpha", "exam", xml).ok());

  Request req;
  req.op = "eval";
  req.tenant = "alpha";
  req.doc = "exam";
  req.text = pattern;
  req.profile = true;
  auto response_or = client.Call(std::move(req));
  ASSERT_TRUE(response_or.ok()) << response_or.status().ToString();
  const JsonValue* profile = response_or->Find("profile");
  ASSERT_NE(profile, nullptr);
  ASSERT_TRUE(profile->is_object());
  EXPECT_NE(profile->Find("op"), nullptr);

  ts.server->Stop();
}

}  // namespace
}  // namespace rtp::serve
