#include "independence/hardness.h"

#include <gtest/gtest.h>

#include "fd/fd_checker.h"
#include "independence/criterion.h"
#include "update/update_ops.h"

namespace rtp::independence {
namespace {

TEST(HardnessTest, RejectsBadInputs) {
  Alphabet alphabet;
  EXPECT_FALSE(BuildInclusionReduction(&alphabet, "(", "a").ok());
  EXPECT_FALSE(BuildInclusionReduction(&alphabet, "a", "(").ok());
  EXPECT_FALSE(BuildInclusionReduction(&alphabet, "hash", "a").ok());
  EXPECT_FALSE(BuildInclusionReduction(&alphabet, "a", "m0").ok());
  EXPECT_FALSE(BuildInclusionReduction(&alphabet, "_", "a").ok());
}

TEST(HardnessTest, InclusionDecidedCorrectly) {
  Alphabet alphabet;
  struct Case {
    const char* eta;
    const char* eta_prime;
    bool included;
  };
  const Case cases[] = {
      {"a", "a", true},
      {"a", "a|b", true},
      {"a/b", "a/(b|c)", true},
      {"(a|b)+", "(a|b)*", true},
      {"a|b", "a", false},
      {"a/a", "a", false},
      {"a*/b", "a/b", false},
      {"(a/b)+", "(a|b)+", true},
      {"a?/b", "b|a/b", true},
  };
  for (const Case& c : cases) {
    auto reduction = BuildInclusionReduction(&alphabet, c.eta, c.eta_prime);
    ASSERT_TRUE(reduction.ok()) << reduction.status().ToString();
    EXPECT_EQ(reduction->eta_included, c.included)
        << c.eta << " vs " << c.eta_prime;
  }
}

TEST(HardnessTest, NonInclusionYieldsRealImpactWitness) {
  Alphabet alphabet;
  for (auto [eta, eta_prime] :
       {std::pair{"a|b", "a"}, {"a/a", "a"}, {"a*/b", "a/b"},
        {"c", "a|b"}}) {
    auto reduction = BuildInclusionReduction(&alphabet, eta, eta_prime);
    ASSERT_TRUE(reduction.ok()) << reduction.status().ToString();
    ASSERT_FALSE(reduction->eta_included);
    ASSERT_TRUE(reduction->counterexample.has_value());
    ASSERT_TRUE(reduction->impacting_update.has_value());

    // D satisfies the FD.
    xml::Document doc = reduction->counterexample->Clone();
    EXPECT_TRUE(fd::CheckFd(reduction->fd, doc).satisfied)
        << eta << " vs " << eta_prime;

    // The update class selects the dynamic hash node.
    std::vector<xml::NodeId> selected =
        reduction->update_class.SelectNodes(doc);
    ASSERT_FALSE(selected.empty());

    // Applying the impacting update flips satisfaction.
    update::Update q{&reduction->update_class, *reduction->impacting_update};
    auto stats = update::ApplyUpdate(&doc, q);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_FALSE(fd::CheckFd(reduction->fd, doc).satisfied)
        << eta << " vs " << eta_prime;
  }
}

TEST(HardnessTest, InclusionMeansNoImpactFromTheCanonicalUpdate) {
  // When eta ⊆ eta', the canonical manipulation cannot flip satisfaction:
  // build the analogous document by hand and check it is NOT a
  // counterexample (the updated branch already carries a trace).
  Alphabet alphabet;
  auto reduction = BuildInclusionReduction(&alphabet, "a", "a|b");
  ASSERT_TRUE(reduction.ok());
  EXPECT_TRUE(reduction->eta_included);
  EXPECT_FALSE(reduction->counterexample.has_value());
}

TEST(HardnessTest, CriterionIsConservativeOnReduction) {
  // The polynomial criterion cannot decide inclusion (that would decide a
  // PSPACE-hard problem): on reductions it reports "not proven" both for
  // included and non-included pairs whenever both patterns can co-occur.
  Alphabet alphabet;
  auto included = BuildInclusionReduction(&alphabet, "a", "a|b");
  auto not_included = BuildInclusionReduction(&alphabet, "a|b", "a");
  ASSERT_TRUE(included.ok());
  ASSERT_TRUE(not_included.ok());

  for (auto* reduction : {&*included, &*not_included}) {
    auto result = CheckIndependence(reduction->fd, reduction->update_class,
                                    nullptr, &alphabet);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->independent);
  }
}

TEST(HardnessTest, ExponentialFamilyStillDecided) {
  // (a|b)*a(a|b)^n needs ~2^n DFA states: inclusion remains decidable for
  // small n (the blowup is benchmarked in bench_regex_inclusion).
  Alphabet alphabet;
  std::string eta = "(a|b)*/a";
  std::string suffix;
  for (int i = 0; i < 5; ++i) suffix += "/(a|b)";
  eta += suffix;
  // eta' = (a|b)* : trivially includes eta.
  auto reduction = BuildInclusionReduction(&alphabet, eta, "(a|b)*");
  ASSERT_TRUE(reduction.ok());
  EXPECT_TRUE(reduction->eta_included);

  // And the reverse is not included.
  auto reverse = BuildInclusionReduction(&alphabet, "(a|b)+", eta);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(reverse->eta_included);
  EXPECT_TRUE(reverse->counterexample.has_value());
}

}  // namespace
}  // namespace rtp::independence
