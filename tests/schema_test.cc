#include "schema/schema.h"

#include <gtest/gtest.h>

#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"

namespace rtp::schema {
namespace {

using xml::Document;
using xml::NodeId;

TEST(SchemaParserTest, Errors) {
  Alphabet alphabet;
  EXPECT_FALSE(Schema::Parse(&alphabet, "").ok());
  EXPECT_FALSE(Schema::Parse(&alphabet, "schema { }").ok());  // no root
  EXPECT_FALSE(Schema::Parse(&alphabet, "schema { root a; }").ok());  // a undeclared
  EXPECT_FALSE(
      Schema::Parse(&alphabet, "schema { root a; element a { zz } }").ok());
  EXPECT_FALSE(
      Schema::Parse(&alphabet,
                    "schema { root a; element a { } element a { } }")
          .ok());  // duplicate
  EXPECT_FALSE(
      Schema::Parse(&alphabet, "schema { root a; element a { _ } }").ok());
  EXPECT_FALSE(
      Schema::Parse(&alphabet, "schema { root a; element @x { } }").ok());
  EXPECT_FALSE(Schema::Parse(&alphabet, "schema { bogus; }").ok());
}

TEST(SchemaTest, SimpleValidation) {
  Alphabet alphabet;
  auto schema = Schema::Parse(&alphabet, R"(
    schema {
      root a;
      element a { b* / c? }
      element b { #text }
      element c { @id }
    }
  )");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  Document ok_doc(&alphabet);
  NodeId a = ok_doc.AddElement(ok_doc.root(), "a");
  NodeId b = ok_doc.AddElement(a, "b");
  ok_doc.AddText(b, "hi");
  NodeId c = ok_doc.AddElement(a, "c");
  ok_doc.AddAttribute(c, "@id", "1");
  EXPECT_TRUE(schema->Validate(ok_doc));

  // Wrong order: c before b.
  Document bad_order(&alphabet);
  NodeId a2 = bad_order.AddElement(bad_order.root(), "a");
  NodeId c2 = bad_order.AddElement(a2, "c");
  bad_order.AddAttribute(c2, "@id", "1");
  NodeId b2 = bad_order.AddElement(a2, "b");
  bad_order.AddText(b2, "hi");
  EXPECT_FALSE(schema->Validate(bad_order));

  // Undeclared element.
  Document bad_elem(&alphabet);
  NodeId a3 = bad_elem.AddElement(bad_elem.root(), "a");
  bad_elem.AddElement(a3, "zzz");
  EXPECT_FALSE(schema->Validate(bad_elem));

  // b must contain exactly one text node.
  Document bad_b(&alphabet);
  NodeId a4 = bad_b.AddElement(bad_b.root(), "a");
  bad_b.AddElement(a4, "b");
  EXPECT_FALSE(schema->Validate(bad_b));

  // Wrong root element.
  Document bad_root(&alphabet);
  bad_root.AddElement(bad_root.root(), "b");
  EXPECT_FALSE(schema->Validate(bad_root));

  // Two root elements.
  Document two_roots(&alphabet);
  two_roots.AddElement(two_roots.root(), "a");
  two_roots.AddElement(two_roots.root(), "a");
  EXPECT_FALSE(schema->Validate(two_roots));
}

TEST(SchemaTest, MultipleRoots) {
  Alphabet alphabet;
  auto schema = Schema::Parse(&alphabet, R"(
    schema {
      root a, b;
      element a { }
      element b { }
    }
  )");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  Document da(&alphabet);
  da.AddElement(da.root(), "a");
  Document db(&alphabet);
  db.AddElement(db.root(), "b");
  EXPECT_TRUE(schema->Validate(da));
  EXPECT_TRUE(schema->Validate(db));
}

TEST(SchemaTest, ExamSchemaAcceptsPaperDocument) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  EXPECT_TRUE(schema.Validate(doc));
}

TEST(SchemaTest, ExamSchemaAcceptsGeneratedDocuments) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  for (uint64_t seed : {1u, 2u, 3u}) {
    workload::ExamWorkloadParams params;
    params.num_candidates = 25;
    params.seed = seed;
    Document doc = workload::GenerateExamDocument(&alphabet, params);
    EXPECT_TRUE(schema.Validate(doc)) << "seed " << seed;
  }
}

TEST(SchemaTest, ExamSchemaForbidsBothClosingChildren) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  schema::Schema strict = workload::BuildExamSchema(&alphabet);
  schema::Schema permissive = workload::BuildPermissiveExamSchema(&alphabet);

  // Candidate 001 has toBePassed; give it also firstJob-Year.
  NodeId session = doc.first_child(doc.root());
  NodeId c1 = doc.first_child(session);
  NodeId fj = doc.AddElement(c1, "firstJob-Year");
  doc.AddText(fj, "2014");

  EXPECT_FALSE(strict.Validate(doc));
  EXPECT_TRUE(permissive.Validate(doc));
}

TEST(SchemaTest, ExamSchemaRejectsCandidateWithoutClosingChild) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  schema::Schema strict = workload::BuildExamSchema(&alphabet);

  NodeId session = doc.first_child(doc.root());
  NodeId c1 = doc.first_child(session);
  for (NodeId k : doc.Children(c1)) {
    if (doc.label_name(k) == "toBePassed") doc.DetachSubtree(k);
  }
  EXPECT_FALSE(strict.Validate(doc));
}

TEST(SchemaTest, WitnessDocumentIsValid) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  EXPECT_FALSE(schema.automaton().IsEmptyLanguage());
  auto witness = schema.automaton().FindWitnessDocument(&alphabet);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(schema.Validate(*witness));
}

TEST(SchemaTest, ValidationAfterUpdateDetectsDrift) {
  // A schema-violating update is detected by re-validation.
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  schema::Schema schema = workload::BuildExamSchema(&alphabet);

  auto parsed = pattern::ParsePattern(&alphabet, R"(
    root { s = session/candidate/level; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  auto cls = update::UpdateClass::FromParsed(std::move(parsed).value());
  ASSERT_TRUE(cls.ok());
  update::Update del{&*cls, update::DeleteSelf{}};
  ASSERT_TRUE(update::ApplyUpdate(&doc, del).ok());
  EXPECT_FALSE(schema.Validate(doc));
}

}  // namespace
}  // namespace rtp::schema
