// Focused edge-case coverage across modules: paths less traveled by the
// main suites.

#include <gtest/gtest.h>

#include "automata/hedge_automaton.h"
#include "fd/fd_checker.h"
#include "fd/path_fd.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "schema/schema.h"
#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "xml/value_equality.h"
#include "xml/xml_io.h"

namespace rtp {
namespace {

using xml::Document;
using xml::NodeId;

pattern::ParsedPattern MustParse(Alphabet* alphabet, std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

// --- Alphabet ---

TEST(AlphabetTest, ReservedLabelsAndKinds) {
  Alphabet alphabet;
  EXPECT_EQ(alphabet.Find("/"), Alphabet::kRootLabel);
  EXPECT_EQ(alphabet.Find("#text"), Alphabet::kTextLabel);
  EXPECT_EQ(alphabet.Find("nope"), kInvalidLabel);
  LabelId a = alphabet.Intern("@attr");
  EXPECT_EQ(alphabet.Kind(a), LabelKind::kAttribute);
  EXPECT_EQ(alphabet.Kind(Alphabet::kTextLabel), LabelKind::kText);
  EXPECT_EQ(alphabet.Kind(alphabet.Intern("elem")), LabelKind::kElement);
  // Interning is idempotent.
  EXPECT_EQ(alphabet.Intern("@attr"), a);
}

// --- Guard representatives ---

TEST(GuardTest, RepresentativePrefersInternedElementLabels) {
  Alphabet alphabet;
  LabelId e = alphabet.Intern("elem");
  alphabet.Intern("@attr");
  automata::Guard any = automata::Guard::Any();
  EXPECT_EQ(any.RepresentativeElementLabel(&alphabet), e);

  automata::Guard except = automata::Guard::AnyExcept({e});
  LabelId rep = except.RepresentativeElementLabel(&alphabet);
  EXPECT_NE(rep, e);
  EXPECT_EQ(alphabet.Kind(rep), LabelKind::kElement);

  automata::Guard fixed = automata::Guard::Label(e);
  EXPECT_EQ(fixed.RepresentativeElementLabel(&alphabet), e);
}

// --- Value equality across documents and deep chains ---

TEST(ValueEqualityTest, CrossDocumentAndDeepChains) {
  Alphabet alphabet;
  Document d1(&alphabet);
  Document d2(&alphabet);
  NodeId a1 = d1.AddElement(d1.root(), "a");
  NodeId a2 = d2.AddElement(d2.root(), "a");
  NodeId cur1 = a1;
  NodeId cur2 = a2;
  for (int i = 0; i < 50; ++i) {
    cur1 = d1.AddElement(cur1, "n");
    cur2 = d2.AddElement(cur2, "n");
  }
  d1.AddText(cur1, "x");
  d2.AddText(cur2, "x");
  EXPECT_TRUE(xml::ValueEqual(d1, a1, d2, a2));
  d2.set_value(d2.first_child(cur2), "y");
  EXPECT_FALSE(xml::ValueEqual(d1, a1, d2, a2));
}

// --- FD with node-equality conditions ---

TEST(FdCoverageTest, NodeEqualityCondition) {
  Alphabet alphabet;
  // Within the same exam node [N], mark determines rank (trivially since
  // conditions include the exam identity: each exam is its own group).
  auto fd = fd::FunctionalDependency::FromParsed(MustParse(&alphabet, R"(
    root {
      c = session {
        x = candidate/exam {
          p = mark;
          q = rank;
        }
      }
    }
    select x[N], p[V], q[V];
    context c;
  )"));
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  // Two exams with the same mark but different ranks do NOT violate: their
  // exam nodes differ, so they are in different groups.
  Document doc(&alphabet);
  NodeId session = doc.AddElement(doc.root(), "session");
  NodeId cand = doc.AddElement(session, "candidate");
  for (const char* rank : {"1", "2"}) {
    NodeId exam = doc.AddElement(cand, "exam");
    NodeId m = doc.AddElement(exam, "mark");
    doc.AddText(m, "15");
    NodeId r = doc.AddElement(exam, "rank");
    doc.AddText(r, rank);
  }
  EXPECT_TRUE(fd::CheckFd(*fd, doc).satisfied);

  // An exam with two ranks violates it.
  NodeId exam = doc.AddElement(cand, "exam");
  NodeId m = doc.AddElement(exam, "mark");
  doc.AddText(m, "9");
  for (const char* rank : {"3", "4"}) {
    NodeId r = doc.AddElement(exam, "rank");
    doc.AddText(r, rank);
  }
  EXPECT_FALSE(fd::CheckFd(*fd, doc).satisfied);
}

// --- The ordering remark of Section 3.2: the RTP compiled from a path FD
// requires sibling witnesses in document order (unlike [8]). ---

TEST(FdCoverageTest, PathFdOrderingRequirement) {
  Alphabet alphabet;
  // Conditions listed date-then-discipline: the compiled template requires
  // a date child BEFORE a discipline child under the exam.
  auto fd = fd::ParseAndCompilePathFd(
      &alphabet, "(/session/candidate, (exam/date, exam/discipline) -> exam[N])");
  ASSERT_TRUE(fd.ok());

  Document doc(&alphabet);
  NodeId session = doc.AddElement(doc.root(), "session");
  NodeId cand = doc.AddElement(session, "candidate");
  NodeId exam = doc.AddElement(cand, "exam");
  // discipline first, date second: the date-then-discipline template finds
  // no mapping, so the FD holds vacuously.
  NodeId disc = doc.AddElement(exam, "discipline");
  doc.AddText(disc, "math");
  NodeId date = doc.AddElement(exam, "date");
  doc.AddText(date, "d1");

  pattern::MatchTables tables =
      pattern::MatchTables::Build(fd->pattern(), doc);
  EXPECT_FALSE(tables.HasTrace());
  EXPECT_TRUE(fd::CheckFd(*fd, doc).satisfied);
}

// --- Regex parser whitespace and odd labels ---

TEST(RegexCoverageTest, WhitespaceAndOddLabels) {
  Alphabet alphabet;
  auto re = regex::Regex::Parse(&alphabet, "  a / ( b | c ) *  ");
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  LabelId a = alphabet.Intern("a");
  LabelId b = alphabet.Intern("b");
  std::vector<LabelId> word = {a, b, b};
  EXPECT_TRUE(re->Matches(word));

  auto odd = regex::Regex::Parse(&alphabet, "first-name/ns:tag/x.y");
  ASSERT_TRUE(odd.ok()) << odd.status().ToString();
}

// --- Patterns over attribute and text labels ---

TEST(PatternCoverageTest, AttributeAndTextEdges) {
  Alphabet alphabet;
  Document doc(&alphabet);
  NodeId e = doc.AddElement(doc.root(), "e");
  doc.AddAttribute(e, "@id", "7");
  doc.AddText(e, "body");

  auto p = MustParse(&alphabet, R"(
    root { e { a = @id; t = #text; } }
    select a, t;
  )");
  auto result = pattern::EvaluateSelected(p.pattern, doc);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(doc.value(result[0][0]), "7");
  EXPECT_EQ(doc.value(result[0][1]), "body");
}

// --- Schema: nested groups, repetitions, leaf elements ---

TEST(SchemaCoverageTest, ComplexContentModels) {
  Alphabet alphabet;
  auto schema = schema::Schema::Parse(&alphabet, R"(
    schema {
      root doc;
      element doc { (head/body)|(body+) }
      element head { meta* }
      element meta { @name/@value }
      element body { (p|div)* }
      element p { #text? }
      element div { p* }
    }
  )");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  auto check = [&](const char* xml_text, bool expected) {
    auto doc = xml::ParseXml(&alphabet, xml_text);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(schema->Validate(*doc), expected) << xml_text;
  };
  check("<doc><head/><body/></doc>", true);
  check("<doc><body/><body><p>x</p></body></doc>", true);
  check("<doc><head/></doc>", false);
  check("<doc><head/><body/><body/></doc>", false);
  check("<doc><body><div><p/><p>t</p></div></body></doc>", true);
  check("<doc><body><div><div/></div></body></doc>", false);
  check("<doc><head><meta name=\"a\" value=\"b\"/></head><body/></doc>", true);
  check("<doc><head><meta name=\"a\"/></head><body/></doc>", false);
}

// --- Updates: n-ary selections, repeated application ---

TEST(UpdateCoverageTest, NaryUpdateClassSelectsUnion) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  auto parsed = MustParse(&alphabet, R"(
    root {
      session/candidate {
        a = level;
        b = toBePassed;
      }
    }
    select a, b;
  )");
  auto cls = update::UpdateClass::FromParsed(std::move(parsed));
  ASSERT_TRUE(cls.ok());
  std::vector<NodeId> nodes = cls->SelectNodes(doc);
  // Only candidate 001 has both level-then-toBePassed: its level and
  // toBePassed nodes.
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(doc.label_name(nodes[0]), "level");
  EXPECT_EQ(doc.label_name(nodes[1]), "toBePassed");
}

TEST(UpdateCoverageTest, RepeatedDeleteChildrenIsIdempotent) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  auto parsed = MustParse(&alphabet,
                          "root { s = session/candidate/exam; } select s;");
  auto cls = update::UpdateClass::FromParsed(std::move(parsed));
  ASSERT_TRUE(cls.ok());
  update::Update q{&*cls, update::DeleteChildren{}};
  ASSERT_TRUE(update::ApplyUpdate(&doc, q).ok());
  size_t nodes_after_first = doc.LiveNodeCount();
  ASSERT_TRUE(update::ApplyUpdate(&doc, q).ok());
  EXPECT_EQ(doc.LiveNodeCount(), nodes_after_first);
}

TEST(UpdateCoverageTest, UpdatedRootsReported) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  auto parsed = MustParse(&alphabet,
                          "root { s = session/candidate/level; } select s;");
  auto cls = update::UpdateClass::FromParsed(std::move(parsed));
  ASSERT_TRUE(cls.ok());

  // ReplaceSubtree reports the replacement copies.
  auto repl = std::make_shared<Document>(&alphabet);
  NodeId r = repl->AddElement(repl->root(), "level");
  repl->AddText(r, "E");
  update::Update q{&*cls, update::ReplaceSubtree{repl, r}};
  auto stats = update::ApplyUpdate(&doc, q);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->updated_roots.size(), 2u);
  for (NodeId n : stats->updated_roots) {
    EXPECT_EQ(doc.label_name(n), "level");
    EXPECT_EQ(doc.value(doc.first_child(n)), "E");
  }

  // DeleteSelf reports the parents.
  Document doc2 = workload::BuildPaperFigure1Document(&alphabet);
  update::Update del{&*cls, update::DeleteSelf{}};
  auto del_stats = update::ApplyUpdate(&doc2, del);
  ASSERT_TRUE(del_stats.ok());
  for (NodeId n : del_stats->updated_roots) {
    EXPECT_EQ(doc2.label_name(n), "candidate");
  }
}

// --- Hedge automaton small pieces ---

TEST(HedgeAutomatonCoverageTest, TotalSizeAndEmptyAutomaton) {
  automata::HedgeAutomaton empty;
  EXPECT_EQ(empty.NumStates(), 0);
  EXPECT_TRUE(empty.IsEmptyLanguage());

  automata::HedgeAutomaton universal = automata::HedgeAutomaton::Universal();
  EXPECT_GT(universal.TotalSize(), 0);
}

TEST(HedgeAutomatonCoverageTest, RunReturnsStateSets) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  automata::HedgeAutomaton universal = automata::HedgeAutomaton::Universal();
  auto states = universal.Run(doc);
  size_t assigned = 0;
  doc.Visit([&](NodeId n) {
    EXPECT_EQ(states[n].size(), 1u);
    ++assigned;
    return true;
  });
  EXPECT_EQ(assigned, doc.LiveNodeCount());
}

// --- Document clone preserves structure after mutations ---

TEST(DocumentCoverageTest, CloneAfterMutationsMatchesValueEquality) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  NodeId session = doc.first_child(doc.root());
  doc.DetachSubtree(doc.first_child(session));  // drop candidate 001
  Document copy = doc.Clone();
  EXPECT_TRUE(xml::ValueEqual(doc, doc.root(), copy, copy.root()));
  EXPECT_EQ(copy.LiveNodeCount(), doc.LiveNodeCount());
  EXPECT_LE(copy.ArenaSize(), doc.ArenaSize());  // garbage not copied
}

}  // namespace
}  // namespace rtp
