#include "common/status.h"

#include <gtest/gtest.h>

namespace rtp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad token");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(TransportError("x").code(), StatusCode::kTransportError);
}

TEST(StatusTest, TransportStatusesRenderTheirCodeNames) {
  EXPECT_EQ(UnavailableError("down").ToString(), "UNAVAILABLE: down");
  EXPECT_EQ(TransportError("torn").ToString(), "TRANSPORT_ERROR: torn");
}

TEST(StatusTest, ResourceStatusesRenderTheirCodeNames) {
  EXPECT_EQ(DeadlineExceededError("too slow").ToString(),
            "DEADLINE_EXCEEDED: too slow");
  EXPECT_EQ(ResourceExhaustedError("too big").ToString(),
            "RESOURCE_EXHAUSTED: too big");
  EXPECT_EQ(CancelledError("stop").ToString(), "CANCELLED: stop");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RTP_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

}  // namespace
}  // namespace rtp
