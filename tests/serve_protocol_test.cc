// Golden wire-protocol tests for rtpd. The transcripts in examples/serve
// are the protocol's compatibility contract: each `>` line is sent to a
// fresh server byte-for-byte and the reply must match the `<` pattern
// (JSON-structural, order-insensitive; a string "*" in the pattern
// wildcards volatile fields like timing-dependent messages). Renaming a
// response field or bumping schema_version breaks these tests on
// purpose — update the transcripts in the same change.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace rtp::serve {
namespace {

std::string TempSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/rtp_serve_proto_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct TranscriptCase {
  std::string name;
  ServerOptions options;  // socket_path filled in per replay
};

std::vector<TranscriptCase> TranscriptFiles() {
  // Transcript set is fixed (additions come with protocol changes), so an
  // explicit list keeps failures attributable without directory iteration.
  // Each transcript picks the server configuration it documents:
  // overload.txt runs the degenerate always-shed config so the shed
  // envelope (with its retry_after_ms hint) is pinned on the wire.
  ServerOptions defaults;
  ServerOptions always_shed;
  always_shed.queue_capacity = 0;
  always_shed.jobs = 1;
  return {
      {"session.txt", defaults},
      {"errors.txt", defaults},
      {"budget.txt", defaults},
      {"overload.txt", always_shed},
  };
}

struct TranscriptStep {
  int line_number;
  std::string direction;  // ">" or "<"
  std::string payload;
};

std::vector<TranscriptStep> ParseTranscript(const std::string& path) {
  std::vector<TranscriptStep> steps;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open transcript " << path;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_GE(line.size(), 2u) << path << ":" << line_number;
    EXPECT_TRUE(line[0] == '>' || line[0] == '<')
        << path << ":" << line_number << ": lines must start with > or <";
    EXPECT_EQ(line[1], ' ') << path << ":" << line_number;
    steps.push_back({line_number, line.substr(0, 1), line.substr(2)});
  }
  return steps;
}

TEST(ServeProtocolTest, SchemaVersionIsPinned) {
  // Bumping this is a protocol break: regenerate every transcript in
  // examples/serve and say so in the changelog.
  EXPECT_EQ(kProtocolSchemaVersion, 1);
}

TEST(ServeProtocolTest, RequestEncodingIsPinned) {
  Request req;
  req.id = 7;
  req.op = "eval";
  req.tenant = "alpha";
  req.doc = "exam";
  req.text = "root { x = a; } select x;";
  EXPECT_EQ(EncodeRequest(req).Serialize(),
            "{\"id\":7,\"v\":1,\"op\":\"eval\",\"tenant\":\"alpha\","
            "\"doc\":\"exam\",\"text\":\"root { x = a; } select x;\"}");

  Request budgeted;
  budgeted.id = 8;
  budgeted.op = "quota";
  budgeted.tenant = "beta";
  budgeted.has_budget = true;
  budgeted.budget.deadline_ms = 250;
  budgeted.budget.max_steps = 1000;
  EXPECT_EQ(EncodeRequest(budgeted).Serialize(),
            "{\"id\":8,\"v\":1,\"op\":\"quota\",\"tenant\":\"beta\","
            "\"budget\":{\"deadline_ms\":250,\"max_steps\":1000}}");
}

TEST(ServeProtocolTest, GoldenTranscriptsReplay) {
  for (const TranscriptCase& transcript : TranscriptFiles()) {
    const std::string& name = transcript.name;
    SCOPED_TRACE(name);
    const std::string path =
        std::string(RTP_SERVE_TRANSCRIPT_DIR) + "/" + name;
    std::vector<TranscriptStep> steps = ParseTranscript(path);
    ASSERT_FALSE(steps.empty());

    ServerOptions options = transcript.options;
    options.socket_path = TempSocketPath();
    auto server_or = Server::Start(options);
    ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
    std::unique_ptr<Server> server = std::move(server_or).value();
    auto client_or = Client::Connect(options.socket_path);
    ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
    Client client = std::move(client_or).value();

    for (const TranscriptStep& step : steps) {
      SCOPED_TRACE(name + ":" + std::to_string(step.line_number));
      if (step.direction == ">") {
        ASSERT_TRUE(client.SendLine(step.payload).ok());
        continue;
      }
      auto reply_or = client.ReadLine();
      ASSERT_TRUE(reply_or.ok()) << reply_or.status().ToString();
      auto expected_or = JsonValue::Parse(step.payload);
      ASSERT_TRUE(expected_or.ok())
          << "transcript line is not valid JSON: " << step.payload;
      auto actual_or = JsonValue::Parse(*reply_or);
      ASSERT_TRUE(actual_or.ok()) << "reply is not valid JSON: " << *reply_or;
      EXPECT_TRUE(expected_or->MatchesWithWildcards(*actual_or))
          << "expected " << step.payload << "\n actual  " << *reply_or;
    }
    server->Stop();
  }
}

}  // namespace
}  // namespace rtp::serve
