// Spec-layer contract for rtp::workload v2 (docs/WORKLOADS.md): malformed,
// unknown-reference, and cyclic specs yield structured Status errors —
// never crashes — and the committed smoke spec parses to the exact shape
// the load CI leg replays. The runner itself is covered by
// tests/workload_runner_test.cc in the serve battery (it needs a live
// server).

#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "fuzz/rng.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace rtp::workload {
namespace {

std::string SmokeSpecPath() {
  return std::string(RTP_EXAMPLES_WORKLOADS_DIR) + "/smoke.json";
}

// Minimal valid spec the error tests mutate from.
constexpr char kTinySpec[] = R"({
  "name": "tiny",
  "root": "main",
  "nodes": {
    "main": {"op": "loop", "count": 3, "body": "ping"},
    "ping": {"op": "stats"}
  }
})";

TEST(WorkloadSpecTest, TinySpecParses) {
  auto spec = ParseWorkloadSpec(kTinySpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "tiny");
  EXPECT_EQ(spec->tenant, "load");  // default
  ASSERT_EQ(spec->nodes.size(), 2u);
  EXPECT_EQ(spec->root, spec->FindNode("main"));
  const WorkloadNode& main_node = spec->nodes[spec->FindNode("main")];
  EXPECT_EQ(main_node.kind, NodeKind::kLoop);
  EXPECT_EQ(main_node.count, 3u);
  EXPECT_EQ(main_node.body, spec->FindNode("ping"));
}

TEST(WorkloadSpecTest, MalformedJsonIsParseError) {
  auto spec = ParseWorkloadSpec("{\"name\": \"x\", ");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
}

TEST(WorkloadSpecTest, NonObjectSpecRejected) {
  auto spec = ParseWorkloadSpec("[1, 2, 3]");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadSpecTest, UnknownOpRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "main",
    "nodes": {"main": {"op": "frobnicate"}}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("unknown op 'frobnicate'"),
            std::string::npos)
      << spec.status().ToString();
}

TEST(WorkloadSpecTest, UnknownKeyRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "main",
    "nodes": {
      "main": {"op": "random_choice", "children": ["a"], "wieghts": [1]},
      "a": {"op": "stats"}
    }
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("wieghts"), std::string::npos);
}

TEST(WorkloadSpecTest, UnknownNodeReferenceRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "main",
    "nodes": {"main": {"op": "sequence", "children": ["nope"]}}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("unknown node 'nope'"),
            std::string::npos);
}

TEST(WorkloadSpecTest, UnknownRootRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "absent",
    "nodes": {"main": {"op": "stats"}}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("absent"), std::string::npos);
}

TEST(WorkloadSpecTest, CyclicSpecRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {
      "a": {"op": "sequence", "children": ["b"]},
      "b": {"op": "sequence", "children": ["a"]}
    }
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("cycle"), std::string::npos);
}

TEST(WorkloadSpecTest, SelfLoopRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {"a": {"op": "loop", "count": 2, "body": "a"}}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("cycle"), std::string::npos);
}

TEST(WorkloadSpecTest, OverDeepChainRejected) {
  // A 600-deep sequence chain trips the graph depth cap with a structured
  // error instead of exhausting the executor's stack.
  std::string nodes;
  for (int i = 0; i < 600; ++i) {
    if (i > 0) nodes += ",";
    nodes += "\"n" + std::to_string(i) + "\": {\"op\": \"sequence\", " +
             "\"children\": [\"n" + std::to_string(i + 1) + "\"]}";
  }
  nodes += ",\"n600\": {\"op\": \"stats\"}";
  auto spec = ParseWorkloadSpec("{\"name\": \"deep\", \"root\": \"n0\", "
                                "\"nodes\": {" + nodes + "}}");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kResourceExhausted);
}

TEST(WorkloadSpecTest, LoopNeedsExactlyOneOfCountAndDuration) {
  auto neither = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {"a": {"op": "loop", "body": "b"}, "b": {"op": "stats"}}
  })");
  ASSERT_FALSE(neither.ok());
  auto both = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {
      "a": {"op": "loop", "count": 1, "duration_s": 1, "body": "b"},
      "b": {"op": "stats"}
    }
  })");
  ASSERT_FALSE(both.ok());
  EXPECT_NE(both.status().message().find("exactly one"), std::string::npos);
}

TEST(WorkloadSpecTest, WeightsMustMatchChildren) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {
      "a": {"op": "random_choice", "children": ["b", "c"], "weights": [1]},
      "b": {"op": "stats"}, "c": {"op": "stats"}
    }
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("weights"), std::string::npos);
}

TEST(WorkloadSpecTest, ZeroWeightRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {
      "a": {"op": "random_choice", "children": ["b"], "weights": [0]},
      "b": {"op": "stats"}
    }
  })");
  ASSERT_FALSE(spec.ok());
}

TEST(WorkloadSpecTest, OpNeedsExactlyOnePayloadSource) {
  auto none = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {"a": {"op": "eval", "doc": "d"}}
  })");
  ASSERT_FALSE(none.ok());
  EXPECT_NE(none.status().message().find("exactly one payload source"),
            std::string::npos);
  auto two = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "generators": {"g": {"kind": "fuzz_pattern"}},
    "nodes": {"a": {"op": "eval", "doc": "d", "text": "t", "generator": "g"}}
  })");
  ASSERT_FALSE(two.ok());
}

TEST(WorkloadSpecTest, UnknownGeneratorKindRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "generators": {"g": {"kind": "quantum_noise"}},
    "nodes": {"a": {"op": "stats"}}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("quantum_noise"), std::string::npos);
}

TEST(WorkloadSpecTest, UnknownGeneratorReferenceRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {"a": {"op": "eval", "doc": "d", "generator": "ghost"}}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("ghost"), std::string::npos);
}

TEST(WorkloadSpecTest, MissingPayloadFileRejected) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {"a": {"op": "load", "doc": "d", "file": "no/such/file.xml"}}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("no/such/file.xml"),
            std::string::npos);
}

TEST(WorkloadSpecTest, NestedWorkloadParsesAndOverNestingRejected) {
  auto nested = ParseWorkloadSpec(R"({
    "name": "outer", "root": "sub",
    "nodes": {
      "sub": {"op": "workload", "spec": {
        "name": "inner", "root": "a",
        "nodes": {"a": {"op": "stats"}}
      }}
    }
  })");
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  const WorkloadNode& sub = nested->nodes[nested->FindNode("sub")];
  ASSERT_EQ(sub.kind, NodeKind::kWorkload);
  ASSERT_NE(sub.sub, nullptr);
  EXPECT_EQ(sub.sub->name, "inner");

  // Build a spec nested beyond the cap.
  std::string inner = R"({"name": "leaf", "root": "a",
                          "nodes": {"a": {"op": "stats"}}})";
  for (int i = 0; i < 10; ++i) {
    inner = "{\"name\": \"lvl" + std::to_string(i) +
            "\", \"root\": \"w\", \"nodes\": {\"w\": "
            "{\"op\": \"workload\", \"spec\": " + inner + "}}}";
  }
  auto too_deep = ParseWorkloadSpec(inner);
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.status().code(), StatusCode::kResourceExhausted);
}

TEST(WorkloadSpecTest, BudgetFieldsParse) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "nodes": {
      "a": {"op": "eval", "doc": "d", "text": "t",
            "deadline_ms": 250, "max_states": 1000, "max_steps": 5,
            "max_memory_mb": 16}
    }
  })");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const WorkloadNode& a = spec->nodes[0];
  EXPECT_EQ(a.budget.deadline_ms, 250);
  EXPECT_EQ(a.budget.max_automaton_states, 1000);
  EXPECT_EQ(a.budget.max_steps, 5);
  EXPECT_EQ(a.budget.max_memory_bytes, int64_t{16} << 20);
}

// Golden parse of the committed smoke spec — the exact shape the load CI
// leg and bench_serve_throughput replay.
TEST(WorkloadSpecTest, GoldenSmokeSpecParses) {
  auto spec = LoadWorkloadSpecFile(SmokeSpecPath());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "smoke");
  EXPECT_EQ(spec->tenant, "smoke");
  EXPECT_EQ(spec->nodes.size(), 11u);
  ASSERT_EQ(spec->generators.size(), 2u);
  EXPECT_EQ(spec->generators[0].name, "gen_pattern");
  EXPECT_EQ(spec->generators[0].kind, "fuzz_pattern");
  EXPECT_EQ(spec->generators[1].name, "gen_doc");
  EXPECT_EQ(spec->generators[1].kind, "exam_doc");
  EXPECT_EQ(spec->generators[1].exam_candidates, 8u);

  ASSERT_EQ(spec->setup.size(), 1u);
  EXPECT_EQ(spec->setup[0], spec->FindNode("load_exam"));
  const WorkloadNode& load_exam = spec->nodes[spec->FindNode("load_exam")];
  EXPECT_EQ(load_exam.kind, NodeKind::kLoad);
  // The "file" payload is inlined at parse time.
  EXPECT_NE(load_exam.text.find("<session>"), std::string::npos);

  const WorkloadNode& main_node = spec->nodes[spec->root];
  EXPECT_EQ(main_node.kind, NodeKind::kLoop);
  EXPECT_EQ(main_node.count, 120u);
  const WorkloadNode& mix = spec->nodes[spec->FindNode("mix")];
  ASSERT_EQ(mix.kind, NodeKind::kRandomChoice);
  ASSERT_EQ(mix.children.size(), 3u);
  EXPECT_EQ(mix.weights, (std::vector<uint64_t>{5, 3, 2}));
  const WorkloadNode& eval_fuzz = spec->nodes[spec->FindNode("eval_fuzz")];
  EXPECT_EQ(eval_fuzz.generator, 0u);  // gen_pattern
  const WorkloadNode& matrix = spec->nodes[spec->FindNode("small_matrix")];
  ASSERT_EQ(matrix.kind, NodeKind::kMatrix);
  EXPECT_EQ(matrix.fd_texts.size(), 1u);
  EXPECT_EQ(matrix.class_texts.size(), 1u);
}

TEST(WorkloadSpecTest, GoldenSoakSpecParses) {
  auto spec = LoadWorkloadSpecFile(std::string(RTP_EXAMPLES_WORKLOADS_DIR) +
                                   "/soak.json");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const WorkloadNode& nested = spec->nodes[spec->FindNode("nested")];
  ASSERT_EQ(nested.kind, NodeKind::kWorkload);
  ASSERT_NE(nested.sub, nullptr);
  EXPECT_EQ(nested.sub->tenant, "soak-sub");
  const WorkloadNode& main_node = spec->nodes[spec->root];
  EXPECT_GT(main_node.duration_s, 0);
}

TEST(WorkloadSpecTest, GoldenChaosSpecParses) {
  auto spec = LoadWorkloadSpecFile(std::string(RTP_EXAMPLES_WORKLOADS_DIR) +
                                   "/chaos.json");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->chaos.enabled());
  // The chaos CI leg relies on the spec injecting every failing kind plus
  // the benign perturbations — keep all seven rates nonzero.
  EXPECT_GT(spec->chaos.connect_refused, 0u);
  EXPECT_GT(spec->chaos.read_stall, 0u);
  EXPECT_GT(spec->chaos.write_stall, 0u);
  EXPECT_GT(spec->chaos.torn_write, 0u);
  EXPECT_GT(spec->chaos.corrupt_byte, 0u);
  EXPECT_GT(spec->chaos.premature_close, 0u);
  EXPECT_GT(spec->chaos.response_delay, 0u);
  EXPECT_TRUE(spec->chaos.Validate().ok());
  EXPECT_GT(spec->chaos_max_attempts, 1);
  EXPECT_GT(spec->chaos_call_timeout_ms, 0);
}

// The pluggable generator registry: a custom kind registers, resolves
// during parse, and produces payloads (the codes-workload extension
// point).
TEST(WorkloadGeneratorTest, CustomKindPlugsIn) {
  RegisterGeneratorKind(
      "test_constant",
      [](const GeneratorSpec& spec) -> StatusOr<std::unique_ptr<Generator>> {
        class Constant : public Generator {
         public:
          explicit Constant(std::string payload)
              : payload_(std::move(payload)) {}
          std::string Next(fuzz::Rng* /*rng*/) override { return payload_; }

         private:
          std::string payload_;
        };
        return std::unique_ptr<Generator>(
            new Constant(spec.config.FindString("payload")));
      });
  ASSERT_TRUE(GeneratorKindRegistered("test_constant"));

  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "generators": {"g": {"kind": "test_constant", "payload": "root {} select r;"}},
    "nodes": {"a": {"op": "eval", "doc": "d", "generator": "g"}}
  })");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto gen = CreateGenerator(spec->generators[0]);
  ASSERT_TRUE(gen.ok());
  fuzz::Rng rng(1);
  EXPECT_EQ((*gen)->Next(&rng), "root {} select r;");
}

TEST(WorkloadGeneratorTest, FuzzGeneratorsAreSeedDeterministic) {
  auto spec = ParseWorkloadSpec(R"({
    "name": "x", "root": "a",
    "generators": {"g": {"kind": "fuzz_pattern", "num_labels": 3}},
    "nodes": {"a": {"op": "eval", "doc": "d", "generator": "g"}}
  })");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto gen1 = CreateGenerator(spec->generators[0]);
  auto gen2 = CreateGenerator(spec->generators[0]);
  ASSERT_TRUE(gen1.ok());
  ASSERT_TRUE(gen2.ok());
  fuzz::Rng rng1(99), rng2(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*gen1)->Next(&rng1), (*gen2)->Next(&rng2));
  }
}

}  // namespace
}  // namespace rtp::workload
