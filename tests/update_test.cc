#include "update/update_ops.h"

#include <gtest/gtest.h>

#include "fd/fd_checker.h"
#include "workload/exam_generator.h"
#include "workload/paper_patterns.h"
#include "xml/value_equality.h"

namespace rtp::update {
namespace {

using xml::Document;
using xml::NodeId;

UpdateClass MustUpdateClass(pattern::ParsedPattern parsed) {
  auto u = UpdateClass::FromParsed(std::move(parsed));
  RTP_CHECK_MSG(u.ok(), u.status().ToString().c_str());
  return std::move(u).value();
}

// "Decrease the level to the level just below" (paper query q1).
std::string DecreaseLevel(std::string_view level) {
  if (level.size() == 1 && level[0] >= 'A' && level[0] < 'E') {
    return std::string(1, static_cast<char>(level[0] + 1));
  }
  return std::string(level);
}

class UpdateTest : public ::testing::Test {
 protected:
  UpdateTest() : doc_(workload::BuildPaperFigure1Document(&alphabet_)) {}

  NodeId CandidateByIdn(std::string_view idn) {
    NodeId session = doc_.first_child(doc_.root());
    for (NodeId c : doc_.Children(session)) {
      if (doc_.value(doc_.first_child(c)) == idn) return c;
    }
    return xml::kInvalidNode;
  }

  std::string LevelOf(NodeId candidate) {
    for (NodeId c : doc_.Children(candidate)) {
      if (doc_.label_name(c) == "level") return doc_.value(doc_.first_child(c));
    }
    return "";
  }

  Alphabet alphabet_;
  Document doc_;
};

TEST_F(UpdateTest, CreateRequiresSelection) {
  auto parsed = pattern::ParsePattern(&alphabet_, "root { a; }");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(UpdateClass::FromParsed(std::move(parsed).value()).ok());
}

TEST_F(UpdateTest, SelectedAreLeavesDetection) {
  UpdateClass u_leaf = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  EXPECT_TRUE(u_leaf.SelectedAreLeaves());

  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session { candidate; } }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  UpdateClass u_internal = MustUpdateClass(std::move(parsed).value());
  EXPECT_FALSE(u_internal.SelectedAreLeaves());
}

TEST_F(UpdateTest, Example4ClassUSelectsOnlyCandidate001Level) {
  UpdateClass u = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  std::vector<NodeId> nodes = u.SelectNodes(doc_);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc_.label_name(nodes[0]), "level");
  EXPECT_EQ(doc_.parent(nodes[0]), CandidateByIdn("001"));
}

TEST_F(UpdateTest, Q1DecreasesLevelOfCandidate001Only) {
  UpdateClass u = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  Update q1{&u, TransformValues{DecreaseLevel}};
  auto stats = ApplyUpdate(&doc_, q1);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->nodes_updated, 1u);
  EXPECT_EQ(LevelOf(CandidateByIdn("001")), "C");  // was B
  EXPECT_EQ(LevelOf(CandidateByIdn("012")), "C");  // untouched
}

TEST_F(UpdateTest, Q2AppendsCommentChildToLevel) {
  UpdateClass u = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  auto comment = std::make_shared<Document>(&alphabet_);
  NodeId c = comment->AddElement(comment->root(), "comment");
  comment->AddText(c, "must retake chemistry");
  Update q2{&u, AppendChild{comment, c}};
  auto stats = ApplyUpdate(&doc_, q2);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->nodes_updated, 1u);

  NodeId level = xml::kInvalidNode;
  for (NodeId k : doc_.Children(CandidateByIdn("001"))) {
    if (doc_.label_name(k) == "level") level = k;
  }
  ASSERT_NE(level, xml::kInvalidNode);
  std::vector<NodeId> kids = doc_.Children(level);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(doc_.label_name(kids[1]), "comment");
}

TEST_F(UpdateTest, ReplaceSubtreeSwapsSelectedNode) {
  UpdateClass u = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  auto repl = std::make_shared<Document>(&alphabet_);
  NodeId r = repl->AddElement(repl->root(), "level");
  repl->AddText(r, "E");
  Update q{&u, ReplaceSubtree{repl, r}};
  ASSERT_TRUE(ApplyUpdate(&doc_, q).ok());
  EXPECT_EQ(LevelOf(CandidateByIdn("001")), "E");
}

TEST_F(UpdateTest, SetValueOnlyOnLeaves) {
  // Select @IDN attributes.
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session/candidate/@IDN; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  UpdateClass u_attr = MustUpdateClass(std::move(parsed).value());
  Update set{&u_attr, SetValue{"XXX"}};
  auto stats = ApplyUpdate(&doc_, set);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->nodes_updated, 2u);
  EXPECT_EQ(doc_.value(doc_.first_child(CandidateByIdn("XXX"))), "XXX");

  // SetValue on element nodes is rejected.
  UpdateClass u_level = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  Update bad{&u_level, SetValue{"Z"}};
  EXPECT_FALSE(ApplyUpdate(&doc_, bad).ok());
}

TEST_F(UpdateTest, DeleteChildrenAndDeleteSelf) {
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session/candidate/toBePassed; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  UpdateClass u = MustUpdateClass(std::move(parsed).value());

  Document doc2 = workload::BuildPaperFigure1Document(&alphabet_);
  Update del_children{&u, DeleteChildren{}};
  ASSERT_TRUE(ApplyUpdate(&doc2, del_children).ok());
  // toBePassed still present, but empty.
  std::vector<NodeId> selected = u.SelectNodes(doc2);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(doc2.ChildCount(selected[0]), 0u);

  Update del_self{&u, DeleteSelf{}};
  ASSERT_TRUE(ApplyUpdate(&doc_, del_self).ok());
  EXPECT_TRUE(u.SelectNodes(doc_).empty());
}

TEST_F(UpdateTest, NestedSelectionsCollapseToAncestor) {
  // Pattern selecting both every candidate and every exam below it.
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root {
      session {
        a = candidate {
          b = exam;
        }
      }
    }
    select a, b;
  )");
  ASSERT_TRUE(parsed.ok());
  UpdateClass u = MustUpdateClass(std::move(parsed).value());
  Update del{&u, DeleteSelf{}};
  auto stats = ApplyUpdate(&doc_, del);
  ASSERT_TRUE(stats.ok());
  // Two candidates deleted; their exams were subsumed.
  EXPECT_EQ(stats->nodes_updated, 2u);
  NodeId session = doc_.first_child(doc_.root());
  EXPECT_EQ(doc_.ChildCount(session), 0u);
}

TEST_F(UpdateTest, FailedPreconditionLeavesDocumentUnchanged) {
  UpdateClass u = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  Document before = workload::BuildPaperFigure1Document(&alphabet_);
  Update bad{&u, SetValue{"Z"}};  // level is an element: rejected
  ASSERT_FALSE(ApplyUpdate(&doc_, bad).ok());
  EXPECT_TRUE(xml::ValueEqual(doc_, doc_.root(), before, before.root()));
}

// --- Example 5: q1 impacts fd3. ---

TEST_F(UpdateTest, Example5UpdateQ1ImpactsFd3) {
  // Document satisfying fd3: two candidates with equal marks in two
  // disciplines and the same level; only the first still has exams to pass.
  Document doc(&alphabet_);
  NodeId session = doc.AddElement(doc.root(), "session");
  for (int i = 0; i < 2; ++i) {
    NodeId c = doc.AddElement(session, "candidate");
    doc.AddAttribute(c, "@IDN", i == 0 ? "g1" : "g2");
    for (const char* mark : {"12", "17"}) {
      NodeId exam = doc.AddElement(c, "exam");
      NodeId d = doc.AddElement(exam, "discipline");
      doc.AddText(d, mark[0] == '1' && mark[1] == '2' ? "bio" : "math");
      NodeId m = doc.AddElement(exam, "mark");
      doc.AddText(m, mark);
    }
    NodeId level = doc.AddElement(c, "level");
    doc.AddText(level, "B");
    if (i == 0) {
      NodeId tbp = doc.AddElement(c, "toBePassed");
      NodeId d = doc.AddElement(tbp, "discipline");
      doc.AddText(d, "chem");
    } else {
      NodeId fj = doc.AddElement(c, "firstJob-Year");
      doc.AddText(fj, "2012");
    }
  }

  auto fd3 = fd::FunctionalDependency::FromParsed(workload::PaperFd3(&alphabet_));
  ASSERT_TRUE(fd3.ok());
  EXPECT_TRUE(fd::CheckFd(*fd3, doc).satisfied);

  UpdateClass u = MustUpdateClass(workload::PaperUpdateU(&alphabet_));
  Update q1{&u, TransformValues{DecreaseLevel}};
  ASSERT_TRUE(ApplyUpdate(&doc, q1).ok());

  // Only g1's level was decreased: fd3 is now violated.
  EXPECT_FALSE(fd::CheckFd(*fd3, doc).satisfied);
}

}  // namespace
}  // namespace rtp::update
