#include "xpath/xpath.h"

#include <gtest/gtest.h>

#include "independence/criterion.h"
#include "update/update_class.h"
#include "workload/exam_generator.h"
#include "workload/paper_patterns.h"
#include "xml/xml_io.h"

namespace rtp::xpath {
namespace {

using xml::Document;
using xml::NodeId;

CompiledXPath MustCompile(Alphabet* alphabet, std::string_view query) {
  auto compiled = CompileXPath(alphabet, query);
  RTP_CHECK_MSG(compiled.ok(), compiled.status().ToString().c_str());
  return std::move(compiled).value();
}

std::vector<std::string> Labels(const Document& doc,
                                const std::vector<NodeId>& nodes) {
  std::vector<std::string> out;
  for (NodeId n : nodes) out.push_back(doc.label_name(n));
  return out;
}

class XPathTest : public ::testing::Test {
 protected:
  XPathTest() : doc_(workload::BuildPaperFigure1Document(&alphabet_)) {}

  Alphabet alphabet_;
  Document doc_;
};

TEST_F(XPathTest, ChildAxisPath) {
  CompiledXPath q = MustCompile(&alphabet_, "/session/candidate/exam");
  std::vector<NodeId> nodes = EvaluateXPath(q, doc_);
  EXPECT_EQ(nodes.size(), 4u);
  for (NodeId n : nodes) EXPECT_EQ(doc_.label_name(n), "exam");
}

TEST_F(XPathTest, DescendantAxis) {
  CompiledXPath q = MustCompile(&alphabet_, "//discipline");
  // 4 exam disciplines + 1 toBePassed discipline.
  EXPECT_EQ(EvaluateXPath(q, doc_).size(), 5u);

  CompiledXPath nested = MustCompile(&alphabet_, "/session//discipline");
  EXPECT_EQ(EvaluateXPath(nested, doc_).size(), 5u);

  CompiledXPath under_exam = MustCompile(&alphabet_, "//exam/discipline");
  EXPECT_EQ(EvaluateXPath(under_exam, doc_).size(), 4u);
}

TEST_F(XPathTest, WildcardAndLeafTests) {
  CompiledXPath stars = MustCompile(&alphabet_, "/session/*/exam/*");
  // Each exam has 4 element children: 16 nodes.
  EXPECT_EQ(EvaluateXPath(stars, doc_).size(), 16u);

  CompiledXPath attr = MustCompile(&alphabet_, "/session/candidate/@IDN");
  std::vector<NodeId> attrs = EvaluateXPath(attr, doc_);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(doc_.value(attrs[0]), "001");
  EXPECT_EQ(doc_.value(attrs[1]), "012");

  CompiledXPath text = MustCompile(&alphabet_, "//level/text()");
  std::vector<NodeId> texts = EvaluateXPath(text, doc_);
  ASSERT_EQ(texts.size(), 2u);
  EXPECT_EQ(doc_.value(texts[0]), "B");
  EXPECT_EQ(doc_.value(texts[1]), "C");
}

TEST_F(XPathTest, Predicates) {
  // Candidates that still have exams to pass.
  CompiledXPath q = MustCompile(&alphabet_, "/session/candidate[toBePassed]");
  std::vector<NodeId> nodes = EvaluateXPath(q, doc_);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc_.value(doc_.first_child(nodes[0])), "001");

  // Their levels (predicate midway through the path). Note the template
  // order requirement: level follows toBePassed in the template, but in
  // the document level precedes toBePassed — so we list the predicate
  // AFTER the step continuation would not match; instead use the
  // attribute (first child) as the witness.
  CompiledXPath levels =
      MustCompile(&alphabet_, "/session/candidate[@IDN]/level");
  EXPECT_EQ(EvaluateXPath(levels, doc_).size(), 2u);
}

TEST_F(XPathTest, PredicateWithRelativePath) {
  // Candidates having some exam with a mark (all of them).
  CompiledXPath q =
      MustCompile(&alphabet_, "/session/candidate[exam/mark]");
  EXPECT_EQ(EvaluateXPath(q, doc_).size(), 2u);

  // Candidates with a chemistry discipline somewhere below: none have the
  // label 'chemistry' as an element name (it is text content), so empty.
  CompiledXPath none =
      MustCompile(&alphabet_, "/session/candidate[.//chemistry]");
  EXPECT_TRUE(EvaluateXPath(none, doc_).empty());
}

TEST_F(XPathTest, OrderedPredicateCaveat) {
  // The documented divergence from standard XPath: predicates must match
  // in document order BEFORE the continuation. 'level' precedes
  // 'toBePassed' in candidate children, so [toBePassed]/level selects
  // nothing while [exam]/level works.
  CompiledXPath after =
      MustCompile(&alphabet_, "/session/candidate[toBePassed]/level");
  EXPECT_TRUE(EvaluateXPath(after, doc_).empty());

  CompiledXPath before =
      MustCompile(&alphabet_, "/session/candidate[exam]/level");
  EXPECT_EQ(EvaluateXPath(before, doc_).size(), 2u);
}

TEST_F(XPathTest, UnionOfPaths) {
  CompiledXPath q =
      MustCompile(&alphabet_, "//level | //rank | /session/candidate/@IDN");
  ASSERT_EQ(q.branches.size(), 3u);
  std::vector<NodeId> nodes = EvaluateXPath(q, doc_);
  // 2 levels + 4 ranks + 2 attributes.
  EXPECT_EQ(nodes.size(), 8u);
  // Document order and dedup.
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_TRUE(doc_.DocumentOrderLess(nodes[i - 1], nodes[i]));
  }
}

TEST_F(XPathTest, MultiplePredicates) {
  CompiledXPath q =
      MustCompile(&alphabet_, "/session/candidate[@IDN][exam]/level");
  EXPECT_EQ(EvaluateXPath(q, doc_).size(), 2u);
}

TEST_F(XPathTest, ParseErrors) {
  Alphabet alphabet;
  EXPECT_FALSE(CompileXPath(&alphabet, "").ok());
  EXPECT_FALSE(CompileXPath(&alphabet, "session").ok());  // relative
  EXPECT_FALSE(CompileXPath(&alphabet, "/a[").ok());
  EXPECT_FALSE(CompileXPath(&alphabet, "/a]").ok());
  EXPECT_FALSE(CompileXPath(&alphabet, "/a | b").ok());
  EXPECT_FALSE(CompileXPath(&alphabet, "/a//").ok());
}

TEST_F(XPathTest, XPathUpdateClassFeedsCriterion) {
  // The conclusion's application: update classes given in XPath drive the
  // independence analysis.
  CompiledXPath q = MustCompile(&alphabet_, "/session/candidate/level");
  ASSERT_EQ(q.branches.size(), 1u);
  auto cls = update::UpdateClass::Create(q.branches[0]);
  ASSERT_TRUE(cls.ok());

  auto fd1 = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet_));
  ASSERT_TRUE(fd1.ok());
  auto result =
      independence::CheckIndependence(*fd1, *cls, nullptr, &alphabet_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->independent);

  CompiledXPath ranks = MustCompile(&alphabet_, "//rank");
  auto rank_cls = update::UpdateClass::Create(ranks.branches[0]);
  ASSERT_TRUE(rank_cls.ok());
  auto flagged =
      independence::CheckIndependence(*fd1, *rank_cls, nullptr, &alphabet_);
  ASSERT_TRUE(flagged.ok());
  EXPECT_FALSE(flagged->independent);
}

}  // namespace
}  // namespace rtp::xpath
