// Tests for the supporting features: arena compaction, DOT export, the
// independence-matrix API.

#include <gtest/gtest.h>

#include "automata/pattern_compiler.h"
#include "independence/matrix.h"
#include "pattern/dot_export.h"
#include "pattern/evaluator.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"
#include "xml/value_equality.h"

namespace rtp {
namespace {

using xml::Document;
using xml::NodeId;

TEST(CompactTest, ReclaimsGarbageAndPreservesStructure) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  Document reference = doc.Clone();

  NodeId session = doc.first_child(doc.root());
  doc.DetachSubtree(doc.first_child(session));  // drop candidate 001
  reference.DetachSubtree(reference.first_child(reference.first_child(
      reference.root())));

  size_t live = doc.LiveNodeCount();
  ASSERT_GT(doc.ArenaSize(), live);

  std::vector<NodeId> remap;
  doc.Compact(&remap);
  EXPECT_EQ(doc.ArenaSize(), live);
  EXPECT_EQ(doc.LiveNodeCount(), live);
  EXPECT_TRUE(xml::ValueEqual(doc, doc.root(), reference, reference.root()));

  // The remap translates old live ids and blanks garbage.
  EXPECT_EQ(remap[0], doc.root());
  size_t mapped = 0;
  for (NodeId id : remap) {
    if (id != xml::kInvalidNode) ++mapped;
  }
  EXPECT_EQ(mapped, live);

  // The compacted document still evaluates correctly.
  pattern::ParsedPattern r3 = workload::PaperR3(&alphabet);
  EXPECT_EQ(pattern::EvaluateSelected(r3.pattern, doc).size(), 1u);
}

TEST(CompactTest, CompactingCleanDocumentIsStable) {
  Alphabet alphabet;
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  size_t arena = doc.ArenaSize();
  doc.Compact();
  EXPECT_EQ(doc.ArenaSize(), arena);
  Document reference = workload::BuildPaperFigure1Document(&alphabet);
  EXPECT_TRUE(xml::ValueEqual(doc, doc.root(), reference, reference.root()));
}

TEST(DotExportTest, PatternDotMentionsEdgesAndSelection) {
  Alphabet alphabet;
  pattern::ParsedPattern fd1 = workload::PaperFd1(&alphabet);
  std::string dot = pattern::PatternToDot(fd1.pattern, alphabet,
                                          fd1.context.value());
  EXPECT_NE(dot.find("digraph pattern"), std::string::npos);
  EXPECT_NE(dot.find("candidate/exam"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);   // selected
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);  // context
  EXPECT_NE(dot.find("rank"), std::string::npos);
}

TEST(DotExportTest, AutomatonDotMentionsGuardsAndMarks) {
  Alphabet alphabet;
  pattern::ParsedPattern u = workload::PaperUpdateU(&alphabet);
  automata::HedgeAutomaton automaton = automata::CompilePattern(
      u.pattern, automata::MarkMode::kSelectedImagesOnly);
  std::string dot = automata::AutomatonToDot(automaton, alphabet);
  EXPECT_NE(dot.find("digraph automaton"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // root accepting
  EXPECT_NE(dot.find("lightyellow"), std::string::npos);    // marked state
  EXPECT_NE(dot.find("level"), std::string::npos);
}

TEST(MatrixTest, MatchesPairwiseCriterion) {
  Alphabet alphabet;
  schema::Schema schema = workload::BuildExamSchema(&alphabet);
  auto fd1 = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  auto fd5 = fd::FunctionalDependency::FromParsed(workload::PaperFd5(&alphabet));
  ASSERT_TRUE(fd1.ok() && fd5.ok());
  auto levels = update::UpdateClass::FromParsed(workload::PaperUpdateU(&alphabet));
  auto ranks_pattern = pattern::ParsePattern(
      &alphabet, "root { s = session/candidate/exam/rank; } select s;");
  ASSERT_TRUE(ranks_pattern.ok());
  auto ranks = update::UpdateClass::FromParsed(std::move(ranks_pattern).value());
  ASSERT_TRUE(levels.ok() && ranks.ok());

  auto matrix = independence::ComputeIndependenceMatrix(
      {&*fd1, &*fd5}, {&*levels, &*ranks}, &schema, &alphabet);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  EXPECT_EQ(matrix->num_fds, 2u);
  EXPECT_EQ(matrix->num_classes, 2u);
  EXPECT_TRUE(matrix->at(0, 0).independent);   // fd1 vs levels
  EXPECT_FALSE(matrix->at(0, 1).independent);  // fd1 vs ranks
  EXPECT_TRUE(matrix->at(1, 0).independent);   // fd5 vs levels
  EXPECT_TRUE(matrix->at(1, 1).independent);   // fd5 vs ranks

  EXPECT_EQ(matrix->FdsToRecheck(0), std::vector<size_t>{});
  EXPECT_EQ(matrix->FdsToRecheck(1), std::vector<size_t>{0});
  EXPECT_DOUBLE_EQ(matrix->IndependentFraction(), 0.75);

  std::string text = matrix->ToString({"fd1", "fd5"}, {"levels", "ranks"});
  EXPECT_NE(text.find("safe"), std::string::npos);
  EXPECT_NE(text.find("check"), std::string::npos);
}

TEST(MatrixTest, PropagatesErrors) {
  Alphabet alphabet;
  auto fd1 = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  ASSERT_TRUE(fd1.ok());
  auto internal_pattern = pattern::ParsePattern(
      &alphabet, "root { s = session { candidate; } } select s;");
  ASSERT_TRUE(internal_pattern.ok());
  auto internal =
      update::UpdateClass::FromParsed(std::move(internal_pattern).value());
  ASSERT_TRUE(internal.ok());
  auto matrix = independence::ComputeIndependenceMatrix(
      {&*fd1}, {&*internal}, nullptr, &alphabet);
  EXPECT_FALSE(matrix.ok());
}

}  // namespace
}  // namespace rtp
