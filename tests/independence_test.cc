#include "independence/criterion.h"

#include <gtest/gtest.h>

#include "fd/fd_checker.h"
#include "fd/path_fd.h"
#include "independence/impact_search.h"
#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "workload/exam_schema.h"
#include "workload/paper_patterns.h"

namespace rtp::independence {
namespace {

using xml::Document;
using xml::NodeId;

fd::FunctionalDependency MustFd(pattern::ParsedPattern parsed) {
  auto fd = fd::FunctionalDependency::FromParsed(std::move(parsed));
  RTP_CHECK_MSG(fd.ok(), fd.status().ToString().c_str());
  return std::move(fd).value();
}

update::UpdateClass MustUpdate(pattern::ParsedPattern parsed) {
  auto u = update::UpdateClass::FromParsed(std::move(parsed));
  RTP_CHECK_MSG(u.ok(), u.status().ToString().c_str());
  return std::move(u).value();
}

class IndependenceTest : public ::testing::Test {
 protected:
  IndependenceTest()
      : schema_(workload::BuildExamSchema(&alphabet_)),
        permissive_schema_(workload::BuildPermissiveExamSchema(&alphabet_)) {}

  Alphabet alphabet_;
  schema::Schema schema_;
  schema::Schema permissive_schema_;
};

// --- Example 6: fd5 is independent of U under the XOR schema. ---

TEST_F(IndependenceTest, Example6Fd5IndependentUnderSchema) {
  fd::FunctionalDependency fd5 = MustFd(workload::PaperFd5(&alphabet_));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet_));

  auto result = CheckIndependence(fd5, u, &schema_, &alphabet_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->independent);
  EXPECT_GT(result->fd_automaton_size, 0);
  EXPECT_GT(result->product_size, 0);
}

TEST_F(IndependenceTest, Example6Fd5NotProvenWithoutSchema) {
  // Without the XOR constraint a candidate may carry both toBePassed and
  // firstJob-Year: the updated level can sit on an fd5 trace.
  fd::FunctionalDependency fd5 = MustFd(workload::PaperFd5(&alphabet_));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet_));

  CriterionOptions options;
  options.want_conflict_candidate = true;
  auto result = CheckIndependence(fd5, u, nullptr, &alphabet_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->independent);
  ASSERT_TRUE(result->conflict_candidate.has_value());
  // The synthesized conflict candidate really is in L (cross-validation of
  // the automaton against the direct evaluator-based definition).
  EXPECT_TRUE(
      IsInCriterionLanguage(*result->conflict_candidate, fd5, u, nullptr));
}

TEST_F(IndependenceTest, Example6Fd5NotProvenUnderPermissiveSchema) {
  fd::FunctionalDependency fd5 = MustFd(workload::PaperFd5(&alphabet_));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet_));

  CriterionOptions options;
  options.want_conflict_candidate = true;
  auto result =
      CheckIndependence(fd5, u, &permissive_schema_, &alphabet_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->independent);
  ASSERT_TRUE(result->conflict_candidate.has_value());
  EXPECT_TRUE(permissive_schema_.Validate(*result->conflict_candidate));
  EXPECT_TRUE(IsInCriterionLanguage(*result->conflict_candidate, fd5, u,
                                    &permissive_schema_));
}

// --- fd3 (Example 5): U touches levels on fd3 traces: not independent. ---

TEST_F(IndependenceTest, Fd3NotProvenIndependent) {
  fd::FunctionalDependency fd3 = MustFd(workload::PaperFd3(&alphabet_));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet_));
  auto result = CheckIndependence(fd3, u, &schema_, &alphabet_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->independent);
}

// fd1 concerns ranks; U updates levels only: independent under the schema
// (ranks are never inside a level subtree).
TEST_F(IndependenceTest, Fd1IndependentOfLevelUpdates) {
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet_));
  auto result = CheckIndependence(fd1, u, &schema_, &alphabet_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->independent);
}

// Even without a schema fd1 is independent of level updates: both paths
// are anchored at the document root, so an updated node is always a
// root/session/candidate/level node, which can never lie on an fd1 trace
// nor inside a discipline/mark/rank subtree (those live under
// root/session/candidate/exam at other labels/depths).
TEST_F(IndependenceTest, Fd1IndependentOfLevelUpdatesEvenWithoutSchema) {
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet_));
  auto result = CheckIndependence(fd1, u, nullptr, &alphabet_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->independent);
}

// An update class rewriting ranks is flagged against fd1.
TEST_F(IndependenceTest, RankUpdatesConflictWithFd1) {
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session/candidate/exam/rank; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  update::UpdateClass u = MustUpdate(std::move(parsed).value());

  CriterionOptions options;
  options.want_conflict_candidate = true;
  auto result = CheckIndependence(fd1, u, &schema_, &alphabet_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->independent);
  ASSERT_TRUE(result->conflict_candidate.has_value());
  EXPECT_TRUE(schema_.Validate(*result->conflict_candidate));
  EXPECT_TRUE(
      IsInCriterionLanguage(*result->conflict_candidate, fd1, u, &schema_));

  // The flag is justified: a real impact exists.
  ImpactSearchParams params;
  params.num_documents = 60;
  ImpactSearchResult search = SearchForImpact(fd1, u, schema_, params);
  EXPECT_TRUE(search.impact_found);
}

// Updates on toBePassed disciplines never touch fd1 traces.
TEST_F(IndependenceTest, ToBePassedUpdatesIndependentOfFd1) {
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session/candidate/toBePassed/discipline; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  update::UpdateClass u = MustUpdate(std::move(parsed).value());
  auto result = CheckIndependence(fd1, u, &schema_, &alphabet_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->independent);
}

// Non-leaf selected nodes are rejected (the paper's restriction).
TEST_F(IndependenceTest, NonLeafSelectionRejected) {
  fd::FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session/candidate { level; } }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  update::UpdateClass u = MustUpdate(std::move(parsed).value());
  auto result = CheckIndependence(fd1, u, &schema_, &alphabet_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Soundness (Proposition 2): when IC proves independence, no random
// impact search may succeed. ---

TEST_F(IndependenceTest, SoundnessOnProvenIndependentPairs) {
  struct Case {
    fd::FunctionalDependency fd;
    update::UpdateClass u;
  };
  std::vector<Case> cases;
  cases.push_back(Case{MustFd(workload::PaperFd5(&alphabet_)),
                       MustUpdate(workload::PaperUpdateU(&alphabet_))});
  cases.push_back(Case{MustFd(workload::PaperFd1(&alphabet_)),
                       MustUpdate(workload::PaperUpdateU(&alphabet_))});

  for (const Case& c : cases) {
    auto result = CheckIndependence(c.fd, c.u, &schema_, &alphabet_);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->independent);
    ImpactSearchParams params;
    params.num_documents = 40;
    ImpactSearchResult search = SearchForImpact(c.fd, c.u, schema_, params);
    EXPECT_FALSE(search.impact_found)
        << (search.witness ? search.witness->description : "");
  }
}

// The node-equality refinement: a key constraint (target candidate[N]) is
// independent of updates strictly below the keyed node that do not touch
// the key path — and impact search confirms no concrete update breaks it.
TEST_F(IndependenceTest, KeyIndependentOfUpdatesBelowKeyedNode) {
  auto key = fd::ParseAndCompilePathFd(
      &alphabet_, "(/session, (candidate/@IDN) -> candidate[N])");
  ASSERT_TRUE(key.ok()) << key.status().ToString();

  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session/candidate/exam/mark; }
    select s;
  )");
  ASSERT_TRUE(parsed.ok());
  update::UpdateClass marks = MustUpdate(std::move(parsed).value());

  auto result = CheckIndependence(*key, marks, &schema_, &alphabet_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->independent);

  ImpactSearchParams params;
  params.num_documents = 40;
  ImpactSearchResult search = SearchForImpact(*key, marks, schema_, params);
  EXPECT_FALSE(search.impact_found);

  // Updates on the key path itself remain flagged.
  auto idn_parsed = pattern::ParsePattern(&alphabet_, R"(
    root { s = session/candidate/@IDN; }
    select s;
  )");
  ASSERT_TRUE(idn_parsed.ok());
  update::UpdateClass idns = MustUpdate(std::move(idn_parsed).value());
  auto flagged = CheckIndependence(*key, idns, &schema_, &alphabet_);
  ASSERT_TRUE(flagged.ok());
  EXPECT_FALSE(flagged->independent);
}

// The criterion language membership test agrees with schema validation
// plus trace analysis on generated documents.
TEST_F(IndependenceTest, CriterionLanguageMembershipOnGeneratedDocs) {
  fd::FunctionalDependency fd3 = MustFd(workload::PaperFd3(&alphabet_));
  update::UpdateClass u = MustUpdate(workload::PaperUpdateU(&alphabet_));

  int in_language = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    workload::ExamWorkloadParams params;
    params.num_candidates = 6;
    params.exams_per_candidate = 2;
    params.seed = seed;
    Document doc = workload::GenerateExamDocument(&alphabet_, params);
    if (IsInCriterionLanguage(doc, fd3, u, &schema_)) ++in_language;
  }
  // fd3 traces exist in most documents and U touches their levels.
  EXPECT_GT(in_language, 0);
}

}  // namespace
}  // namespace rtp::independence
