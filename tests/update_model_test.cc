// The paper's update model (Section 4): every update is a replacement of
// the subtrees rooted at the selected nodes, and insertions/deletions are
// replacements at the parent. These tests verify the provided convenience
// operations are consistent with that canonical model.

#include <gtest/gtest.h>

#include "update/update_ops.h"
#include "workload/exam_generator.h"
#include "xml/value_equality.h"

namespace rtp::update {
namespace {

using xml::Document;
using xml::NodeId;

UpdateClass MustClass(Alphabet* alphabet, std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  auto cls = UpdateClass::FromParsed(std::move(parsed).value());
  RTP_CHECK(cls.ok());
  return std::move(cls).value();
}

// AppendChild at node w == ReplaceSubtree at w with a copy of w's own
// subtree plus the appended child.
TEST(UpdateModelTest, AppendChildEqualsReplacement) {
  Alphabet alphabet;
  Document via_append = workload::BuildPaperFigure1Document(&alphabet);
  Document via_replace = workload::BuildPaperFigure1Document(&alphabet);
  UpdateClass levels = MustClass(
      &alphabet, "root { session/candidate { s = level; toBePassed; } } select s;");

  auto comment = std::make_shared<Document>(&alphabet);
  NodeId c = comment->AddElement(comment->root(), "comment");
  comment->AddText(c, "x");

  // Route 1: AppendChild.
  Update q_append{&levels, AppendChild{comment, c}};
  ASSERT_TRUE(ApplyUpdate(&via_append, q_append).ok());

  // Route 2: canonical replacement — build the replacement subtree by
  // copying the selected node and appending the child to the copy.
  std::vector<NodeId> selected = levels.SelectNodes(via_replace);
  ASSERT_EQ(selected.size(), 1u);
  auto replacement = std::make_shared<Document>(&alphabet);
  NodeId copy =
      replacement->CopySubtree(via_replace, selected[0], replacement->root());
  replacement->CopySubtree(*comment, c, copy);
  Update q_replace{&levels, ReplaceSubtree{replacement, copy}};
  ASSERT_TRUE(ApplyUpdate(&via_replace, q_replace).ok());

  EXPECT_TRUE(xml::ValueEqual(via_append, via_append.root(), via_replace,
                              via_replace.root()));
}

// DeleteSelf at node w == ReplaceSubtree at parent(w) with the parent's
// subtree minus w (the paper's "deletion is an update of the father").
TEST(UpdateModelTest, DeleteSelfEqualsParentReplacement) {
  Alphabet alphabet;
  Document via_delete = workload::BuildPaperFigure1Document(&alphabet);
  Document via_replace = workload::BuildPaperFigure1Document(&alphabet);

  UpdateClass tbp = MustClass(
      &alphabet, "root { s = session/candidate/toBePassed; } select s;");
  Update q_delete{&tbp, DeleteSelf{}};
  ASSERT_TRUE(ApplyUpdate(&via_delete, q_delete).ok());

  // Canonical: replace the candidate (the parent) by a copy without the
  // toBePassed child.
  std::vector<NodeId> selected = tbp.SelectNodes(via_replace);
  ASSERT_EQ(selected.size(), 1u);
  NodeId parent = via_replace.parent(selected[0]);
  auto replacement = std::make_shared<Document>(&alphabet);
  NodeId copy =
      replacement->CopySubtree(via_replace, parent, replacement->root());
  // Remove the copied toBePassed from the copy.
  for (NodeId k : replacement->Children(copy)) {
    if (replacement->label_name(k) == "toBePassed") {
      replacement->DetachSubtree(k);
    }
  }
  std::vector<NodeId> parent_nodes = {parent};
  auto stats =
      ApplyOperationAt(&via_replace, parent_nodes,
                       ReplaceSubtree{replacement, copy});
  ASSERT_TRUE(stats.ok());

  EXPECT_TRUE(xml::ValueEqual(via_delete, via_delete.root(), via_replace,
                              via_replace.root()));
}

// SetValue on a leaf == ReplaceSubtree with a single-leaf document.
TEST(UpdateModelTest, SetValueEqualsLeafReplacement) {
  Alphabet alphabet;
  Document via_set = workload::BuildPaperFigure1Document(&alphabet);
  Document via_replace = workload::BuildPaperFigure1Document(&alphabet);
  UpdateClass idns =
      MustClass(&alphabet, "root { s = session/candidate/@IDN; } select s;");

  Update q_set{&idns, SetValue{"ZZZ"}};
  ASSERT_TRUE(ApplyUpdate(&via_set, q_set).ok());

  auto leaf = std::make_shared<Document>(&alphabet);
  leaf->AddAttribute(leaf->root(), "@IDN", "ZZZ");
  Update q_replace{&idns, ReplaceSubtree{leaf, leaf->first_child(leaf->root())}};
  ASSERT_TRUE(ApplyUpdate(&via_replace, q_replace).ok());

  EXPECT_TRUE(xml::ValueEqual(via_set, via_set.root(), via_replace,
                              via_replace.root()));
}

// Updates of the same class commute with selection: selecting then
// applying per-node equals ApplyUpdate in one go.
TEST(UpdateModelTest, ApplyUpdateEqualsManualPerNodeApplication) {
  Alphabet alphabet;
  Document one_shot = workload::BuildPaperFigure1Document(&alphabet);
  Document manual = workload::BuildPaperFigure1Document(&alphabet);
  UpdateClass ranks =
      MustClass(&alphabet, "root { s = session/candidate/exam/rank; } select s;");
  UpdateOperation op = TransformValues{[](std::string_view v) {
    return std::string(v) + "!";
  }};

  Update q{&ranks, op};
  ASSERT_TRUE(ApplyUpdate(&one_shot, q).ok());

  std::vector<NodeId> nodes = ranks.SelectNodes(manual);
  ASSERT_TRUE(ApplyOperationAt(&manual, nodes, op).ok());

  EXPECT_TRUE(
      xml::ValueEqual(one_shot, one_shot.root(), manual, manual.root()));
}

}  // namespace
}  // namespace rtp::update
