#include "regex/regex.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rtp::regex {
namespace {

// Helper: interns the '/'-separated word and tests acceptance.
bool Match(const Regex& re, Alphabet* alphabet, const std::string& path) {
  std::vector<LabelId> word;
  size_t start = 0;
  if (!path.empty()) {
    while (true) {
      size_t slash = path.find('/', start);
      word.push_back(alphabet->Intern(path.substr(
          start, slash == std::string::npos ? std::string::npos : slash - start)));
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
  }
  return re.Matches(word);
}

Regex MustParse(Alphabet* alphabet, std::string_view text) {
  auto re = Regex::Parse(alphabet, text);
  RTP_CHECK_MSG(re.ok(), re.status().ToString().c_str());
  return std::move(re).value();
}

TEST(RegexParserTest, SingleLabel) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "session");
  EXPECT_TRUE(Match(re, &alphabet, "session"));
  EXPECT_FALSE(Match(re, &alphabet, "candidate"));
  EXPECT_FALSE(Match(re, &alphabet, "session/session"));
  EXPECT_FALSE(re.Matches({}));
  EXPECT_TRUE(re.IsProper());
}

TEST(RegexParserTest, PathConcatenation) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "session/candidate/exam");
  EXPECT_TRUE(Match(re, &alphabet, "session/candidate/exam"));
  EXPECT_FALSE(Match(re, &alphabet, "session/candidate"));
  EXPECT_FALSE(Match(re, &alphabet, "session/exam"));
}

TEST(RegexParserTest, UnionAndParens) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "candidate/(toBePassed|firstJob-Year)");
  EXPECT_TRUE(Match(re, &alphabet, "candidate/toBePassed"));
  EXPECT_TRUE(Match(re, &alphabet, "candidate/firstJob-Year"));
  EXPECT_FALSE(Match(re, &alphabet, "candidate/level"));
}

TEST(RegexParserTest, StarPlusOptional) {
  Alphabet alphabet;
  Regex star = MustParse(&alphabet, "a/b*");
  EXPECT_TRUE(Match(star, &alphabet, "a"));
  EXPECT_TRUE(Match(star, &alphabet, "a/b/b/b"));
  Regex plus = MustParse(&alphabet, "a/b+");
  EXPECT_FALSE(Match(plus, &alphabet, "a"));
  EXPECT_TRUE(Match(plus, &alphabet, "a/b"));
  Regex opt = MustParse(&alphabet, "a/b?");
  EXPECT_TRUE(Match(opt, &alphabet, "a"));
  EXPECT_TRUE(Match(opt, &alphabet, "a/b"));
  EXPECT_FALSE(Match(opt, &alphabet, "a/b/b"));
}

TEST(RegexParserTest, WildcardMatchesAnySingleLabel) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "_*/exam");
  EXPECT_TRUE(Match(re, &alphabet, "exam"));
  EXPECT_TRUE(Match(re, &alphabet, "session/candidate/exam"));
  EXPECT_TRUE(Match(re, &alphabet, "zzz/unseen-label/exam"));
  EXPECT_FALSE(Match(re, &alphabet, "session/candidate"));
}

TEST(RegexParserTest, AttributeAndTextLabels) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "mark/#text|@IDN");
  EXPECT_TRUE(Match(re, &alphabet, "mark/#text"));
  EXPECT_TRUE(Match(re, &alphabet, "@IDN"));
  EXPECT_FALSE(Match(re, &alphabet, "mark"));
}

TEST(RegexParserTest, SyntaxErrors) {
  Alphabet alphabet;
  EXPECT_FALSE(Regex::Parse(&alphabet, "").ok());
  EXPECT_FALSE(Regex::Parse(&alphabet, "a/").ok());
  EXPECT_FALSE(Regex::Parse(&alphabet, "(a").ok());
  EXPECT_FALSE(Regex::Parse(&alphabet, "a|").ok());
  EXPECT_FALSE(Regex::Parse(&alphabet, "*a").ok());
  EXPECT_FALSE(Regex::Parse(&alphabet, "a)b").ok());
}

TEST(RegexParserTest, PropernessDetection) {
  Alphabet alphabet;
  EXPECT_TRUE(MustParse(&alphabet, "a").IsProper());
  EXPECT_TRUE(MustParse(&alphabet, "a/b*").IsProper());
  EXPECT_FALSE(MustParse(&alphabet, "a*").IsProper());
  EXPECT_FALSE(MustParse(&alphabet, "a?").IsProper());
  EXPECT_FALSE(MustParse(&alphabet, "a*|b").IsProper());
  EXPECT_TRUE(MustParse(&alphabet, "a+").IsProper());
}

TEST(RegexAstTest, NullableMirrorsDfaEmptyWord) {
  Alphabet alphabet;
  for (const char* text : {"a", "a*", "a?", "a|b*", "a/b", "(a|b)*/c?",
                           "a+/b*", "(a?/b?)"}) {
    auto ast = ParseRegex(&alphabet, text);
    ASSERT_TRUE(ast.ok()) << text;
    Dfa dfa = Dfa::FromAst(**ast);
    EXPECT_EQ(IsNullable(**ast), dfa.AcceptsEmptyWord()) << text;
  }
}

TEST(RegexAstTest, ToStringRoundTrips) {
  Alphabet alphabet;
  for (const char* text :
       {"a", "a/b/c", "a|b|c", "(a|b)/c", "a/(b|c)*", "_*/x", "a+/b?"}) {
    Regex re1 = MustParse(&alphabet, text);
    std::string printed = re1.ToString(alphabet);
    Regex re2 = MustParse(&alphabet, printed);
    EXPECT_TRUE(re1.dfa().IsEquivalentTo(re2.dfa()))
        << text << " -> " << printed;
  }
}

TEST(DfaTest, MinimizeReducesStates) {
  Alphabet alphabet;
  // (a|b)/(a|b) has a 3-state minimal DFA (+ dead).
  auto ast = ParseRegex(&alphabet, "(a|b)/(a|b)");
  ASSERT_TRUE(ast.ok());
  Dfa dfa = Dfa::FromAst(**ast);
  Dfa min = dfa.Minimize();
  EXPECT_LE(min.NumStates(), dfa.NumStates());
  EXPECT_EQ(min.NumStates(), 3);
  EXPECT_TRUE(min.IsEquivalentTo(dfa));
}

TEST(DfaTest, IntersectionUnionDifference) {
  Alphabet alphabet;
  Regex ab_star = MustParse(&alphabet, "(a|b)+");
  Regex ends_a = MustParse(&alphabet, "(a|b)*/a");
  Dfa both = Dfa::Intersection(ab_star.dfa(), ends_a.dfa());
  LabelId a = alphabet.Intern("a");
  LabelId b = alphabet.Intern("b");
  std::vector<LabelId> ba = {b, a};
  std::vector<LabelId> ab = {a, b};
  EXPECT_TRUE(both.Accepts(ba));
  EXPECT_FALSE(both.Accepts(ab));

  Dfa diff = Dfa::Difference(ab_star.dfa(), ends_a.dfa());
  EXPECT_FALSE(diff.Accepts(ba));
  EXPECT_TRUE(diff.Accepts(ab));

  Dfa uni = Dfa::UnionOf(both, diff);
  EXPECT_TRUE(uni.IsEquivalentTo(ab_star.dfa()));
}

TEST(DfaTest, ComplementFlipsMembership) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "a/b");
  Dfa comp = re.dfa().Complement();
  LabelId a = alphabet.Intern("a");
  LabelId b = alphabet.Intern("b");
  std::vector<LabelId> word_ab = {a, b};
  std::vector<LabelId> word_a = {a};
  EXPECT_FALSE(comp.Accepts(word_ab));
  EXPECT_TRUE(comp.Accepts(word_a));
  EXPECT_TRUE(comp.Accepts({}));
  // Complement accepts words over labels never mentioned.
  std::vector<LabelId> fresh = {alphabet.Intern("zz")};
  EXPECT_TRUE(comp.Accepts(fresh));
}

TEST(DfaTest, InclusionAndEquivalence) {
  Alphabet alphabet;
  Regex small = MustParse(&alphabet, "a/b");
  Regex big = MustParse(&alphabet, "a/(b|c)");
  EXPECT_TRUE(small.dfa().IsSubsetOf(big.dfa()));
  EXPECT_FALSE(big.dfa().IsSubsetOf(small.dfa()));
  Regex big2 = MustParse(&alphabet, "(a/b)|(a/c)");
  EXPECT_TRUE(big.dfa().IsEquivalentTo(big2.dfa()));
}

TEST(DfaTest, EmptinessAndUniversal) {
  Alphabet alphabet;
  EXPECT_TRUE(Dfa::EmptyLanguage().IsEmpty());
  EXPECT_FALSE(Dfa::UniversalLanguage().IsEmpty());
  Regex re = MustParse(&alphabet, "a");
  Dfa never = Dfa::Intersection(re.dfa(), re.dfa().Complement());
  EXPECT_TRUE(never.IsEmpty());
  Dfa always = Dfa::UnionOf(re.dfa(), re.dfa().Complement());
  EXPECT_TRUE(always.IsEquivalentTo(Dfa::UniversalLanguage()));
}

TEST(DfaTest, ShortestWord) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "a/b/c|a/b");
  auto word = re.dfa().ShortestWord(&alphabet);
  ASSERT_TRUE(word.has_value());
  ASSERT_EQ(word->size(), 2u);
  EXPECT_EQ(alphabet.Name((*word)[0]), "a");
  EXPECT_EQ(alphabet.Name((*word)[1]), "b");

  EXPECT_FALSE(Dfa::EmptyLanguage().ShortestWord(&alphabet).has_value());

  auto empty_word = Dfa::UniversalLanguage().ShortestWord(&alphabet);
  ASSERT_TRUE(empty_word.has_value());
  EXPECT_TRUE(empty_word->empty());
}

TEST(DfaTest, ShortestWordThroughOtherwiseEdge) {
  Alphabet alphabet;
  Regex re = MustParse(&alphabet, "_/_");
  auto word = re.dfa().ShortestWord(&alphabet);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->size(), 2u);
  EXPECT_TRUE(re.Matches(*word));
}

TEST(DfaTest, FromWordAcceptsExactlyThatWord) {
  Alphabet alphabet;
  std::vector<LabelId> w = {alphabet.Intern("x"), alphabet.Intern("y")};
  Dfa dfa = Dfa::FromWord(w);
  EXPECT_TRUE(dfa.Accepts(w));
  std::vector<LabelId> other = {alphabet.Intern("x")};
  EXPECT_FALSE(dfa.Accepts(other));
  EXPECT_FALSE(dfa.Accepts({}));
}

}  // namespace
}  // namespace rtp::regex
