// Request-scoped metric attribution: MetricDomain capture/flush
// semantics, ProfileScope phase + counter capture, and the concurrency
// contract that per-item profiles from a pool fan-out sum exactly to the
// registry delta for the whole batch. Lives in the `exec`-labeled binary
// so the TSan CI leg exercises the domain install/flush paths under real
// thread-pool fan-out.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fd/fd_checker.h"
#include "fd/functional_dependency.h"
#include "obs/domain.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "pattern/evaluator.h"
#include "workload/exam_generator.h"
#include "workload/paper_patterns.h"

namespace rtp {
namespace {

using obs::MetricDomain;
using obs::MetricsSnapshot;
using obs::QueryProfile;
using obs::Registry;

// The pipeline instrumentation is compiled out under RTP_OBS_DISABLED, so
// profile-content assertions only hold in the enabled build.
#ifdef RTP_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "RTP_OBS_DISABLED: call-site instrumentation compiled out"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

TEST(MetricDomainTest, CapturesCountersAndFlushesOnDestruction) {
  obs::Counter* c = Registry().FindOrCreateCounter("obsdomain.counter.flush");
  uint64_t before = c->value();
  {
    MetricDomain domain;
    ASSERT_EQ(MetricDomain::Current(), &domain);
    c->Add(5);
    // Captured in the domain, not yet in the global cell.
    EXPECT_EQ(c->value(), before);
    EXPECT_EQ(domain.CounterDelta("obsdomain.counter.flush"), 5u);
  }
  EXPECT_EQ(MetricDomain::Current(), nullptr);
  // The flush preserved the registry total.
  EXPECT_EQ(c->value(), before + 5);
}

TEST(MetricDomainTest, NestedDomainsCascadeToParent) {
  obs::Counter* c = Registry().FindOrCreateCounter("obsdomain.counter.nested");
  uint64_t before = c->value();
  {
    MetricDomain outer;
    {
      MetricDomain inner;
      c->Add(3);
      EXPECT_EQ(inner.CounterDelta("obsdomain.counter.nested"), 3u);
      EXPECT_EQ(outer.CounterDelta("obsdomain.counter.nested"), 0u);
    }
    // The inner flush cascaded into the outer domain, not the registry.
    EXPECT_EQ(outer.CounterDelta("obsdomain.counter.nested"), 3u);
    EXPECT_EQ(c->value(), before);
    c->Add(2);
    EXPECT_EQ(outer.CounterDelta("obsdomain.counter.nested"), 5u);
  }
  EXPECT_EQ(c->value(), before + 5);
}

TEST(MetricDomainTest, CapturesHistogramsAndMergesGlobally) {
  obs::Histogram* h = Registry().FindOrCreateHistogram("obsdomain.hist.flush");
  h->Reset();
  {
    MetricDomain domain;
    h->Record(10);
    h->Record(30);
    EXPECT_EQ(h->count(), 0u);
    auto deltas = domain.HistogramDeltas();
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(deltas[0].first, "obsdomain.hist.flush");
    EXPECT_EQ(deltas[0].second.count, 2u);
    EXPECT_EQ(deltas[0].second.sum, 40u);
  }
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->sum(), 40u);
  EXPECT_EQ(h->min(), 10u);
  EXPECT_EQ(h->max(), 30u);
}

TEST(MetricDomainTest, CaptureIsPerThread) {
  obs::Counter* c = Registry().FindOrCreateCounter("obsdomain.counter.thread");
  uint64_t before = c->value();
  {
    MetricDomain domain;
    std::thread other([c] { c->Add(7); });
    other.join();
    // The other thread had no domain installed, so its add went global.
    EXPECT_EQ(domain.CounterDelta("obsdomain.counter.thread"), 0u);
    EXPECT_EQ(c->value(), before + 7);
  }
  EXPECT_EQ(c->value(), before + 7);
}

TEST(MetricDomainTest, CapturesTraceSpansWithNesting) {
  MetricDomain domain;
  {
    obs::TraceSpan outer("obsdomain.span.outer");
    { obs::TraceSpan inner("obsdomain.span.inner"); }
  }
  const std::vector<obs::CapturedSpan>& spans = domain.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Preorder: the outer span opened first.
  EXPECT_EQ(spans[0].name, "obsdomain.span.outer");
  EXPECT_EQ(spans[1].name, "obsdomain.span.inner");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_GE(spans[0].dur_ns, spans[1].dur_ns);
}

TEST(ProfileScopeTest, NullOutputIsInert) {
  obs::ProfileScope scope("noop", nullptr);
  EXPECT_EQ(MetricDomain::Current(), nullptr);
}

TEST(ProfileScopeTest, ProfiledEvaluationFillsPhasesAndCounters) {
  SKIP_IF_OBS_DISABLED();
  Alphabet alphabet;
  pattern::ParsedPattern parsed = workload::PaperR3(&alphabet);

  // Fixed overheads (first allocations, clock reads) eat into phase
  // coverage at microsecond scale, so grow the document until the
  // operation is comfortably past a millisecond before asserting the 90%
  // coverage bound.
  double best_coverage = 0.0;
  for (uint32_t candidates : {200u, 800u, 3200u}) {
    workload::ExamWorkloadParams params;
    params.num_candidates = candidates;
    params.seed = candidates;
    xml::Document doc = workload::GenerateExamDocument(&alphabet, params);

    QueryProfile profile;
    auto selected = pattern::EvaluateSelected(parsed.pattern, doc, &profile);
    EXPECT_FALSE(selected.empty());
    EXPECT_EQ(profile.op, "pattern.EvaluateSelected");
    EXPECT_EQ(profile.status, "OK");
    ASSERT_FALSE(profile.phases.empty());

    bool has_build = false;
    bool has_enumerate = false;
    for (const obs::CapturedSpan& s : profile.phases) {
      has_build |= s.name == "pattern.build_tables";
      has_enumerate |= s.name == "pattern.enumerate";
    }
    EXPECT_TRUE(has_build);
    EXPECT_TRUE(has_enumerate);

    EXPECT_GT(profile.CounterDelta("pattern.eval.enumerations"), 0u);
    EXPECT_GT(profile.CounterDelta("pattern.eval.table_rows"), 0u);

    // The structured renderings carry the same content.
    std::string json = profile.ToJson();
    EXPECT_NE(json.find("\"op\":\"pattern.EvaluateSelected\""),
              std::string::npos);
    EXPECT_NE(json.find("pattern.build_tables"), std::string::npos);
    EXPECT_NE(profile.ToText().find("pattern.enumerate"), std::string::npos);

    // Internal consistency: root phases never exceed the wall time...
    ASSERT_LE(profile.RootPhaseTotalNs(), profile.wall_ns);
    double coverage =
        profile.wall_ns == 0
            ? 0.0
            : static_cast<double>(profile.RootPhaseTotalNs()) /
                  static_cast<double>(profile.wall_ns);
    best_coverage = std::max(best_coverage, coverage);
    // ...and on a large enough document they cover at least 90% of it.
    if (profile.wall_ns >= 1'000'000 && coverage >= 0.9) return;
  }
  ADD_FAILURE() << "root phases never covered 90% of the operation wall "
                   "time; best coverage "
                << best_coverage;
}

TEST(ProfileScopeTest, GuardedCheckReportsBudgetConsumption) {
  SKIP_IF_OBS_DISABLED();
  Alphabet alphabet;
  auto fd = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  workload::ExamWorkloadParams params;
  params.num_candidates = 6;
  xml::Document doc = workload::GenerateExamDocument(&alphabet, params);

  QueryProfile profile;
  fd::CheckOptions options;
  options.budget.max_steps = 1'000'000;
  options.budget.deadline_ms = 60'000;
  options.profile = &profile;
  fd::CheckResult result = fd::CheckFd(fd.value(), doc, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  EXPECT_EQ(profile.op, "fd.CheckFd");
  EXPECT_TRUE(profile.guard.guarded);
  EXPECT_GT(profile.guard.steps, 0);
  EXPECT_EQ(profile.guard.budget_max_steps, 1'000'000);
  EXPECT_EQ(profile.guard.budget_deadline_ms, 60'000);
  EXPECT_GT(profile.CounterDelta("fd.check.calls"), 0u);
}

// ---------------------------------------------------------------------------
// Concurrent attribution: per-item profiles from a jobs=8 batch sum
// exactly to the registry delta for every counter recorded inside the
// per-item scopes (the pipeline prefixes below; pool bookkeeping like
// exec.pool.* is recorded outside the item scopes by design).

std::map<std::string, uint64_t> SumProfileCounters(
    const std::vector<QueryProfile>& profiles,
    const std::vector<std::string>& prefixes) {
  std::map<std::string, uint64_t> sums;
  for (const QueryProfile& p : profiles) {
    for (const auto& [name, value] : p.counters) {
      for (const std::string& prefix : prefixes) {
        if (name.rfind(prefix, 0) == 0) {
          sums[name] += value;
          break;
        }
      }
    }
  }
  return sums;
}

std::map<std::string, uint64_t> RegistryDeltaFor(
    const MetricsSnapshot& delta, const std::vector<std::string>& prefixes) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : delta.counters) {
    if (value == 0) continue;
    // *.batches counts the batch call itself and is recorded outside the
    // per-item scopes, like the pool bookkeeping.
    if (name.size() >= 8 && name.rfind(".batches") == name.size() - 8) {
      continue;
    }
    for (const std::string& prefix : prefixes) {
      if (name.rfind(prefix, 0) == 0) {
        out[name] = value;
        break;
      }
    }
  }
  return out;
}

TEST(BatchAttributionTest, FdBatchProfilesSumToRegistryDelta) {
  SKIP_IF_OBS_DISABLED();
  Alphabet alphabet;
  auto fd = fd::FunctionalDependency::FromParsed(workload::PaperFd1(&alphabet));
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  std::vector<xml::Document> docs;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    workload::ExamWorkloadParams params;
    params.num_candidates = 8;
    params.exams_per_candidate = 3;
    params.num_disciplines = 2;
    params.num_marks = 3;
    params.consistent_ranks = (seed % 2 == 0);
    params.seed = seed;
    docs.push_back(workload::GenerateExamDocument(&alphabet, params));
  }
  std::vector<const xml::Document*> ptrs;
  for (const auto& doc : docs) ptrs.push_back(&doc);

  const std::vector<std::string> prefixes = {"fd.check.", "pattern.eval."};
  MetricsSnapshot before = obs::TakeSnapshot();

  fd::BatchCheckOptions options;
  options.jobs = 8;
  std::vector<QueryProfile> profiles;
  options.profiles = &profiles;
  std::vector<fd::CheckResult> results =
      fd::CheckFdBatch(fd.value(), ptrs, options);

  MetricsSnapshot delta = obs::SnapshotDelta(before, obs::TakeSnapshot());
  ASSERT_EQ(results.size(), ptrs.size());
  ASSERT_EQ(profiles.size(), ptrs.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].op, "fd.CheckFd") << i;
    EXPECT_GT(profiles[i].wall_ns, 0u) << i;
    EXPECT_GT(profiles[i].CounterDelta("fd.check.calls"), 0u) << i;
  }

  EXPECT_EQ(SumProfileCounters(profiles, prefixes),
            RegistryDeltaFor(delta, prefixes));
}

TEST(BatchAttributionTest, EvalBatchProfilesSumToRegistryDelta) {
  SKIP_IF_OBS_DISABLED();
  Alphabet alphabet;
  pattern::ParsedPattern parsed = workload::PaperR3(&alphabet);

  std::vector<xml::Document> docs;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    workload::ExamWorkloadParams params;
    params.num_candidates = 5 + static_cast<uint32_t>(seed);
    params.seed = seed * 13;
    docs.push_back(workload::GenerateExamDocument(&alphabet, params));
  }
  std::vector<const xml::Document*> ptrs;
  for (const auto& doc : docs) ptrs.push_back(&doc);

  const std::vector<std::string> prefixes = {"pattern.eval."};
  MetricsSnapshot before = obs::TakeSnapshot();

  pattern::EvalBatchOptions options;
  options.jobs = 8;
  std::vector<QueryProfile> profiles;
  options.profiles = &profiles;
  auto results = pattern::EvaluateSelectedBatch(parsed.pattern, ptrs, options);

  MetricsSnapshot delta = obs::SnapshotDelta(before, obs::TakeSnapshot());
  ASSERT_EQ(results.size(), ptrs.size());
  ASSERT_EQ(profiles.size(), ptrs.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].op, "pattern.EvaluateSelected") << i;
    EXPECT_GT(profiles[i].wall_ns, 0u) << i;
    EXPECT_FALSE(results[i].empty()) << i;
  }

  EXPECT_EQ(SumProfileCounters(profiles, prefixes),
            RegistryDeltaFor(delta, prefixes));
}

}  // namespace
}  // namespace rtp
