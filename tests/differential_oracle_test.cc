// The rtp::fuzz differential-oracle battery as an always-on ctest suite:
// every oracle that the fuzz/fuzz_differential harness drives from random
// bytes runs here from fixed seeds, so plain CI catches disagreements
// between the production kernels and their reference implementations
// without any fuzzing budget. Lives in the exec test binary (label
// `exec`): the parallel-vs-serial oracles exercise jobs=8, which the TSan
// leg must see.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/generators.h"
#include "fuzz/oracles.h"
#include "fuzz/rng.h"
#include "fuzz/small_docs.h"
#include "workload/random_pattern.h"
#include "xml/document.h"

namespace rtp {
namespace {

std::vector<xml::Document> MakeDocs(Alphabet* alphabet, uint64_t seed,
                                    int count, uint32_t max_nodes) {
  std::vector<xml::Document> docs;
  fuzz::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    workload::RandomTreeParams params;
    params.seed = rng.Next();
    params.num_labels = 3;
    params.max_nodes = max_nodes;
    docs.push_back(workload::GenerateRandomTree(alphabet, params));
  }
  return docs;
}

std::vector<const xml::Document*> Ptrs(const std::vector<xml::Document>& docs) {
  std::vector<const xml::Document*> ptrs;
  for (const xml::Document& doc : docs) ptrs.push_back(&doc);
  return ptrs;
}

// The enumerator's tree count is sum over m <= max_nodes of
// Catalan(m) * labels^m (ordered forests of m labeled nodes).
TEST(SmallDocsTest, EnumeratesEveryOrderedTreeOnce) {
  Alphabet alphabet;
  fuzz::SmallDocParams params;
  params.labels = {"a"};
  params.max_nodes = 2;
  size_t count = fuzz::ForEachSmallDocument(
      &alphabet, params, [](const xml::Document&) { return true; });
  EXPECT_EQ(count, 4u);  // 1 + 1 + 2

  params.labels = {"a", "b"};
  params.max_nodes = 3;
  size_t seen_max = 0;
  count = fuzz::ForEachSmallDocument(
      &alphabet, params, [&](const xml::Document& doc) {
        seen_max = std::max(seen_max, size_t{doc.LiveNodeCount()});
        return true;
      });
  EXPECT_EQ(count, 51u);  // 1 + 2 + 2*4 + 5*8
  EXPECT_EQ(seen_max, 4u);  // root + max_nodes
}

TEST(SmallDocsTest, StopsWhenCallbackReturnsFalse) {
  Alphabet alphabet;
  fuzz::SmallDocParams params;
  params.labels = {"a", "b"};
  params.max_nodes = 3;
  size_t calls = 0;
  fuzz::ForEachSmallDocument(&alphabet, params, [&](const xml::Document&) {
    return ++calls < 10;
  });
  EXPECT_EQ(calls, 10u);
}

class OracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleTest, DenseMatchesReferenceEvaluation) {
  Alphabet alphabet;
  fuzz::Rng rng(GetParam());
  fuzz::InstanceGenParams instance;
  std::vector<xml::Document> docs = MakeDocs(&alphabet, GetParam(), 4, 12);
  for (int i = 0; i < 5; ++i) {
    pattern::TreePattern pattern =
        fuzz::GeneratePatternInstance(&alphabet, &rng, instance);
    for (const xml::Document& doc : docs) {
      Status status = fuzz::CheckDenseVsReference(pattern, doc);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
}

TEST_P(OracleTest, BatchEvaluationMatchesSerial) {
  Alphabet alphabet;
  fuzz::Rng rng(GetParam() + 100);
  fuzz::InstanceGenParams instance;
  std::vector<xml::Document> docs = MakeDocs(&alphabet, GetParam(), 6, 14);
  pattern::TreePattern pattern =
      fuzz::GeneratePatternInstance(&alphabet, &rng, instance);
  for (int jobs : {1, 8}) {
    Status status = fuzz::CheckEvalParallelVsSerial(pattern, Ptrs(docs), jobs);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

TEST_P(OracleTest, HashedFdCheckerMatchesNaiveQuadratic) {
  Alphabet alphabet;
  fuzz::Rng rng(GetParam() + 200);
  fuzz::InstanceGenParams instance;
  std::vector<xml::Document> docs = MakeDocs(&alphabet, GetParam(), 4, 12);
  for (int i = 0; i < 5; ++i) {
    fd::FunctionalDependency fd =
        fuzz::GenerateFdInstance(&alphabet, &rng, instance);
    for (const xml::Document& doc : docs) {
      Status status = fuzz::CheckFdVsNaive(fd, doc);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    for (int jobs : {1, 8}) {
      Status status = fuzz::CheckFdParallelVsSerial(fd, Ptrs(docs), jobs);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
}

TEST_P(OracleTest, CriterionMatchesBruteForceEnumeration) {
  Alphabet alphabet;
  fuzz::Rng rng(GetParam() + 300);
  fuzz::InstanceGenParams instance;
  fuzz::SmallDocParams small_docs;
  small_docs.labels = {"l0", "l1", "l2", "#text"};
  small_docs.max_nodes = 4;
  for (int i = 0; i < 3; ++i) {
    fd::FunctionalDependency fd =
        fuzz::GenerateFdInstance(&alphabet, &rng, instance);
    update::UpdateClass update =
        fuzz::GenerateUpdateClassInstance(&alphabet, &rng, instance);
    Status status = fuzz::CheckCriterionVsBruteForce(
        fd, update, /*schema=*/nullptr, &alphabet, small_docs);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

// The acceptance bar for this battery: the full bundle passes for several
// distinct seeds, exactly as fuzz/fuzz_differential runs it.
TEST_P(OracleTest, FullBatteryPasses) {
  Status status = fuzz::RunOracleBattery(GetParam());
  EXPECT_TRUE(status.ok()) << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest,
                         ::testing::Values<uint64_t>(1, 2, 3, 41, 2010));

}  // namespace
}  // namespace rtp
