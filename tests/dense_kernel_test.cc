// Unit tests for the PR 3 dense hot-path kernel: DenseDfa flat tables,
// DocIndex snapshots, minimal-edge-DFA enforcement at pattern compile
// time, the TraceOf output ordering pin, and DenseDfa memoization in the
// AutomatonCache. The cross-evaluator differential battery lives in
// parallel_differential_test.cc.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exec/automaton_cache.h"
#include "fd/functional_dependency.h"
#include "fd/path_fd.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "regex/dense_dfa.h"
#include "regex/regex.h"
#include "workload/paper_patterns.h"
#include "xml/doc_index.h"
#include "xml/document.h"
#include "xpath/xpath.h"

namespace rtp {
namespace {

// ---------------------------------------------------------------------------
// DenseDfa: the flat table is a faithful copy of the source Dfa.

TEST(DenseDfaTest, AgreesWithSourceDfaOnEveryStateAndLabel) {
  Alphabet alphabet;
  for (const char* text : {"a", "a/b*/c", "(a|b)*/c", "a/(b/c)*/(d|a)"}) {
    auto regex = regex::Regex::Parse(&alphabet, text);
    ASSERT_TRUE(regex.ok()) << text;
    const regex::Dfa& dfa = regex->dfa();
    const regex::DenseDfa& dense = regex->dense_dfa();
    ASSERT_EQ(dense.NumStates(), dfa.NumStates()) << text;
    EXPECT_EQ(dense.initial(), dfa.initial()) << text;
    for (int32_t s = 0; s < dfa.NumStates(); ++s) {
      EXPECT_EQ(dense.accepting(s), dfa.accepting(s)) << text << " s=" << s;
      for (LabelId a = 0; a < alphabet.size(); ++a) {
        EXPECT_EQ(dense.Next(s, a), dfa.Next(s, a))
            << text << " s=" << s << " label=" << alphabet.Name(a);
      }
    }
  }
}

TEST(DenseDfaTest, LabelsInternedAfterBuildUseTheOtherColumn) {
  Alphabet alphabet;
  auto regex = regex::Regex::Parse(&alphabet, "a/b*");
  ASSERT_TRUE(regex.ok());
  const regex::Dfa& dfa = regex->dfa();
  const regex::DenseDfa& dense = regex->dense_dfa();
  // Interned after the dense table was frozen: the open-ended alphabet
  // must still resolve, through the shared "other" column.
  LabelId late = alphabet.Intern("interned_after_build");
  EXPECT_EQ(dense.Column(late), regex::DenseDfa::kOtherColumn);
  for (int32_t s = 0; s < dfa.NumStates(); ++s) {
    EXPECT_EQ(dense.Next(s, late), dfa.Next(s, late)) << "s=" << s;
    EXPECT_EQ(dense.Next(s, late), dfa.state(s).otherwise) << "s=" << s;
  }
}

TEST(DenseDfaTest, DeadColumnsAreReportedNotLive) {
  Alphabet alphabet;
  auto regex = regex::Regex::Parse(&alphabet, "a/a");
  ASSERT_TRUE(regex.ok());
  const regex::DenseDfa& dense = regex->dense_dfa();
  LabelId a = alphabet.Intern("a");
  LabelId z = alphabet.Intern("z_unrelated");
  EXPECT_TRUE(dense.AnyLive(a));
  // "a/a" moves on nothing but 'a', so every other label's column is dead
  // and MatchTables may skip the whole per-state loop for it.
  EXPECT_FALSE(dense.AnyLive(z));
}

// ---------------------------------------------------------------------------
// DocIndex: frozen snapshot matches the live tree, detached nodes and all.

TEST(DocIndexTest, SnapshotMatchesDocumentAfterDetach) {
  Alphabet alphabet;
  xml::Document doc(&alphabet);
  xml::NodeId a1 = doc.AddElement(doc.root(), "a");
  xml::NodeId b1 = doc.AddElement(a1, "b");
  doc.AddText(b1, "v1");
  xml::NodeId a2 = doc.AddElement(doc.root(), "a");
  xml::NodeId b2 = doc.AddElement(a2, "b");
  doc.AddText(b2, "v2");
  doc.DetachSubtree(b1);  // garbage stays in the arena

  const xml::DocIndex index = xml::DocIndex::Build(doc);
  EXPECT_EQ(&index.doc(), &doc);
  EXPECT_EQ(index.root(), doc.root());
  EXPECT_EQ(index.ArenaSize(), doc.ArenaSize());
  EXPECT_EQ(index.LiveNodeCount(), doc.LiveNodeCount());

  // Expected postorder of the live tree (children before parents,
  // siblings in document order).
  std::vector<xml::NodeId> expected;
  auto visit = [&](auto&& self, xml::NodeId n) -> void {
    for (xml::NodeId c : doc.Children(n)) self(self, c);
    expected.push_back(n);
  };
  visit(visit, doc.root());
  std::span<const xml::NodeId> postorder = index.Postorder();
  EXPECT_EQ(std::vector<xml::NodeId>(postorder.begin(), postorder.end()),
            expected);

  std::set<xml::NodeId> live(expected.begin(), expected.end());
  for (xml::NodeId n = 0; n < doc.ArenaSize(); ++n) {
    std::span<const xml::NodeId> kids = index.Children(n);
    if (live.count(n) == 0) {
      // Detached-at-Build nodes read as childless; they never appear in
      // the postorder, so the tables simply skip them.
      EXPECT_TRUE(kids.empty()) << "n=" << n;
      continue;
    }
    EXPECT_EQ(std::vector<xml::NodeId>(kids.begin(), kids.end()),
              doc.Children(n))
        << "n=" << n;
    EXPECT_EQ(index.ChildCount(n), doc.ChildCount(n)) << "n=" << n;
    EXPECT_EQ(index.label(n), doc.label(n)) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Satellite 1: every compilation path hands patterns minimal edge DFAs.

void ExpectMinimalEdges(const pattern::TreePattern& pattern,
                        const char* what) {
  for (pattern::PatternNodeId w = 1; w < pattern.NumNodes(); ++w) {
    const regex::Dfa& dfa = pattern.edge(w).dfa();
    EXPECT_EQ(dfa.Minimize().NumStates(), dfa.NumStates())
        << what << " edge " << w << " carries a non-minimal DFA";
  }
}

TEST(MinimalEdgeDfaTest, PaperFd3AndFd4EdgesAreMinimal) {
  Alphabet alphabet;
  auto fd3 = fd::FunctionalDependency::FromParsed(workload::PaperFd3(&alphabet));
  ASSERT_TRUE(fd3.ok()) << fd3.status().ToString();
  ExpectMinimalEdges(fd3->pattern(), "fd3");
  auto fd4 = fd::FunctionalDependency::FromParsed(workload::PaperFd4(&alphabet));
  ASSERT_TRUE(fd4.ok()) << fd4.status().ToString();
  ExpectMinimalEdges(fd4->pattern(), "fd4");
}

TEST(MinimalEdgeDfaTest, XPathAndPathFdCompilersMinimizeToo) {
  Alphabet alphabet;
  auto xp = xpath::CompileXPath(&alphabet, "//a/b[.//c]/d | /e//f");
  ASSERT_TRUE(xp.ok()) << xp.status().ToString();
  for (const pattern::TreePattern& branch : xp->branches) {
    ExpectMinimalEdges(branch, "xpath");
  }
  auto fd = fd::ParseAndCompilePathFd(&alphabet, "(/r/s, (a/b) -> a/c)");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ExpectMinimalEdges(fd->pattern(), "path-fd");
}

// ---------------------------------------------------------------------------
// Satellite 2: TraceOf output ordering is pinned (ascending node id).

TEST(TraceOfTest, ReturnsPathUnionSortedByNodeIdAscending) {
  Alphabet alphabet;
  xml::Document doc(&alphabet);
  xml::NodeId a1 = doc.AddElement(doc.root(), "a");
  xml::NodeId b1 = doc.AddElement(a1, "b");
  xml::NodeId c1 = doc.AddElement(b1, "c");
  doc.AddElement(doc.root(), "a");  // not part of the traced mapping

  // Edge "a/b" maps x to b1 through intermediate node a1; edge "c" maps y
  // to c1.
  auto parsed = pattern::ParsePattern(&alphabet,
                                      "root {\n"
                                      "  x = a/b {\n"
                                      "    y = c;\n"
                                      "  }\n"
                                      "}\n"
                                      "select x, y;\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  pattern::MatchTables tables =
      pattern::MatchTables::Build(parsed->pattern, doc);
  pattern::MappingEnumerator enumerator(tables);
  std::vector<std::vector<xml::NodeId>> traces;
  enumerator.ForEach([&](const pattern::Mapping& m) {
    traces.push_back(pattern::TraceOf(doc, m));
    return true;
  });
  ASSERT_EQ(traces.size(), 1u);
  // The pinned contract: the union of root-to-image paths (intermediate
  // path nodes included), sorted ascending by node id, no duplicates.
  EXPECT_EQ(traces[0],
            (std::vector<xml::NodeId>{doc.root(), a1, b1, c1}));
  for (size_t i = 1; i < traces[0].size(); ++i) {
    EXPECT_LT(traces[0][i - 1], traces[0][i]);
  }
}

// ---------------------------------------------------------------------------
// Shared-snapshot evaluation and DenseDfa memoization.

TEST(DenseKernelTest, DocAndIndexBuildsAreBitIdentical) {
  Alphabet alphabet;
  xml::Document doc(&alphabet);
  xml::NodeId s = doc.AddElement(doc.root(), "session");
  doc.AddElement(s, "candidate");
  doc.AddElement(s, "candidate");
  auto parsed = pattern::ParsePattern(
      &alphabet, "root { session { c = candidate; } } select c;");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const xml::DocIndex index = xml::DocIndex::Build(doc);
  EXPECT_EQ(pattern::EvaluateSelected(parsed->pattern, doc),
            pattern::EvaluateSelected(parsed->pattern, index));

  pattern::MatchTables from_doc =
      pattern::MatchTables::Build(parsed->pattern, doc);
  pattern::MatchTables from_index =
      pattern::MatchTables::Build(parsed->pattern, index);
  EXPECT_EQ(pattern::MappingEnumerator(from_doc).Count(),
            pattern::MappingEnumerator(from_index).Count());
}

TEST(AutomatonCacheTest, DenseDfaSectionBuildsOncePerKey) {
  exec::AutomatonCache cache;
  Alphabet alphabet;
  auto regex = regex::Regex::Parse(&alphabet, "a/b*");
  ASSERT_TRUE(regex.ok());
  int builds = 0;
  auto build = [&] {
    ++builds;
    return regex::DenseDfa::Build(regex->dfa());
  };
  std::shared_ptr<const regex::DenseDfa> first =
      cache.GetDenseDfa("regex:a/b*", build);
  std::shared_ptr<const regex::DenseDfa> second =
      cache.GetDenseDfa("regex:a/b*", build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(first->NumStates(), regex->dfa().NumStates());  // still alive
}

}  // namespace
}  // namespace rtp
