// Replays the committed fuzz corpus (fuzz/corpus/<harness>/*) through the
// harness bodies in the regular test build, so every corpus entry — in
// particular regression inputs distilled from past crashes — runs on each
// ctest invocation, not only when the fuzz leg is built. The CI
// asan-ubsan leg runs this same binary under sanitizers, which covers the
// "replay under ASan/UBSan" requirement without a separate build.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/harness.h"

namespace rtp {
namespace {

std::vector<fuzz::CorpusEntry> LoadOrDie() {
  auto entries = fuzz::LoadCorpus(RTP_FUZZ_CORPUS_DIR);
  if (!entries.ok()) {
    ADD_FAILURE() << entries.status().ToString();
    return {};
  }
  return *std::move(entries);
}

TEST(FuzzCorpusTest, EveryHarnessHasSeedEntries) {
  std::map<fuzz::Harness, int> per_harness;
  for (const fuzz::CorpusEntry& entry : LoadOrDie()) {
    ++per_harness[entry.harness];
  }
  for (const fuzz::HarnessInfo& info : fuzz::AllHarnesses()) {
    EXPECT_GT(per_harness[info.harness], 0)
        << "no corpus entries under fuzz/corpus/" << info.name << "/";
  }
}

TEST(FuzzCorpusTest, ReplayAllEntries) {
  std::vector<fuzz::CorpusEntry> entries = LoadOrDie();
  ASSERT_FALSE(entries.empty());
  for (const fuzz::CorpusEntry& entry : entries) {
    SCOPED_TRACE(entry.path);
    // Any harness invariant violation aborts via RTP_CHECK, which gtest
    // reports as a crash of this test.
    EXPECT_EQ(0, fuzz::RunHarnessInput(
                     entry.harness,
                     reinterpret_cast<const uint8_t*>(entry.bytes.data()),
                     entry.bytes.size()));
  }
}

}  // namespace
}  // namespace rtp
