#include "fd/fd_checker.h"

#include <gtest/gtest.h>

#include "fd/path_fd.h"
#include "workload/exam_generator.h"
#include "workload/paper_patterns.h"

namespace rtp::fd {
namespace {

using xml::Document;
using xml::NodeId;

FunctionalDependency MustFd(pattern::ParsedPattern parsed) {
  auto fd = FunctionalDependency::FromParsed(std::move(parsed));
  RTP_CHECK_MSG(fd.ok(), fd.status().ToString().c_str());
  return std::move(fd).value();
}

NodeId AddTextElement(Document* doc, NodeId parent, std::string_view label,
                      std::string_view text) {
  NodeId e = doc->AddElement(parent, label);
  doc->AddText(e, text);
  return e;
}

NodeId AddExam(Document* doc, NodeId candidate, std::string_view discipline,
               std::string_view date, std::string_view mark,
               std::string_view rank) {
  NodeId exam = doc->AddElement(candidate, "exam");
  AddTextElement(doc, exam, "discipline", discipline);
  AddTextElement(doc, exam, "date", date);
  AddTextElement(doc, exam, "mark", mark);
  AddTextElement(doc, exam, "rank", rank);
  return exam;
}

class FdPaperTest : public ::testing::Test {
 protected:
  FdPaperTest() : doc_(workload::BuildPaperFigure1Document(&alphabet_)) {}

  Alphabet alphabet_;
  Document doc_;
};

TEST_F(FdPaperTest, CreateValidatesContextAncestry) {
  // Context below a selected node is rejected.
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root {
      a {
        c = b {
          q = d;
        }
      }
    }
    select c;
    context q;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto fd = FunctionalDependency::FromParsed(std::move(parsed).value());
  EXPECT_FALSE(fd.ok());
}

TEST_F(FdPaperTest, CreateRequiresSelectedNodes) {
  auto parsed = pattern::ParsePattern(&alphabet_, R"(
    root { c = a; }
    context c;
  )");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(FunctionalDependency::FromParsed(std::move(parsed).value()).ok());
}

TEST_F(FdPaperTest, ConditionsAndTargetSplit) {
  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  EXPECT_EQ(fd1.conditions().size(), 2u);
  EXPECT_EQ(fd1.target().equality, pattern::EqualityType::kValue);
  FunctionalDependency fd2 = MustFd(workload::PaperFd2(&alphabet_));
  EXPECT_EQ(fd2.target().equality, pattern::EqualityType::kNode);
}

TEST_F(FdPaperTest, Fd1SatisfiedOnFigure1) {
  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  CheckResult result = CheckFd(fd1, doc_);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.num_mappings, 4u);  // one per exam
}

TEST_F(FdPaperTest, Fd1ViolatedByInconsistentRank) {
  // Add a third candidate whose math/15 exam has a different rank.
  NodeId session = doc_.first_child(doc_.root());
  NodeId c3 = doc_.AddElement(session, "candidate");
  doc_.AddAttribute(c3, "@IDN", "020");
  AddExam(&doc_, c3, "math", "2009-06-12", "15", "9");
  AddTextElement(&doc_, c3, "level", "C");
  AddTextElement(&doc_, c3, "firstJob-Year", "2013");

  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  CheckResult result = CheckFd(fd1, doc_);
  EXPECT_FALSE(result.satisfied);
  ASSERT_TRUE(result.violation.has_value());
  std::string description = result.violation->Describe(doc_, fd1);
  EXPECT_NE(description.find("violation"), std::string::npos);
  EXPECT_NE(description.find("rank"), std::string::npos);
}

TEST_F(FdPaperTest, Fd2SatisfiedOnFigure1) {
  FunctionalDependency fd2 = MustFd(workload::PaperFd2(&alphabet_));
  EXPECT_TRUE(CheckFd(fd2, doc_).satisfied);
}

TEST_F(FdPaperTest, Fd2ViolatedByDuplicateExam) {
  // Candidate 001 retakes math on the same date: two different exam nodes
  // with equal date and discipline.
  NodeId session = doc_.first_child(doc_.root());
  NodeId c1 = doc_.first_child(session);
  AddExam(&doc_, c1, "math", "2009-06-12", "8", "11");

  FunctionalDependency fd2 = MustFd(workload::PaperFd2(&alphabet_));
  CheckResult result = CheckFd(fd2, doc_);
  EXPECT_FALSE(result.satisfied);
}

TEST_F(FdPaperTest, Fd2NodeEqualityKeepsSameExamHarmless) {
  // A single exam node matched by two identical traces does not violate a
  // node-equality target.
  FunctionalDependency fd2 = MustFd(workload::PaperFd2(&alphabet_));
  CheckResult result = CheckFd(fd2, doc_);
  EXPECT_TRUE(result.satisfied);
  EXPECT_GE(result.num_mappings, 4u);
}

TEST_F(FdPaperTest, Fd3SatisfiedOnFigure1) {
  // The two candidates share only one (discipline, mark) pair, so no two
  // traces agree on both condition marks.
  FunctionalDependency fd3 = MustFd(workload::PaperFd3(&alphabet_));
  EXPECT_TRUE(CheckFd(fd3, doc_).satisfied);
}

TEST_F(FdPaperTest, Fd3ViolationTwoCandidatesSameMarksDifferentLevels) {
  // Example 5 shape: two candidates with the same marks in two disciplines
  // but different levels.
  Document doc(&alphabet_);
  NodeId session = doc.AddElement(doc.root(), "session");
  for (int i = 0; i < 2; ++i) {
    NodeId c = doc.AddElement(session, "candidate");
    doc.AddAttribute(c, "@IDN", i == 0 ? "100" : "200");
    AddExam(&doc, c, "bio", "2009-06-01", "12", "3");
    AddExam(&doc, c, "math", "2009-06-02", "17", "1");
    AddTextElement(&doc, c, "level", i == 0 ? "A" : "B");
    AddTextElement(&doc, c, "firstJob-Year", "2012");
  }
  FunctionalDependency fd3 = MustFd(workload::PaperFd3(&alphabet_));
  CheckResult result = CheckFd(fd3, doc);
  EXPECT_FALSE(result.satisfied);
}

TEST_F(FdPaperTest, Fd4RequiresToBePassedLeaf) {
  // Same violating document as above, but with firstJob-Year children:
  // fd4's traces require a toBePassed leaf, so fd4 is satisfied.
  Document doc(&alphabet_);
  NodeId session = doc.AddElement(doc.root(), "session");
  for (int i = 0; i < 2; ++i) {
    NodeId c = doc.AddElement(session, "candidate");
    AddExam(&doc, c, "bio", "2009-06-01", "12", "3");
    AddExam(&doc, c, "math", "2009-06-02", "17", "1");
    AddTextElement(&doc, c, "level", i == 0 ? "A" : "B");
    AddTextElement(&doc, c, "firstJob-Year", "2012");
  }
  FunctionalDependency fd4 = MustFd(workload::PaperFd4(&alphabet_));
  EXPECT_TRUE(CheckFd(fd4, doc).satisfied);

  // Give both candidates a toBePassed child: now fd4 is violated.
  for (NodeId c : doc.Children(session)) {
    NodeId tbp = doc.AddElement(c, "toBePassed");
    AddTextElement(&doc, tbp, "discipline", "chem");
  }
  EXPECT_FALSE(CheckFd(fd4, doc).satisfied);
}

TEST_F(FdPaperTest, Fd5OnFigure1) {
  FunctionalDependency fd5 = MustFd(workload::PaperFd5(&alphabet_));
  EXPECT_TRUE(CheckFd(fd5, doc_).satisfied);

  // Two graduated candidates with equal levels but different first-job
  // years violate fd5.
  NodeId session = doc_.first_child(doc_.root());
  NodeId c3 = doc_.AddElement(session, "candidate");
  doc_.AddAttribute(c3, "@IDN", "030");
  AddExam(&doc_, c3, "math", "2009-06-12", "10", "8");
  AddTextElement(&doc_, c3, "level", "C");  // same level as candidate 012
  AddTextElement(&doc_, c3, "firstJob-Year", "2015");
  EXPECT_FALSE(CheckFd(fd5, doc_).satisfied);
}

TEST_F(FdPaperTest, ContextScopesComparisons) {
  // fd1 has context 'session': ranks must agree across candidates of the
  // same session but may differ across sessions.
  Document doc(&alphabet_);
  for (int s = 0; s < 2; ++s) {
    NodeId session = doc.AddElement(doc.root(), "session");
    NodeId c = doc.AddElement(session, "candidate");
    // Same discipline+mark in both sessions but different ranks.
    AddExam(&doc, c, "math", "2009-06-12", "15", s == 0 ? "1" : "2");
    AddTextElement(&doc, c, "level", "B");
    AddTextElement(&doc, c, "firstJob-Year", "2012");
  }
  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  EXPECT_TRUE(CheckFd(fd1, doc).satisfied);

  // With a root context instead, the same document violates.
  auto fd_root = ParseAndCompilePathFd(
      &alphabet_,
      "(/, (session/candidate/exam/discipline, session/candidate/exam/mark) "
      "-> session/candidate/exam/rank)");
  ASSERT_TRUE(fd_root.ok()) << fd_root.status().ToString();
  EXPECT_FALSE(CheckFd(*fd_root, doc).satisfied);
}

TEST_F(FdPaperTest, StopAtFirstViolationVersusFullCount) {
  NodeId session = doc_.first_child(doc_.root());
  for (int i = 0; i < 3; ++i) {
    NodeId c = doc_.AddElement(session, "candidate");
    AddExam(&doc_, c, "math", "2009-06-12", "15", std::to_string(20 + i));
    AddTextElement(&doc_, c, "level", "E");
    AddTextElement(&doc_, c, "firstJob-Year", "2012");
  }
  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet_));
  CheckResult stop = CheckFd(fd1, doc_);
  CheckResult full = CheckFd(fd1, doc_, CheckOptions{false});
  EXPECT_FALSE(stop.satisfied);
  EXPECT_FALSE(full.satisfied);
  EXPECT_LE(stop.num_mappings, full.num_mappings);
  EXPECT_EQ(full.num_mappings, 7u);
}

// --- Path FD formalism ([8]) ---

TEST(PathFdTest, ParseExpr1) {
  auto parsed = ParsePathFd(
      "(/session, (candidate/exam/discipline, candidate/exam/mark) -> "
      "candidate/exam/rank)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->context, (std::vector<std::string>{"session"}));
  ASSERT_EQ(parsed->conditions.size(), 2u);
  EXPECT_EQ(parsed->conditions[0].steps,
            (std::vector<std::string>{"candidate", "exam", "discipline"}));
  EXPECT_EQ(parsed->target.steps,
            (std::vector<std::string>{"candidate", "exam", "rank"}));
  EXPECT_EQ(parsed->target.equality, pattern::EqualityType::kValue);
}

TEST(PathFdTest, ParseExpr2WithNodeEquality) {
  auto parsed = ParsePathFd(
      "(/session/candidate, (exam/date, exam/discipline) -> exam[N])");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->context,
            (std::vector<std::string>{"session", "candidate"}));
  EXPECT_EQ(parsed->target.equality, pattern::EqualityType::kNode);
}

TEST(PathFdTest, ParseErrors) {
  EXPECT_FALSE(ParsePathFd("").ok());
  EXPECT_FALSE(ParsePathFd("(session, (a) -> b)").ok());   // not absolute
  EXPECT_FALSE(ParsePathFd("(/s, (a) -> )").ok());
  EXPECT_FALSE(ParsePathFd("(/s, a -> b)").ok());          // missing parens
  EXPECT_FALSE(ParsePathFd("(/s, (a) -> b) x").ok());      // trailing
  EXPECT_FALSE(ParsePathFd("(/s, (a[Z]) -> b)").ok());     // bad equality
}

TEST(PathFdTest, Expr1CompilesToFd1Shape) {
  Alphabet alphabet;
  auto fd = ParseAndCompilePathFd(
      &alphabet,
      "(/session, (candidate/exam/discipline, candidate/exam/mark) -> "
      "candidate/exam/rank)");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  // Factorized template: root, session, candidate/exam, discipline, mark,
  // rank = 6 nodes; the common prefix candidate/exam is shared.
  EXPECT_EQ(fd->pattern().NumNodes(), 6u);
  EXPECT_EQ(fd->pattern().MaxArity(), 3u);

  // Behavior matches the DSL-built fd1 on the paper document and on a
  // violating variant.
  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  FunctionalDependency fd1 = MustFd(workload::PaperFd1(&alphabet));
  EXPECT_EQ(CheckFd(*fd, doc).satisfied, CheckFd(fd1, doc).satisfied);

  NodeId session = doc.first_child(doc.root());
  NodeId c = doc.AddElement(session, "candidate");
  AddExam(&doc, c, "math", "2009-06-12", "15", "99");
  AddTextElement(&doc, c, "level", "E");
  AddTextElement(&doc, c, "firstJob-Year", "2012");
  EXPECT_FALSE(CheckFd(*fd, doc).satisfied);
  EXPECT_FALSE(CheckFd(fd1, doc).satisfied);
}

TEST(PathFdTest, Expr2CompilesToFd2Shape) {
  Alphabet alphabet;
  auto fd = ParseAndCompilePathFd(
      &alphabet,
      "(/session/candidate, (exam/discipline, exam/date) -> exam[N])");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  // root, session/candidate (context), exam, discipline, date = 5 nodes.
  EXPECT_EQ(fd->pattern().NumNodes(), 5u);

  Document doc = workload::BuildPaperFigure1Document(&alphabet);
  EXPECT_TRUE(CheckFd(*fd, doc).satisfied);
}

TEST(PathFdTest, RootContext) {
  Alphabet alphabet;
  auto fd = ParseAndCompilePathFd(&alphabet, "(/, (a/b) -> a/c)");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  EXPECT_EQ(fd->context(), pattern::TreePattern::kRoot);
  EXPECT_EQ(fd->pattern().NumNodes(), 4u);  // root, a, b, c
}

TEST(PathFdTest, PrefixEndpointNotCompressedAway) {
  Alphabet alphabet;
  // 'a/b' is a prefix of 'a/b/c': both endpoints must exist as template
  // nodes.
  auto fd = ParseAndCompilePathFd(&alphabet, "(/, (a/b) -> a/b/c)");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  EXPECT_EQ(fd->pattern().NumNodes(), 3u);  // root, b (endpoint), c
  const auto& selected = fd->pattern().selected();
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(fd->pattern().parent(selected[1].node), selected[0].node);
}

TEST(PathFdTest, DuplicatePathsShareOneNode) {
  Alphabet alphabet;
  auto fd = ParseAndCompilePathFd(&alphabet, "(/, (a/b, a/b) -> a/c)");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const auto& selected = fd->pattern().selected();
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].node, selected[1].node);
}

TEST(PathFdTest, EmptyConditionListIsConstantDependency) {
  Alphabet alphabet;
  auto fd = ParseAndCompilePathFd(&alphabet, "(/s, () -> a)");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  // Within one context node, all 'a' values must coincide.
  Document doc(&alphabet);
  NodeId s = doc.AddElement(doc.root(), "s");
  NodeId a1 = doc.AddElement(s, "a");
  doc.AddText(a1, "1");
  EXPECT_TRUE(CheckFd(*fd, doc).satisfied);
  NodeId a2 = doc.AddElement(s, "a");
  doc.AddText(a2, "2");
  EXPECT_FALSE(CheckFd(*fd, doc).satisfied);
}

}  // namespace
}  // namespace rtp::fd
