#ifndef RTP_XPATH_XPATH_H_
#define RTP_XPATH_XPATH_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "pattern/tree_pattern.h"
#include "xml/document.h"

namespace rtp::xpath {

// Compiler from a positive, downward CoreXPath fragment to regular tree
// patterns — the application the paper's conclusion points at: "our
// results can thus be applied when the classes of updates are specified
// with positive queries of CoreXPath".
//
// Grammar (absolute paths only):
//
//   query     := path ('|' path)*
//   path      := ('/' | '//') step (('/' | '//') step)*
//   step      := nodetest predicate*
//   nodetest  := NAME | '*' | '@' NAME | 'text()'
//   predicate := '[' relpath ']'
//   relpath   := ('.//')? step (('/' | '//') step)*
//
// '/' is the child axis, '//' descendant-or-self-then-child; predicates
// are existential. Each top-level union branch compiles to one monadic
// tree pattern selecting the addressed nodes; predicate-free runs of steps
// collapse into a single regex-labeled edge (e.g. '//a/*/b' becomes the
// edge expression `_*/a/_/b`).
//
// SEMANTIC CAVEAT (inherent to the target formalism, and the same remark
// the paper makes about the path-based FDs of [8]): a regular tree pattern
// imposes (i) document order between sibling template branches and (ii)
// prefix-divergence between them (condition (b) of Definition 2). A step
// with predicates therefore matches only nodes whose predicate witnesses
// occur in the listed order, pairwise in distinct children subtrees, and
// strictly before the continuation of the path. Predicate-free queries
// carry no such restriction and compile exactly.
struct CompiledXPath {
  // One pattern per top-level union branch; each is monadic (one selected
  // node: the path target).
  std::vector<pattern::TreePattern> branches;
};

StatusOr<CompiledXPath> CompileXPath(Alphabet* alphabet,
                                     std::string_view query);

// Convenience: evaluates the query on a document and returns the selected
// nodes (union over branches, document order, deduplicated).
std::vector<xml::NodeId> EvaluateXPath(const CompiledXPath& compiled,
                                       const xml::Document& doc);

}  // namespace rtp::xpath

#endif  // RTP_XPATH_XPATH_H_
