#include "xpath/xpath.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "pattern/evaluator.h"
#include "regex/regex.h"

namespace rtp::xpath {

using pattern::PatternNodeId;
using pattern::TreePattern;

namespace {

enum class Axis { kChild, kDescendant };

struct NodeTest {
  enum class Kind { kName, kStar, kAttribute, kText };
  Kind kind = Kind::kName;
  std::string name;  // kName: element name; kAttribute: name without '@'
};

struct RelStep {
  Axis axis = Axis::kChild;
  NodeTest test;
};

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<std::vector<RelStep>> predicates;
};

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

class XPathParser {
 public:
  explicit XPathParser(std::string_view input) : input_(input) {}

  StatusOr<std::vector<std::vector<Step>>> Parse() {
    std::vector<std::vector<Step>> branches;
    RTP_ASSIGN_OR_RETURN(std::vector<Step> first, ParsePath());
    branches.push_back(std::move(first));
    while (Eat('|')) {
      RTP_ASSIGN_OR_RETURN(std::vector<Step> next, ParsePath());
      branches.push_back(std::move(next));
    }
    SkipSpace();
    if (pos_ != input_.size()) return Error("trailing characters");
    return branches;
  }

 private:
  Status Error(std::string msg) const {
    return ParseError("xpath: " + msg + " at offset " + std::to_string(pos_) +
                      " in \"" + std::string(input_) + "\"");
  }
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatWord(std::string_view w) {
    SkipSpace();
    if (input_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  StatusOr<Axis> ParseAxis() {
    if (EatWord("//")) return Axis::kDescendant;
    if (Eat('/')) return Axis::kChild;
    return Error("expected '/' or '//'");
  }

  StatusOr<NodeTest> ParseNodeTest() {
    SkipSpace();
    NodeTest test;
    if (Eat('*')) {
      test.kind = NodeTest::Kind::kStar;
      return test;
    }
    if (Eat('@')) {
      RTP_ASSIGN_OR_RETURN(test.name, ParseName());
      test.kind = NodeTest::Kind::kAttribute;
      return test;
    }
    RTP_ASSIGN_OR_RETURN(std::string name, ParseName());
    if (name == "text" && EatWord("()")) {
      test.kind = NodeTest::Kind::kText;
      return test;
    }
    test.kind = NodeTest::Kind::kName;
    test.name = std::move(name);
    return test;
  }

  StatusOr<std::string> ParseName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<std::vector<Step>> ParsePath() {
    std::vector<Step> steps;
    while (true) {
      SkipSpace();
      if (steps.empty()) {
        // A path must start with '/' or '//'.
        if (pos_ >= input_.size() || input_[pos_] != '/') {
          return Error("a path must be absolute ('/' or '//')");
        }
      } else if (pos_ >= input_.size() || input_[pos_] != '/') {
        break;
      }
      Step step;
      RTP_ASSIGN_OR_RETURN(step.axis, ParseAxis());
      RTP_ASSIGN_OR_RETURN(step.test, ParseNodeTest());
      while (Eat('[')) {
        RTP_ASSIGN_OR_RETURN(std::vector<RelStep> rel, ParseRelPath());
        step.predicates.push_back(std::move(rel));
        if (!Eat(']')) return Error("expected ']'");
      }
      steps.push_back(std::move(step));
    }
    return steps;
  }

  StatusOr<std::vector<RelStep>> ParseRelPath() {
    std::vector<RelStep> steps;
    RelStep first;
    if (EatWord(".//")) {
      first.axis = Axis::kDescendant;
    } else {
      EatWord("./");  // optional
      first.axis = Axis::kChild;
    }
    RTP_ASSIGN_OR_RETURN(first.test, ParseNodeTest());
    steps.push_back(std::move(first));
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != '/') break;
      RelStep next;
      RTP_ASSIGN_OR_RETURN(next.axis, ParseAxis());
      RTP_ASSIGN_OR_RETURN(next.test, ParseNodeTest());
      steps.push_back(std::move(next));
    }
    return steps;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

regex::RegexAst TestAtom(Alphabet* alphabet, const NodeTest& test) {
  switch (test.kind) {
    case NodeTest::Kind::kStar:
      return regex::Any();
    case NodeTest::Kind::kAttribute:
      return regex::Sym(alphabet->Intern("@" + test.name));
    case NodeTest::Kind::kText:
      return regex::Sym(alphabet->Intern("#text"));
    case NodeTest::Kind::kName:
      return regex::Sym(alphabet->Intern(test.name));
  }
  RTP_CHECK(false);
  return nullptr;
}

void AppendStepParts(Alphabet* alphabet, Axis axis, const NodeTest& test,
                     std::vector<regex::RegexAst>* parts) {
  if (axis == Axis::kDescendant) {
    parts->push_back(regex::Star(regex::Any()));
  }
  parts->push_back(TestAtom(alphabet, test));
}

// Compiled XPath edges carry minimal DFAs, like parsed-pattern edges.
regex::Regex MinimalEdge(regex::RegexAst ast) {
  regex::Regex edge = regex::Regex::FromAst(std::move(ast));
  edge.EnsureMinimalDfa();
  return edge;
}

TreePattern CompileBranch(Alphabet* alphabet, const std::vector<Step>& steps) {
  TreePattern tree;
  PatternNodeId current = TreePattern::kRoot;
  std::vector<regex::RegexAst> pending;
  for (const Step& step : steps) {
    AppendStepParts(alphabet, step.axis, step.test, &pending);
    if (step.predicates.empty()) continue;
    // Materialize the step as a template node and hang the predicate
    // branches under it (in listed order — see the semantic caveat).
    current =
        tree.AddChild(current, MinimalEdge(regex::Cat(std::move(pending))));
    pending.clear();
    for (const std::vector<RelStep>& predicate : step.predicates) {
      std::vector<regex::RegexAst> parts;
      for (const RelStep& rel : predicate) {
        AppendStepParts(alphabet, rel.axis, rel.test, &parts);
      }
      tree.AddChild(current, MinimalEdge(regex::Cat(std::move(parts))));
    }
  }
  PatternNodeId selected = current;
  if (!pending.empty()) {
    selected =
        tree.AddChild(current, MinimalEdge(regex::Cat(std::move(pending))));
  }
  tree.AddSelected(selected);
  return tree;
}

}  // namespace

StatusOr<CompiledXPath> CompileXPath(Alphabet* alphabet,
                                     std::string_view query) {
  RTP_ASSIGN_OR_RETURN(auto branches, XPathParser(query).Parse());
  CompiledXPath compiled;
  for (const std::vector<Step>& steps : branches) {
    if (steps.empty()) {
      return InvalidArgumentError("xpath: empty path branch");
    }
    TreePattern tree = CompileBranch(alphabet, steps);
    RTP_RETURN_IF_ERROR(tree.Validate());
    if (tree.selected().front().node == TreePattern::kRoot) {
      return InvalidArgumentError("xpath: a path must select below the root");
    }
    compiled.branches.push_back(std::move(tree));
  }
  return compiled;
}

std::vector<xml::NodeId> EvaluateXPath(const CompiledXPath& compiled,
                                       const xml::Document& doc) {
  // One document snapshot shared by every union branch.
  std::shared_ptr<const xml::DocIndex> index = doc.Snapshot();
  std::set<xml::NodeId> nodes;
  for (const TreePattern& branch : compiled.branches) {
    for (const auto& tuple : pattern::EvaluateSelected(branch, *index)) {
      nodes.insert(tuple[0]);
    }
  }
  std::vector<xml::NodeId> out(nodes.begin(), nodes.end());
  std::sort(out.begin(), out.end(), [&doc](xml::NodeId a, xml::NodeId b) {
    return doc.DocumentOrderLess(a, b);
  });
  return out;
}

}  // namespace rtp::xpath
