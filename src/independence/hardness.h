#ifndef RTP_INDEPENDENCE_HARDNESS_H_
#define RTP_INDEPENDENCE_HARDNESS_H_

#include <memory>
#include <optional>
#include <string>

#include "fd/functional_dependency.h"
#include "update/update_class.h"
#include "update/update_ops.h"
#include "xml/document.h"

namespace rtp::independence {

// The PSPACE-hardness reduction of Proposition 1: regular-expression
// inclusion reduces to Update-FD independence.
//
// Given eta and eta' over labels not containing the reserved gadget labels
// {branch, m0, hash, fval, gval}, the reduction builds (following the
// construction of the paper's Figures 7-8, reconstructed where the figure
// detail is lost in our source text):
//
//   FD (context = root):
//     root -[branch]-> x
//       x -[m0/(eta' | _*/hash/eta')/hash]-> h   (existence node)
//       x -[fval]-> p   condition [V]
//       x -[gval]-> q   target    [V]
//
//   U:  root -[branch]-> y -[m0/eta/hash]-> s    (s selected, a leaf)
//
// Claim (proved in hardness_test.cc by exhaustive small cases and spot
// checks): the FD is impacted by U iff L(eta) is NOT a subset of L(eta'),
// provided eta' is non-empty. The impacting update appends, below the
// selected 'hash' node, a chain w'.hash with w' in L(eta') — creating a
// new FD trace via the second alternative of the existence edge.
struct HardnessReduction {
  fd::FunctionalDependency fd;
  update::UpdateClass update_class;

  // True iff L(eta) is a subset of L(eta') (decided exactly through DFA
  // complementation — the exponential ground truth).
  bool eta_included;

  // When eta is not included in eta': the impact witness pair. Applying
  // `impacting_update` to `counterexample` flips it from satisfying to
  // violating the FD.
  std::optional<xml::Document> counterexample;
  std::optional<update::UpdateOperation> impacting_update;
};

// Builds the reduction. Fails if eta or eta' cannot be parsed, eta' is
// empty, or the expressions use the reserved gadget labels.
StatusOr<HardnessReduction> BuildInclusionReduction(Alphabet* alphabet,
                                                    std::string_view eta,
                                                    std::string_view eta_prime);

}  // namespace rtp::independence

#endif  // RTP_INDEPENDENCE_HARDNESS_H_
