#include "independence/impact_search.h"

#include <algorithm>
#include <random>

#include "fd/fd_checker.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "update/update_ops.h"

namespace rtp::independence {

using xml::Document;
using xml::NodeId;

namespace {

// A random label-preserving operation for the nodes in `targets`.
// Returns nullopt when no operation applies (e.g. nothing to mutate).
std::optional<update::UpdateOperation> RandomOperation(
    const Document& doc, const std::vector<NodeId>& targets,
    std::mt19937_64* rng, uint32_t value_pool) {
  auto value = [&] {
    return "v" + std::to_string((*rng)() % value_pool);
  };
  bool all_leaves = true;
  for (NodeId n : targets) {
    if (doc.type(n) == xml::NodeType::kElement) all_leaves = false;
  }
  switch ((*rng)() % 3) {
    case 0: {
      // Rewrite every value in the selected subtrees to one fresh value.
      std::string v = value();
      return update::TransformValues{
          [v](std::string_view) { return v; }};
    }
    case 1: {
      // Rewrite values through a permutation-ish mapping.
      uint64_t salt = (*rng)();
      uint32_t pool = value_pool;
      return update::TransformValues{[salt, pool](std::string_view old) {
        uint64_t h = salt;
        for (char c : old) h = h * 131 + static_cast<unsigned char>(c);
        return "v" + std::to_string(h % pool);
      }};
    }
    default: {
      if (all_leaves) {
        return update::SetValue{value()};
      }
      return update::DeleteChildren{};
    }
  }
}

// Massages `doc` until it satisfies `fd`: value-equality targets are
// overwritten with the group representative's subtree; node-equality
// targets are resolved by detaching the offending duplicate. Returns false
// when the document could not be repaired within the iteration budget.
bool RepairToSatisfy(const fd::FunctionalDependency& fd, Document* doc,
                     int max_iterations = 64) {
  const pattern::SelectedNode target = fd.target();
  for (int i = 0; i < max_iterations; ++i) {
    fd::CheckResult check = fd::CheckFd(fd, *doc);
    if (check.satisfied) return true;
    const fd::Violation& v = *check.violation;
    NodeId keep = v.first.image[target.node];
    NodeId drop = v.second.image[target.node];
    if (target.equality == pattern::EqualityType::kValue) {
      if (drop == doc->root() ||
          doc->IsAncestorOrSelf(keep, doc->parent(drop)) ||
          doc->IsAncestorOrSelf(drop, keep)) {
        return false;  // overlapping targets: give up on this document
      }
      doc->ReplaceSubtree(drop, *doc, keep);
    } else {
      if (drop == doc->root()) return false;
      doc->DetachSubtree(drop);
    }
  }
  return fd::CheckFd(fd, *doc).satisfied;
}

}  // namespace

ImpactSearchResult SearchForImpact(const fd::FunctionalDependency& fd,
                                   const update::UpdateClass& update,
                                   const schema::Schema& schema,
                                   const ImpactSearchParams& params) {
  RTP_OBS_COUNT("independence.impact_search.calls");
  RTP_OBS_SCOPED_TIMER("independence.impact_search.ns");
  RTP_OBS_TRACE_SPAN("independence.SearchForImpact");
  ImpactSearchResult result;
  std::mt19937_64 rng(params.seed);
  // One scope for the whole search: the inner CheckFd / SelectNodes calls
  // run under this thread-local guard rather than per-call budgets.
  guard::OptionalGuardScope guard_scope(params.budget, params.cancel);

  for (int d = 0; d < params.num_documents; ++d) {
    if (!guard::KeepGoing()) break;
    workload::RandomDocumentParams doc_params = params.document_params;
    doc_params.seed = rng();
    auto doc_or = workload::GenerateRandomDocument(schema, doc_params);
    if (!doc_or.ok()) continue;
    Document doc = std::move(doc_or).value();
    ++result.documents_tried;
    RTP_OBS_COUNT("independence.impact_search.documents_tried");

    if (!fd::CheckFd(fd, doc).satisfied) {
      // Try to repair the document into satisfying fd (and staying valid).
      if (!RepairToSatisfy(fd, &doc) || !schema.Validate(doc)) {
        ++result.documents_not_satisfying;
        continue;
      }
    }
    std::vector<NodeId> targets = update.SelectNodes(doc);
    if (targets.empty()) continue;

    for (int u = 0; u < params.updates_per_document; ++u) {
      if (!guard::KeepGoing()) break;
      Document mutated = doc.Clone();
      std::vector<NodeId> mutated_targets = update.SelectNodes(mutated);
      // The concrete update u of q = u o U may act differently on each
      // selected node: draw an independent operation per random slice.
      std::shuffle(mutated_targets.begin(), mutated_targets.end(), rng);
      size_t cut = mutated_targets.size() <= 1
                       ? mutated_targets.size()
                       : 1 + rng() % mutated_targets.size();
      std::vector<NodeId> first_slice(mutated_targets.begin(),
                                      mutated_targets.begin() + cut);
      std::vector<NodeId> second_slice(mutated_targets.begin() + cut,
                                       mutated_targets.end());
      bool applied_any = false;
      bool failed = false;
      for (const std::vector<NodeId>& slice : {first_slice, second_slice}) {
        if (slice.empty()) continue;
        auto operation = RandomOperation(mutated, slice, &rng,
                                         params.document_params.value_pool);
        if (!operation.has_value()) continue;
        auto stats = update::ApplyOperationAt(&mutated, slice, *operation);
        if (!stats.ok()) {
          failed = true;
          break;
        }
        applied_any = true;
      }
      if (failed || !applied_any) continue;
      ++result.updates_tried;
      RTP_OBS_COUNT("independence.impact_search.updates_tried");
      if (!schema.Validate(mutated)) continue;  // out of valid(S)
      if (!fd::CheckFd(fd, mutated).satisfied) {
        RTP_OBS_COUNT("independence.impact_search.impacts_found");
        result.impact_found = true;
        result.witness = ImpactWitness{
            std::move(doc), std::move(mutated),
            "document " + std::to_string(d) + ", update " + std::to_string(u)};
        result.status = guard::CurrentStatus();
        return result;
      }
    }
  }
  result.status = guard::CurrentStatus();
  return result;
}

}  // namespace rtp::independence
