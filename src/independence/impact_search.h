#ifndef RTP_INDEPENDENCE_IMPACT_SEARCH_H_
#define RTP_INDEPENDENCE_IMPACT_SEARCH_H_

#include <optional>
#include <string>

#include "fd/functional_dependency.h"
#include "guard/guard.h"
#include "schema/schema.h"
#include "update/update_class.h"
#include "workload/random_document.h"

namespace rtp::independence {

// Randomized search for an *actual* impact witness: a schema-valid
// document D satisfying fd and a concrete update q of the class such that
// q(D) violates fd (and stays schema-valid when a schema is given).
//
// This is the ground truth against which the criterion's precision is
// measured (the criterion is sound, so it must never claim independence
// for a pair where this search succeeds). Updates drawn here preserve the
// label of the updated node, matching the criterion's assumptions.
struct ImpactSearchParams {
  int num_documents = 40;
  int updates_per_document = 8;
  uint64_t seed = 7;
  workload::RandomDocumentParams document_params;
  // When limited (or `cancel` is set) the whole search runs under one
  // GuardContext; a trip stops the document/update loops and lands in
  // ImpactSearchResult::status.
  guard::ExecutionBudget budget;
  guard::CancelToken* cancel = nullptr;
};

struct ImpactWitness {
  xml::Document before;
  xml::Document after;
  std::string description;
};

struct ImpactSearchResult {
  bool impact_found = false;
  std::optional<ImpactWitness> witness;
  int documents_tried = 0;
  int updates_tried = 0;
  // Documents skipped because they did not satisfy fd to begin with.
  int documents_not_satisfying = 0;
  // OK iff the search ran to completion. A resource status means the
  // search stopped early; a witness found before the trip is still a real
  // impact, but impact_found=false is then inconclusive.
  Status status;
};

// `schema` must be non-null: documents are drawn from it. Documents where
// the update class selects nothing contribute no update trials.
ImpactSearchResult SearchForImpact(const fd::FunctionalDependency& fd,
                                   const update::UpdateClass& update,
                                   const schema::Schema& schema,
                                   const ImpactSearchParams& params = {});

}  // namespace rtp::independence

#endif  // RTP_INDEPENDENCE_IMPACT_SEARCH_H_
