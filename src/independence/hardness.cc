#include "independence/hardness.h"

#include <set>

#include "regex/regex.h"
#include "regex/regex_parser.h"

namespace rtp::independence {

using pattern::TreePattern;
using xml::Document;
using xml::NodeId;

namespace {

Status CheckReservedLabels(const regex::RegexNode& node,
                           const Alphabet& alphabet) {
  static constexpr const char* kReserved[] = {"branch", "m0", "hash", "fval",
                                              "gval"};
  if (node.kind == regex::RegexKind::kSymbol) {
    for (const char* r : kReserved) {
      if (alphabet.Name(node.symbol) == r) {
        return InvalidArgumentError(
            std::string("expression uses the reserved gadget label '") + r +
            "'");
      }
    }
  }
  if (node.kind == regex::RegexKind::kAny) {
    return InvalidArgumentError(
        "the wildcard '_' is not allowed in reduction expressions (it would "
        "capture the gadget labels)");
  }
  for (const auto& child : node.children) {
    RTP_RETURN_IF_ERROR(CheckReservedLabels(*child, alphabet));
  }
  return Status::OK();
}

// Appends a unary chain labeled by `word` below `parent`, returning the
// last node.
NodeId AppendChain(Document* doc, NodeId parent,
                   const std::vector<LabelId>& word) {
  NodeId cur = parent;
  for (LabelId label : word) {
    cur = doc->AddChild(cur, label, xml::NodeType::kElement);
  }
  return cur;
}

void AddBranch(Document* doc, NodeId root, const std::vector<LabelId>& word,
               std::string_view f_value, std::string_view g_value) {
  Alphabet* alphabet = doc->mutable_alphabet();
  NodeId x = doc->AddElement(root, "branch");
  NodeId m = doc->AddElement(x, "m0");
  NodeId end = AppendChain(doc, m, word);
  doc->AddElement(end, "hash");
  NodeId f = doc->AddElement(x, "fval");
  doc->AddText(f, f_value);
  NodeId g = doc->AddElement(x, "gval");
  doc->AddText(g, g_value);
  (void)alphabet;
}

}  // namespace

StatusOr<HardnessReduction> BuildInclusionReduction(
    Alphabet* alphabet, std::string_view eta, std::string_view eta_prime) {
  RTP_ASSIGN_OR_RETURN(regex::RegexAst eta_ast,
                       regex::ParseRegex(alphabet, eta));
  RTP_ASSIGN_OR_RETURN(regex::RegexAst eta_prime_ast,
                       regex::ParseRegex(alphabet, eta_prime));
  RTP_RETURN_IF_ERROR(CheckReservedLabels(*eta_ast, *alphabet));
  RTP_RETURN_IF_ERROR(CheckReservedLabels(*eta_prime_ast, *alphabet));

  regex::Dfa eta_dfa = regex::Dfa::FromAst(*eta_ast);
  regex::Dfa eta_prime_dfa = regex::Dfa::FromAst(*eta_prime_ast);
  if (eta_prime_dfa.IsEmpty()) {
    return InvalidArgumentError(
        "the reduction requires eta' to denote a non-empty language");
  }

  LabelId branch = alphabet->Intern("branch");
  LabelId m0 = alphabet->Intern("m0");
  LabelId hash = alphabet->Intern("hash");
  LabelId fval = alphabet->Intern("fval");
  LabelId gval = alphabet->Intern("gval");
  (void)branch;

  // FD pattern: root -branch-> x { m0/(eta'|_*/hash/eta')/hash ; fval ; gval }.
  auto make_regex = [&](regex::RegexAst ast) {
    return regex::Regex::FromAst(std::move(ast));
  };
  TreePattern fd_tree;
  pattern::PatternNodeId x =
      fd_tree.AddChild(TreePattern::kRoot, make_regex(regex::Sym(branch)));
  {
    // m0 / (eta' | _*/hash/eta') / hash
    std::vector<regex::RegexAst> second_alt;
    second_alt.push_back(regex::Star(regex::Any()));
    second_alt.push_back(regex::Sym(hash));
    second_alt.push_back(regex::CloneAst(*eta_prime_ast));
    std::vector<regex::RegexAst> alts;
    alts.push_back(regex::CloneAst(*eta_prime_ast));
    alts.push_back(regex::Cat(std::move(second_alt)));
    std::vector<regex::RegexAst> whole;
    whole.push_back(regex::Sym(m0));
    whole.push_back(regex::Alt(std::move(alts)));
    whole.push_back(regex::Sym(hash));
    fd_tree.AddChild(x, make_regex(regex::Cat(std::move(whole))));
  }
  pattern::PatternNodeId p = fd_tree.AddChild(x, make_regex(regex::Sym(fval)));
  pattern::PatternNodeId q = fd_tree.AddChild(x, make_regex(regex::Sym(gval)));
  fd_tree.AddSelected(p, pattern::EqualityType::kValue);
  fd_tree.AddSelected(q, pattern::EqualityType::kValue);
  RTP_ASSIGN_OR_RETURN(
      fd::FunctionalDependency fd,
      fd::FunctionalDependency::Create(std::move(fd_tree), TreePattern::kRoot));

  // U pattern: root -branch-> y -m0/eta/hash-> s.
  TreePattern u_tree;
  pattern::PatternNodeId y =
      u_tree.AddChild(TreePattern::kRoot, make_regex(regex::Sym(branch)));
  {
    std::vector<regex::RegexAst> whole;
    whole.push_back(regex::Sym(m0));
    whole.push_back(regex::CloneAst(*eta_ast));
    whole.push_back(regex::Sym(hash));
    pattern::PatternNodeId s =
        u_tree.AddChild(y, make_regex(regex::Cat(std::move(whole))));
    u_tree.AddSelected(s);
  }
  RTP_ASSIGN_OR_RETURN(update::UpdateClass update_class,
                       update::UpdateClass::Create(std::move(u_tree)));

  HardnessReduction reduction{std::move(fd), std::move(update_class), false,
                              std::nullopt, std::nullopt};

  // Decide inclusion exactly (exponential in general: the PSPACE engine).
  regex::Dfa difference = regex::Dfa::Difference(eta_dfa, eta_prime_dfa);
  reduction.eta_included = difference.IsEmpty();

  if (!reduction.eta_included) {
    // w in L(eta) \ L(eta'): dynamic branch carries m0.w.hash.
    auto w = difference.ShortestWord(alphabet);
    RTP_CHECK(w.has_value());
    auto w_prime = eta_prime_dfa.ShortestWord(alphabet);
    RTP_CHECK(w_prime.has_value());

    Document doc(alphabet);
    // Dynamic branch: eta-word, same F value, different G value.
    AddBranch(&doc, doc.root(), *w, "F", "G1");
    // Static branch: eta'-word (already an FD trace).
    AddBranch(&doc, doc.root(), *w_prime, "F", "G2");
    reduction.counterexample = std::move(doc);

    // The impacting update: append the chain w'.hash below each selected
    // hash node (when w' is empty the chain is the single hash node).
    auto sub = std::make_shared<Document>(alphabet);
    NodeId first;
    if (w_prime->empty()) {
      first = sub->AddElement(sub->root(), "hash");
    } else {
      first =
          sub->AddChild(sub->root(), (*w_prime)[0], xml::NodeType::kElement);
      NodeId end = AppendChain(
          sub.get(), first,
          std::vector<LabelId>(w_prime->begin() + 1, w_prime->end()));
      sub->AddElement(end, "hash");
    }
    reduction.impacting_update = update::AppendChild{sub, first};
  }
  return reduction;
}

}  // namespace rtp::independence
