#ifndef RTP_INDEPENDENCE_CRITERION_H_
#define RTP_INDEPENDENCE_CRITERION_H_

#include <optional>

#include "automata/hedge_automaton.h"
#include "common/status.h"
#include "guard/guard.h"
#include "fd/functional_dependency.h"
#include "schema/schema.h"
#include "update/update_class.h"
#include "xml/doc_index.h"
#include "xml/document.h"

namespace rtp::exec {
class AutomatonCache;
}  // namespace rtp::exec

namespace rtp::independence {

// Result of checking the independence criterion IC (Propositions 2 and 3).
struct CriterionResult {
  // True iff the language L of Definition 6 is empty; then fd is
  // independent with respect to the update class (in the context of the
  // schema, if one was given). False means "unknown": the criterion is
  // sound but not complete.
  bool independent = false;

  // When L is non-empty: a document of L, i.e. a schema-valid document
  // containing an FD trace and a U trace whose updated node touches the FD
  // trace or the condition/target subtrees. This is the *candidate
  // conflict situation* the criterion could not rule out (not necessarily
  // an actual impact witness).
  std::optional<xml::Document> conflict_candidate;

  // Instrumentation for the Proposition 3 size/time claims.
  int64_t fd_automaton_size = 0;
  int64_t u_automaton_size = 0;
  int64_t schema_automaton_size = 0;
  int64_t product_size = 0;  // |A| of the automaton recognizing L
};

struct CriterionOptions {
  // Also synthesize `conflict_candidate` when the criterion fails.
  bool want_conflict_candidate = false;

  // Optional shared compile cache: the FD and update-class pattern
  // automata are looked up (and built at most once per pattern) instead of
  // recompiled per check. Safe to share across threads; see
  // docs/PARALLELISM.md. Ignored while a guard is active — the cache's
  // build-once contract must never memoize a partially built automaton.
  exec::AutomatonCache* cache = nullptr;

  // When limited (or `cancel` is set) the whole check — pattern
  // compilation, products, emptiness — runs under a GuardContext; a trip
  // surfaces as the StatusOr's error (one of the three resource codes).
  guard::ExecutionBudget budget;
  guard::CancelToken* cancel = nullptr;
};

// Checks the independence criterion: builds the automaton for
// L = valid(S) ∩ { D containing an FD trace and a U trace whose updated
// node is on the FD trace or inside a condition/target subtree } as
// Intersect(MeetProduct(A_FD, A_U), A_S) and tests its emptiness.
//
// `schema` may be null (no schema: A_S is the universal automaton).
//
// Fails with InvalidArgument when a selected node of the update class is
// not a leaf of its template — the restriction under which Proposition 2
// holds. As in the paper, the criterion's soundness assumes updates
// preserve the label of the updated node (an update "at" a node rewrites
// its content, not its identity).
StatusOr<CriterionResult> CheckIndependence(
    const fd::FunctionalDependency& fd, const update::UpdateClass& update,
    const schema::Schema* schema, Alphabet* alphabet,
    const CriterionOptions& options = {});

// Direct (automaton-free) test of membership of `doc` in the language L of
// Definition 6, via pattern evaluation. Used to cross-validate the
// automaton construction and to explain conflict candidates. The DocIndex
// overload shares one document snapshot between the update-class and FD
// evaluations (and with any other pattern the caller runs on the
// document); results are identical.
bool IsInCriterionLanguage(const xml::Document& doc,
                           const fd::FunctionalDependency& fd,
                           const update::UpdateClass& update,
                           const schema::Schema* schema);
bool IsInCriterionLanguage(const xml::DocIndex& index,
                           const fd::FunctionalDependency& fd,
                           const update::UpdateClass& update,
                           const schema::Schema* schema);

}  // namespace rtp::independence

#endif  // RTP_INDEPENDENCE_CRITERION_H_
