#ifndef RTP_INDEPENDENCE_MATRIX_H_
#define RTP_INDEPENDENCE_MATRIX_H_

#include <string>
#include <vector>

#include "exec/automaton_cache.h"
#include "exec/thread_pool.h"
#include "independence/criterion.h"
#include "obs/profile.h"

namespace rtp::independence {

// Batch form of the criterion — the "set of FDs vs set of update classes"
// setting of the paper's abstract: run IC once per pair and return the
// compatibility matrix an update guard consults per incoming update.
struct MatrixEntry {
  size_t fd_index = 0;
  size_t class_index = 0;
  bool independent = false;
  int64_t product_size = 0;
  // OK iff the criterion ran to completion on this pair. A resource
  // status (deadline / quota / cancellation) leaves independent=false —
  // the conservative verdict: the FD is rechecked on updates of the class.
  Status status;
};

struct IndependenceMatrix {
  // Row-major: entry(f, c) at f * num_classes + c.
  std::vector<MatrixEntry> entries;
  size_t num_fds = 0;
  size_t num_classes = 0;

  const MatrixEntry& at(size_t fd_index, size_t class_index) const {
    return entries[fd_index * num_classes + class_index];
  }

  // For one incoming update of class c: indices of the FDs that must be
  // re-verified (those not proven independent).
  std::vector<size_t> FdsToRecheck(size_t class_index) const;

  // Fraction of pairs proven independent.
  double IndependentFraction() const;

  // Plain-text rendering (rows = classes, columns = FDs).
  std::string ToString(const std::vector<std::string>& fd_names,
                       const std::vector<std::string>& class_names) const;
};

struct MatrixOptions {
  // Number of worker threads for the pair checks. <= 1 runs serially on
  // the calling thread (the reference path); 0 is treated as 1. When
  // `pool` is set, it is used as-is and `jobs` is ignored.
  int jobs = 1;
  exec::ThreadPool* pool = nullptr;

  // Shared compile cache: each FD / update-class automaton is built once
  // and reused across all pairs (and across matrices sharing the cache).
  // Ignored when a budget or cancel token is configured (the criterion
  // bypasses the cache under a guard).
  exec::AutomatonCache* cache = nullptr;

  // Per-pair budget: each (fd, class) pair runs under its own
  // GuardContext, so a pathological pair degrades alone — its entry gets
  // the resource status and independent=false while cheap pairs complete
  // normally. The cancel token is shared across pairs.
  guard::ExecutionBudget budget;
  guard::CancelToken* cancel = nullptr;

  // When non-null, resized to fds.size() * classes.size(); the row-major
  // slot of pair (f, c) receives that cell's QueryProfile — op
  // "independence.matrix[f,c]", the criterion's phase tree
  // (compile_patterns / build_product / emptiness / ...), metric deltas,
  // and the cell's final status.
  std::vector<obs::QueryProfile>* profiles = nullptr;
};

// Runs CheckIndependence for every (fd, class) pair. Fails on the first
// structural error in row-major pair order (e.g. a non-leaf-selected
// update class). Resource statuses are NOT whole-matrix failures: they
// degrade per cell (see MatrixEntry::status).
//
// Determinism: the result (entry order, every field, and which error is
// reported) is byte-identical for every jobs value — each pair writes a
// pre-assigned row-major slot, and errors are selected by lowest pair
// index after all pairs finished. The shared `alphabet` is only read:
// conflict-candidate synthesis (the one interning path of the criterion)
// is disabled for matrix checks.
StatusOr<IndependenceMatrix> ComputeIndependenceMatrix(
    const std::vector<const fd::FunctionalDependency*>& fds,
    const std::vector<const update::UpdateClass*>& classes,
    const schema::Schema* schema, Alphabet* alphabet,
    const MatrixOptions& options = {});

}  // namespace rtp::independence

#endif  // RTP_INDEPENDENCE_MATRIX_H_
