#include "independence/matrix.h"

namespace rtp::independence {

std::vector<size_t> IndependenceMatrix::FdsToRecheck(
    size_t class_index) const {
  std::vector<size_t> out;
  for (size_t f = 0; f < num_fds; ++f) {
    if (!at(f, class_index).independent) out.push_back(f);
  }
  return out;
}

double IndependenceMatrix::IndependentFraction() const {
  if (entries.empty()) return 0.0;
  size_t independent = 0;
  for (const MatrixEntry& e : entries) {
    if (e.independent) ++independent;
  }
  return static_cast<double>(independent) / static_cast<double>(entries.size());
}

std::string IndependenceMatrix::ToString(
    const std::vector<std::string>& fd_names,
    const std::vector<std::string>& class_names) const {
  RTP_CHECK(fd_names.size() == num_fds && class_names.size() == num_classes);
  std::string out(12, ' ');
  for (const std::string& name : fd_names) {
    out += name;
    out.append(name.size() < 10 ? 10 - name.size() : 1, ' ');
  }
  out += "\n";
  for (size_t c = 0; c < num_classes; ++c) {
    std::string row = class_names[c];
    row.append(row.size() < 12 ? 12 - row.size() : 1, ' ');
    for (size_t f = 0; f < num_fds; ++f) {
      const char* cell = at(f, c).independent ? "safe" : "check";
      row += cell;
      row.append(10 - std::string(cell).size(), ' ');
    }
    out += row + "\n";
  }
  return out;
}

StatusOr<IndependenceMatrix> ComputeIndependenceMatrix(
    const std::vector<const fd::FunctionalDependency*>& fds,
    const std::vector<const update::UpdateClass*>& classes,
    const schema::Schema* schema, Alphabet* alphabet) {
  IndependenceMatrix matrix;
  matrix.num_fds = fds.size();
  matrix.num_classes = classes.size();
  matrix.entries.reserve(fds.size() * classes.size());
  for (size_t f = 0; f < fds.size(); ++f) {
    for (size_t c = 0; c < classes.size(); ++c) {
      RTP_ASSIGN_OR_RETURN(
          CriterionResult result,
          CheckIndependence(*fds[f], *classes[c], schema, alphabet));
      matrix.entries.push_back(
          MatrixEntry{f, c, result.independent, result.product_size});
    }
  }
  return matrix;
}

}  // namespace rtp::independence
