#include "independence/matrix.h"

#include <optional>

#include "guard/guard.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace rtp::independence {

namespace {

std::string PairOp(size_t f, size_t c) {
  return "independence.matrix[" + std::to_string(f) + "," +
         std::to_string(c) + "]";
}

}  // namespace

std::vector<size_t> IndependenceMatrix::FdsToRecheck(
    size_t class_index) const {
  std::vector<size_t> out;
  for (size_t f = 0; f < num_fds; ++f) {
    if (!at(f, class_index).independent) out.push_back(f);
  }
  return out;
}

double IndependenceMatrix::IndependentFraction() const {
  if (entries.empty()) return 0.0;
  size_t independent = 0;
  for (const MatrixEntry& e : entries) {
    if (e.independent) ++independent;
  }
  return static_cast<double>(independent) / static_cast<double>(entries.size());
}

std::string IndependenceMatrix::ToString(
    const std::vector<std::string>& fd_names,
    const std::vector<std::string>& class_names) const {
  RTP_CHECK(fd_names.size() == num_fds && class_names.size() == num_classes);
  std::string out(12, ' ');
  for (const std::string& name : fd_names) {
    out += name;
    out.append(name.size() < 10 ? 10 - name.size() : 1, ' ');
  }
  out += "\n";
  for (size_t c = 0; c < num_classes; ++c) {
    std::string row = class_names[c];
    row.append(row.size() < 12 ? 12 - row.size() : 1, ' ');
    for (size_t f = 0; f < num_fds; ++f) {
      const MatrixEntry& e = at(f, c);
      const char* cell = e.independent ? "safe" : "check";
      switch (e.status.code()) {
        case StatusCode::kDeadlineExceeded:
          cell = "deadline";
          break;
        case StatusCode::kResourceExhausted:
          cell = "resource";
          break;
        case StatusCode::kCancelled:
          cell = "cancelled";
          break;
        default:
          break;
      }
      row += cell;
      row.append(10 - std::string(cell).size(), ' ');
    }
    out += row + "\n";
  }
  return out;
}

StatusOr<IndependenceMatrix> ComputeIndependenceMatrix(
    const std::vector<const fd::FunctionalDependency*>& fds,
    const std::vector<const update::UpdateClass*>& classes,
    const schema::Schema* schema, Alphabet* alphabet,
    const MatrixOptions& options) {
  RTP_OBS_SCOPED_TIMER("independence.matrix.ns");
  IndependenceMatrix matrix;
  matrix.num_fds = fds.size();
  matrix.num_classes = classes.size();
  size_t num_pairs = fds.size() * classes.size();
  matrix.entries.resize(num_pairs);
  if (options.profiles != nullptr) {
    options.profiles->assign(num_pairs, obs::QueryProfile());
  }

  // Warm the compile cache serially so the shared FD / update automata are
  // built exactly once instead of racing (each would still build once
  // under the cache's build-once contract, but late pairs would block on
  // the winner instead of doing useful work).
  CriterionOptions pair_options;
  pair_options.cache = options.cache;
  pair_options.budget = options.budget;
  pair_options.cancel = options.cancel;
  const bool guarded = options.budget.Limited() || options.cancel != nullptr;
  // The criterion bypasses the cache under a guard, so warming it would be
  // unguarded work for nothing — skip the phase entirely.
  if (options.cache != nullptr && !guarded) {
    for (const fd::FunctionalDependency* fd : fds) {
      options.cache->GetPatternAutomaton(
          fd->pattern(), *alphabet,
          automata::MarkMode::kTraceAndSelectedSubtrees);
    }
    for (const update::UpdateClass* cls : classes) {
      options.cache->GetPatternAutomaton(
          cls->pattern(), *alphabet,
          automata::MarkMode::kSelectedImagesOnly);
    }
  }

  exec::ThreadPool* pool = options.pool;
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && options.jobs > 1) {
    owned_pool.emplace(options.jobs);
    pool = &*owned_pool;
  }

  // One task per (fd, class) pair, each writing its pre-assigned row-major
  // slot; statuses are merged afterwards in pair order, so the verdicts
  // and the reported error do not depend on the schedule.
  std::vector<Status> statuses(num_pairs);
  exec::ParallelFor(pool, num_pairs, [&](size_t pair) {
    size_t f = pair / classes.size();
    size_t c = pair % classes.size();
    obs::QueryProfile* cell_profile =
        options.profiles == nullptr ? nullptr : &(*options.profiles)[pair];
    // A cancelled matrix drains its remaining pairs without running the
    // criterion; each pair still gets a deterministic per-cell status.
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      Status cancelled = CancelledError("cancelled before pair check");
      if (cell_profile != nullptr) {
        cell_profile->op = PairOp(f, c);
        cell_profile->status = cancelled.ToString();
      }
      matrix.entries[pair] =
          MatrixEntry{f, c, false, 0, std::move(cancelled)};
      return;
    }
    std::optional<StatusOr<CriterionResult>> result;
    {
      // The criterion installs its own guard (per pair_options), inside
      // this scope — so the captured spans/deltas cover the whole cell,
      // while the status is patched in below from the cell's outcome.
      obs::ProfileScope prof(PairOp(f, c), cell_profile);
      result.emplace(CheckIndependence(*fds[f], *classes[c], schema,
                                       alphabet, pair_options));
    }
    if (cell_profile != nullptr) {
      cell_profile->status = result->status().ToString();
    }
    if (!result->ok()) {
      if (guard::IsResourceStatus(result->status())) {
        // Per-cell degradation: a budget trip on one pair is not a matrix
        // failure. independent=false is the conservative verdict.
        matrix.entries[pair] = MatrixEntry{f, c, false, 0, result->status()};
      } else {
        statuses[pair] = result->status();
      }
      return;
    }
    matrix.entries[pair] = MatrixEntry{f, c, (*result)->independent,
                                       (*result)->product_size, Status::OK()};
  });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return matrix;
}

}  // namespace rtp::independence
