#include "independence/criterion.h"

#include <set>

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "exec/automaton_cache.h"
#include "guard/failpoints.h"
#include "guard/guard.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "pattern/evaluator.h"

namespace rtp::independence {

using automata::HedgeAutomaton;
using automata::MarkMode;

StatusOr<CriterionResult> CheckIndependence(
    const fd::FunctionalDependency& fd, const update::UpdateClass& update,
    const schema::Schema* schema, Alphabet* alphabet,
    const CriterionOptions& options) {
  RTP_OBS_COUNT("independence.criterion.checks");
  RTP_OBS_SCOPED_TIMER("independence.criterion.ns");
  RTP_OBS_TRACE_SPAN("independence.CheckIndependence");
  if (!update.SelectedAreLeaves()) {
    return InvalidArgumentError(
        "the criterion requires every selected node of the update class to "
        "be a leaf of its template (Section 5)");
  }

  // The scope covers compilation, products and emptiness. Structural
  // validation above is O(pattern) and stays outside so it keeps its
  // InvalidArgument code even on a pre-cancelled token.
  guard::OptionalGuardScope guard_scope(options.budget, options.cancel);
  RTP_FAILPOINT("independence.criterion");

  // Compiled pattern automata, either freshly built or shared through the
  // caller's AutomatonCache (the batch/matrix path compiles each FD and
  // update class once instead of once per pair). Under an active guard the
  // cache is bypassed: its build-once contract would permanently memoize
  // an automaton whose construction a trip cut short.
  std::shared_ptr<const HedgeAutomaton> fd_shared;
  std::shared_ptr<const HedgeAutomaton> u_shared;
  HedgeAutomaton fd_local;
  HedgeAutomaton u_local;
  {
    RTP_OBS_TRACE_SPAN("independence.compile_patterns");
    if (options.cache != nullptr && !guard::Active()) {
      fd_shared = options.cache->GetPatternAutomaton(
          fd.pattern(), *alphabet, MarkMode::kTraceAndSelectedSubtrees);
      u_shared = options.cache->GetPatternAutomaton(
          update.pattern(), *alphabet, MarkMode::kSelectedImagesOnly);
    } else {
      fd_local =
          CompilePattern(fd.pattern(), MarkMode::kTraceAndSelectedSubtrees);
      u_local =
          CompilePattern(update.pattern(), MarkMode::kSelectedImagesOnly);
    }
  }
  RTP_RETURN_IF_ERROR(guard::CurrentStatus());
  const HedgeAutomaton& fd_automaton = fd_shared ? *fd_shared : fd_local;
  const HedgeAutomaton& u_automaton = u_shared ? *u_shared : u_local;
  HedgeAutomaton schema_automaton =
      schema != nullptr ? HedgeAutomaton() : HedgeAutomaton::Universal();
  const HedgeAutomaton& a_s =
      schema != nullptr ? schema->automaton() : schema_automaton;

  HedgeAutomaton meet;
  HedgeAutomaton l_automaton;
  {
    RTP_OBS_TRACE_SPAN("independence.build_product");
    meet = automata::MeetProduct(fd_automaton, u_automaton);
    l_automaton = automata::Intersect(meet, a_s);
  }
  RTP_RETURN_IF_ERROR(guard::CurrentStatus());

  CriterionResult result;
  result.fd_automaton_size = fd_automaton.TotalSize();
  result.u_automaton_size = u_automaton.TotalSize();
  result.schema_automaton_size = a_s.TotalSize();
  result.product_size = l_automaton.TotalSize();
  {
    RTP_OBS_TRACE_SPAN("independence.emptiness");
    result.independent = l_automaton.IsEmptyLanguage();
  }
  // A trip during emptiness makes `independent` untrustworthy (the
  // saturation fixpoint may have stopped early); discard the verdict.
  RTP_RETURN_IF_ERROR(guard::CurrentStatus());
  RTP_OBS_HISTOGRAM_RECORD("independence.criterion.product_size",
                           result.product_size);
  if (result.independent) {
    RTP_OBS_COUNT("independence.criterion.independent");
  } else {
    RTP_OBS_COUNT("independence.criterion.unknown");
  }
  if (!result.independent && options.want_conflict_candidate) {
    RTP_OBS_TRACE_SPAN("independence.witness_synthesis");
    auto witness = l_automaton.FindWitnessDocument(alphabet);
    if (witness.ok()) {
      result.conflict_candidate = std::move(witness).value();
    }
  }
  return result;
}

bool IsInCriterionLanguage(const xml::Document& doc,
                           const fd::FunctionalDependency& fd,
                           const update::UpdateClass& update,
                           const schema::Schema* schema) {
  return IsInCriterionLanguage(*doc.Snapshot(), fd, update, schema);
}

bool IsInCriterionLanguage(const xml::DocIndex& index,
                           const fd::FunctionalDependency& fd,
                           const update::UpdateClass& update,
                           const schema::Schema* schema) {
  const xml::Document& doc = index.doc();
  RTP_OBS_COUNT("independence.reverify.calls");
  RTP_OBS_SCOPED_TIMER("independence.reverify.ns");
  if (schema != nullptr && !schema->Validate(doc)) return false;

  // Nodes the update class would update.
  std::vector<xml::NodeId> updated = update.SelectNodes(index);
  if (updated.empty()) return false;

  // Does some FD mapping's trace-or-covered set intersect them?
  pattern::MatchTables tables =
      pattern::MatchTables::Build(fd.pattern(), index);
  pattern::MappingEnumerator enumerator(tables);
  bool found = false;
  enumerator.ForEach([&](const pattern::Mapping& m) {
    std::vector<xml::NodeId> trace = pattern::TraceOf(doc, m);
    std::set<xml::NodeId> fd_set(trace.begin(), trace.end());
    for (const pattern::SelectedNode& s : fd.pattern().selected()) {
      // Node-equality positions do not contribute their subtrees (see the
      // refinement note in pattern_compiler.h); their images are already
      // on the trace.
      if (s.equality != pattern::EqualityType::kValue) continue;
      doc.VisitFrom(m.image[s.node], [&fd_set](xml::NodeId n) {
        fd_set.insert(n);
        return true;
      });
    }
    for (xml::NodeId n : updated) {
      if (fd_set.count(n) > 0) {
        found = true;
        return false;  // stop enumeration
      }
    }
    return true;
  });
  return found;
}

}  // namespace rtp::independence
