#include "independence/criterion.h"

#include <set>

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "pattern/evaluator.h"

namespace rtp::independence {

using automata::HedgeAutomaton;
using automata::MarkMode;

StatusOr<CriterionResult> CheckIndependence(
    const fd::FunctionalDependency& fd, const update::UpdateClass& update,
    const schema::Schema* schema, Alphabet* alphabet,
    const CriterionOptions& options) {
  if (!update.SelectedAreLeaves()) {
    return InvalidArgumentError(
        "the criterion requires every selected node of the update class to "
        "be a leaf of its template (Section 5)");
  }

  HedgeAutomaton fd_automaton =
      CompilePattern(fd.pattern(), MarkMode::kTraceAndSelectedSubtrees);
  HedgeAutomaton u_automaton =
      CompilePattern(update.pattern(), MarkMode::kSelectedImagesOnly);
  HedgeAutomaton schema_automaton =
      schema != nullptr ? HedgeAutomaton() : HedgeAutomaton::Universal();
  const HedgeAutomaton& a_s =
      schema != nullptr ? schema->automaton() : schema_automaton;

  HedgeAutomaton meet = automata::MeetProduct(fd_automaton, u_automaton);
  HedgeAutomaton l_automaton = automata::Intersect(meet, a_s);

  CriterionResult result;
  result.fd_automaton_size = fd_automaton.TotalSize();
  result.u_automaton_size = u_automaton.TotalSize();
  result.schema_automaton_size = a_s.TotalSize();
  result.product_size = l_automaton.TotalSize();
  result.independent = l_automaton.IsEmptyLanguage();
  if (!result.independent && options.want_conflict_candidate) {
    auto witness = l_automaton.FindWitnessDocument(alphabet);
    if (witness.ok()) {
      result.conflict_candidate = std::move(witness).value();
    }
  }
  return result;
}

bool IsInCriterionLanguage(const xml::Document& doc,
                           const fd::FunctionalDependency& fd,
                           const update::UpdateClass& update,
                           const schema::Schema* schema) {
  if (schema != nullptr && !schema->Validate(doc)) return false;

  // Nodes the update class would update.
  std::vector<xml::NodeId> updated = update.SelectNodes(doc);
  if (updated.empty()) return false;

  // Does some FD mapping's trace-or-covered set intersect them?
  pattern::MatchTables tables = pattern::MatchTables::Build(fd.pattern(), doc);
  pattern::MappingEnumerator enumerator(tables);
  bool found = false;
  enumerator.ForEach([&](const pattern::Mapping& m) {
    std::vector<xml::NodeId> trace = pattern::TraceOf(doc, m);
    std::set<xml::NodeId> fd_set(trace.begin(), trace.end());
    for (const pattern::SelectedNode& s : fd.pattern().selected()) {
      // Node-equality positions do not contribute their subtrees (see the
      // refinement note in pattern_compiler.h); their images are already
      // on the trace.
      if (s.equality != pattern::EqualityType::kValue) continue;
      doc.VisitFrom(m.image[s.node], [&fd_set](xml::NodeId n) {
        fd_set.insert(n);
        return true;
      });
    }
    for (xml::NodeId n : updated) {
      if (fd_set.count(n) > 0) {
        found = true;
        return false;  // stop enumeration
      }
    }
    return true;
  });
  return found;
}

}  // namespace rtp::independence
