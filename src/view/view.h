#ifndef RTP_VIEW_VIEW_H_
#define RTP_VIEW_VIEW_H_

#include "common/status.h"
#include "independence/criterion.h"
#include "pattern/pattern_parser.h"
#include "pattern/tree_pattern.h"
#include "schema/schema.h"
#include "update/update_class.h"
#include "xml/document.h"

namespace rtp::view {

// A view over XML documents specified by an n-ary regular tree pattern —
// the setting of the paper's earlier companion work ([9] there), which the
// introduction presents as the same machinery: a view is independent of a
// class of updates when no update can change its materialization. The
// criterion is the analogue of Definition 6 with the FD pattern replaced
// by the view pattern.
class View {
 public:
  // The pattern's selected tuple defines the view output R(D): the tuples
  // of subtrees rooted at the selected images.
  static StatusOr<View> Create(pattern::TreePattern pattern);
  static StatusOr<View> FromParsed(pattern::ParsedPattern parsed);

  const pattern::TreePattern& pattern() const { return pattern_; }

  // Materializes R(D) as a document:
  //   /result/tuple*  with one <tuple> child per distinct selected tuple,
  // holding copies of the selected subtrees in tuple order.
  xml::Document Materialize(const xml::Document& doc) const;

 private:
  explicit View(pattern::TreePattern pattern) : pattern_(std::move(pattern)) {}

  pattern::TreePattern pattern_;
};

// Sufficient criterion for view-update independence: empty L where L is
// the set of schema-valid documents containing a view trace and a U trace
// whose updated node lies on the view trace or inside a selected subtree.
// Preconditions mirror CheckIndependence (leaf-selected update class).
StatusOr<independence::CriterionResult> CheckViewIndependence(
    const View& view, const update::UpdateClass& update,
    const schema::Schema* schema, Alphabet* alphabet,
    const independence::CriterionOptions& options = {});

}  // namespace rtp::view

#endif  // RTP_VIEW_VIEW_H_
