#include "view/view.h"

#include "automata/pattern_compiler.h"
#include "automata/product.h"
#include "pattern/evaluator.h"

namespace rtp::view {

using automata::HedgeAutomaton;
using automata::MarkMode;

StatusOr<View> View::Create(pattern::TreePattern pattern) {
  RTP_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.selected().empty()) {
    return InvalidArgumentError("a view must select at least one node");
  }
  return View(std::move(pattern));
}

StatusOr<View> View::FromParsed(pattern::ParsedPattern parsed) {
  return Create(std::move(parsed.pattern));
}

xml::Document View::Materialize(const xml::Document& doc) const {
  xml::Document out(doc.shared_alphabet());
  xml::NodeId result = out.AddElement(out.root(), "result");
  for (const std::vector<xml::NodeId>& tuple :
       pattern::EvaluateSelected(pattern_, doc)) {
    xml::NodeId holder = out.AddElement(result, "tuple");
    for (xml::NodeId n : tuple) {
      out.CopySubtree(doc, n, holder);
    }
  }
  return out;
}

StatusOr<independence::CriterionResult> CheckViewIndependence(
    const View& view, const update::UpdateClass& update,
    const schema::Schema* schema, Alphabet* alphabet,
    const independence::CriterionOptions& options) {
  if (!update.SelectedAreLeaves()) {
    return InvalidArgumentError(
        "the view-independence criterion requires every selected node of "
        "the update class to be a leaf of its template");
  }
  HedgeAutomaton view_automaton =
      CompilePattern(view.pattern(), MarkMode::kTraceAndSelectedSubtrees);
  HedgeAutomaton u_automaton =
      CompilePattern(update.pattern(), MarkMode::kSelectedImagesOnly);
  HedgeAutomaton universal;
  const HedgeAutomaton& a_s =
      schema != nullptr ? schema->automaton()
                        : (universal = HedgeAutomaton::Universal());

  HedgeAutomaton meet = automata::MeetProduct(view_automaton, u_automaton);
  HedgeAutomaton l_automaton = automata::Intersect(meet, a_s);

  independence::CriterionResult result;
  result.fd_automaton_size = view_automaton.TotalSize();
  result.u_automaton_size = u_automaton.TotalSize();
  result.schema_automaton_size = a_s.TotalSize();
  result.product_size = l_automaton.TotalSize();
  result.independent = l_automaton.IsEmptyLanguage();
  if (!result.independent && options.want_conflict_candidate) {
    auto witness = l_automaton.FindWitnessDocument(alphabet);
    if (witness.ok()) {
      result.conflict_candidate = std::move(witness).value();
    }
  }
  return result;
}

}  // namespace rtp::view
