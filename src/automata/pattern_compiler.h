#ifndef RTP_AUTOMATA_PATTERN_COMPILER_H_
#define RTP_AUTOMATA_PATTERN_COMPILER_H_

#include "automata/hedge_automaton.h"
#include "pattern/tree_pattern.h"

namespace rtp::automata {

// What the compiled automaton's state marks flag (used by the independence
// criterion's meet product).
enum class MarkMode {
  // No marks: the automaton merely recognizes "the document contains a
  // trace of the pattern".
  kNone,
  // Marks the nodes of the trace AND every node inside a subtree rooted at
  // a *value-compared* selected-node image — the FD-side set
  // N(trace) U N(FD_sel(D)) of Definition 6, refined: node-equality
  // positions do not contribute their subtrees, because an update strictly
  // below such an image cannot change the node's identity (updates on the
  // trace itself are caught by the trace marks). This keeps the criterion
  // sound while proving more pairs independent (e.g. key constraints
  // versus updates deep inside the keyed nodes).
  kTraceAndSelectedSubtrees,
  // Marks only the images of selected nodes — the U-side set of
  // Definition 6 (the nodes the update class updates).
  kSelectedImagesOnly,
};

// Compiles a regular tree pattern into a nondeterministic bottom-up hedge
// automaton recognizing exactly the documents containing at least one trace
// of the pattern (i.e. admitting a mapping per Definition 2).
//
// Construction (linear in |R|, as required by Proposition 3): each document
// node nondeterministically receives a role —
//   out            not on the trace;
//   covered        below a selected-node image (kTraceAndSelectedSubtrees);
//   path(w, s)     on the path realizing edge (parent(w), w), where s is
//                  the edge-DFA state before reading this node's label;
//   img(w, s)      the image of template node w, reached with pre-state s
//                  (delta(s, label) must be accepting);
//   root           the image of the template root (document root "/").
// Horizontal languages enforce that an img/root node's children contain,
// in template order, one child starting each outgoing edge (out/covered
// elsewhere) — which captures the document-order condition and the
// prefix-divergence condition (b) of Definition 2 — and that a path node
// has exactly one continuing child.
HedgeAutomaton CompilePattern(const pattern::TreePattern& pattern,
                              MarkMode mode);

}  // namespace rtp::automata

#endif  // RTP_AUTOMATA_PATTERN_COMPILER_H_
