#include "automata/product.h"

#include <map>
#include <tuple>

#include "guard/failpoints.h"
#include "guard/guard.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace rtp::automata {

namespace {

// Symbols a horizontal DFA can consume from a given state: its explicit
// keys, plus (when `otherwise` is live) every other automaton state.
std::vector<StateId> ConsumableSymbols(const regex::Dfa& dfa, int32_t h,
                                       int32_t num_automaton_states) {
  const regex::Dfa::State& state = dfa.state(h);
  std::vector<StateId> symbols;
  if (state.otherwise != regex::kDeadState) {
    symbols.reserve(num_automaton_states);
    for (StateId q = 0; q < num_automaton_states; ++q) symbols.push_back(q);
    return symbols;
  }
  symbols.reserve(state.next.size());
  for (const auto& [label, target] : state.next) {
    if (target != regex::kDeadState) {
      symbols.push_back(static_cast<StateId>(label));
    }
  }
  return symbols;
}

// Builds the product horizontal DFA for one transition pair.
//
// track_met = false: product symbols are pair ids qa * nb + qb; states are
// (h1, h2); accepting iff both accepting.
//
// track_met = true: product symbols are (qa * nb + qb) * 2 + m; states are
// (h1, h2, orbit) with orbit |= m; `met_accept` selects which final met
// value the produced DFA accepts: the parent's met is own_mark || orbit, so
// the met=1 variant accepts orbit==1 (or anything when own_mark), and the
// met=0 variant accepts orbit==0 (impossible when own_mark).
regex::Dfa ProductHorizontal(const regex::Dfa& ha, const regex::Dfa& hb,
                             int32_t na, int32_t nb, bool track_met,
                             bool own_mark, bool met_accept,
                             const HedgeAutomaton& a,
                             const HedgeAutomaton& b) {
  struct Key {
    int32_t h1, h2;
    int orbit;
    bool operator<(const Key& other) const {
      return std::tie(h1, h2, orbit) < std::tie(other.h1, other.h2, other.orbit);
    }
  };
  std::map<Key, int32_t> ids;
  std::vector<Key> order;
  std::vector<regex::Dfa::State> states;

  auto intern = [&](Key key) {
    auto [it, inserted] = ids.emplace(key, static_cast<int32_t>(ids.size()));
    if (inserted) {
      order.push_back(key);
      states.emplace_back();
      guard::AccountStates(1);
    }
    return it->second;
  };

  int32_t initial = intern({ha.initial(), hb.initial(), 0});
  // One poll per expanded product state; a trip abandons the tail of
  // `order`, leaving those states transitionless (callers discard the
  // automaton through the guard's Status).
  for (size_t i = 0; i < order.size(); ++i) {
    if (!guard::KeepGoing()) break;
    Key key = order[i];
    bool both_accepting = ha.accepting(key.h1) && hb.accepting(key.h2);
    if (!track_met) {
      states[i].accepting = both_accepting;
    } else {
      bool met = own_mark || key.orbit == 1;
      states[i].accepting = both_accepting && (met == met_accept);
    }
    // Enumerate consumable product symbols.
    for (StateId qa : ConsumableSymbols(ha, key.h1, na)) {
      int32_t nh1 = ha.Next(key.h1, static_cast<LabelId>(qa));
      if (nh1 == regex::kDeadState) continue;
      for (StateId qb : ConsumableSymbols(hb, key.h2, nb)) {
        int32_t nh2 = hb.Next(key.h2, static_cast<LabelId>(qb));
        if (nh2 == regex::kDeadState) continue;
        if (!track_met) {
          LabelId symbol = static_cast<LabelId>(qa * nb + qb);
          int32_t target = intern({nh1, nh2, 0});
          states[i].next.emplace(symbol, target);
        } else {
          bool child_marks = a.mark(qa) && b.mark(qb);
          for (int m = 0; m < 2; ++m) {
            // A child can only report met=m if its own state allows it;
            // we conservatively enumerate both and rely on child states
            // (qa, qb, m) being inhabited only when consistent.
            if (m == 0 && child_marks) continue;  // children with both marks
                                                  // always have met >= 1
            LabelId symbol =
                static_cast<LabelId>((qa * nb + qb) * 2 + m);
            int32_t target = intern({nh1, nh2, key.orbit | m});
            states[i].next.emplace(symbol, target);
          }
        }
      }
    }
  }

  RTP_OBS_COUNT_N("automata.product.horizontal_states_built", states.size());
  return regex::Dfa::FromStates(std::move(states), initial);
}

}  // namespace

HedgeAutomaton Intersect(const HedgeAutomaton& a, const HedgeAutomaton& b) {
  RTP_OBS_COUNT("automata.product.intersections");
  RTP_OBS_SCOPED_TIMER("automata.product.ns");
  RTP_OBS_TRACE_SPAN("automata.Intersect");
  RTP_FAILPOINT("automata.product");
  int32_t na = a.NumStates();
  int32_t nb = b.NumStates();
  HedgeAutomaton out;
  // The dense state numbering below requires all na*nb states, so the
  // quota is charged up front: a huge product trips before allocating.
  guard::AccountStates(static_cast<int64_t>(na) * nb);
  if (!guard::Ok()) return out;
  for (StateId qa = 0; qa < na; ++qa) {
    for (StateId qb = 0; qb < nb; ++qb) {
      StateId q = out.AddState(a.mark(qa) && b.mark(qb));
      RTP_CHECK(q == qa * nb + qb);
    }
  }
  size_t guard_pruned = 0;
  for (const auto& ta : a.transitions()) {
    if (!guard::KeepGoing()) break;
    for (const auto& tb : b.transitions()) {
      std::optional<Guard> guard = Guard::Intersect(ta.guard, tb.guard);
      if (!guard.has_value()) {
        ++guard_pruned;
        continue;
      }
      regex::Dfa horizontal =
          ProductHorizontal(ta.horizontal, tb.horizontal, na, nb,
                            /*track_met=*/false, false, false, a, b);
      out.AddTransition(std::move(*guard), std::move(horizontal),
                        ta.target * nb + tb.target);
    }
  }
  for (StateId ra : a.root_accepting()) {
    for (StateId rb : b.root_accepting()) {
      out.AddRootAccepting(ra * nb + rb);
    }
  }
  RTP_OBS_COUNT_N("automata.product.states_built", out.NumStates());
  RTP_OBS_COUNT_N("automata.product.transitions_built",
                  out.transitions().size());
  RTP_OBS_COUNT_N("automata.product.guard_pruned", guard_pruned);
  RTP_OBS_HISTOGRAM_RECORD("automata.product.total_size", out.TotalSize());
  return out;
}

HedgeAutomaton MeetProduct(const HedgeAutomaton& a, const HedgeAutomaton& b) {
  RTP_OBS_COUNT("automata.product.meet_products");
  RTP_OBS_SCOPED_TIMER("automata.product.ns");
  RTP_OBS_TRACE_SPAN("automata.MeetProduct");
  RTP_FAILPOINT("automata.product");
  int32_t na = a.NumStates();
  int32_t nb = b.NumStates();
  HedgeAutomaton out;
  // As in Intersect: dense numbering needs the full na*nb*2 state block,
  // so charge the quota before allocating it.
  guard::AccountStates(static_cast<int64_t>(na) * nb * 2);
  if (!guard::Ok()) return out;
  for (StateId qa = 0; qa < na; ++qa) {
    for (StateId qb = 0; qb < nb; ++qb) {
      for (int m = 0; m < 2; ++m) {
        StateId q = out.AddState(/*mark=*/m == 1);
        RTP_CHECK(q == (qa * nb + qb) * 2 + m);
      }
    }
  }
  size_t guard_pruned = 0;
  for (const auto& ta : a.transitions()) {
    if (!guard::KeepGoing()) break;
    for (const auto& tb : b.transitions()) {
      std::optional<Guard> guard = Guard::Intersect(ta.guard, tb.guard);
      if (!guard.has_value()) {
        ++guard_pruned;
        continue;
      }
      bool own_mark = a.mark(ta.target) && b.mark(tb.target);
      for (int met = 0; met < 2; ++met) {
        if (own_mark && met == 0) continue;  // unsatisfiable variant
        regex::Dfa horizontal =
            ProductHorizontal(ta.horizontal, tb.horizontal, na, nb,
                              /*track_met=*/true, own_mark, met == 1, a, b);
        out.AddTransition(*guard, std::move(horizontal),
                          (ta.target * nb + tb.target) * 2 + met);
      }
    }
  }
  for (StateId ra : a.root_accepting()) {
    for (StateId rb : b.root_accepting()) {
      out.AddRootAccepting((ra * nb + rb) * 2 + 1);
    }
  }
  RTP_OBS_COUNT_N("automata.product.states_built", out.NumStates());
  RTP_OBS_COUNT_N("automata.product.transitions_built",
                  out.transitions().size());
  RTP_OBS_COUNT_N("automata.product.guard_pruned", guard_pruned);
  RTP_OBS_HISTOGRAM_RECORD("automata.product.total_size", out.TotalSize());
  return out;
}

}  // namespace rtp::automata
