#ifndef RTP_AUTOMATA_PRODUCT_H_
#define RTP_AUTOMATA_PRODUCT_H_

#include "automata/hedge_automaton.h"

namespace rtp::automata {

// Plain intersection product: state (qa, qb), packed qa * |Qb| + qb.
// Accepts a document iff both components accept it (each via its own
// root-accepting set). Marks of the product are the conjunction of
// component marks.
HedgeAutomaton Intersect(const HedgeAutomaton& a, const HedgeAutomaton& b);

// The criterion's "meet" product: state (qa, qb, met), packed
// (qa * |Qb| + qb) * 2 + met, where met(v) is true iff some node in the
// subtree rooted at v (v included) carries marks in BOTH components.
// Root-accepting states are those with both components root-accepting and
// met = 1. Intersecting the result with a schema automaton therefore
// yields an automaton for the language L of Definition 6.
HedgeAutomaton MeetProduct(const HedgeAutomaton& a, const HedgeAutomaton& b);

}  // namespace rtp::automata

#endif  // RTP_AUTOMATA_PRODUCT_H_
