#include "automata/hedge_automaton.h"

#include <algorithm>
#include <deque>
#include <set>

#include "guard/guard.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "regex/regex_ast.h"

namespace rtp::automata {

using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;

Guard Guard::AnyExcept(std::vector<LabelId> excluded) {
  std::sort(excluded.begin(), excluded.end());
  excluded.erase(std::unique(excluded.begin(), excluded.end()),
                 excluded.end());
  return Guard{Kind::kAnyExcept, kInvalidLabel, std::move(excluded)};
}

bool Guard::Admits(LabelId l) const {
  if (kind == Kind::kLabel) return l == label;
  return !std::binary_search(excluded.begin(), excluded.end(), l);
}

std::optional<Guard> Guard::Intersect(const Guard& a, const Guard& b) {
  if (a.kind == Kind::kLabel) {
    if (!b.Admits(a.label)) return std::nullopt;
    return a;
  }
  if (b.kind == Kind::kLabel) {
    if (!a.Admits(b.label)) return std::nullopt;
    return b;
  }
  std::vector<LabelId> merged = a.excluded;
  merged.insert(merged.end(), b.excluded.begin(), b.excluded.end());
  return AnyExcept(std::move(merged));
}

LabelId Guard::RepresentativeElementLabel(Alphabet* alphabet) const {
  if (kind == Kind::kLabel) return label;
  for (LabelId id = 0; id < alphabet->size(); ++id) {
    if (id == Alphabet::kRootLabel) continue;
    if (alphabet->Kind(id) != LabelKind::kElement) continue;
    if (Admits(id)) return id;
  }
  // Every interned element label is excluded: intern a fresh one.
  for (int i = 0;; ++i) {
    std::string name = "anyElem" + (i == 0 ? "" : std::to_string(i));
    LabelId id = alphabet->Intern(name);
    if (Admits(id)) return id;
  }
}

int64_t HedgeAutomaton::TotalSize() const {
  int64_t size = NumStates();
  for (const Transition& t : transitions_) {
    size += 1 + t.horizontal.NumStates();
  }
  return size;
}

std::vector<std::vector<StateId>> HedgeAutomaton::Run(
    const Document& doc) const {
  RTP_OBS_COUNT("automata.run.documents");
  RTP_OBS_SCOPED_TIMER("automata.run.ns");
  std::vector<std::vector<StateId>> assigned(doc.ArenaSize());

  // Postorder traversal.
  std::vector<NodeId> postorder;
  {
    std::vector<NodeId> stack = {doc.root()};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      postorder.push_back(v);
      for (NodeId c = doc.first_child(v); c != kInvalidNode;
           c = doc.next_sibling(c)) {
        stack.push_back(c);
      }
    }
    std::reverse(postorder.begin(), postorder.end());
  }

  std::vector<StateId> h_states;  // scratch: current horizontal NFA set
  std::vector<StateId> h_next;
  for (NodeId v : postorder) {
    if (!guard::KeepGoing()) break;
    LabelId label = doc.label(v);
    std::vector<StateId>& out = assigned[v];
    for (const Transition& t : transitions_) {
      if (!t.guard.Admits(label)) continue;
      // Simulate the horizontal DFA over children state *sets*.
      h_states.assign(1, t.horizontal.initial());
      bool dead = false;
      for (NodeId c = doc.first_child(v); c != kInvalidNode && !dead;
           c = doc.next_sibling(c)) {
        h_next.clear();
        for (StateId h : h_states) {
          for (StateId q : assigned[c]) {
            int32_t nh = t.horizontal.Next(h, static_cast<LabelId>(q));
            if (nh != regex::kDeadState) h_next.push_back(nh);
          }
        }
        std::sort(h_next.begin(), h_next.end());
        h_next.erase(std::unique(h_next.begin(), h_next.end()), h_next.end());
        h_states.swap(h_next);
        dead = h_states.empty();
      }
      if (dead) continue;
      bool accepted = false;
      for (StateId h : h_states) {
        if (t.horizontal.accepting(h)) {
          accepted = true;
          break;
        }
      }
      if (accepted) out.push_back(t.target);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return assigned;
}

bool HedgeAutomaton::Accepts(const Document& doc) const {
  std::vector<std::vector<StateId>> assigned = Run(doc);
  const std::vector<StateId>& root_states = assigned[doc.root()];
  for (StateId q : root_accepting_) {
    if (std::binary_search(root_states.begin(), root_states.end(), q)) {
      return true;
    }
  }
  return false;
}

std::optional<std::vector<StateId>> HedgeAutomaton::AcceptedWordOver(
    const regex::Dfa& dfa, const std::vector<bool>& inhabited) {
  // BFS over DFA states; edges labeled by inhabited state symbols.
  struct Step {
    int32_t prev;
    StateId symbol;
  };
  std::vector<Step> steps(dfa.NumStates(), Step{-1, -1});
  std::vector<bool> seen(dfa.NumStates(), false);
  std::deque<int32_t> work = {dfa.initial()};
  seen[dfa.initial()] = true;
  int32_t found = -1;
  while (!work.empty()) {
    if (!guard::KeepGoing()) return std::nullopt;
    int32_t h = work.front();
    work.pop_front();
    if (dfa.accepting(h)) {
      found = h;
      break;
    }
    for (size_t q = 0; q < inhabited.size(); ++q) {
      if (!inhabited[q]) continue;
      int32_t nh = dfa.Next(h, static_cast<LabelId>(q));
      if (nh == regex::kDeadState || seen[nh]) continue;
      seen[nh] = true;
      steps[nh] = Step{h, static_cast<StateId>(q)};
      work.push_back(nh);
    }
  }
  if (found == -1) return std::nullopt;
  std::vector<StateId> word;
  for (int32_t h = found; h != dfa.initial(); h = steps[h].prev) {
    word.push_back(steps[h].symbol);
  }
  std::reverse(word.begin(), word.end());
  return word;
}

std::vector<std::optional<HedgeAutomaton::Recipe>> HedgeAutomaton::Saturate()
    const {
  RTP_OBS_SCOPED_TIMER("automata.emptiness.saturate_ns");
  std::vector<std::optional<Recipe>> recipes(NumStates());
  std::vector<bool> inhabited(NumStates(), false);
  size_t iterations = 0;
  size_t num_inhabited = 0;
  bool changed = true;
  while (changed && guard::Ok()) {
    changed = false;
    ++iterations;
    for (size_t i = 0; i < transitions_.size(); ++i) {
      if (!guard::KeepGoing()) break;
      const Transition& t = transitions_[i];
      if (inhabited[t.target]) continue;
      auto word = AcceptedWordOver(t.horizontal, inhabited);
      if (!word.has_value()) continue;
      inhabited[t.target] = true;
      ++num_inhabited;
      recipes[t.target] =
          Recipe{static_cast<int32_t>(i), std::move(*word)};
      changed = true;
    }
  }
  RTP_OBS_COUNT_N("automata.emptiness.fixpoint_iterations", iterations);
  RTP_OBS_COUNT_N("automata.emptiness.states_inhabited", num_inhabited);
  RTP_OBS_COUNT_N("automata.emptiness.states_pruned",
                  static_cast<size_t>(NumStates()) - num_inhabited);
  return recipes;
}

bool HedgeAutomaton::IsEmptyLanguage() const {
  RTP_OBS_COUNT("automata.emptiness.checks");
  RTP_OBS_SCOPED_TIMER("automata.emptiness.ns");
  RTP_OBS_TRACE_SPAN("automata.IsEmptyLanguage");
  auto recipes = Saturate();
  std::vector<bool> inhabited(NumStates(), false);
  for (StateId q = 0; q < NumStates(); ++q) {
    inhabited[q] = recipes[q].has_value();
  }
  for (const Transition& t : transitions_) {
    if (!t.guard.Admits(Alphabet::kRootLabel)) continue;
    bool is_accepting_target =
        std::find(root_accepting_.begin(), root_accepting_.end(), t.target) !=
        root_accepting_.end();
    if (!is_accepting_target) continue;
    if (AcceptedWordOver(t.horizontal, inhabited).has_value()) return false;
  }
  return true;
}

StatusOr<Document> HedgeAutomaton::FindWitnessDocument(
    Alphabet* alphabet) const {
  auto recipes = Saturate();
  std::vector<bool> inhabited(NumStates(), false);
  for (StateId q = 0; q < NumStates(); ++q) {
    inhabited[q] = recipes[q].has_value();
  }

  // Find a root transition.
  const Transition* root_transition = nullptr;
  std::vector<StateId> root_word;
  for (const Transition& t : transitions_) {
    if (!t.guard.Admits(Alphabet::kRootLabel)) continue;
    if (std::find(root_accepting_.begin(), root_accepting_.end(), t.target) ==
        root_accepting_.end()) {
      continue;
    }
    auto word = AcceptedWordOver(t.horizontal, inhabited);
    if (word.has_value()) {
      root_transition = &t;
      root_word = std::move(*word);
      break;
    }
  }
  if (root_transition == nullptr) {
    return NotFoundError("the automaton's language is empty");
  }

  Document doc(alphabet);
  // Recursively materialize each state of the word under `parent`.
  // (Recursion depth is bounded by the saturation order: recipes only
  // reference states inhabited strictly earlier.)
  struct Builder {
    const HedgeAutomaton& automaton;
    const std::vector<std::optional<Recipe>>& recipes;
    Alphabet* alphabet;
    Document* doc;

    void Build(StateId q, NodeId parent) {
      const Recipe& recipe = *recipes[q];
      const Transition& t = automaton.transitions_[recipe.transition];
      LabelId label;
      xml::NodeType type;
      if (recipe.child_word.empty()) {
        // Leaves may use attribute/text labels.
        label = t.guard.kind == Guard::Kind::kLabel
                    ? t.guard.label
                    : t.guard.RepresentativeElementLabel(alphabet);
        switch (alphabet->Kind(label)) {
          case LabelKind::kAttribute:
            type = xml::NodeType::kAttribute;
            break;
          case LabelKind::kText:
            type = xml::NodeType::kText;
            break;
          default:
            type = xml::NodeType::kElement;
        }
      } else {
        label = t.guard.RepresentativeElementLabel(alphabet);
        RTP_CHECK_MSG(alphabet->Kind(label) == LabelKind::kElement,
                      "internal witness node needs an element label");
        type = xml::NodeType::kElement;
      }
      NodeId node = doc->AddChild(
          parent, label, type,
          type == xml::NodeType::kElement ? "" : "w");
      for (StateId child : recipe.child_word) Build(child, node);
    }
  };
  Builder builder{*this, recipes, alphabet, &doc};
  for (StateId q : root_word) builder.Build(q, doc.root());
  return doc;
}

HedgeAutomaton HedgeAutomaton::Universal() {
  HedgeAutomaton a;
  StateId q = a.AddState(false);
  // Horizontal: q* .
  regex::Dfa::State h;
  h.accepting = true;
  h.next.emplace(static_cast<LabelId>(q), 0);
  a.AddTransition(Guard::Any(), regex::Dfa::FromStates({h}, 0), q);
  a.AddRootAccepting(q);
  return a;
}

regex::Dfa InterleavedHorizontal(const std::vector<std::vector<StateId>>& parts,
                                 const std::vector<StateId>& fillers) {
  using regex::RegexAst;
  std::vector<RegexAst> seq;
  auto filler_star = [&fillers]() -> RegexAst {
    std::vector<RegexAst> alts;
    for (StateId f : fillers) alts.push_back(regex::Sym(static_cast<LabelId>(f)));
    if (alts.empty()) {
      // No fillers allowed: empty-word-only filler. Star of an impossible
      // symbol is awkward with this AST; return nullptr to signal "skip".
      return nullptr;
    }
    return regex::Star(regex::Alt(std::move(alts)));
  };
  RegexAst fill = filler_star();
  auto append_fill = [&seq, &fillers, &fill]() {
    if (!fillers.empty()) seq.push_back(regex::CloneAst(*fill));
  };
  append_fill();
  for (const std::vector<StateId>& part : parts) {
    RTP_CHECK(!part.empty());
    std::vector<RegexAst> alts;
    for (StateId q : part) alts.push_back(regex::Sym(static_cast<LabelId>(q)));
    seq.push_back(regex::Alt(std::move(alts)));
    append_fill();
  }
  if (seq.empty()) {
    // No parts and no fillers: accept exactly the empty word.
    regex::Dfa::State only;
    only.accepting = true;
    return regex::Dfa::FromStates({only}, 0);
  }
  return regex::Dfa::FromAst(*regex::Cat(std::move(seq))).Minimize();
}

}  // namespace rtp::automata
