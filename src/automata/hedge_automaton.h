#ifndef RTP_AUTOMATA_HEDGE_AUTOMATON_H_
#define RTP_AUTOMATA_HEDGE_AUTOMATON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/alphabet.h"
#include "common/status.h"
#include "regex/dfa.h"
#include "xml/document.h"

namespace rtp::automata {

using StateId = int32_t;

// Label guard of a hedge-automaton transition. The label universe is
// open-ended (documents may use labels unseen by patterns and schemas), so
// the complement form kAnyExcept is always satisfiable.
struct Guard {
  enum class Kind : uint8_t { kLabel, kAnyExcept };

  Kind kind = Kind::kAnyExcept;
  LabelId label = kInvalidLabel;      // kLabel
  std::vector<LabelId> excluded;      // kAnyExcept (sorted)

  static Guard Label(LabelId l) { return Guard{Kind::kLabel, l, {}}; }
  static Guard Any() { return Guard{Kind::kAnyExcept, kInvalidLabel, {}}; }
  static Guard AnyExcept(std::vector<LabelId> excluded);

  bool Admits(LabelId l) const;

  // Intersection of two guards; nullopt when unsatisfiable.
  static std::optional<Guard> Intersect(const Guard& a, const Guard& b);

  // A label admitted by the guard, suitable as an element label (witness
  // synthesis). Prefers an interned non-reserved element label; interns a
  // fresh one if needed.
  LabelId RepresentativeElementLabel(Alphabet* alphabet) const;
};

// A nondeterministic bottom-up hedge automaton over XML documents, with an
// optional boolean "mark" per state (used by the independence criterion to
// flag trace/selected nodes).
//
// A run assigns each node a state q such that some transition
// (guard, horizontal, q) has guard admitting the node's label and the word
// of the children's assigned states in the horizontal language (a
// regex::Dfa over state ids). The automaton accepts a document iff the root
// (labeled "/") can be assigned a state in root_accepting().
class HedgeAutomaton {
 public:
  struct Transition {
    Guard guard;
    regex::Dfa horizontal;  // over StateIds cast to LabelId
    StateId target;
  };

  StateId AddState(bool mark = false) {
    marks_.push_back(mark);
    return static_cast<StateId>(marks_.size()) - 1;
  }
  void AddTransition(Guard guard, regex::Dfa horizontal, StateId target) {
    RTP_CHECK(target >= 0 && target < NumStates());
    transitions_.push_back(
        Transition{std::move(guard), std::move(horizontal), target});
  }
  void AddRootAccepting(StateId q) { root_accepting_.push_back(q); }

  int32_t NumStates() const { return static_cast<int32_t>(marks_.size()); }
  bool mark(StateId q) const { return marks_[q]; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<StateId>& root_accepting() const {
    return root_accepting_;
  }

  // |A|: states plus transitions plus horizontal-DFA states (benchmark
  // instrumentation for Proposition 3's size bound).
  int64_t TotalSize() const;

  // Bottom-up run: for each arena node of `doc`, the sorted set of
  // assignable states (empty vectors for detached nodes).
  std::vector<std::vector<StateId>> Run(const xml::Document& doc) const;

  bool Accepts(const xml::Document& doc) const;

  // Emptiness of the recognized document language.
  bool IsEmptyLanguage() const;

  // A smallest-effort witness document (not necessarily minimal), or
  // NotFoundError when the language is empty. May intern fresh labels.
  StatusOr<xml::Document> FindWitnessDocument(Alphabet* alphabet) const;

  // The universal automaton (accepts every document); its single state is
  // unmarked.
  static HedgeAutomaton Universal();

 private:
  struct Recipe {
    int32_t transition = -1;
    std::vector<StateId> child_word;
  };

  // Shared saturation engine: returns per-state inhabitation recipes.
  std::vector<std::optional<Recipe>> Saturate() const;

  // Finds a word over `inhabited` states accepted by `dfa` (shortest by
  // BFS); nullopt if none.
  static std::optional<std::vector<StateId>> AcceptedWordOver(
      const regex::Dfa& dfa, const std::vector<bool>& inhabited);

  std::vector<bool> marks_;
  std::vector<Transition> transitions_;
  std::vector<StateId> root_accepting_;
};

// Builds a horizontal-language DFA accepting `filler* C1 filler* C2 ...
// Ck filler*`, where each Ci is a set of alternative state symbols. Used by
// the pattern compiler and by schema content models.
regex::Dfa InterleavedHorizontal(const std::vector<std::vector<StateId>>& parts,
                                 const std::vector<StateId>& fillers);

}  // namespace rtp::automata

#endif  // RTP_AUTOMATA_HEDGE_AUTOMATON_H_
