#include "automata/pattern_compiler.h"

#include <map>
#include <set>

#include "guard/failpoints.h"
#include "guard/guard.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace rtp::automata {

using pattern::PatternNodeId;
using pattern::TreePattern;

namespace {

// State layout bookkeeping for one compiled pattern.
class Compiler {
 public:
  Compiler(const TreePattern& pattern, MarkMode mode)
      : pattern_(pattern), mode_(mode) {
    covered_variants_ = mode == MarkMode::kTraceAndSelectedSubtrees;
    for (const pattern::SelectedNode& s : pattern.selected()) {
      selected_.insert(s.node);
      // Only value-compared selected nodes need their subtrees covered:
      // an update strictly below a node-equality image cannot change the
      // node's identity, so it cannot flip an existing trace's
      // (dis)agreement at that position. (Sound precision refinement of
      // Definition 6; updates ON the trace are caught by trace marks.)
      if (s.equality == pattern::EqualityType::kValue) {
        covered_roots_.insert(s.node);
      }
    }
  }

  HedgeAutomaton Compile() {
    AllocateStates();
    // A trip during allocation leaves unallocated (-1) state slots, so no
    // transition may be emitted; the partial automaton is discarded at the
    // caller's Status boundary either way.
    if (!guard::Ok()) return std::move(automaton_);
    EmitOutAndCovered();
    for (PatternNodeId w = 1; w < pattern_.NumNodes(); ++w) {
      if (!guard::KeepGoing()) break;
      EmitPathAndImage(w);
    }
    if (guard::Ok()) {
      EmitRoot();
      automaton_.AddRootAccepting(root_state_);
    }
    return std::move(automaton_);
  }

 private:
  int NumCov() const { return covered_variants_ ? 2 : 1; }

  void AllocateStates() {
    out_state_ = automaton_.AddState(/*mark=*/false);
    if (covered_variants_) {
      covered_state_ = automaton_.AddState(/*mark=*/true);
    }
    // path/img states per (w, dfa state, cov).
    path_state_.resize(pattern_.NumNodes());
    img_state_.resize(pattern_.NumNodes());
    for (PatternNodeId w = 1; w < pattern_.NumNodes(); ++w) {
      int32_t n = pattern_.edge(w).dfa().NumStates();
      // 2 * n * NumCov() automaton states per pattern node (path + img);
      // charging per node lets a quota trip before the largest edge's
      // block is allocated.
      guard::AccountStates(2 * static_cast<int64_t>(n) * NumCov());
      if (!guard::Ok()) return;
      path_state_[w].assign(static_cast<size_t>(n) * NumCov(), -1);
      img_state_[w].assign(static_cast<size_t>(n) * NumCov(), -1);
      for (int32_t s = 0; s < n; ++s) {
        for (int cov = 0; cov < NumCov(); ++cov) {
          bool trace_mark = mode_ == MarkMode::kTraceAndSelectedSubtrees;
          path_state_[w][Index(w, s, cov)] = automaton_.AddState(trace_mark);
          bool img_mark =
              trace_mark || (mode_ == MarkMode::kSelectedImagesOnly &&
                             selected_.count(w) > 0);
          img_state_[w][Index(w, s, cov)] = automaton_.AddState(img_mark);
        }
      }
    }
    root_state_ = automaton_.AddState(
        /*mark=*/mode_ == MarkMode::kTraceAndSelectedSubtrees);
  }

  size_t Index(PatternNodeId w, int32_t s, int cov) const {
    (void)w;
    return static_cast<size_t>(s) * NumCov() + cov;
  }

  StateId Path(PatternNodeId w, int32_t s, int cov) const {
    return path_state_[w][Index(w, s, cov)];
  }
  StateId Img(PatternNodeId w, int32_t s, int cov) const {
    return img_state_[w][Index(w, s, cov)];
  }
  StateId Filler(int cov) const {
    return cov == 0 ? out_state_ : covered_state_;
  }

  void EmitOutAndCovered() {
    // out: any label, all children out.
    automaton_.AddTransition(Guard::Any(), InterleavedHorizontal({}, {out_state_}),
                             out_state_);
    if (covered_variants_) {
      automaton_.AddTransition(Guard::Any(),
                               InterleavedHorizontal({}, {covered_state_}),
                               covered_state_);
    }
  }

  // Horizontal language of an image of w whose children live under
  // coverage `cov_children`.
  regex::Dfa ImageHorizontal(PatternNodeId w, int cov_children) const {
    std::vector<std::vector<StateId>> parts;
    for (PatternNodeId child : pattern_.children(w)) {
      int32_t init = pattern_.edge(child).dfa().initial();
      parts.push_back({Path(child, init, cov_children),
                       Img(child, init, cov_children)});
    }
    return InterleavedHorizontal(parts, {Filler(cov_children)});
  }

  // Emits transitions for path(w, s, cov) and img(w, s, cov) states.
  void EmitPathAndImage(PatternNodeId w) {
    const regex::Dfa& dfa = pattern_.edge(w).dfa();
    for (int cov = 0; cov < NumCov(); ++cov) {
      int child_cov =
          (covered_variants_ && (cov == 1 || covered_roots_.count(w) > 0)) ? 1
                                                                           : 0;
      regex::Dfa img_horizontal = ImageHorizontal(w, child_cov);
      for (int32_t s = 0; s < dfa.NumStates(); ++s) {
        if (!guard::KeepGoing()) return;
        // Group label options: explicit keys, then the 'otherwise' bucket.
        const regex::Dfa::State& dstate = dfa.state(s);
        std::vector<LabelId> keys;
        keys.reserve(dstate.next.size());
        for (const auto& [label, _] : dstate.next) keys.push_back(label);

        auto emit_for = [&](const Guard& guard, int32_t s_after) {
          if (s_after == regex::kDeadState) return;
          // Path continuation: exactly one child carries the rest.
          regex::Dfa cont = InterleavedHorizontal(
              {{Path(w, s_after, cov), Img(w, s_after, cov)}}, {Filler(cov)});
          automaton_.AddTransition(guard, std::move(cont), Path(w, s, cov));
          if (dfa.accepting(s_after)) {
            automaton_.AddTransition(guard, img_horizontal, Img(w, s, cov));
          }
        };
        for (LabelId label : keys) {
          emit_for(Guard::Label(label), dfa.Next(s, label));
        }
        emit_for(Guard::AnyExcept(keys), dstate.otherwise);
      }
    }
  }

  void EmitRoot() {
    int child_cov = (covered_variants_ &&
                     covered_roots_.count(TreePattern::kRoot) > 0)
                        ? 1
                        : 0;
    automaton_.AddTransition(Guard::Label(Alphabet::kRootLabel),
                             ImageHorizontal(TreePattern::kRoot, child_cov),
                             root_state_);
  }

  const TreePattern& pattern_;
  MarkMode mode_;
  bool covered_variants_ = false;
  std::set<PatternNodeId> selected_;
  std::set<PatternNodeId> covered_roots_;

  HedgeAutomaton automaton_;
  StateId out_state_ = -1;
  StateId covered_state_ = -1;
  StateId root_state_ = -1;
  std::vector<std::vector<StateId>> path_state_;
  std::vector<std::vector<StateId>> img_state_;
};

}  // namespace

HedgeAutomaton CompilePattern(const TreePattern& pattern, MarkMode mode) {
  RTP_OBS_COUNT("automata.compile.patterns");
  RTP_OBS_SCOPED_TIMER("automata.compile.ns");
  RTP_OBS_TRACE_SPAN("automata.CompilePattern");
  RTP_FAILPOINT("automata.compile");
  HedgeAutomaton automaton = Compiler(pattern, mode).Compile();
  RTP_OBS_COUNT_N("automata.compile.states_built", automaton.NumStates());
  RTP_OBS_HISTOGRAM_RECORD("automata.compile.total_size",
                           automaton.TotalSize());
  return automaton;
}

}  // namespace rtp::automata
