#ifndef RTP_OBS_EXPOSITION_H_
#define RTP_OBS_EXPOSITION_H_

// Registry exposition — snapshots, deltas, and Prometheus text format.
//
// TakeSnapshot() copies every registered metric into plain values; two
// snapshots subtract into a delta (what happened between them); either
// renders as the DumpJson() JSON shape or as Prometheus text exposition
// format (version 0.0.4), ready to be served from a /metrics endpoint.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rtp::obs {

// A consistent-enough copy of the registry: each metric is read
// atomically, the set is read under the registry mutex. Entries are
// sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramDelta>> histograms;
};

MetricsSnapshot TakeSnapshot();

// after − before. Counters and histogram counts/sums/buckets subtract
// (metrics absent from `before` count from zero); gauges and histogram
// min/max are instantaneous, so the delta carries the `after` values.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

// The DumpJson() document shape (schema_version included).
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

// Prometheus text exposition format. Metric names get an "rtp_" prefix
// and characters outside [a-zA-Z0-9_:] become '_'; histograms emit
// cumulative le buckets at the log2 bucket upper bounds plus +Inf, then
// _sum and _count.
std::string SnapshotToPrometheus(const MetricsSnapshot& snapshot);

// SnapshotToPrometheus(TakeSnapshot()).
std::string DumpPrometheus();

}  // namespace rtp::obs

#endif  // RTP_OBS_EXPOSITION_H_
