#ifndef RTP_OBS_LOG_H_
#define RTP_OBS_LOG_H_

// Structured logging — leveled, dependency-free JSON lines.
//
//   RTP_LOG(WARN) << "task threw: " << what;
//
// emits one line to the configured sink (stderr by default):
//
//   {"ts_ms":1723100000123,"level":"warn","file":"thread_pool.cc",
//    "line":87,"msg":"task threw: ...","suppressed":0}
//
// Properties:
//   - Off by default: the minimum level is kOff unless overridden by
//     SetLogLevel() or the RTP_LOG_LEVEL environment variable
//     (debug|info|warn|error|off). A disabled RTP_LOG costs one relaxed
//     atomic load and never evaluates its stream operands.
//   - Rate-limited per call site: at most kMaxLogsPerSitePerSecond lines
//     per site per second; dropped lines are counted and reported in the
//     next emitted line's "suppressed" field.
//   - Machine-readable: one JSON object per line, msg fully escaped.
//   - No dependencies, no exceptions, safe from multiple threads.
//
// Compiling with RTP_OBS_DISABLED turns RTP_LOG into a statement that
// type-checks its operands but generates no code.

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace rtp::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// "debug" / "info" / "warn" / "error" / "off".
const char* LogLevelName(LogLevel level);

// Minimum emitted level. The initial value comes from RTP_LOG_LEVEL (off
// when unset or unparseable).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Where emitted lines go. The sink receives one complete JSON line
// (newline included) and must be thread-safe; nullptr restores the
// default stderr sink.
using LogSink = std::function<void(const std::string& line)>;
void SetLogSink(LogSink sink);

// Per-site rate limit (see header comment).
inline constexpr uint32_t kMaxLogsPerSitePerSecond = 20;

// The token names RTP_LOG(level) accepts.
namespace loglevel {
inline constexpr LogLevel DEBUG = LogLevel::kDebug;
inline constexpr LogLevel INFO = LogLevel::kInfo;
inline constexpr LogLevel WARN = LogLevel::kWarn;
inline constexpr LogLevel ERROR = LogLevel::kError;
}  // namespace loglevel

namespace internal {

// One relaxed load; the macro's short-circuit gate.
bool LogEnabled(LogLevel level);

// Builds one log line; emits (or drops, under rate limiting) at
// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows nothing at all; exists so the macro's ternary arms both have
// type void.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

#ifdef RTP_OBS_DISABLED
// Dead-branch stream: type-checks operands, generates no code.
struct NullLogStream {
  template <typename T>
  NullLogStream& operator<<(const T&) {
    return *this;
  }
};
struct NullLogVoidify {
  void operator&(NullLogStream&) {}
};
NullLogStream& TheNullLogStream();
#endif

}  // namespace internal
}  // namespace rtp::obs

#ifndef RTP_OBS_DISABLED

// Ternary (not if/else) so the macro is a single expression-statement and
// never captures a dangling else.
#define RTP_LOG(level)                                                     \
  !::rtp::obs::internal::LogEnabled(::rtp::obs::loglevel::level)           \
      ? (void)0                                                            \
      : ::rtp::obs::internal::LogVoidify() &                               \
            ::rtp::obs::internal::LogMessage(::rtp::obs::loglevel::level,  \
                                             __FILE__, __LINE__)           \
                .stream()

#else  // RTP_OBS_DISABLED

#define RTP_LOG(level)                               \
  true ? (void)0                                     \
       : ::rtp::obs::internal::NullLogVoidify() &    \
             ::rtp::obs::internal::TheNullLogStream()

#endif  // RTP_OBS_DISABLED

#endif  // RTP_OBS_LOG_H_
