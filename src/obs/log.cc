#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace rtp::obs {

namespace {

LogLevel ParseLevel(const char* s) {
  if (s == nullptr) return LogLevel::kOff;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel InitialLevel() { return ParseLevel(std::getenv("RTP_LOG_LEVEL")); }

std::atomic<int>& MinLevel() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

struct SinkState {
  std::mutex mu;
  LogSink sink;  // empty = default stderr sink
};

SinkState& Sink() {
  static SinkState* state = new SinkState();
  return *state;
}

// Per-site rate limiting. Keyed by the (file, line) pointer pair; only
// consulted once a line has passed the level gate, so the map and its
// mutex are entirely off the disabled path.
struct SiteState {
  uint64_t window_start_s = 0;
  uint32_t emitted_in_window = 0;
  uint64_t suppressed = 0;
};

struct RateLimiter {
  std::mutex mu;
  std::map<std::pair<const char*, int>, SiteState> sites;

  // Returns true when the line may be emitted; fills `suppressed` with
  // the number of lines this site dropped since it last emitted.
  bool Admit(const char* file, int line, uint64_t now_s,
             uint64_t* suppressed) {
    std::lock_guard<std::mutex> lock(mu);
    SiteState& site = sites[{file, line}];
    if (site.window_start_s != now_s) {
      site.window_start_s = now_s;
      site.emitted_in_window = 0;
    }
    if (site.emitted_in_window >= kMaxLogsPerSitePerSecond) {
      ++site.suppressed;
      return false;
    }
    ++site.emitted_in_window;
    *suppressed = site.suppressed;
    site.suppressed = 0;
    return true;
  }
};

RateLimiter& Limiter() {
  static RateLimiter* limiter = new RateLimiter();
  return *limiter;
}

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

void SetLogLevel(LogLevel level) {
  MinLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(MinLevel().load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sink = std::move(sink);
}

namespace internal {

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         MinLevel().load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  uint64_t now_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
  uint64_t suppressed = 0;
  if (!Limiter().Admit(file_, line_, now_ms / 1000, &suppressed)) return;

  std::ostringstream line;
  line << "{\"ts_ms\":" << now_ms << ",\"level\":\"" << LogLevelName(level_)
       << "\",\"file\":\"" << JsonEscape(BaseName(file_))
       << "\",\"line\":" << line_ << ",\"msg\":\""
       << JsonEscape(stream_.str()) << "\",\"suppressed\":" << suppressed
       << "}\n";
  std::string rendered = line.str();

  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.sink) {
    state.sink(rendered);
  } else {
    std::fwrite(rendered.data(), 1, rendered.size(), stderr);
  }
}

#ifdef RTP_OBS_DISABLED
NullLogStream& TheNullLogStream() {
  static NullLogStream stream;
  return stream;
}
#endif

}  // namespace internal
}  // namespace rtp::obs
