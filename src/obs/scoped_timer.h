#ifndef RTP_OBS_SCOPED_TIMER_H_
#define RTP_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace rtp::obs {

// RAII latency recorder: on destruction, records the elapsed wall time in
// nanoseconds into `histogram`. Timers nest freely — each records its own
// span independently, so an outer "fd.check.ns" naturally includes the
// inner "pattern.eval.build_ns" it wraps.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Record(static_cast<uint64_t>(ElapsedNs()));
  }

  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  // Detaches the timer: nothing is recorded at destruction.
  void Cancel() { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rtp::obs

// Times the enclosing scope into histogram `name` (ns).
#define RTP_OBS_TIMER_CONCAT_INNER_(a, b) a##b
#define RTP_OBS_TIMER_CONCAT_(a, b) RTP_OBS_TIMER_CONCAT_INNER_(a, b)
#ifndef RTP_OBS_DISABLED
#define RTP_OBS_SCOPED_TIMER(name)                                    \
  static ::rtp::obs::Histogram* RTP_OBS_TIMER_CONCAT_(                \
      rtp_obs_timer_hist_, __LINE__) =                                \
      ::rtp::obs::Registry().FindOrCreateHistogram(name);             \
  ::rtp::obs::ScopedTimer RTP_OBS_TIMER_CONCAT_(rtp_obs_timer_,       \
                                                __LINE__)(            \
      RTP_OBS_TIMER_CONCAT_(rtp_obs_timer_hist_, __LINE__))
#else
#define RTP_OBS_SCOPED_TIMER(name) \
  do {                             \
  } while (false)
#endif

#endif  // RTP_OBS_SCOPED_TIMER_H_
