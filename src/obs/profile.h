#ifndef RTP_OBS_PROFILE_H_
#define RTP_OBS_PROFILE_H_

// Query profiles — EXPLAIN ANALYZE for rtp operations.
//
// A QueryProfile is the structured answer to "what did this one
// operation cost": a phase tree with wall times (from the trace spans
// that fired while the profile was being captured), the per-operation
// metric deltas (counters and histograms attributed by a MetricDomain),
// and the guard-budget consumption when the operation ran guarded.
//
// Capture is RAII:
//
//   obs::QueryProfile profile;
//   {
//     guard::ScopedGuard guard_scope(&ctx);     // optional, but first
//     obs::ProfileScope prof("fd.CheckFd", &profile);
//     ... the operation ...
//   }                                            // profile is now filled
//
// ProfileScope installs a MetricDomain, so everything the operation
// records — including spans from RTP_OBS_TRACE_SPAN — is captured and,
// on destruction, flushed onward exactly as a bare MetricDomain would
// (registry totals stay exact). Construct the ProfileScope *inside* any
// ScopedGuard so its destructor still sees the guard context and can
// snapshot budget consumption and the trip status.
//
// A null profile pointer makes ProfileScope completely inert (no domain
// installed, hot path untouched); call sites can take an optional
// QueryProfile* and pass it straight through.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/domain.h"
#include "obs/metrics.h"

namespace rtp::obs {

// Guard-budget consumption snapshot (all zeros when the operation ran
// unguarded).
struct GuardReport {
  bool guarded = false;
  int64_t steps = 0;
  int64_t states = 0;
  int64_t memory_bytes = 0;
  // The configured limits (0 = unlimited), for "consumed X of Y".
  int64_t budget_deadline_ms = 0;
  int64_t budget_max_steps = 0;
  int64_t budget_max_states = 0;
  int64_t budget_max_memory_bytes = 0;
};

struct QueryProfile {
  std::string op;          // e.g. "fd.CheckFd", "pattern.EvaluateSelected"
  uint64_t wall_ns = 0;    // ProfileScope lifetime
  std::string status = "OK";  // guard::CurrentStatus().ToString() at close

  // Phase tree in preorder; parent == -1 marks root phases.
  std::vector<CapturedSpan> phases;

  // Metric deltas attributed to this operation, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramDelta>> histograms;

  GuardReport guard;

  // Delta for one counter (0 when the operation never touched it).
  uint64_t CounterDelta(const std::string& name) const;
  // Sum of root-phase durations; the profile's internal-consistency
  // check is RootPhaseTotalNs() <= wall_ns, close to it when the phases
  // cover the operation.
  uint64_t RootPhaseTotalNs() const;

  // One JSON object (single line, no trailing newline).
  std::string ToJson() const;
  // Indented human-readable rendering (the `rtp_cli explain` output).
  std::string ToText() const;
};

// Captures a QueryProfile for its scope via an embedded MetricDomain.
// Inert when `out` is nullptr.
class ProfileScope {
 public:
  ProfileScope(std::string op, QueryProfile* out);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  QueryProfile* out_;
  // Manually-constructed storage so the domain only exists when capturing.
  alignas(MetricDomain) unsigned char domain_storage_[sizeof(MetricDomain)];
  MetricDomain* domain_ = nullptr;
};

// Renders a batch of profiles as a JSON array (one profile per element,
// pretty-printed one object per line).
std::string ProfilesToJson(const std::vector<QueryProfile>& profiles);

}  // namespace rtp::obs

#endif  // RTP_OBS_PROFILE_H_
