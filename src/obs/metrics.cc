#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>

namespace rtp::obs {

namespace internal {

thread_local MetricDomain* tls_domain = nullptr;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal

namespace {

int BucketOf(uint64_t sample) {
  if (sample == 0) return 0;
  return std::min(64 - std::countl_zero(sample), Histogram::kNumBuckets - 1);
}

// Inclusive lower bound of bucket i's range.
uint64_t BucketLow(int i) { return i == 0 ? 0 : uint64_t{1} << (i - 1); }

// Exclusive upper bound of bucket i's range (saturates for the top
// bucket, whose range is open-ended).
uint64_t BucketHigh(int i) {
  if (i == 0) return 1;
  if (i >= Histogram::kNumBuckets - 1) return ~uint64_t{0};
  return uint64_t{1} << i;
}

void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Shared quantile math over a plain bucket array: find the bucket holding
// the continuous rank q*(count-1) and interpolate linearly inside its
// value range, clamped to the observed [min, max].
double QuantileImpl(const uint64_t buckets[Histogram::kNumBuckets],
                    uint64_t count, uint64_t min, uint64_t max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) > rank) {
      if (i == 0) return 0.0;  // bucket 0 holds only zeros
      double lo = static_cast<double>(BucketLow(i));
      double hi = static_cast<double>(BucketHigh(i));
      double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double value = lo + frac * (hi - lo);
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

}  // namespace

void HistogramDelta::Record(uint64_t sample) {
  buckets[BucketOf(sample)] += 1;
  count += 1;
  sum += sample;
  min = std::min(min, sample);
  max = std::max(max, sample);
}

void HistogramDelta::Merge(const HistogramDelta& other) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

double HistogramDelta::Quantile(double q) const {
  return QuantileImpl(buckets, count, ReportedMin(), max, q);
}

void Histogram::Record(uint64_t sample) {
  if (MetricDomain* d = internal::tls_domain) {
    internal::DomainHistogramRecord(d, this, sample);
    return;
  }
  RecordGlobal(sample);
}

void Histogram::RecordGlobal(uint64_t sample) {
  buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  AtomicMin(&min_, sample);
  AtomicMax(&max_, sample);
}

void Histogram::MergeGlobal(const HistogramDelta& delta) {
  if (delta.count == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (delta.buckets[i] != 0) {
      buckets_[i].fetch_add(delta.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(delta.count, std::memory_order_relaxed);
  sum_.fetch_add(delta.sum, std::memory_order_relaxed);
  AtomicMin(&min_, delta.min);
  AtomicMax(&max_, delta.max);
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~uint64_t{0} ? 0 : m;
}

double Histogram::mean() const {
  uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

double Histogram::Quantile(double q) const {
  // Cold path: copy the buckets once so the shared math runs over a
  // consistent plain array.
  uint64_t snapshot[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) snapshot[i] = bucket(i);
  return QuantileImpl(snapshot, count(), min(), max(), q);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// Registry internals. Metric objects are stored in deques so addresses
// survive growth; the name maps are guarded by a mutex taken only on
// registration, lookup, and dump — never on the recording hot path.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_names;
  std::map<std::string, Gauge*> gauge_names;
  std::map<std::string, Histogram*> histogram_names;
  // Id-indexed views (id == creation order within a kind). The name
  // pointers alias the map keys, which are stable for std::map.
  std::vector<Counter*> counters_by_id;
  std::vector<Histogram*> histograms_by_id;
  std::vector<const std::string*> counter_name_by_id;
  std::vector<const std::string*> histogram_name_by_id;

  // Aborts when `name` is already registered as a different kind.
  void CheckKind(const std::string& name, const char* kind,
                 bool is_this_kind) const {
    if (is_this_kind) return;
    bool clash = counter_names.count(name) || gauge_names.count(name) ||
                 histogram_names.count(name);
    if (clash) {
      std::fprintf(stderr, "obs: metric '%s' re-registered as %s\n",
                   name.c_str(), kind);
      std::abort();
    }
  }
};

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metrics must outlive every static destructor that
  // might still record.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl* MetricsRegistry::impl() {
  static Impl* impl = new Impl();
  return impl;
}

const MetricsRegistry::Impl* MetricsRegistry::impl() const {
  return const_cast<MetricsRegistry*>(this)->impl();
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counter_names.find(name);
  if (it != i->counter_names.end()) return it->second;
  i->CheckKind(name, "counter", false);
  i->counters.emplace_back();
  Counter* c = &i->counters.back();
  c->id_ = static_cast<uint32_t>(i->counters_by_id.size());
  auto inserted = i->counter_names.emplace(name, c).first;
  i->counters_by_id.push_back(c);
  i->counter_name_by_id.push_back(&inserted->first);
  return c;
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->gauge_names.find(name);
  if (it != i->gauge_names.end()) return it->second;
  i->CheckKind(name, "gauge", false);
  i->gauges.emplace_back();
  Gauge* g = &i->gauges.back();
  i->gauge_names.emplace(name, g);
  return g;
}

Histogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histogram_names.find(name);
  if (it != i->histogram_names.end()) return it->second;
  i->CheckKind(name, "histogram", false);
  i->histograms.emplace_back();
  Histogram* h = &i->histograms.back();
  h->id_ = static_cast<uint32_t>(i->histograms_by_id.size());
  auto inserted = i->histogram_names.emplace(name, h).first;
  i->histograms_by_id.push_back(h);
  i->histogram_name_by_id.push_back(&inserted->first);
  return h;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counter_names.find(name);
  return it == i->counter_names.end() ? nullptr : it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->gauge_names.find(name);
  return it == i->gauge_names.end() ? nullptr : it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histogram_names.find(name);
  return it == i->histogram_names.end() ? nullptr : it->second;
}

Counter* MetricsRegistry::CounterById(uint32_t id) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  return id < i->counters_by_id.size() ? i->counters_by_id[id] : nullptr;
}

Histogram* MetricsRegistry::HistogramById(uint32_t id) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  return id < i->histograms_by_id.size() ? i->histograms_by_id[id] : nullptr;
}

size_t MetricsRegistry::NumCounters() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  return i->counters_by_id.size();
}

size_t MetricsRegistry::NumHistograms() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  return i->histograms_by_id.size();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::vector<std::string> names;
  names.reserve(i->counter_name_by_id.size());
  for (const std::string* name : i->counter_name_by_id) {
    names.push_back(*name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::vector<std::string> names;
  names.reserve(i->histogram_name_by_id.size());
  for (const std::string* name : i->histogram_name_by_id) {
    names.push_back(*name);
  }
  return names;
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  for (const auto& [name, c] : i->counter_names) fn(name, *c);
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  for (const auto& [name, g] : i->gauge_names) fn(name, *g);
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  for (const auto& [name, h] : i->histogram_names) fn(name, *h);
}

void MetricsRegistry::ResetAll() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  for (Counter& c : i->counters) c.Reset();
  for (Gauge& g : i->gauges) g.Reset();
  for (Histogram& h : i->histograms) h.Reset();
}

std::string MetricsRegistry::DumpJson() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::ostringstream out;
  out << "{\"schema_version\":" << kDumpSchemaVersion << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : i->counter_names) {
    if (!first) out << ",";
    first = false;
    out << "\"" << internal::JsonEscape(name) << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : i->gauge_names) {
    if (!first) out << ",";
    first = false;
    out << "\"" << internal::JsonEscape(name) << "\":" << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : i->histogram_names) {
    if (!first) out << ",";
    first = false;
    out << "\"" << internal::JsonEscape(name) << "\":{\"count\":" << h->count()
        << ",\"sum\":" << h->sum() << ",\"min\":" << h->min()
        << ",\"max\":" << h->max() << ",\"mean\":" << h->mean()
        << ",\"p50\":" << h->ApproxQuantile(0.5)
        << ",\"p99\":" << h->ApproxQuantile(0.99) << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::DumpText() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::ostringstream out;
  for (const auto& [name, c] : i->counter_names) {
    out << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : i->gauge_names) {
    out << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : i->histogram_names) {
    out << name << ": count=" << h->count() << " sum=" << h->sum()
        << " min=" << h->min() << " max=" << h->max() << " mean=" << h->mean()
        << " p50=" << h->ApproxQuantile(0.5)
        << " p99=" << h->ApproxQuantile(0.99) << "\n";
  }
  return out.str();
}

}  // namespace rtp::obs
