#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>

namespace rtp::obs {

namespace {

int BucketOf(uint64_t sample) {
  if (sample == 0) return 0;
  return std::min(64 - std::countl_zero(sample), Histogram::kNumBuckets - 1);
}

// Midpoint of bucket i's range, for quantile interpolation.
uint64_t BucketMidpoint(int i) {
  if (i == 0) return 0;
  uint64_t lo = uint64_t{1} << (i - 1);
  return lo + lo / 2;
}

void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// JSON string escaping for metric names (names are plain identifiers in
// practice, but dumps must never emit malformed JSON).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Histogram::Record(uint64_t sample) {
  buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  AtomicMin(&min_, sample);
  AtomicMax(&max_, sample);
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~uint64_t{0} ? 0 : m;
}

double Histogram::mean() const {
  uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

uint64_t Histogram::ApproxQuantile(double q) const {
  uint64_t c = count();
  if (c == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(c - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      // Clamp the interpolated midpoint into the observed range.
      return std::clamp(BucketMidpoint(i), min(), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// Registry internals. Metric objects are stored in deques so addresses
// survive growth; the name maps are guarded by a mutex taken only on
// registration, lookup, and dump — never on the recording hot path.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_names;
  std::map<std::string, Gauge*> gauge_names;
  std::map<std::string, Histogram*> histogram_names;

  // Aborts when `name` is already registered as a different kind.
  void CheckKind(const std::string& name, const char* kind,
                 bool is_this_kind) const {
    if (is_this_kind) return;
    bool clash = counter_names.count(name) || gauge_names.count(name) ||
                 histogram_names.count(name);
    if (clash) {
      std::fprintf(stderr, "obs: metric '%s' re-registered as %s\n",
                   name.c_str(), kind);
      std::abort();
    }
  }
};

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metrics must outlive every static destructor that
  // might still record.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl* MetricsRegistry::impl() {
  static Impl* impl = new Impl();
  return impl;
}

const MetricsRegistry::Impl* MetricsRegistry::impl() const {
  return const_cast<MetricsRegistry*>(this)->impl();
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counter_names.find(name);
  if (it != i->counter_names.end()) return it->second;
  i->CheckKind(name, "counter", false);
  i->counters.emplace_back();
  Counter* c = &i->counters.back();
  i->counter_names.emplace(name, c);
  return c;
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->gauge_names.find(name);
  if (it != i->gauge_names.end()) return it->second;
  i->CheckKind(name, "gauge", false);
  i->gauges.emplace_back();
  Gauge* g = &i->gauges.back();
  i->gauge_names.emplace(name, g);
  return g;
}

Histogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histogram_names.find(name);
  if (it != i->histogram_names.end()) return it->second;
  i->CheckKind(name, "histogram", false);
  i->histograms.emplace_back();
  Histogram* h = &i->histograms.back();
  i->histogram_names.emplace(name, h);
  return h;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counter_names.find(name);
  return it == i->counter_names.end() ? nullptr : it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->gauge_names.find(name);
  return it == i->gauge_names.end() ? nullptr : it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histogram_names.find(name);
  return it == i->histogram_names.end() ? nullptr : it->second;
}

void MetricsRegistry::ResetAll() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  for (Counter& c : i->counters) c.Reset();
  for (Gauge& g : i->gauges) g.Reset();
  for (Histogram& h : i->histograms) h.Reset();
}

std::string MetricsRegistry::DumpJson() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : i->counter_names) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : i->gauge_names) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : i->histogram_names) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h->count()
        << ",\"sum\":" << h->sum() << ",\"min\":" << h->min()
        << ",\"max\":" << h->max() << ",\"mean\":" << h->mean()
        << ",\"p50\":" << h->ApproxQuantile(0.5)
        << ",\"p99\":" << h->ApproxQuantile(0.99) << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::DumpText() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::ostringstream out;
  for (const auto& [name, c] : i->counter_names) {
    out << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : i->gauge_names) {
    out << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : i->histogram_names) {
    out << name << ": count=" << h->count() << " sum=" << h->sum()
        << " min=" << h->min() << " max=" << h->max() << " mean=" << h->mean()
        << " p50=" << h->ApproxQuantile(0.5)
        << " p99=" << h->ApproxQuantile(0.99) << "\n";
  }
  return out.str();
}

}  // namespace rtp::obs
