#include "obs/domain.h"

#include <algorithm>
#include <chrono>

namespace rtp::obs {

namespace internal {

void DomainCounterAdd(MetricDomain* domain, Counter* counter, uint64_t n) {
  uint32_t id = counter->id();
  if (id == kUnregisteredId) {
    counter->AddGlobal(n);
    return;
  }
  domain->CounterAdd(id, n);
}

void DomainHistogramRecord(MetricDomain* domain, Histogram* histogram,
                           uint64_t sample) {
  uint32_t id = histogram->id();
  if (id == kUnregisteredId) {
    histogram->RecordGlobal(sample);
    return;
  }
  domain->HistogramRecord(id, sample);
}

}  // namespace internal

namespace {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MetricDomain::MetricDomain()
    : parent_(internal::tls_domain), start_ns_(MonotonicNowNs()) {
  internal::tls_domain = this;
}

MetricDomain::~MetricDomain() {
  // Uninstall before flushing so the flush adds dispatch into the parent
  // domain (when nested) or the global cells — never back into us.
  internal::tls_domain = parent_;
  MetricsRegistry& registry = Registry();
  for (uint32_t id = 0; id < counter_cells_.size(); ++id) {
    if (counter_cells_[id] == 0) continue;
    if (Counter* c = registry.CounterById(id)) c->Add(counter_cells_[id]);
  }
  for (uint32_t id = 0; id < histogram_cells_.size(); ++id) {
    const HistogramDelta& delta = histogram_cells_[id];
    if (delta.count == 0) continue;
    if (parent_ != nullptr) {
      parent_->histogram_cells_.resize(
          std::max<size_t>(parent_->histogram_cells_.size(), id + 1));
      parent_->histogram_cells_[id].Merge(delta);
    } else if (Histogram* h = registry.HistogramById(id)) {
      h->MergeGlobal(delta);
    }
  }
  // Spans are per-request detail and are deliberately not flushed.
}

MetricDomain* MetricDomain::Current() { return internal::tls_domain; }

void MetricDomain::CounterAdd(uint32_t id, uint64_t n) {
  if (id >= counter_cells_.size()) counter_cells_.resize(id + 1, 0);
  counter_cells_[id] += n;
}

void MetricDomain::HistogramRecord(uint32_t id, uint64_t sample) {
  if (id >= histogram_cells_.size()) histogram_cells_.resize(id + 1);
  histogram_cells_[id].Record(sample);
}

int32_t MetricDomain::OpenSpan(const char* name) {
  int32_t index = static_cast<int32_t>(spans_.size());
  CapturedSpan span;
  span.name = name;
  span.start_ns = MonotonicNowNs() - start_ns_;
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.depth = static_cast<int32_t>(open_stack_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(index);
  return index;
}

void MetricDomain::CloseSpan(int32_t index) {
  if (index < 0 || index >= static_cast<int32_t>(spans_.size())) return;
  spans_[index].dur_ns =
      MonotonicNowNs() - start_ns_ - spans_[index].start_ns;
  // Spans close LIFO in practice (RAII), but tolerate out-of-order
  // closes from exotic control flow by erasing wherever the index sits.
  auto it = std::find(open_stack_.begin(), open_stack_.end(), index);
  if (it != open_stack_.end()) open_stack_.erase(it);
}

std::vector<std::pair<std::string, uint64_t>> MetricDomain::CounterDeltas()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::vector<std::string> names = Registry().CounterNames();
  for (uint32_t id = 0; id < counter_cells_.size(); ++id) {
    if (counter_cells_[id] == 0 || id >= names.size()) continue;
    out.emplace_back(names[id], counter_cells_[id]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, HistogramDelta>>
MetricDomain::HistogramDeltas() const {
  std::vector<std::pair<std::string, HistogramDelta>> out;
  std::vector<std::string> names = Registry().HistogramNames();
  for (uint32_t id = 0; id < histogram_cells_.size(); ++id) {
    if (histogram_cells_[id].count == 0 || id >= names.size()) continue;
    out.emplace_back(names[id], histogram_cells_[id]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

uint64_t MetricDomain::CounterDelta(const std::string& name) const {
  std::vector<std::string> names = Registry().CounterNames();
  for (uint32_t id = 0; id < counter_cells_.size() && id < names.size();
       ++id) {
    if (names[id] == name) return counter_cells_[id];
  }
  return 0;
}

uint64_t MetricDomain::ElapsedNs() const {
  return MonotonicNowNs() - start_ns_;
}

}  // namespace rtp::obs
