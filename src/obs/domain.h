#ifndef RTP_OBS_DOMAIN_H_
#define RTP_OBS_DOMAIN_H_

// MetricDomain — request-scoped metric capture.
//
// A MetricDomain is a thread-local overlay over the global metric
// registry: while installed, every Counter::Add / Histogram::Record on
// the installing thread lands in the domain's plain (single-writer)
// cells instead of the global atomics. On destruction the domain
// flushes: its deltas are re-added through the normal dispatch path, so
// they cascade into the parent domain when nested, or into the global
// cells at the outermost level. Nothing is ever lost — a domain only
// *attributes* work, the registry totals stay exact.
//
// Threading model: a domain is single-threaded. It captures only on the
// thread that installed it. For pool fan-out (rtp::exec), install one
// domain per work item inside the worker lambda — exactly like
// guard::GuardContext — and the per-item deltas sum to the registry
// delta for the batch.
//
// Domains also record trace spans: TraceSpan (obs/trace.h) reports
// every span to the innermost installed domain, which stores them in
// preorder with parent links. ProfileScope (obs/profile.h) turns the
// captured spans + deltas into a QueryProfile.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rtp::obs {

// One completed trace span captured by a domain, preorder-indexed.
struct CapturedSpan {
  std::string name;
  uint64_t start_ns = 0;  // relative to domain construction
  uint64_t dur_ns = 0;
  int32_t parent = -1;  // index into the span vector; -1 for roots
  int32_t depth = 0;
};

class MetricDomain {
 public:
  // Installs the domain on the current thread (saving any currently
  // installed domain as the parent).
  MetricDomain();
  // Uninstalls and flushes deltas to the parent domain / global cells.
  ~MetricDomain();

  MetricDomain(const MetricDomain&) = delete;
  MetricDomain& operator=(const MetricDomain&) = delete;

  // The innermost domain installed on the current thread, or nullptr.
  static MetricDomain* Current();

  // --- capture (called via internal::DomainCounterAdd / ...Record) ---
  void CounterAdd(uint32_t id, uint64_t n);
  void HistogramRecord(uint32_t id, uint64_t sample);

  // --- span capture (called by TraceSpan) ---
  // Opens a span; returns its index for the matching CloseSpan.
  int32_t OpenSpan(const char* name);
  void CloseSpan(int32_t index);

  // --- inspection (typically after Detach or from ProfileScope) ---
  // Nonzero counter deltas as (name, delta), sorted by name.
  std::vector<std::pair<std::string, uint64_t>> CounterDeltas() const;
  // Nonempty histogram deltas as (name, delta), sorted by name.
  std::vector<std::pair<std::string, HistogramDelta>> HistogramDeltas() const;
  // Delta for one counter by name (0 when not captured).
  uint64_t CounterDelta(const std::string& name) const;
  // Captured spans, preorder.
  const std::vector<CapturedSpan>& spans() const { return spans_; }
  // Nanoseconds since the domain was constructed.
  uint64_t ElapsedNs() const;

 private:
  friend void internal::DomainCounterAdd(MetricDomain*, Counter*, uint64_t);
  friend void internal::DomainHistogramRecord(MetricDomain*, Histogram*,
                                              uint64_t);

  MetricDomain* parent_ = nullptr;
  uint64_t start_ns_ = 0;  // monotonic clock at construction
  // Plain cells indexed by metric id; grown on demand. Single-writer, so
  // no atomics.
  std::vector<uint64_t> counter_cells_;
  std::vector<HistogramDelta> histogram_cells_;
  std::vector<CapturedSpan> spans_;
  std::vector<int32_t> open_stack_;  // indices of currently open spans
};

}  // namespace rtp::obs

#endif  // RTP_OBS_DOMAIN_H_
