#ifndef RTP_OBS_TRACE_H_
#define RTP_OBS_TRACE_H_

// Scoped phase tracing with chrome://tracing export.
//
// A TraceSession records nested phase spans ("compile fd automaton",
// "product", "emptiness", ...) while installed as the process-wide active
// session. When no session is active, span construction is a single
// relaxed atomic load and a branch — instrumentation can stay in
// production code.
//
//   obs::TraceSession session;
//   session.Start();
//   ...run the pipeline (RTP_OBS_TRACE_SPAN sites record into it)...
//   session.Stop();
//   std::string json = session.ExportChromeTracing();
//
// The export is a JSON array of complete ("ph":"X") events, loadable by
// chrome://tracing or Perfetto.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rtp::obs {

class MetricDomain;

class TraceSession {
 public:
  struct Span {
    const char* name;    // static string from the call site
    uint64_t start_us;   // microseconds since session start
    uint64_t dur_us;
    uint64_t tid;        // hashed thread id
    int depth;           // nesting depth at record time
  };

  TraceSession() = default;
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Installs this session as the process-wide active one. At most one
  // session may be active at a time; starting a second aborts.
  void Start();
  // Uninstalls; spans recorded so far remain available for export.
  void Stop();
  bool active() const;

  // The active session, or nullptr.
  static TraceSession* Active();

  size_t NumSpans() const;
  std::vector<Span> spans() const;

  // chrome://tracing "complete event" JSON array.
  std::string ExportChromeTracing() const;

 private:
  friend class TraceSpan;
  void Record(const char* name, uint64_t start_us, uint64_t dur_us,
              int depth);
  uint64_t NowUs() const;

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  int64_t start_ns_ = 0;
};

// RAII span: records [construction, destruction) into the active session,
// if any, and into the innermost MetricDomain installed on this thread,
// if any — so request-scoped profiles (obs/profile.h) see the same phase
// structure as whole-process traces. `name` must be a string literal
// (stored by pointer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSession* session_;  // nullptr when inactive at construction
  MetricDomain* domain_;   // nullptr when no domain was installed
  const char* name_;
  uint64_t start_us_ = 0;
  int depth_ = 0;
  int32_t domain_span_ = -1;
};

}  // namespace rtp::obs

#ifndef RTP_OBS_DISABLED
#define RTP_OBS_TRACE_CONCAT_INNER_(a, b) a##b
#define RTP_OBS_TRACE_CONCAT_(a, b) RTP_OBS_TRACE_CONCAT_INNER_(a, b)
#define RTP_OBS_TRACE_SPAN(name) \
  ::rtp::obs::TraceSpan RTP_OBS_TRACE_CONCAT_(rtp_obs_span_, __LINE__)(name)
#else
#define RTP_OBS_TRACE_SPAN(name) \
  do {                           \
  } while (false)
#endif

#endif  // RTP_OBS_TRACE_H_
