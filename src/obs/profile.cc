#include "obs/profile.h"

#include <new>
#include <sstream>

#include "guard/guard.h"

namespace rtp::obs {

uint64_t QueryProfile::CounterDelta(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

uint64_t QueryProfile::RootPhaseTotalNs() const {
  uint64_t total = 0;
  for (const CapturedSpan& span : phases) {
    if (span.parent == -1) total += span.dur_ns;
  }
  return total;
}

std::string QueryProfile::ToJson() const {
  std::ostringstream out;
  out << "{\"op\":\"" << internal::JsonEscape(op) << "\""
      << ",\"wall_ns\":" << wall_ns << ",\"status\":\""
      << internal::JsonEscape(status) << "\"";
  out << ",\"phases\":[";
  for (size_t i = 0; i < phases.size(); ++i) {
    const CapturedSpan& span = phases[i];
    if (i != 0) out << ",";
    out << "{\"name\":\"" << internal::JsonEscape(span.name) << "\""
        << ",\"start_ns\":" << span.start_ns << ",\"dur_ns\":" << span.dur_ns
        << ",\"parent\":" << span.parent << ",\"depth\":" << span.depth
        << "}";
  }
  out << "],\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << internal::JsonEscape(counters[i].first)
        << "\":" << counters[i].second;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramDelta& d = histograms[i].second;
    if (i != 0) out << ",";
    out << "\"" << internal::JsonEscape(histograms[i].first)
        << "\":{\"count\":" << d.count << ",\"sum\":" << d.sum
        << ",\"min\":" << d.ReportedMin() << ",\"max\":" << d.max
        << ",\"mean\":" << d.Mean()
        << ",\"p50\":" << static_cast<uint64_t>(d.Quantile(0.5) + 0.5)
        << ",\"p99\":" << static_cast<uint64_t>(d.Quantile(0.99) + 0.5)
        << "}";
  }
  out << "},\"guard\":{\"guarded\":" << (guard.guarded ? "true" : "false")
      << ",\"steps\":" << guard.steps << ",\"states\":" << guard.states
      << ",\"memory_bytes\":" << guard.memory_bytes
      << ",\"budget\":{\"deadline_ms\":" << guard.budget_deadline_ms
      << ",\"max_steps\":" << guard.budget_max_steps
      << ",\"max_states\":" << guard.budget_max_states
      << ",\"max_memory_bytes\":" << guard.budget_max_memory_bytes << "}}";
  out << "}";
  return out.str();
}

namespace {

void AppendDurationMs(std::ostringstream& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  out << buf << " ms";
}

}  // namespace

std::string QueryProfile::ToText() const {
  std::ostringstream out;
  out << op << "  (wall ";
  AppendDurationMs(out, wall_ns);
  out << ", status " << status << ")\n";
  for (const CapturedSpan& span : phases) {
    out << "  ";
    for (int32_t i = 0; i < span.depth; ++i) out << "  ";
    out << span.name << "  ";
    AppendDurationMs(out, span.dur_ns);
    out << "\n";
  }
  if (!counters.empty()) {
    out << "  counters:\n";
    for (const auto& [name, value] : counters) {
      out << "    " << name << " = " << value << "\n";
    }
  }
  if (!histograms.empty()) {
    out << "  histograms:\n";
    for (const auto& [name, d] : histograms) {
      out << "    " << name << "  count=" << d.count << " sum=" << d.sum
          << " p50=" << static_cast<uint64_t>(d.Quantile(0.5) + 0.5)
          << " p99=" << static_cast<uint64_t>(d.Quantile(0.99) + 0.5) << "\n";
    }
  }
  if (guard.guarded) {
    out << "  guard: steps=" << guard.steps << "/"
        << (guard.budget_max_steps > 0 ? std::to_string(guard.budget_max_steps)
                                       : "inf")
        << " states=" << guard.states << "/"
        << (guard.budget_max_states > 0
                ? std::to_string(guard.budget_max_states)
                : "inf")
        << " memory=" << guard.memory_bytes << "/"
        << (guard.budget_max_memory_bytes > 0
                ? std::to_string(guard.budget_max_memory_bytes)
                : "inf")
        << "\n";
  }
  return out.str();
}

ProfileScope::ProfileScope(std::string op, QueryProfile* out) : out_(out) {
  if (out_ == nullptr) return;
  out_->op = std::move(op);
  domain_ = new (domain_storage_) MetricDomain();
}

ProfileScope::~ProfileScope() {
  if (out_ == nullptr) return;
  out_->wall_ns = domain_->ElapsedNs();
  out_->phases = domain_->spans();
  out_->counters = domain_->CounterDeltas();
  out_->histograms = domain_->HistogramDeltas();
  // Guard accounting: the ProfileScope sits inside any ScopedGuard, so
  // the context (and its trip status) is still installed here.
  if (guard::GuardContext* g = guard::Current()) {
    out_->guard.guarded = true;
    out_->guard.steps = g->steps();
    out_->guard.states = g->states();
    out_->guard.memory_bytes = g->memory();
    out_->guard.budget_deadline_ms = g->budget().deadline_ms;
    out_->guard.budget_max_steps = g->budget().max_steps;
    out_->guard.budget_max_states = g->budget().max_automaton_states;
    out_->guard.budget_max_memory_bytes = g->budget().max_memory_bytes;
  }
  out_->status = guard::CurrentStatus().ToString();
  domain_->~MetricDomain();  // flushes deltas onward
}

std::string ProfilesToJson(const std::vector<QueryProfile>& profiles) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < profiles.size(); ++i) {
    out << (i == 0 ? "\n  " : ",\n  ") << profiles[i].ToJson();
  }
  out << "\n]";
  return out.str();
}

}  // namespace rtp::obs
