#include "obs/exposition.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace rtp::obs {

namespace {

// A Prometheus-safe metric name: "rtp_" + name with every character
// outside [a-zA-Z0-9_:] replaced by '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "rtp_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Inclusive upper bound of log2 bucket i over integer samples: bucket i
// holds [2^(i-1), 2^i), so every sample in it is <= 2^i - 1. Bucket 0
// holds only zeros.
uint64_t BucketLe(int i) {
  if (i == 0) return 0;
  if (i >= Histogram::kNumBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

}  // namespace

MetricsSnapshot TakeSnapshot() {
  MetricsSnapshot snapshot;
  const MetricsRegistry& registry = Registry();
  registry.VisitCounters(
      [&snapshot](const std::string& name, const Counter& c) {
        snapshot.counters.emplace_back(name, c.value());
      });
  registry.VisitGauges([&snapshot](const std::string& name, const Gauge& g) {
    snapshot.gauges.emplace_back(name, g.value());
  });
  registry.VisitHistograms(
      [&snapshot](const std::string& name, const Histogram& h) {
        HistogramDelta d;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          d.buckets[i] = h.bucket(i);
        }
        d.count = h.count();
        d.sum = h.sum();
        d.min = h.count() == 0 ? ~uint64_t{0} : h.min();
        d.max = h.max();
        snapshot.histograms.emplace_back(name, d);
      });
  return snapshot;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  std::map<std::string, uint64_t> counters_before(before.counters.begin(),
                                                  before.counters.end());
  std::map<std::string, HistogramDelta> histograms_before;
  for (const auto& [name, d] : before.histograms) histograms_before[name] = d;

  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    auto it = counters_before.find(name);
    uint64_t prev = it == counters_before.end() ? 0 : it->second;
    delta.counters.emplace_back(name, value >= prev ? value - prev : 0);
  }
  delta.gauges = after.gauges;  // instantaneous
  for (const auto& [name, d] : after.histograms) {
    HistogramDelta out = d;  // keeps after's min/max (instantaneous)
    auto it = histograms_before.find(name);
    if (it != histograms_before.end()) {
      const HistogramDelta& prev = it->second;
      out.count = d.count >= prev.count ? d.count - prev.count : 0;
      out.sum = d.sum >= prev.sum ? d.sum - prev.sum : 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        out.buckets[i] =
            d.buckets[i] >= prev.buckets[i] ? d.buckets[i] - prev.buckets[i]
                                            : 0;
      }
    }
    delta.histograms.emplace_back(name, out);
  }
  return delta;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"schema_version\":" << kDumpSchemaVersion << ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << internal::JsonEscape(snapshot.counters[i].first)
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << internal::JsonEscape(snapshot.gauges[i].first)
        << "\":" << snapshot.gauges[i].second;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramDelta& d = snapshot.histograms[i].second;
    if (i != 0) out << ",";
    out << "\"" << internal::JsonEscape(snapshot.histograms[i].first)
        << "\":{\"count\":" << d.count << ",\"sum\":" << d.sum
        << ",\"min\":" << d.ReportedMin() << ",\"max\":" << d.max
        << ",\"mean\":" << d.Mean()
        << ",\"p50\":" << static_cast<uint64_t>(d.Quantile(0.5) + 0.5)
        << ",\"p99\":" << static_cast<uint64_t>(d.Quantile(0.99) + 0.5)
        << "}";
  }
  out << "}}";
  return out.str();
}

std::string SnapshotToPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " counter\n"
        << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " gauge\n" << pname << " " << value << "\n";
  }
  for (const auto& [name, d] : snapshot.histograms) {
    std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " histogram\n";
    // Emit cumulative buckets up to the highest nonempty one; +Inf
    // always closes the series.
    int top = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (d.buckets[i] != 0) top = i;
    }
    uint64_t cumulative = 0;
    for (int i = 0; i <= top && i < Histogram::kNumBuckets - 1; ++i) {
      cumulative += d.buckets[i];
      out << pname << "_bucket{le=\"" << BucketLe(i) << "\"} " << cumulative
          << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << d.count << "\n"
        << pname << "_sum " << d.sum << "\n"
        << pname << "_count " << d.count << "\n";
  }
  return out.str();
}

std::string DumpPrometheus() { return SnapshotToPrometheus(TakeSnapshot()); }

}  // namespace rtp::obs
