#include "obs/trace.h"

#include <chrono>

#include "obs/domain.h"
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <thread>

namespace rtp::obs {

namespace {

// The active session. Relaxed is sufficient: Start()/Stop() are program
// phase changes, and spans recorded concurrently with Stop() are either
// fully recorded (under the session mutex) or dropped.
std::atomic<TraceSession*> g_active{nullptr};

// Per-thread nesting depth, for indentation in exports.
thread_local int t_depth = 0;

uint64_t ThreadIdHash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
}

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimal JSON string escaping; span names are call-site literals, so only
// the characters a reasonable literal could contain need handling.
std::string EscapeJson(const char* s) {
  std::string out;
  for (const char* p = s; *p; ++p) {
    switch (*p) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += *p;
    }
  }
  return out;
}

}  // namespace

TraceSession::~TraceSession() {
  if (active()) Stop();
}

void TraceSession::Start() {
  start_ns_ = MonotonicNowNs();
  TraceSession* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_relaxed)) {
    std::fprintf(stderr, "obs: a TraceSession is already active\n");
    std::abort();
  }
}

void TraceSession::Stop() {
  TraceSession* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_relaxed);
}

bool TraceSession::active() const {
  return g_active.load(std::memory_order_relaxed) == this;
}

TraceSession* TraceSession::Active() {
  return g_active.load(std::memory_order_relaxed);
}

uint64_t TraceSession::NowUs() const {
  return static_cast<uint64_t>((MonotonicNowNs() - start_ns_) / 1000);
}

void TraceSession::Record(const char* name, uint64_t start_us,
                          uint64_t dur_us, int depth) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{name, start_us, dur_us, ThreadIdHash(), depth});
}

size_t TraceSession::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceSession::Span> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string TraceSession::ExportChromeTracing() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (i) out << ",";
    out << "\n{\"name\":\"" << EscapeJson(s.name) << "\",\"ph\":\"X\",\"ts\":"
        << s.start_us << ",\"dur\":" << s.dur_us
        << ",\"pid\":1,\"tid\":" << s.tid << ",\"args\":{\"depth\":"
        << s.depth << "}}";
  }
  out << "\n]\n";
  return out.str();
}

TraceSpan::TraceSpan(const char* name)
    : session_(TraceSession::Active()),
      domain_(MetricDomain::Current()),
      name_(name) {
  if (domain_ != nullptr) domain_span_ = domain_->OpenSpan(name);
  if (session_ == nullptr) return;
  start_us_ = session_->NowUs();
  depth_ = t_depth++;
}

TraceSpan::~TraceSpan() {
  // Close the domain span only if the same domain is still installed:
  // spans and domains nest lexically in practice, and the check makes a
  // misnested pair drop a span instead of touching a dead domain.
  if (domain_ != nullptr && domain_ == MetricDomain::Current()) {
    domain_->CloseSpan(domain_span_);
  }
  if (session_ == nullptr) return;
  --t_depth;
  // The session may have been stopped while the span was open; records
  // after Stop() are still safe (the object outlives its active window at
  // every RTP_OBS_TRACE_SPAN site by construction of the CLI / tests).
  session_->Record(name_, start_us_, session_->NowUs() - start_us_, depth_);
}

}  // namespace rtp::obs
