#ifndef RTP_OBS_METRICS_H_
#define RTP_OBS_METRICS_H_

// rtp::obs — lightweight metrics for the pattern / automata / FD /
// independence pipeline, with optional request-scoped attribution.
//
// Design goals, in order:
//   1. The hot path of an *enabled* metric is a single relaxed atomic add
//      (no locks, no allocation) plus one thread-local load that decides
//      whether a request-scoped MetricDomain (obs/domain.h) is capturing
//      on this thread. With a domain installed, the add lands in the
//      domain's plain (single-writer) cell instead — still one add.
//   2. Registration is thread-safe and idempotent: the first caller of
//      Counter("x") creates the metric, later callers get the same object.
//      Metric objects live for the process lifetime (deque storage, never
//      reallocated), so cached pointers stay valid forever.
//   3. Everything is observable as structured data: DumpJson() for
//      machines, DumpText() for humans, and obs/exposition.h for
//      Prometheus text format and snapshot/delta dumps.
//
// Call-site idiom (the RTP_OBS_* macros below expand to exactly this):
//
//   static obs::Counter* c = obs::Registry().FindOrCreateCounter("fd.hits");
//   c->Add(1);
//
// Defining RTP_OBS_DISABLED at compile time turns every macro into a no-op
// with zero residual cost, for apples-to-apples overhead measurements.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rtp::obs {

class Counter;
class Gauge;
class Histogram;
class MetricDomain;
struct HistogramDelta;

namespace internal {

// The innermost MetricDomain capturing on this thread, or nullptr (the
// common case: everything records straight into the global cells).
extern thread_local MetricDomain* tls_domain;

// Out-of-line capture paths (domain.cc). They fall back to the global
// cell for metrics that were never registered (id() == kUnregisteredId).
void DomainCounterAdd(MetricDomain* domain, Counter* counter, uint64_t n);
void DomainHistogramRecord(MetricDomain* domain, Histogram* histogram,
                           uint64_t sample);

// JSON string escaping shared by every obs serializer (metric names are
// plain identifiers in practice, but dumps must never emit malformed
// JSON).
std::string JsonEscape(const std::string& s);

}  // namespace internal

// Metrics created outside the registry (rare; tests) carry this id and
// bypass domain capture.
inline constexpr uint32_t kUnregisteredId = ~uint32_t{0};

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (MetricDomain* d = internal::tls_domain) {
      internal::DomainCounterAdd(d, this, n);
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  // Records into the global cell regardless of any installed domain (the
  // domain flush path; not for call sites).
  void AddGlobal(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  uint32_t id() const { return id_; }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
  uint32_t id_ = kUnregisteredId;
};

// Last-written instantaneous value (sizes, levels). Gauges describe
// process state, not per-request work, so they are never captured by a
// MetricDomain.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed distribution of nonnegative samples (latencies in ns,
// automaton sizes, ...). Bucket i counts samples in [2^(i-1), 2^i), with
// bucket 0 counting zeros; the top bucket is open-ended. Recording is a
// relaxed add into one bucket plus relaxed adds to count/sum and two
// monotonic min/max CAS loops that almost always succeed immediately.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  // Domain-dispatching: lands in the installed MetricDomain, if any.
  void Record(uint64_t sample);
  // Always the global cells (domain flush / merge path).
  void RecordGlobal(uint64_t sample);
  void MergeGlobal(const HistogramDelta& delta);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const;
  // Quantile (q in [0,1]) with linear interpolation inside the containing
  // log2 bucket, clamped to the observed [min, max] range.
  double Quantile(double q) const;
  // Rounded Quantile (the JSON/text dump representation).
  uint64_t ApproxQuantile(double q) const {
    return static_cast<uint64_t>(Quantile(q) + 0.5);
  }
  void Reset();
  uint32_t id() const { return id_; }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
  uint32_t id_ = kUnregisteredId;
};

// A plain (non-atomic) histogram state: the per-domain capture cell and
// the unit of snapshot/delta arithmetic (obs/exposition.h).
struct HistogramDelta {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = ~uint64_t{0};  // reported as 0 when count == 0
  uint64_t max = 0;
  uint64_t buckets[Histogram::kNumBuckets] = {};

  void Record(uint64_t sample);
  void Merge(const HistogramDelta& other);
  uint64_t ReportedMin() const { return count == 0 ? 0 : min; }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  double Quantile(double q) const;
};

// The version of the DumpJson()/SnapshotToJson() document shape, emitted
// as a top-level "schema_version" field. Bump when the shape changes.
//   v1: {"counters":...,"gauges":...,"histograms":...}
//   v2: adds schema_version; p50/p99 interpolate within buckets.
inline constexpr int kDumpSchemaVersion = 2;

// Process-wide registry of named metrics. Creation takes a mutex; lookups
// by the call-site caching idiom happen once per call site.
class MetricsRegistry {
 public:
  // The process-wide instance.
  static MetricsRegistry& Global();

  // Find-or-create. The returned pointer is valid for the process
  // lifetime. A name maps to exactly one kind; requesting an existing
  // name as a different kind aborts (programming error).
  Counter* FindOrCreateCounter(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);
  Histogram* FindOrCreateHistogram(const std::string& name);

  // Nullptr when absent (does not create).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Id-indexed access for MetricDomain capture/flush. Ids are dense per
  // kind, assigned in registration order; nullptr past the current count.
  Counter* CounterById(uint32_t id);
  Histogram* HistogramById(uint32_t id);
  size_t NumCounters() const;
  size_t NumHistograms() const;
  // Names indexed by id (names[i] is the metric with id i).
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  // Visits every registered metric of one kind, sorted by name, under the
  // registry mutex. The visitor must not call back into the registry.
  void VisitCounters(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void VisitGauges(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void VisitHistograms(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  // Zeroes every registered metric (the registration set is preserved, so
  // cached call-site pointers stay valid). Test/bench infrastructure.
  void ResetAll();

  // Structured exports; metrics appear sorted by name. JSON shape:
  //   {"schema_version":2,
  //    "counters":{"a.b":1,...},
  //    "gauges":{"g":2,...},
  //    "histograms":{"h":{"count":..,"sum":..,"min":..,"max":..,
  //                       "mean":..,"p50":..,"p99":..},...}}
  std::string DumpJson() const;
  std::string DumpText() const;

 private:
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

// Shorthand for MetricsRegistry::Global().
inline MetricsRegistry& Registry() { return MetricsRegistry::Global(); }

// Process-wide dumps of every registered metric.
inline std::string DumpJson() { return Registry().DumpJson(); }
inline std::string DumpText() { return Registry().DumpText(); }

}  // namespace rtp::obs

// Call-site macros. Each caches the metric pointer in a function-local
// static, so steady state is one relaxed atomic add per event.
#ifndef RTP_OBS_DISABLED

#define RTP_OBS_COUNT(name) RTP_OBS_COUNT_N(name, 1)

#define RTP_OBS_COUNT_N(name, n)                                      \
  do {                                                                \
    static ::rtp::obs::Counter* rtp_obs_counter_ =                    \
        ::rtp::obs::Registry().FindOrCreateCounter(name);             \
    rtp_obs_counter_->Add(static_cast<uint64_t>(n));                  \
  } while (false)

#define RTP_OBS_GAUGE_SET(name, v)                                    \
  do {                                                                \
    static ::rtp::obs::Gauge* rtp_obs_gauge_ =                        \
        ::rtp::obs::Registry().FindOrCreateGauge(name);               \
    rtp_obs_gauge_->Set(static_cast<int64_t>(v));                     \
  } while (false)

#define RTP_OBS_HISTOGRAM_RECORD(name, sample)                        \
  do {                                                                \
    static ::rtp::obs::Histogram* rtp_obs_histogram_ =                \
        ::rtp::obs::Registry().FindOrCreateHistogram(name);           \
    rtp_obs_histogram_->Record(static_cast<uint64_t>(sample));        \
  } while (false)

#else  // RTP_OBS_DISABLED

#define RTP_OBS_COUNT(name) \
  do {                      \
  } while (false)
#define RTP_OBS_COUNT_N(name, n) \
  do {                           \
    (void)(n);                   \
  } while (false)
#define RTP_OBS_GAUGE_SET(name, v) \
  do {                             \
    (void)(v);                     \
  } while (false)
#define RTP_OBS_HISTOGRAM_RECORD(name, sample) \
  do {                                         \
    (void)(sample);                            \
  } while (false)

#endif  // RTP_OBS_DISABLED

#endif  // RTP_OBS_METRICS_H_
