#ifndef RTP_OBS_METRICS_H_
#define RTP_OBS_METRICS_H_

// rtp::obs — lightweight process-wide metrics for the pattern / automata /
// FD / independence pipeline.
//
// Design goals, in order:
//   1. The hot path of an *enabled* metric is a single relaxed atomic add
//      (no locks, no allocation, no branching beyond the static-init guard
//      of the call site's cached pointer).
//   2. Registration is thread-safe and idempotent: the first caller of
//      Counter("x") creates the metric, later callers get the same object.
//      Metric objects live for the process lifetime (deque storage, never
//      reallocated), so cached pointers stay valid forever.
//   3. Everything is observable as structured data: DumpJson() for
//      machines, DumpText() for humans.
//
// Call-site idiom (the RTP_OBS_* macros below expand to exactly this):
//
//   static obs::Counter* c = obs::Registry().FindOrCreateCounter("fd.hits");
//   c->Add(1);
//
// Defining RTP_OBS_DISABLED at compile time turns every macro into a no-op
// with zero residual cost, for apples-to-apples overhead measurements.

#include <atomic>
#include <cstdint>
#include <string>

namespace rtp::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written instantaneous value (sizes, levels).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed distribution of nonnegative samples (latencies in ns,
// automaton sizes, ...). Bucket i counts samples in [2^(i-1), 2^i), with
// bucket 0 counting zeros; the top bucket is open-ended. Recording is a
// relaxed add into one bucket plus relaxed adds to count/sum and two
// monotonic min/max CAS loops that almost always succeed immediately.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const;
  // Approximate quantile (q in [0,1]) from bucket midpoints.
  uint64_t ApproxQuantile(double q) const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

// Process-wide registry of named metrics. Creation takes a mutex; lookups
// by the call-site caching idiom happen once per call site.
class MetricsRegistry {
 public:
  // The process-wide instance.
  static MetricsRegistry& Global();

  // Find-or-create. The returned pointer is valid for the process
  // lifetime. A name maps to exactly one kind; requesting an existing
  // name as a different kind aborts (programming error).
  Counter* FindOrCreateCounter(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);
  Histogram* FindOrCreateHistogram(const std::string& name);

  // Nullptr when absent (does not create).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Zeroes every registered metric (the registration set is preserved, so
  // cached call-site pointers stay valid). Test/bench infrastructure.
  void ResetAll();

  // Structured exports; metrics appear sorted by name. JSON shape:
  //   {"counters":{"a.b":1,...},
  //    "gauges":{"g":2,...},
  //    "histograms":{"h":{"count":..,"sum":..,"min":..,"max":..,
  //                       "mean":..,"p50":..,"p99":..},...}}
  std::string DumpJson() const;
  std::string DumpText() const;

 private:
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

// Shorthand for MetricsRegistry::Global().
inline MetricsRegistry& Registry() { return MetricsRegistry::Global(); }

// Process-wide dumps of every registered metric.
inline std::string DumpJson() { return Registry().DumpJson(); }
inline std::string DumpText() { return Registry().DumpText(); }

}  // namespace rtp::obs

// Call-site macros. Each caches the metric pointer in a function-local
// static, so steady state is one relaxed atomic add per event.
#ifndef RTP_OBS_DISABLED

#define RTP_OBS_COUNT(name) RTP_OBS_COUNT_N(name, 1)

#define RTP_OBS_COUNT_N(name, n)                                      \
  do {                                                                \
    static ::rtp::obs::Counter* rtp_obs_counter_ =                    \
        ::rtp::obs::Registry().FindOrCreateCounter(name);             \
    rtp_obs_counter_->Add(static_cast<uint64_t>(n));                  \
  } while (false)

#define RTP_OBS_GAUGE_SET(name, v)                                    \
  do {                                                                \
    static ::rtp::obs::Gauge* rtp_obs_gauge_ =                        \
        ::rtp::obs::Registry().FindOrCreateGauge(name);               \
    rtp_obs_gauge_->Set(static_cast<int64_t>(v));                     \
  } while (false)

#define RTP_OBS_HISTOGRAM_RECORD(name, sample)                        \
  do {                                                                \
    static ::rtp::obs::Histogram* rtp_obs_histogram_ =                \
        ::rtp::obs::Registry().FindOrCreateHistogram(name);           \
    rtp_obs_histogram_->Record(static_cast<uint64_t>(sample));        \
  } while (false)

#else  // RTP_OBS_DISABLED

#define RTP_OBS_COUNT(name) \
  do {                      \
  } while (false)
#define RTP_OBS_COUNT_N(name, n) \
  do {                           \
    (void)(n);                   \
  } while (false)
#define RTP_OBS_GAUGE_SET(name, v) \
  do {                             \
    (void)(v);                     \
  } while (false)
#define RTP_OBS_HISTOGRAM_RECORD(name, sample) \
  do {                                         \
    (void)(sample);                            \
  } while (false)

#endif  // RTP_OBS_DISABLED

#endif  // RTP_OBS_METRICS_H_
