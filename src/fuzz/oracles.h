#ifndef RTP_FUZZ_ORACLES_H_
#define RTP_FUZZ_ORACLES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fd/functional_dependency.h"
#include "fuzz/small_docs.h"
#include "pattern/tree_pattern.h"
#include "schema/schema.h"
#include "update/update_class.h"
#include "xml/document.h"

namespace rtp::fuzz {

// Differential oracles: each compares an optimized code path against an
// independent implementation of the same semantics and returns a non-OK
// Status describing the first disagreement. They are run from three
// places — the libFuzzer harnesses (fuzz/), the ctest battery
// (tests/differential_oracle_test.cc) and the corpus replay test — so a
// regression in any path trips all of them.

// Dense kernel (DenseDfa + DocIndex match tables) vs the Definition 2
// literal reference evaluator, as selected-tuple sets.
Status CheckDenseVsReference(const pattern::TreePattern& pattern,
                             const xml::Document& doc);

// EvaluateSelectedBatch at `jobs` vs one-document-at-a-time serial calls
// (bit-identical, order included).
Status CheckEvalParallelVsSerial(const pattern::TreePattern& pattern,
                                 const std::vector<const xml::Document*>& docs,
                                 int jobs);

// CheckFdBatch at `jobs` vs serial CheckFd per document (bit-identical
// results, violation witnesses included).
Status CheckFdParallelVsSerial(const fd::FunctionalDependency& fd,
                               const std::vector<const xml::Document*>& docs,
                               int jobs);

// Production FD checker (hashed grouping) vs the naive quadratic
// Definition 5 transcription.
Status CheckFdVsNaive(const fd::FunctionalDependency& fd,
                      const xml::Document& doc);

// Automaton-emptiness criterion (CheckIndependence) vs a brute-force
// small-model enumerator deciding Definition 6 membership per document
// via IsInCriterionLanguage:
//   - "independent" must mean no enumerated document lies in L;
//   - a synthesized conflict candidate must itself lie in L.
Status CheckCriterionVsBruteForce(const fd::FunctionalDependency& fd,
                                  const update::UpdateClass& update,
                                  const schema::Schema* schema,
                                  Alphabet* alphabet,
                                  const SmallDocParams& small_docs);

struct OracleOptions {
  int jobs = 8;             // parallel leg compared against serial
  uint32_t num_documents = 4;
  uint32_t max_tree_nodes = 10;
  uint32_t small_doc_max_nodes = 4;
};

// Generates a pattern, an FD, an update class and a set of random
// documents from `seed` and runs every oracle above. One seed = one fully
// reproducible battery; this is the body of the fuzz_differential harness
// and of the ctest battery.
Status RunOracleBattery(uint64_t seed, const OracleOptions& options = {});

}  // namespace rtp::fuzz

#endif  // RTP_FUZZ_ORACLES_H_
