#ifndef RTP_FUZZ_GENERATORS_H_
#define RTP_FUZZ_GENERATORS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/alphabet.h"
#include "fd/functional_dependency.h"
#include "fuzz/rng.h"
#include "pattern/tree_pattern.h"
#include "update/update_class.h"

namespace rtp::fuzz {

// Seeded structured generators for every textual front end plus the
// in-memory FD/update-class instances the differential oracles consume.
// All draws come from the caller's Rng, so (seed, params) reproduces the
// exact input; see docs/FUZZING.md for the reproduction workflow.
//
// The text generators emit *valid* inputs by construction (asserted by
// tests/parser_fuzz_test.cc); MutateBytes then damages them to probe the
// parsers' error paths.
struct TextGenParams {
  uint32_t num_labels = 4;        // label pool "l0".."l<k-1>"
  uint32_t max_regex_nodes = 6;   // leaf budget of a generated regex
  uint32_t wildcard_percent = 15;
  uint32_t max_template_nodes = 4;  // pattern DSL, besides the root
  uint32_t max_schema_elements = 4;
  uint32_t max_xml_nodes = 12;
  uint32_t max_path_steps = 3;  // path-FD step count per item
  uint32_t value_pool = 3;      // leaf values "v0".."v<k-1>"
};

// A regex in the path syntax of regex/regex_parser.h.
std::string GenerateRegexText(Rng* rng, const TextGenParams& params);

// A pattern DSL text (pattern/pattern_parser.h) with a select clause and,
// when `with_context`, a context clause — i.e. parseable as an FD.
std::string GeneratePatternDslText(Rng* rng, const TextGenParams& params,
                                   bool with_context = false);

// A schema DSL text (schema/schema.h): every element used in a content
// model is declared, so the text always compiles.
std::string GenerateSchemaDslText(Rng* rng, const TextGenParams& params);

// A well-formed XML text with attributes, text runs, entities, and the
// occasional comment/PI the parser must skip.
std::string GenerateXmlText(Rng* rng, const TextGenParams& params);

// A path-FD expression (fd/path_fd.h).
std::string GeneratePathFdText(Rng* rng, const TextGenParams& params);

// 1..3 rtpd wire request lines (serve/protocol.h), '\n'-terminated, with
// op-appropriate fields; pattern texts come from GeneratePatternDslText,
// so the serve harness sees requests the daemon could actually execute.
std::string GenerateServeRequestLines(Rng* rng, const TextGenParams& params);

// Printable byte soup (no structure), for pure robustness probing.
std::string GenerateRandomBytes(Rng* rng, size_t max_len);

// Applies 1..max_edits random byte edits (erase / insert / overwrite /
// duplicate a chunk) to `input`.
std::string MutateBytes(std::string_view input, Rng* rng,
                        uint32_t max_edits = 4);

// ---------------------------------------------------------------------------
// Structured instances for the differential oracles. These reuse the
// src/workload random-pattern machinery and guarantee the structural
// invariants the consumers demand (>= 1 selected node; for update classes,
// selected nodes are template leaves, as the independence criterion
// requires).
struct InstanceGenParams {
  uint32_t num_labels = 3;
  uint32_t max_template_nodes = 3;
  uint32_t max_regex_nodes = 3;
  uint32_t wildcard_percent = 15;
  uint32_t num_conditions = 1;  // FD conditions (target is extra)
};

// A random FD whose context is the template root (always a valid context).
fd::FunctionalDependency GenerateFdInstance(Alphabet* alphabet, Rng* rng,
                                            const InstanceGenParams& params);

// A random update class whose selected node is a template leaf.
update::UpdateClass GenerateUpdateClassInstance(
    Alphabet* alphabet, Rng* rng, const InstanceGenParams& params);

// A random pattern over the same "l<k>" label pool (>= 1 selected node).
pattern::TreePattern GeneratePatternInstance(Alphabet* alphabet, Rng* rng,
                                             const InstanceGenParams& params);

}  // namespace rtp::fuzz

#endif  // RTP_FUZZ_GENERATORS_H_
