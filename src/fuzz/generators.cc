#include "fuzz/generators.h"

#include <optional>
#include <vector>

#include "common/check.h"
#include "pattern/pattern_writer.h"
#include "serve/protocol.h"
#include "workload/random_pattern.h"

namespace rtp::fuzz {

namespace {

std::string PoolLabel(Rng* rng, uint32_t num_labels) {
  return "l" + std::to_string(rng->Below(num_labels == 0 ? 1 : num_labels));
}

std::string PoolValue(Rng* rng, uint32_t value_pool) {
  return "v" + std::to_string(rng->Below(value_pool == 0 ? 1 : value_pool));
}

// Recursive regex-text builder over an explicit symbol pool. `budget` is
// the number of symbol/wildcard leaves; compound subexpressions are always
// parenthesized, so the output is valid in any syntactic context.
std::string RegexTextOver(Rng* rng, const std::vector<std::string>& symbols,
                          uint32_t wildcard_percent, uint32_t budget) {
  if (budget <= 1) {
    if (rng->Percent(wildcard_percent)) return "_";
    return symbols[rng->Below(symbols.size())];
  }
  switch (rng->Below(6)) {
    case 0:
    case 1: {  // concatenation
      uint32_t left = 1 + static_cast<uint32_t>(rng->Below(budget - 1));
      return RegexTextOver(rng, symbols, wildcard_percent, left) + "/" +
             RegexTextOver(rng, symbols, wildcard_percent, budget - left);
    }
    case 2: {  // union
      uint32_t left = 1 + static_cast<uint32_t>(rng->Below(budget - 1));
      return "(" + RegexTextOver(rng, symbols, wildcard_percent, left) + "|" +
             RegexTextOver(rng, symbols, wildcard_percent, budget - left) +
             ")";
    }
    case 3:
      return "(" + RegexTextOver(rng, symbols, wildcard_percent, budget - 1) +
             ")*";
    case 4:
      return "(" + RegexTextOver(rng, symbols, wildcard_percent, budget - 1) +
             ")+";
    default:
      return "(" + RegexTextOver(rng, symbols, wildcard_percent, budget - 1) +
             ")?";
  }
}

std::vector<std::string> DefaultSymbolPool(Rng* rng,
                                           const TextGenParams& params) {
  std::vector<std::string> symbols;
  for (uint32_t i = 0; i < params.num_labels; ++i) {
    symbols.push_back("l" + std::to_string(i));
  }
  // A couple of attribute labels and the text marker keep the three label
  // kinds of the paper's alphabet partition in play.
  symbols.push_back("@a0");
  if (rng->Percent(50)) symbols.push_back("@a1");
  symbols.push_back("#text");
  return symbols;
}

uint32_t RegexBudget(Rng* rng, const TextGenParams& params) {
  return 1 + static_cast<uint32_t>(rng->Below(
                 params.max_regex_nodes == 0 ? 1 : params.max_regex_nodes));
}

void AppendXmlContent(Rng* rng, const TextGenParams& params, uint32_t depth,
                      uint32_t* budget, std::string* out) {
  while (*budget > 0 && !rng->Percent(35)) {
    --*budget;
    switch (rng->Below(8)) {
      case 0:  // text run, sometimes with a predefined entity
        *out += PoolValue(rng, params.value_pool);
        if (rng->Percent(30)) *out += "&amp;x&lt;y&gt;";
        break;
      case 1:  // comment (skipped by the parser)
        *out += "<!-- c -->";
        break;
      case 2:  // processing instruction (skipped)
        *out += "<?pi data?>";
        break;
      default: {  // child element
        std::string label = PoolLabel(rng, params.num_labels);
        *out += "<" + label;
        if (rng->Percent(40)) {
          *out += " a0=\"" + PoolValue(rng, params.value_pool) + "\"";
        }
        if (rng->Percent(15)) {
          *out += " a1=\"" + PoolValue(rng, params.value_pool) + "\"";
        }
        if (depth == 0 || rng->Percent(30)) {
          *out += "/>";
        } else {
          *out += ">";
          AppendXmlContent(rng, params, depth - 1, budget, out);
          *out += "</" + label + ">";
        }
      }
    }
  }
}

std::string PathFdItem(Rng* rng, const TextGenParams& params) {
  uint32_t steps = 1 + static_cast<uint32_t>(rng->Below(
                           params.max_path_steps == 0
                               ? 1
                               : params.max_path_steps));
  std::string out;
  for (uint32_t i = 0; i < steps; ++i) {
    if (i > 0) out += "/";
    if (i + 1 == steps && rng->Percent(20)) {
      out += rng->Percent(50) ? "@a0" : "#text";
    } else {
      out += PoolLabel(rng, params.num_labels);
    }
  }
  if (rng->Percent(30)) out += rng->Percent(50) ? "[N]" : "[V]";
  return out;
}

workload::RandomPatternParams ToWorkloadParams(
    const InstanceGenParams& params) {
  workload::RandomPatternParams wp;
  wp.num_labels = params.num_labels;
  wp.max_regex_nodes = params.max_regex_nodes;
  wp.wildcard_percent = params.wildcard_percent;
  return wp;
}

// Random template skeleton with proper edge regexes; the last added node
// never receives children, so it is always a leaf.
pattern::TreePattern RandomTemplate(Alphabet* alphabet, Rng* rng,
                                    const InstanceGenParams& params) {
  workload::RandomPatternParams wp = ToWorkloadParams(params);
  pattern::TreePattern tree;
  uint32_t nodes = 1 + static_cast<uint32_t>(rng->Below(
                           params.max_template_nodes == 0
                               ? 1
                               : params.max_template_nodes));
  for (uint32_t i = 0; i < nodes; ++i) {
    pattern::PatternNodeId parent =
        static_cast<pattern::PatternNodeId>(rng->Below(tree.NumNodes()));
    regex::RegexAst ast =
        workload::GenerateRandomProperRegex(alphabet, wp, rng->Next());
    tree.AddChild(parent, regex::Regex::FromAst(std::move(ast)));
  }
  return tree;
}

pattern::EqualityType RandomEquality(Rng* rng) {
  return rng->Percent(25) ? pattern::EqualityType::kNode
                          : pattern::EqualityType::kValue;
}

}  // namespace

std::string GenerateRegexText(Rng* rng, const TextGenParams& params) {
  return RegexTextOver(rng, DefaultSymbolPool(rng, params),
                       params.wildcard_percent, RegexBudget(rng, params));
}

std::string GeneratePatternDslText(Rng* rng, const TextGenParams& params,
                                   bool with_context) {
  // Build an instance and serialize it: the writer emits exactly the DSL
  // the parser accepts, so validity is by construction.
  InstanceGenParams instance;
  instance.num_labels = params.num_labels;
  instance.max_template_nodes = params.max_template_nodes;
  instance.max_regex_nodes = params.max_regex_nodes;
  instance.wildcard_percent = params.wildcard_percent;
  Alphabet alphabet;
  pattern::TreePattern pattern =
      GeneratePatternInstance(&alphabet, rng, instance);
  std::optional<pattern::PatternNodeId> context;
  if (with_context) context = pattern::TreePattern::kRoot;
  return pattern::PatternToDsl(pattern, alphabet, context);
}

std::string GenerateSchemaDslText(Rng* rng, const TextGenParams& params) {
  uint32_t elements = 1 + static_cast<uint32_t>(rng->Below(
                              params.max_schema_elements == 0
                                  ? 1
                                  : params.max_schema_elements));
  // Content models may use any declared element, attributes and #text, but
  // never the wildcard (rejected by the schema compiler).
  std::vector<std::string> symbols;
  for (uint32_t i = 0; i < elements; ++i) {
    symbols.push_back("e" + std::to_string(i));
  }
  symbols.push_back("@a0");
  symbols.push_back("#text");
  std::string out = "schema {\n  root e0";
  // Occasionally allow several roots.
  if (elements > 1 && rng->Percent(20)) out += ", e1";
  out += ";\n";
  for (uint32_t i = 0; i < elements; ++i) {
    out += "  element e" + std::to_string(i) + " { ";
    if (!rng->Percent(20)) {
      out += RegexTextOver(rng, symbols, /*wildcard_percent=*/0,
                           RegexBudget(rng, params));
      out += " ";
    }
    out += "}\n";
  }
  out += "}\n";
  return out;
}

std::string GenerateXmlText(Rng* rng, const TextGenParams& params) {
  uint32_t budget =
      1 + static_cast<uint32_t>(rng->Below(
              params.max_xml_nodes == 0 ? 1 : params.max_xml_nodes));
  std::string root = PoolLabel(rng, params.num_labels);
  std::string out;
  if (rng->Percent(25)) out += "<?xml version=\"1.0\"?>";
  out += "<" + root;
  if (rng->Percent(30)) {
    out += " a0=\"" + PoolValue(rng, params.value_pool) + "\"";
  }
  out += ">";
  AppendXmlContent(rng, params, /*depth=*/4, &budget, &out);
  out += "</" + root + ">";
  return out;
}

std::string GeneratePathFdText(Rng* rng, const TextGenParams& params) {
  std::string out = "(";
  if (rng->Percent(20)) {
    out += "/";  // context = document root
  } else {
    uint32_t steps = 1 + static_cast<uint32_t>(rng->Below(2));
    for (uint32_t i = 0; i < steps; ++i) {
      out += "/" + PoolLabel(rng, params.num_labels);
    }
  }
  out += ", (";
  uint32_t conditions = static_cast<uint32_t>(rng->Below(3));
  for (uint32_t i = 0; i < conditions; ++i) {
    if (i > 0) out += ", ";
    out += PathFdItem(rng, params);
  }
  out += ") -> " + PathFdItem(rng, params) + ")";
  return out;
}

std::string GenerateServeRequestLines(Rng* rng, const TextGenParams& params) {
  static constexpr const char* kOps[] = {"load",  "eval", "checkfd", "matrix",
                                         "stats", "drop", "quota",   "shutdown"};
  std::string out;
  uint32_t lines = 1 + static_cast<uint32_t>(rng->Below(3));
  for (uint32_t i = 0; i < lines; ++i) {
    serve::Request req;
    req.id = static_cast<int64_t>(rng->Below(1000));
    req.op = kOps[rng->Below(sizeof(kOps) / sizeof(kOps[0]))];
    if (rng->Percent(40)) req.tenant = "t" + std::to_string(rng->Below(3));
    if (req.op == "load") {
      req.doc = "d" + std::to_string(rng->Below(3));
      req.text = GenerateXmlText(rng, params);
    } else if (req.op == "eval" || req.op == "checkfd") {
      req.doc = "d" + std::to_string(rng->Below(3));
      req.text = GeneratePatternDslText(rng, params,
                                        /*with_context=*/req.op == "checkfd");
    } else if (req.op == "matrix") {
      req.fds.push_back(GeneratePatternDslText(rng, params,
                                               /*with_context=*/true));
      req.classes.push_back(GeneratePatternDslText(rng, params));
      if (rng->Percent(30)) req.schema = GenerateSchemaDslText(rng, params);
    } else if (req.op == "stats") {
      req.metrics = rng->Percent(50);
    } else if (req.op == "drop") {
      req.doc = "d" + std::to_string(rng->Below(3));
    } else if (req.op == "quota") {
      req.budget.deadline_ms = static_cast<int64_t>(rng->Below(1000));
      req.has_budget = true;
    }
    if (rng->Percent(20)) {
      req.budget.max_steps = static_cast<int64_t>(rng->Below(10000));
      req.has_budget = true;
    }
    if (rng->Percent(20)) req.profile = true;
    out += serve::EncodeRequest(req).Serialize();
    out += '\n';
  }
  return out;
}

std::string GenerateRandomBytes(Rng* rng, size_t max_len) {
  static constexpr char kChars[] =
      "abcXYZ019 \t\n(){};[]|/*+?=@#<>&\"'-_.,!";
  size_t len = rng->Below(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kChars[rng->Below(sizeof(kChars) - 1)]);
  }
  return out;
}

std::string MutateBytes(std::string_view input, Rng* rng,
                        uint32_t max_edits) {
  std::string out(input);
  uint32_t edits =
      1 + static_cast<uint32_t>(rng->Below(max_edits == 0 ? 1 : max_edits));
  for (uint32_t i = 0; i < edits; ++i) {
    switch (rng->Below(4)) {
      case 0:  // erase one byte
        if (!out.empty()) out.erase(rng->Below(out.size()), 1);
        break;
      case 1:  // insert a printable byte
        out.insert(out.begin() + rng->Below(out.size() + 1),
                   static_cast<char>('!' + rng->Below(90)));
        break;
      case 2:  // overwrite one byte
        if (!out.empty()) {
          out[rng->Below(out.size())] =
              static_cast<char>('!' + rng->Below(90));
        }
        break;
      default: {  // duplicate a chunk (grows repetition-heavy inputs)
        if (out.empty()) break;
        size_t pos = rng->Below(out.size());
        size_t len = 1 + rng->Below(8);
        std::string chunk = out.substr(pos, len);
        out.insert(rng->Below(out.size() + 1), chunk);
      }
    }
  }
  return out;
}

pattern::TreePattern GeneratePatternInstance(Alphabet* alphabet, Rng* rng,
                                             const InstanceGenParams& params) {
  pattern::TreePattern tree = RandomTemplate(alphabet, rng, params);
  uint32_t selected =
      1 + static_cast<uint32_t>(rng->Below(params.num_conditions + 1));
  for (uint32_t i = 0; i < selected; ++i) {
    pattern::PatternNodeId node = 1 + static_cast<pattern::PatternNodeId>(
                                          rng->Below(tree.NumNodes() - 1));
    tree.AddSelected(node, RandomEquality(rng));
  }
  return tree;
}

fd::FunctionalDependency GenerateFdInstance(Alphabet* alphabet, Rng* rng,
                                            const InstanceGenParams& params) {
  pattern::TreePattern tree = RandomTemplate(alphabet, rng, params);
  // Conditions p1..pn then the target q; the root context is an ancestor
  // of every node, so Create cannot fail on the context check.
  for (uint32_t i = 0; i <= params.num_conditions; ++i) {
    pattern::PatternNodeId node = 1 + static_cast<pattern::PatternNodeId>(
                                          rng->Below(tree.NumNodes() - 1));
    tree.AddSelected(node, RandomEquality(rng));
  }
  auto fd = fd::FunctionalDependency::Create(std::move(tree),
                                             pattern::TreePattern::kRoot);
  RTP_CHECK_MSG(fd.ok(), fd.status().ToString().c_str());
  return std::move(fd).value();
}

update::UpdateClass GenerateUpdateClassInstance(
    Alphabet* alphabet, Rng* rng, const InstanceGenParams& params) {
  pattern::TreePattern tree = RandomTemplate(alphabet, rng, params);
  // The last added template node never gained children, so selecting it
  // keeps the class inside the criterion's selected-are-leaves fragment.
  tree.AddSelected(
      static_cast<pattern::PatternNodeId>(tree.NumNodes() - 1),
      pattern::EqualityType::kValue);
  auto cls = update::UpdateClass::Create(std::move(tree));
  RTP_CHECK_MSG(cls.ok(), cls.status().ToString().c_str());
  return std::move(cls).value();
}

}  // namespace rtp::fuzz
