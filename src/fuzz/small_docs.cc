#include "fuzz/small_docs.h"

namespace rtp::fuzz {

namespace {

struct EnumState {
  Alphabet* alphabet;
  const SmallDocParams* params;
  const std::function<bool(const xml::Document&)>* fn;
  xml::Document* doc;
  size_t visited = 0;
};

// Extends the tree by up to `budget` more nodes. `path` is the rightmost
// path (root to last added node), restricted to nodes that may take
// children; a new node may attach under any of them. Returns false once
// the callback asked to stop.
bool Extend(EnumState* state, std::vector<xml::NodeId>& path,
            uint32_t budget) {
  if (budget == 0) return true;
  for (size_t k = 0; k < path.size(); ++k) {
    for (const std::string& label : state->params->labels) {
      LabelKind kind = Alphabet::KindOf(label);
      bool leaf = kind != LabelKind::kElement;
      xml::NodeId child = state->doc->AddChild(
          path[k], label,
          kind == LabelKind::kText
              ? xml::NodeType::kText
              : (kind == LabelKind::kAttribute ? xml::NodeType::kAttribute
                                               : xml::NodeType::kElement),
          leaf ? state->params->leaf_value : "");
      ++state->visited;
      if (!(*state->fn)(*state->doc)) return false;
      // New rightmost path: the ancestors of `child` up to path[k], plus
      // child itself when it may have children of its own.
      std::vector<xml::NodeId> next(path.begin(), path.begin() + k + 1);
      if (!leaf) next.push_back(child);
      if (!Extend(state, next, budget - 1)) return false;
      state->doc->DetachSubtree(child);
    }
  }
  return true;
}

}  // namespace

size_t ForEachSmallDocument(
    Alphabet* alphabet, const SmallDocParams& params,
    const std::function<bool(const xml::Document&)>& fn) {
  xml::Document doc(alphabet);
  EnumState state{alphabet, &params, &fn, &doc};
  ++state.visited;
  if (fn(doc)) {
    std::vector<xml::NodeId> path = {doc.root()};
    Extend(&state, path, params.max_nodes);
  }
  return state.visited;
}

}  // namespace rtp::fuzz
