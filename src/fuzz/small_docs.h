#ifndef RTP_FUZZ_SMALL_DOCS_H_
#define RTP_FUZZ_SMALL_DOCS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/alphabet.h"
#include "xml/document.h"

namespace rtp::fuzz {

// Exhaustive small-model enumeration: every ordered labeled tree over a
// fixed label pool, up to a node budget. This is the brute-force side of
// the criterion differential oracle — Definition 6 membership is decided
// per document by pattern evaluation (IsInCriterionLanguage) and compared
// against the automaton-emptiness verdict of CheckIndependence, which
// quantifies over *all* documents; any small member the emptiness check
// missed is a bug in one of the two paths.
struct SmallDocParams {
  // Node labels; "#text" and "@..." entries become value-carrying leaves.
  std::vector<std::string> labels = {"l0", "l1", "l2"};
  // Maximum number of non-root nodes. Tree count is Catalan(n) * k^n per
  // size n, so keep this <= 5.
  uint32_t max_nodes = 4;
  // Value given to text/attribute leaves (values are irrelevant to
  // Definition 6 membership, which only quantifies over traces).
  std::string leaf_value = "v";
};

// Invokes `fn` exactly once per ordered labeled tree with at most
// `max_nodes` non-root nodes (the empty document included). Uniqueness
// comes from preorder insertion: each new node attaches to a node on the
// rightmost path, so every tree is produced by exactly one insertion
// sequence. `fn` returns false to stop early. Returns the number of
// documents visited.
size_t ForEachSmallDocument(
    Alphabet* alphabet, const SmallDocParams& params,
    const std::function<bool(const xml::Document&)>& fn);

}  // namespace rtp::fuzz

#endif  // RTP_FUZZ_SMALL_DOCS_H_
