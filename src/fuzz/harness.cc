#include "fuzz/harness.h"

#include <string>

#include "common/check.h"
#include "fuzz/oracles.h"
#include "fuzz/rng.h"
#include "guard/guard.h"
#include "pattern/pattern_parser.h"
#include "pattern/pattern_writer.h"
#include "regex/regex.h"
#include "schema/schema.h"
#include "serve/framing.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "workload/random_document.h"
#include "xml/document.h"
#include "xml/xml_io.h"

namespace rtp::fuzz {

namespace {

// The regex/pattern/schema harnesses compile DFAs (subset construction),
// so oversized inputs are truncated to keep single executions bounded;
// the XML parser is linear and gets a larger cap.
constexpr size_t kCompiledInputCap = 1024;
constexpr size_t kXmlInputCap = 1 << 16;

std::string Truncated(const uint8_t* data, size_t size, size_t cap) {
  return std::string(reinterpret_cast<const char*>(data),
                     size < cap ? size : cap);
}

// A small random document over the labels interned so far — after parsing
// an input, that includes exactly the labels the input mentions, which
// makes generated documents likely to exercise the parsed object.
xml::Document RandomDocOverAlphabet(Alphabet* alphabet, Rng* rng,
                                    uint32_t max_nodes) {
  xml::Document doc(alphabet);
  std::vector<xml::NodeId> elements = {doc.root()};
  uint32_t nodes = 1 + static_cast<uint32_t>(rng->Below(max_nodes));
  for (uint32_t i = 0; i < nodes; ++i) {
    xml::NodeId parent = elements[rng->Below(elements.size())];
    LabelId label = static_cast<LabelId>(rng->Below(alphabet->size()));
    if (label == Alphabet::kRootLabel) label = Alphabet::kTextLabel;
    switch (alphabet->Kind(label)) {
      case LabelKind::kText:
        doc.AddText(parent, "v" + std::to_string(rng->Below(2)));
        break;
      case LabelKind::kAttribute:
        doc.AddChild(parent, label, xml::NodeType::kAttribute, "v");
        break;
      case LabelKind::kElement:
        elements.push_back(
            doc.AddChild(parent, label, xml::NodeType::kElement));
        break;
    }
  }
  return doc;
}

void RunRegexHarness(const uint8_t* data, size_t size) {
  Alphabet alphabet;
  std::string input = Truncated(data, size, kCompiledInputCap);
  StatusOr<regex::Regex> re = regex::Regex::Parse(&alphabet, input);
  if (!re.ok()) return;

  // Writer round-trip: the printed AST must reparse to the same language.
  std::string printed = re->ToString(alphabet);
  StatusOr<regex::Regex> reparsed = regex::Regex::Parse(&alphabet, printed);
  RTP_CHECK_MSG(reparsed.ok(), printed.c_str());
  RTP_CHECK_MSG(re->dfa().IsEquivalentTo(reparsed->dfa()), printed.c_str());

  // Dense-table differential: the flat DenseDfa must track the map-based
  // Dfa state-for-state on random words over the input's own labels.
  Rng rng(Rng::SeedFromBytes(data, size));
  const regex::Dfa& dfa = re->dfa();
  const regex::DenseDfa& dense = re->dense_dfa();
  for (int word = 0; word < 16; ++word) {
    int32_t s_map = dfa.initial();
    int32_t s_dense = dense.initial();
    size_t len = rng.Below(7);
    for (size_t i = 0; i < len; ++i) {
      LabelId a = static_cast<LabelId>(rng.Below(alphabet.size()));
      s_map = dfa.Next(s_map, a);
      if (s_dense != regex::kDeadState) s_dense = dense.Next(s_dense, a);
      RTP_CHECK(s_map == s_dense);
      RTP_CHECK(dfa.accepting(s_map) == dense.accepting(s_dense));
    }
  }
}

void RunPatternHarness(const uint8_t* data, size_t size) {
  Alphabet alphabet;
  std::string input = Truncated(data, size, kCompiledInputCap);
  StatusOr<pattern::ParsedPattern> parsed =
      pattern::ParsePattern(&alphabet, input);
  if (!parsed.ok()) return;

  // The parser may only emit structurally valid patterns.
  Status valid = parsed->pattern.Validate();
  RTP_CHECK_MSG(valid.ok(), valid.ToString().c_str());

  // Writer round-trip: serialize, reparse, compare structure.
  std::string printed =
      pattern::PatternToDsl(parsed->pattern, alphabet, parsed->context);
  StatusOr<pattern::ParsedPattern> reparsed =
      pattern::ParsePattern(&alphabet, printed);
  RTP_CHECK_MSG(reparsed.ok(), printed.c_str());
  RTP_CHECK(reparsed->pattern.NumNodes() == parsed->pattern.NumNodes());
  RTP_CHECK(reparsed->pattern.selected().size() ==
            parsed->pattern.selected().size());
  RTP_CHECK(reparsed->context == parsed->context);
  for (pattern::PatternNodeId w = 1; w < parsed->pattern.NumNodes(); ++w) {
    RTP_CHECK(reparsed->pattern.parent(w) == parsed->pattern.parent(w));
    RTP_CHECK_MSG(reparsed->pattern.edge(w).dfa().IsEquivalentTo(
                      parsed->pattern.edge(w).dfa()),
                  printed.c_str());
  }

  // Evaluation differential on a small document (the reference oracle is
  // exponential in the template, so gate on tiny sizes).
  if (parsed->pattern.NumNodes() <= 5 &&
      !parsed->pattern.selected().empty()) {
    Rng rng(Rng::SeedFromBytes(data, size));
    xml::Document doc = RandomDocOverAlphabet(&alphabet, &rng, 10);
    Status agree = CheckDenseVsReference(parsed->pattern, doc);
    RTP_CHECK_MSG(agree.ok(), agree.ToString().c_str());
  }
}

void RunSchemaHarness(const uint8_t* data, size_t size) {
  Alphabet alphabet;
  std::string input = Truncated(data, size, kCompiledInputCap);
  StatusOr<schema::Schema> schema = schema::Schema::Parse(&alphabet, input);
  if (!schema.ok()) return;

  // Generator-vs-validator differential: a document sampled from the
  // schema's own content-model DFAs must validate against the compiled
  // hedge automaton.
  workload::RandomDocumentParams params;
  params.seed = Rng::SeedFromBytes(data, size);
  params.soft_max_children = 4;
  // Mutated schemas are often recursive with branching content; a tight
  // node budget keeps one execution bounded (found by this very harness).
  params.max_total_nodes = 2048;
  StatusOr<xml::Document> doc =
      workload::GenerateRandomDocument(*schema, params);
  if (doc.ok()) {
    RTP_CHECK_MSG(schema->Validate(*doc), input.c_str());
  }
}

void CheckStructurallyEqual(const xml::Document& a, const xml::Document& b) {
  RTP_CHECK(a.LiveNodeCount() == b.LiveNodeCount());
  std::vector<std::pair<xml::NodeId, xml::NodeId>> stack = {
      {a.root(), b.root()}};
  while (!stack.empty()) {
    auto [na, nb] = stack.back();
    stack.pop_back();
    RTP_CHECK(a.label_name(na) == b.label_name(nb));
    RTP_CHECK(a.type(na) == b.type(nb));
    RTP_CHECK(a.value(na) == b.value(nb));
    std::vector<xml::NodeId> ka = a.Children(na);
    std::vector<xml::NodeId> kb = b.Children(nb);
    RTP_CHECK(ka.size() == kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
      stack.emplace_back(ka[i], kb[i]);
    }
  }
}

void RunXmlHarness(const uint8_t* data, size_t size) {
  Alphabet alphabet;
  std::string input = Truncated(data, size, kXmlInputCap);
  StatusOr<xml::Document> doc = xml::ParseXml(&alphabet, input);
  if (!doc.ok()) return;

  // Serializer round-trip (both indentation modes reparse to the same
  // tree: whitespace-only text is dropped by the parser).
  bool indent = (Rng::SeedFromBytes(data, size) & 1) != 0;
  std::string printed = xml::WriteXml(*doc, indent);
  StatusOr<xml::Document> reparsed = xml::ParseXml(&alphabet, printed);
  RTP_CHECK_MSG(reparsed.ok(), printed.c_str());
  CheckStructurallyEqual(*doc, *reparsed);
}

void RunDifferentialHarness(const uint8_t* data, size_t size) {
  uint64_t seed = Rng::SeedFromBytes(data, size);
  Status status = RunOracleBattery(seed);
  RTP_CHECK_MSG(status.ok(), status.ToString().c_str());

  // Re-run the same battery under a tight random budget: starving the
  // oracles must only ever surface the guard's resource statuses — never a
  // bogus differential mismatch from comparing a partial result against a
  // complete one, and never a crash on a partially built automaton.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  guard::ExecutionBudget budget;
  budget.max_steps = 1 + static_cast<int64_t>(rng.Below(50'000));
  budget.max_automaton_states = 1 + static_cast<int64_t>(rng.Below(20'000));
  guard::GuardContext ctx(budget);
  guard::ScopedGuard scope(&ctx);
  Status starved = RunOracleBattery(seed);
  RTP_CHECK_MSG(starved.ok() || guard::IsResourceStatus(starved),
                starved.ToString().c_str());
}

void RunServeHarness(const uint8_t* data, size_t size) {
  // Small line cap so mutated inputs actually exercise the oversized
  // paths (the server's real cap is 1 MiB).
  constexpr size_t kMaxServeLine = 512;
  std::string input = Truncated(data, size, kXmlInputCap);

  auto drain = [](serve::LineFramer& framer,
                  std::vector<serve::LineFramer::Line>* out) {
    while (auto line = framer.Next()) out->push_back(std::move(*line));
  };

  // Chunking invariance: the same byte stream, torn at arbitrary write
  // boundaries (as a faulty or malicious peer would deliver it), must
  // frame into exactly the same line sequence as a single feed.
  std::vector<serve::LineFramer::Line> whole_lines;
  serve::LineFramer whole(kMaxServeLine);
  whole.Feed(input);
  drain(whole, &whole_lines);

  std::vector<serve::LineFramer::Line> torn_lines;
  serve::LineFramer torn(kMaxServeLine);
  Rng rng(Rng::SeedFromBytes(data, size));
  size_t off = 0;
  while (off < input.size()) {
    size_t n = 1 + rng.Below(17);
    if (n > input.size() - off) n = input.size() - off;
    torn.Feed(std::string_view(input).substr(off, n));
    drain(torn, &torn_lines);
    off += n;
  }
  RTP_CHECK(whole_lines.size() == torn_lines.size());
  for (size_t i = 0; i < whole_lines.size(); ++i) {
    RTP_CHECK(whole_lines[i].oversized == torn_lines[i].oversized);
    RTP_CHECK(whole_lines[i].text == torn_lines[i].text);
  }

  // Every framed line runs the protocol decode (malformed bytes must
  // yield a Status, never a crash); decodable requests must survive the
  // encoder round-trip field-for-field.
  for (const serve::LineFramer::Line& line : whole_lines) {
    if (line.oversized) continue;
    auto parsed = serve::JsonValue::Parse(line.text);
    if (!parsed.ok()) continue;
    auto req = serve::DecodeRequest(*parsed);
    if (!req.ok()) continue;
    auto round = serve::DecodeRequest(serve::EncodeRequest(*req));
    RTP_CHECK_MSG(round.ok(), round.status().ToString().c_str());
    RTP_CHECK(round->id == req->id);
    RTP_CHECK(round->op == req->op);
    RTP_CHECK(round->tenant == req->tenant);
    RTP_CHECK(round->doc == req->doc);
    RTP_CHECK(round->text == req->text);
    RTP_CHECK(round->fds == req->fds);
    RTP_CHECK(round->classes == req->classes);
    RTP_CHECK(round->schema == req->schema);
    RTP_CHECK(round->has_budget == req->has_budget);
    RTP_CHECK(round->profile == req->profile);
    RTP_CHECK(round->metrics == req->metrics);
  }
}

}  // namespace

const std::vector<HarnessInfo>& AllHarnesses() {
  static const std::vector<HarnessInfo>* harnesses =
      new std::vector<HarnessInfo>{
          {Harness::kRegex, "regex"},
          {Harness::kPattern, "pattern"},
          {Harness::kSchema, "schema"},
          {Harness::kXml, "xml"},
          {Harness::kDifferential, "differential"},
          {Harness::kServe, "serve"},
      };
  return *harnesses;
}

const char* HarnessName(Harness harness) {
  for (const HarnessInfo& info : AllHarnesses()) {
    if (info.harness == harness) return info.name;
  }
  return "unknown";
}

StatusOr<Harness> HarnessByName(std::string_view name) {
  for (const HarnessInfo& info : AllHarnesses()) {
    if (name == info.name) return info.harness;
  }
  return NotFoundError(
      "unknown harness '" + std::string(name) +
      "'; known: regex, pattern, schema, xml, differential, serve");
}

int RunHarnessInput(Harness harness, const uint8_t* data, size_t size) {
  switch (harness) {
    case Harness::kRegex:
      RunRegexHarness(data, size);
      break;
    case Harness::kPattern:
      RunPatternHarness(data, size);
      break;
    case Harness::kSchema:
      RunSchemaHarness(data, size);
      break;
    case Harness::kXml:
      RunXmlHarness(data, size);
      break;
    case Harness::kDifferential:
      RunDifferentialHarness(data, size);
      break;
    case Harness::kServe:
      RunServeHarness(data, size);
      break;
  }
  return 0;
}

}  // namespace rtp::fuzz
