#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rtp::fuzz {

namespace fs = std::filesystem;

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) return InternalError("read error on '" + path + "'");
  return std::move(out).str();
}

StatusOr<std::vector<CorpusEntry>> LoadCorpus(const std::string& corpus_dir) {
  std::error_code ec;
  if (!fs::is_directory(corpus_dir, ec)) {
    return NotFoundError("corpus directory '" + corpus_dir +
                         "' does not exist");
  }
  std::vector<CorpusEntry> entries;
  for (const fs::directory_entry& sub : fs::directory_iterator(corpus_dir)) {
    if (!sub.is_directory()) continue;
    std::string name = sub.path().filename().string();
    StatusOr<Harness> harness = HarnessByName(name);
    if (!harness.ok()) {
      return InvalidArgumentError("corpus subdirectory '" + name +
                                  "' matches no harness: " +
                                  harness.status().message());
    }
    for (const fs::directory_entry& file :
         fs::recursive_directory_iterator(sub.path())) {
      if (!file.is_regular_file()) continue;
      RTP_ASSIGN_OR_RETURN(std::string bytes,
                           ReadFileBytes(file.path().string()));
      entries.push_back(
          CorpusEntry{file.path().string(), *harness, std::move(bytes)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.path < b.path;
            });
  return entries;
}

}  // namespace rtp::fuzz
