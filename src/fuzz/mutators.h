#ifndef RTP_FUZZ_MUTATORS_H_
#define RTP_FUZZ_MUTATORS_H_

#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

namespace rtp::fuzz {

// Grammar-aware mutation for `LLVMFuzzerCustomMutator` (and the standalone
// driver's mutation loop): most of the time applies byte-level edits to the
// current input, but regularly replaces it wholesale with a fresh
// valid-by-construction text from the harness's generator, so the fuzzer
// keeps reaching past the parser into the round-trip / differential checks.
// Writes the mutated input back into `data` (capacity `max_size`) and
// returns its new length. Deterministic in (harness, input bytes, seed).
size_t GrammarAwareMutate(Harness harness, uint8_t* data, size_t size,
                          size_t max_size, unsigned int seed);

}  // namespace rtp::fuzz

#endif  // RTP_FUZZ_MUTATORS_H_
