#include "fuzz/mutators.h"

#include <cstring>
#include <string>
#include <string_view>

#include "fuzz/generators.h"
#include "fuzz/rng.h"

namespace rtp::fuzz {

namespace {

std::string FreshInput(Harness harness, Rng* rng) {
  TextGenParams params;
  switch (harness) {
    case Harness::kRegex:
      return GenerateRegexText(rng, params);
    case Harness::kPattern:
      return GeneratePatternDslText(rng, params,
                                    /*with_context=*/rng->Percent(50));
    case Harness::kSchema:
      return GenerateSchemaDslText(rng, params);
    case Harness::kXml:
      return GenerateXmlText(rng, params);
    case Harness::kDifferential:
      // The differential harness only hashes its input into a battery
      // seed, so any short byte string is as good as any other.
      return GenerateRandomBytes(rng, 16);
    case Harness::kServe:
      return GenerateServeRequestLines(rng, params);
  }
  return "";
}

}  // namespace

size_t GrammarAwareMutate(Harness harness, uint8_t* data, size_t size,
                          size_t max_size, unsigned int seed) {
  Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + size);
  std::string out;
  if (size == 0 || rng.Percent(35)) {
    out = FreshInput(harness, &rng);
  } else {
    out = MutateBytes(
        std::string_view(reinterpret_cast<const char*>(data), size), &rng);
  }
  if (out.empty()) out = "a";
  size_t n = out.size() < max_size ? out.size() : max_size;
  std::memcpy(data, out.data(), n);
  return n;
}

}  // namespace rtp::fuzz
