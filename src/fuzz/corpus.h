#ifndef RTP_FUZZ_CORPUS_H_
#define RTP_FUZZ_CORPUS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fuzz/harness.h"

namespace rtp::fuzz {

// One committed corpus input: fuzz/corpus/<harness-name>/<file>.
struct CorpusEntry {
  std::string path;  // absolute path of the file
  Harness harness;
  std::string bytes;
};

// Reads a whole file.
StatusOr<std::string> ReadFileBytes(const std::string& path);

// Loads every entry under `corpus_dir` (layout: one subdirectory per
// harness name; unknown subdirectories are an error, so a typo cannot
// silently drop coverage). Entries are sorted by path for deterministic
// replay order.
StatusOr<std::vector<CorpusEntry>> LoadCorpus(const std::string& corpus_dir);

}  // namespace rtp::fuzz

#endif  // RTP_FUZZ_CORPUS_H_
