#ifndef RTP_FUZZ_RNG_H_
#define RTP_FUZZ_RNG_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rtp::fuzz {

// Deterministic splitmix64 generator for the fuzzing subsystem. Unlike
// std::mt19937_64 + distributions, every draw is fully specified here, so
// a (seed, params) pair reproduces the same generated input on any
// platform and standard library — the property crash reports rely on.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform-ish draw in [0, n); n == 0 returns 0.
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // In [lo, hi] inclusive (lo <= hi).
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // True with probability `percent`/100.
  bool Percent(uint64_t percent) { return Below(100) < percent; }

  // FNV-1a over raw bytes: turns a fuzzer-chosen input into a generator
  // seed, so libFuzzer mutations on the bytes walk the seed space.
  static uint64_t SeedFromBytes(const uint8_t* data, size_t size) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
      h ^= data[i];
      h *= 0x100000001b3ULL;
    }
    return h;
  }
  static uint64_t SeedFromBytes(std::string_view bytes) {
    return SeedFromBytes(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  }

 private:
  uint64_t state_;
};

}  // namespace rtp::fuzz

#endif  // RTP_FUZZ_RNG_H_
