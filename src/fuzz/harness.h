#ifndef RTP_FUZZ_HARNESS_H_
#define RTP_FUZZ_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rtp::fuzz {

// One enum value per fuzz target. The same bodies run under three drivers:
// the libFuzzer entry points in fuzz/fuzz_*.cc, the standalone driver
// (fuzz/standalone_driver.cc, used where the toolchain lacks libFuzzer)
// and the deterministic corpus replay in tests/fuzz_corpus_test.cc.
enum class Harness : uint8_t {
  kRegex,         // regex parser + dense-vs-map DFA differential
  kPattern,       // pattern DSL parser + writer round-trip + eval oracle
  kSchema,        // schema DSL parser + generator-vs-validator oracle
  kXml,           // XML parser + serializer round-trip
  kDifferential,  // bytes -> seed -> full RunOracleBattery
  kServe,         // wire framing chunking-invariance + request round-trip
};

struct HarnessInfo {
  Harness harness;
  // Name doubles as the corpus subdirectory: fuzz/corpus/<name>/.
  const char* name;
};

const std::vector<HarnessInfo>& AllHarnesses();
const char* HarnessName(Harness harness);
StatusOr<Harness> HarnessByName(std::string_view name);

// Runs one input through one harness. Never rejects input: malformed bytes
// must surface as Status errors inside the library, and any oracle
// disagreement or invariant violation aborts via RTP_CHECK so the fuzzing
// driver (or sanitizer) reports it as a crash. Returns 0, the value
// LLVMFuzzerTestOneInput expects.
int RunHarnessInput(Harness harness, const uint8_t* data, size_t size);

}  // namespace rtp::fuzz

#endif  // RTP_FUZZ_HARNESS_H_
