#include "fuzz/oracles.h"

#include <set>
#include <string>

#include "fd/fd_checker.h"
#include "fd/reference_checker.h"
#include "fuzz/generators.h"
#include "guard/guard.h"
#include "fuzz/rng.h"
#include "independence/criterion.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_writer.h"
#include "pattern/reference_evaluator.h"
#include "workload/random_pattern.h"

namespace rtp::fuzz {

namespace {

std::set<std::vector<xml::NodeId>> ReferenceSelectedTuples(
    const pattern::TreePattern& pattern, const xml::Document& doc) {
  std::set<std::vector<xml::NodeId>> tuples;
  for (const pattern::Mapping& m :
       pattern::ReferenceEnumerateMappings(pattern, doc)) {
    std::vector<xml::NodeId> tuple;
    for (const pattern::SelectedNode& s : pattern.selected()) {
      tuple.push_back(m.image[s.node]);
    }
    tuples.insert(tuple);
  }
  return tuples;
}

std::string TupleSetSummary(const std::set<std::vector<xml::NodeId>>& tuples) {
  std::string out = "{";
  for (const auto& tuple : tuples) {
    out += "(";
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(tuple[i]);
    }
    out += ")";
  }
  return out + "}";
}

std::string FdCheckFingerprint(const fd::CheckResult& r) {
  std::string out = r.satisfied ? "sat" : "vio";
  out += ":" + std::to_string(r.num_mappings) + ":" +
         std::to_string(r.num_groups);
  if (r.violation.has_value()) {
    for (xml::NodeId n : r.violation->first.image) {
      out += "," + std::to_string(n);
    }
    out += "|";
    for (xml::NodeId n : r.violation->second.image) {
      out += "," + std::to_string(n);
    }
  }
  return out;
}

}  // namespace

Status CheckDenseVsReference(const pattern::TreePattern& pattern,
                             const xml::Document& doc) {
  std::vector<std::vector<xml::NodeId>> dense =
      pattern::EvaluateSelected(pattern, doc);
  std::set<std::vector<xml::NodeId>> dense_set(dense.begin(), dense.end());
  std::set<std::vector<xml::NodeId>> reference =
      ReferenceSelectedTuples(pattern, doc);
  if (dense_set != reference) {
    // A tripped ambient guard means one side ran on partial tables — not a
    // disagreement. Surface the resource status, never a bogus mismatch.
    RTP_RETURN_IF_ERROR(guard::CurrentStatus());
    return InternalError(
        "dense vs reference evaluation disagree: dense=" +
        TupleSetSummary(dense_set) + " reference=" +
        TupleSetSummary(reference) + " pattern:\n" +
        pattern::PatternToDsl(pattern, doc.alphabet()));
  }
  return Status::OK();
}

Status CheckEvalParallelVsSerial(const pattern::TreePattern& pattern,
                                 const std::vector<const xml::Document*>& docs,
                                 int jobs) {
  if (docs.empty()) return Status::OK();
  std::vector<std::vector<std::vector<xml::NodeId>>> serial;
  for (const xml::Document* doc : docs) {
    serial.push_back(pattern::EvaluateSelected(pattern, *doc));
  }
  std::vector<std::vector<std::vector<xml::NodeId>>> parallel =
      pattern::EvaluateSelectedBatch(pattern, docs, jobs);
  if (parallel != serial) {
    // Pool workers do not inherit this thread's guard: a trip makes the
    // serial side partial while the batch side completed. Not a mismatch.
    RTP_RETURN_IF_ERROR(guard::CurrentStatus());
    return InternalError(
        "EvaluateSelectedBatch(jobs=" + std::to_string(jobs) +
        ") differs from serial evaluation; pattern:\n" +
        pattern::PatternToDsl(pattern, docs[0]->alphabet()));
  }
  return Status::OK();
}

Status CheckFdParallelVsSerial(const fd::FunctionalDependency& fd,
                               const std::vector<const xml::Document*>& docs,
                               int jobs) {
  fd::BatchCheckOptions options;
  options.jobs = jobs;
  std::vector<fd::CheckResult> parallel = fd::CheckFdBatch(fd, docs, options);
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string serial = FdCheckFingerprint(fd::CheckFd(fd, *docs[i]));
    std::string batch = FdCheckFingerprint(parallel[i]);
    if (serial != batch) {
      RTP_RETURN_IF_ERROR(guard::CurrentStatus());
      return InternalError("CheckFdBatch(jobs=" + std::to_string(jobs) +
                           ") differs from serial CheckFd on document " +
                           std::to_string(i) + ": serial=" + serial +
                           " batch=" + batch);
    }
  }
  return Status::OK();
}

Status CheckFdVsNaive(const fd::FunctionalDependency& fd,
                      const xml::Document& doc) {
  bool fast = fd::CheckFd(fd, doc).satisfied;
  bool naive = fd::ReferenceCheckFd(fd, doc);
  if (fast != naive) {
    RTP_RETURN_IF_ERROR(guard::CurrentStatus());
    return InternalError(
        std::string("hashed FD checker says ") +
        (fast ? "satisfied" : "violated") +
        " but the naive quadratic checker says the opposite; fd:\n" +
        fd.ToString(doc.alphabet()));
  }
  return Status::OK();
}

Status CheckCriterionVsBruteForce(const fd::FunctionalDependency& fd,
                                  const update::UpdateClass& update,
                                  const schema::Schema* schema,
                                  Alphabet* alphabet,
                                  const SmallDocParams& small_docs) {
  independence::CriterionOptions options;
  options.want_conflict_candidate = true;
  StatusOr<independence::CriterionResult> result =
      independence::CheckIndependence(fd, update, schema, alphabet, options);
  if (!result.ok()) {
    // A budget trip is a real outcome the caller must see; anything else
    // means the pair is outside the criterion's fragment (e.g. a selected
    // non-leaf) and there is no verdict to cross-check.
    if (guard::IsResourceStatus(result.status())) return result.status();
    return Status::OK();
  }
  if (result->independent) {
    // Emptiness of L must agree with the brute-force membership test on
    // every small document.
    Status found = Status::OK();
    ForEachSmallDocument(alphabet, small_docs, [&](const xml::Document& doc) {
      if (independence::IsInCriterionLanguage(doc, fd, update, schema)) {
        found = InternalError(
            "criterion claims independence (L empty) but a document with " +
            std::to_string(doc.LiveNodeCount()) +
            " nodes is in L per IsInCriterionLanguage; fd:\n" +
            fd.ToString(*alphabet) + "update pattern:\n" +
            pattern::PatternToDsl(update.pattern(), *alphabet));
        return false;
      }
      return true;
    });
    RTP_RETURN_IF_ERROR(guard::CurrentStatus());
    return found;
  }
  if (result->conflict_candidate.has_value() &&
      !independence::IsInCriterionLanguage(*result->conflict_candidate, fd,
                                           update, schema)) {
    RTP_RETURN_IF_ERROR(guard::CurrentStatus());
    return InternalError(
        "synthesized conflict candidate is not in L per "
        "IsInCriterionLanguage; fd:\n" +
        fd.ToString(*alphabet) + "update pattern:\n" +
        pattern::PatternToDsl(update.pattern(), *alphabet));
  }
  return Status::OK();
}

Status RunOracleBattery(uint64_t seed, const OracleOptions& options) {
  Alphabet alphabet;
  Rng rng(seed);
  InstanceGenParams instance;

  // Small documents: the reference oracles are exponential and the
  // brute-force enumerator combinatorial, so everything stays tiny.
  std::vector<xml::Document> docs;
  for (uint32_t i = 0; i < options.num_documents; ++i) {
    workload::RandomTreeParams tree_params;
    tree_params.seed = rng.Next();
    tree_params.num_labels = instance.num_labels;
    tree_params.max_nodes = options.max_tree_nodes;
    docs.push_back(workload::GenerateRandomTree(&alphabet, tree_params));
  }
  std::vector<const xml::Document*> ptrs;
  for (const xml::Document& doc : docs) ptrs.push_back(&doc);

  auto annotate = [&](Status status) {
    if (status.ok()) return status;
    return Status(status.code(),
                  "[battery seed " + std::to_string(seed) + "] " +
                      status.message());
  };

  pattern::TreePattern pattern =
      GeneratePatternInstance(&alphabet, &rng, instance);
  for (const xml::Document& doc : docs) {
    RTP_RETURN_IF_ERROR(annotate(CheckDenseVsReference(pattern, doc)));
  }
  RTP_RETURN_IF_ERROR(
      annotate(CheckEvalParallelVsSerial(pattern, ptrs, options.jobs)));

  fd::FunctionalDependency fd = GenerateFdInstance(&alphabet, &rng, instance);
  for (const xml::Document& doc : docs) {
    RTP_RETURN_IF_ERROR(annotate(CheckFdVsNaive(fd, doc)));
  }
  RTP_RETURN_IF_ERROR(
      annotate(CheckFdParallelVsSerial(fd, ptrs, options.jobs)));

  update::UpdateClass update =
      GenerateUpdateClassInstance(&alphabet, &rng, instance);
  SmallDocParams small_docs;
  small_docs.max_nodes = options.small_doc_max_nodes;
  small_docs.labels.clear();
  for (uint32_t i = 0; i < instance.num_labels; ++i) {
    small_docs.labels.push_back("l" + std::to_string(i));
  }
  small_docs.labels.push_back("#text");
  RTP_RETURN_IF_ERROR(annotate(CheckCriterionVsBruteForce(
      fd, update, /*schema=*/nullptr, &alphabet, small_docs)));

  return Status::OK();
}

}  // namespace rtp::fuzz
