#include "workload/paper_patterns.h"

#include "common/check.h"

namespace rtp::workload {

namespace {

pattern::ParsedPattern MustParse(Alphabet* alphabet, std::string_view text) {
  auto parsed = pattern::ParsePattern(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

}  // namespace

pattern::ParsedPattern PaperR1(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      session {
        s1 = candidate/exam;
        s2 = candidate/exam;
      }
    }
    select s1, s2;
  )");
}

pattern::ParsedPattern PaperR2(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      session {
        candidate {
          s1 = exam;
          s2 = exam;
        }
      }
    }
    select s1, s2;
  )");
}

pattern::ParsedPattern PaperR3(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      session {
        candidate {
          exam;
          s = level;
        }
      }
    }
    select s;
  )");
}

pattern::ParsedPattern PaperR4(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      session {
        candidate {
          s = level;
          exam;
        }
      }
    }
    select s;
  )");
}

pattern::ParsedPattern PaperFd1(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      c = session {
        x = candidate/exam {
          p1 = discipline;
          p2 = mark;
          q = rank;
        }
      }
    }
    select p1[V], p2[V], q[V];
    context c;
  )");
}

pattern::ParsedPattern PaperFd2(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      session {
        c = candidate {
          x = exam {
            p2 = discipline;
            p1 = date;
          }
        }
      }
    }
    select p1[V], p2[V], x[N];
    context c;
  )");
}

pattern::ParsedPattern PaperFd3(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      c = session {
        x = candidate {
          p1 = exam/mark;
          p2 = exam/mark;
          q = level;
        }
      }
    }
    select p1[V], p2[V], q[V];
    context c;
  )");
}

pattern::ParsedPattern PaperFd4(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      c = session {
        x = candidate {
          p1 = exam/mark;
          p2 = exam/mark;
          q = level;
          toBePassed;
        }
      }
    }
    select p1[V], p2[V], q[V];
    context c;
  )");
}

pattern::ParsedPattern PaperFd5(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      c = session {
        x = candidate {
          p = level;
          q = firstJob-Year;
        }
      }
    }
    select p[V], q[V];
    context c;
  )");
}

pattern::ParsedPattern PaperUpdateU(Alphabet* alphabet) {
  return MustParse(alphabet, R"(
    root {
      session/candidate {
        s = level;
        toBePassed;
      }
    }
    select s;
  )");
}

}  // namespace rtp::workload
