#ifndef RTP_WORKLOAD_SPEC_H_
#define RTP_WORKLOAD_SPEC_H_

// rtp::workload v2 — declarative workload specs (docs/WORKLOADS.md).
//
// A workload is described entirely by a JSON file (genny-style: no code
// needed to define or change one): a named graph of nodes, where op nodes
// map 1:1 onto the serve::Client request wrappers (eval / checkfd /
// matrix / load / stats), control nodes compose them (random_choice with
// integer weights, sequence, do_all, loop by count or duration, nested
// sub-workloads), and generator specs describe pluggable payload sources
// (rtp::fuzz seeded generators, recorded files, exam-session synthesis —
// see workload/generator.h).
//
// The parser uses the dependency-free serve/json.h value; specs live
// under examples/workloads/. Parsing is strict: unknown keys, unknown
// node/generator references, malformed payload sourcing, and cycles in
// the node graph all yield structured Status errors, never crashes — the
// contract pinned by tests/workload_spec_test.cc.
//
// Determinism contract (docs/WORKLOADS.md "Seeding"): a spec whose loops
// are all count-based executes an identical per-thread op sequence for a
// fixed (spec, seed, threads) triple — every random draw (random_choice,
// generator payloads) comes from the thread's own splitmix64 Rng. The
// `load` CI leg runs the smoke spec twice with one seed and diffs the
// per-node op counts.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/chaos.h"
#include "common/status.h"
#include "fuzz/generators.h"
#include "guard/guard.h"
#include "serve/json.h"

namespace rtp::workload {

// Sentinel for "no node reference".
inline constexpr size_t kNoNode = static_cast<size_t>(-1);

// A named payload source (workload/generator.h). `kind` selects a factory
// in the generator registry; `config` is the raw JSON object so plugged-in
// kinds can define their own parameters. The built-in fuzz_* kinds also
// get their TextGenParams pre-parsed into `text_params`.
struct GeneratorSpec {
  std::string name;
  std::string kind;
  fuzz::TextGenParams text_params;
  uint32_t exam_candidates = 16;
  // Recorded payloads for the "file" kind, loaded at parse time (paths in
  // the spec resolve relative to the spec file's directory), cycled
  // round-robin per generator instance.
  std::vector<std::string> payloads;
  serve::JsonValue config;
};

enum class NodeKind : uint8_t {
  // Op nodes — one serve::Client call each, timed and counted per node.
  kEval = 0,   // Client::Eval(tenant, doc, pattern_text)
  kCheckFd,    // Client::CheckFd(tenant, doc, fd_text)
  kMatrix,     // Client::Matrix(tenant, fd_texts, class_texts, schema)
  kLoad,       // Client::Load(tenant, doc, xml_text)
  kStats,      // Client::Stats()
  // Control nodes — compose the graph, not timed.
  kRandomChoice,  // one weighted child per execution
  kSequence,      // children in order
  kDoAll,         // all children, then continue (join barrier)
  kLoop,          // body, `count` times or for `duration_s`
  kWorkload,      // nested sub-workload with its own node namespace
};

const char* NodeKindName(NodeKind kind);

struct WorkloadSpec;

struct WorkloadNode {
  std::string name;
  NodeKind kind = NodeKind::kSequence;

  // --- op payload ---------------------------------------------------
  std::string doc;        // target document name (eval/checkfd/load)
  std::string text;       // inline payload ("text" or preloaded "file")
  size_t generator = kNoNode;  // index into WorkloadSpec::generators
  std::vector<std::string> fd_texts;     // matrix
  std::vector<std::string> class_texts;  // matrix
  std::string schema_text;               // matrix (optional)
  // Optional per-request budget, sent as CallOptions::budget.
  guard::ExecutionBudget budget;

  // --- control payload ----------------------------------------------
  std::vector<size_t> children;     // random_choice / sequence / do_all
  std::vector<uint64_t> weights;    // random_choice (positive integers)
  size_t body = kNoNode;            // loop
  uint64_t count = 0;               // loop: iterations (exclusive with
  double duration_s = 0;            //   duration_s)
  std::unique_ptr<WorkloadSpec> sub;  // nested workload

  bool IsOp() const { return kind <= NodeKind::kStats; }
};

struct WorkloadSpec {
  std::string name;
  // Tenant every request runs under (server creates it on first use).
  std::string tenant = "load";
  size_t root = kNoNode;
  // Node indices executed exactly once (single-threaded, root seed)
  // before the measured per-thread phase — typically `load` ops.
  std::vector<size_t> setup;
  std::vector<WorkloadNode> nodes;
  std::vector<GeneratorSpec> generators;

  // Chaos block (docs/WORKLOADS.md "Chaos"): fault-injection rates for
  // the measured phase (setup always runs clean). Only the top-level
  // spec's block applies — the runner builds one FaultPlan per thread
  // from (chaos.seed, thread index). When enabled, workers use a
  // resilient client configured with the knobs below.
  chaos::ChaosConfig chaos;
  int chaos_max_attempts = 3;
  int chaos_call_timeout_ms = 2000;

  const WorkloadNode& node(size_t i) const { return nodes[i]; }
  // Index of the named node, or kNoNode.
  size_t FindNode(std::string_view node_name) const;
};

// Parses and validates a spec. `base_dir` resolves "file" references
// (payloads are inlined at parse time, so a parsed spec is self-contained
// and the runner never touches the filesystem); "" means the process cwd.
// Errors are structured: PARSE_ERROR for malformed JSON, INVALID_ARGUMENT
// (naming the offending node) for semantic problems including cycles,
// RESOURCE_EXHAUSTED for over-deep nesting.
StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view json_text,
                                         const std::string& base_dir = "");

// Reads `path` and parses it with base_dir = dirname(path).
StatusOr<WorkloadSpec> LoadWorkloadSpecFile(const std::string& path);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_SPEC_H_
