#ifndef RTP_WORKLOAD_PAPER_PATTERNS_H_
#define RTP_WORKLOAD_PAPER_PATTERNS_H_

#include "pattern/pattern_parser.h"

namespace rtp::workload {

// The regular tree patterns of the paper's figures, built through the
// pattern DSL. All evaluate against exam-session documents (Figure 1 /
// GenerateExamDocument shapes).
//
// Figure 2: R1 selects pairs of exams of two *different* candidates
// (condition (b) of Definition 2 forces the two candidate/exam paths to
// diverge at the session node); R2 selects pairs of exams of the *same*
// candidate.
pattern::ParsedPattern PaperR1(Alphabet* alphabet);
pattern::ParsedPattern PaperR2(Alphabet* alphabet);

// Figure 3: R3 selects level nodes of candidates having at least one exam
// (exam edge precedes the level edge, as in the document); R4 is the same
// with the two edges swapped, and therefore selects nothing on documents
// where exams precede levels.
pattern::ParsedPattern PaperR3(Alphabet* alphabet);
pattern::ParsedPattern PaperR4(Alphabet* alphabet);

// Figure 4, fd1: in a session, two exams on the same discipline evaluated
// with the same mark share the same rank. Context: session.
pattern::ParsedPattern PaperFd1(Alphabet* alphabet);

// Figure 4, fd2: a candidate cannot take at the same date two different
// exams on the same discipline. Context: candidate; target is the exam
// node with node equality.
pattern::ParsedPattern PaperFd2(Alphabet* alphabet);

// Figure 5, fd3: two candidates with the same mark in at least two
// disciplines receive the same level (documents with exams sorted by
// discipline). Context: session.
pattern::ParsedPattern PaperFd3(Alphabet* alphabet);

// Figure 5, fd4: like fd3 but restricted to candidates that still have
// exams to pass (a toBePassed leaf is required in the trace). The paper's
// exact prose for fd4 is partially lost in our source text; this follows
// its stated structural requirement (an extra non-selected leaf node
// labeled toBePassed, inexpressible in the path-based formalism of [8]).
pattern::ParsedPattern PaperFd4(Alphabet* alphabet);

// Figure 6, fd5: graduated candidates (with a firstJob-Year child) having
// the same level got their first job the same year. Context: session.
// Reconstructed from Example 6: fd5 only concerns candidates that do NOT
// have a toBePassed child.
pattern::ParsedPattern PaperFd5(Alphabet* alphabet);

// Figure 6, update class U: selects the level node of every candidate that
// still has exams to pass (a toBePassed sibling). The selected node is a
// leaf of the template, as required by the independence criterion.
pattern::ParsedPattern PaperUpdateU(Alphabet* alphabet);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_PAPER_PATTERNS_H_
