#ifndef RTP_WORKLOAD_EXAM_SCHEMA_H_
#define RTP_WORKLOAD_EXAM_SCHEMA_H_

#include "schema/schema.h"

namespace rtp::workload {

// The schema of Example 6: every candidate has a toBePassed child or a
// firstJob-Year child, but not both.
schema::Schema BuildExamSchema(Alphabet* alphabet);

// A permissive variant allowing a candidate to carry both toBePassed and
// firstJob-Year (used to show the criterion depends on the schema).
schema::Schema BuildPermissiveExamSchema(Alphabet* alphabet);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_EXAM_SCHEMA_H_
