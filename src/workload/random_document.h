#ifndef RTP_WORKLOAD_RANDOM_DOCUMENT_H_
#define RTP_WORKLOAD_RANDOM_DOCUMENT_H_

#include <cstdint>
#include <random>

#include "common/status.h"
#include "schema/schema.h"
#include "xml/document.h"

namespace rtp::workload {

struct RandomDocumentParams {
  uint64_t seed = 1;
  // Soft bound on children-word lengths: beyond it, the walk takes a
  // shortest path to an accepting content-model state.
  size_t soft_max_children = 6;
  // Beyond this depth, content words are forced minimal. Recursive schemas
  // whose every element requires deep content may still exceed it; the
  // generator then fails rather than recursing forever.
  size_t max_depth = 24;
  size_t hard_depth_limit = 64;
  // Global node budget — the width analogue of max_depth. A recursive
  // schema with branching content (say e0 -> e0/e0) keeps every branch
  // within max_depth yet grows the tree exponentially wide; once the
  // budget is crossed, all remaining content words are forced minimal.
  // Documents that stay under the budget are generated bit-identically.
  size_t max_total_nodes = 1 << 20;
  // Leaf values are drawn from {v0, ..., v<value_pool-1>}; a small pool
  // creates the value collisions functional dependencies care about.
  uint32_t value_pool = 3;
  // Weight of taking a transition relative to stopping at an accepting
  // content-model state; higher values produce bushier documents.
  uint32_t continue_weight = 3;
};

// Generates a pseudo-random document valid with respect to `schema` by
// sampling each element's children word from its content-model DFA.
StatusOr<xml::Document> GenerateRandomDocument(
    const schema::Schema& schema, const RandomDocumentParams& params);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_RANDOM_DOCUMENT_H_
