#ifndef RTP_WORKLOAD_RANDOM_PATTERN_H_
#define RTP_WORKLOAD_RANDOM_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/tree_pattern.h"
#include "regex/regex_ast.h"
#include "xml/document.h"

namespace rtp::workload {

// Generators for randomized property tests: small patterns, proper edge
// regexes and unconstrained labeled trees over a shared small label set.
struct RandomPatternParams {
  uint64_t seed = 1;
  // Labels drawn for regex symbols and tree nodes ("l0".."l<k-1>").
  uint32_t num_labels = 3;
  uint32_t max_template_nodes = 4;  // besides the root
  uint32_t max_regex_nodes = 5;
  // Probability (in percent) that the generated regex uses the wildcard.
  uint32_t wildcard_percent = 20;
  uint32_t num_selected = 1;
};

// A random proper regex AST (never accepts the empty word).
regex::RegexAst GenerateRandomProperRegex(Alphabet* alphabet,
                                          const RandomPatternParams& params,
                                          uint64_t seed);

// A random tree pattern with proper edges and `num_selected` selected
// nodes (clamped to the template size).
pattern::TreePattern GenerateRandomPattern(Alphabet* alphabet,
                                           const RandomPatternParams& params);

struct RandomTreeParams {
  uint64_t seed = 1;
  uint32_t num_labels = 3;
  uint32_t max_nodes = 12;
  uint32_t value_pool = 2;
  // Percent of leaves that become text nodes (the rest stay elements).
  uint32_t text_leaf_percent = 30;
};

// A random unconstrained document over labels "l0".."l<k-1>".
xml::Document GenerateRandomTree(Alphabet* alphabet,
                                 const RandomTreeParams& params);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_RANDOM_PATTERN_H_
