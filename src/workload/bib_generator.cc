#include "workload/bib_generator.h"

#include <random>

#include "common/check.h"

namespace rtp::workload {

using xml::Document;
using xml::NodeId;

Document GenerateBibDocument(Alphabet* alphabet,
                             const BibWorkloadParams& params) {
  std::mt19937_64 rng(params.seed);
  Document doc(alphabet);
  NodeId bib = doc.AddElement(doc.root(), "bib");
  uint32_t paper_counter = 0;
  for (uint32_t c = 0; c < params.num_confs; ++c) {
    NodeId conf = doc.AddElement(bib, "conf");
    doc.AddAttribute(conf, "@name", "conf" + std::to_string(c % 5));
    NodeId year = doc.AddElement(conf, "year");
    doc.AddText(year, std::to_string(2000 + c));
    for (uint32_t p = 0; p < params.papers_per_conf; ++p) {
      NodeId paper = doc.AddElement(conf, "paper");
      NodeId title = doc.AddElement(paper, "title");
      uint32_t title_id = params.num_titles == 0
                              ? paper_counter
                              : static_cast<uint32_t>(rng() % params.num_titles);
      doc.AddText(title, "T" + std::to_string(title_id));
      for (uint32_t a = 0; a < params.authors_per_paper; ++a) {
        NodeId author = doc.AddElement(paper, "author");
        doc.AddText(author, "A" + std::to_string(rng() % 50));
      }
      NodeId pages = doc.AddElement(paper, "pages");
      doc.AddText(pages, std::to_string(1 + rng() % 20) + "pp");
      ++paper_counter;
    }
  }
  return doc;
}

schema::Schema BuildBibSchema(Alphabet* alphabet) {
  auto schema = schema::Schema::Parse(alphabet, R"(
    schema {
      root bib;
      element bib { conf* }
      element conf { @name / year / paper* }
      element year { #text }
      element paper { title / author+ / pages? }
      element title { #text }
      element author { #text }
      element pages { #text }
    }
  )");
  RTP_CHECK_MSG(schema.ok(), schema.status().ToString().c_str());
  return std::move(schema).value();
}

}  // namespace rtp::workload
