#include "workload/stats.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace rtp::workload {
namespace {

// Fixed-format double for JSON output (no locale surprises, integral
// values without a trailing ".000000").
std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

void NodeStats::Record(double latency_us, bool ok) {
  if (count == 0 || latency_us < min_us) min_us = latency_us;
  if (latency_us > max_us) max_us = latency_us;
  ++count;
  if (!ok) ++errors;
  sum_us += latency_us;
  sum_sq_us += latency_us * latency_us;
  latency_ns.Record(static_cast<uint64_t>(latency_us * 1000.0));
}

void NodeStats::Merge(const NodeStats& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min_us < min_us) min_us = other.min_us;
  if (other.max_us > max_us) max_us = other.max_us;
  count += other.count;
  errors += other.errors;
  transport_errors += other.transport_errors;
  for (int i = 0; i < chaos::kNumFaultKinds; ++i) {
    faults[static_cast<size_t>(i)] += other.faults[static_cast<size_t>(i)];
  }
  sum_us += other.sum_us;
  sum_sq_us += other.sum_sq_us;
  latency_ns.Merge(other.latency_ns);
}

double NodeStats::stddev_us() const {
  if (count < 2) return 0;
  double mean = mean_us();
  double variance = sum_sq_us / static_cast<double>(count) - mean * mean;
  return variance > 0 ? std::sqrt(variance) : 0;
}

NodeStats& WorkloadStats::Node(const std::string& name) {
  return nodes_[name];
}

void WorkloadStats::Merge(const WorkloadStats& other) {
  for (const auto& [name, stats] : other.nodes_) {
    nodes_[name].Merge(stats);
  }
}

NodeStats WorkloadStats::Total() const {
  NodeStats total;
  for (const auto& [name, stats] : nodes_) {
    (void)name;
    total.Merge(stats);
  }
  return total;
}

uint64_t WorkloadStats::TotalOps() const { return Total().count; }

uint64_t WorkloadStats::TotalErrors() const { return Total().errors; }

std::string WorkloadStats::ToText(const std::string& workload_name,
                                  int threads, uint64_t seed,
                                  double elapsed_s) const {
  NodeStats total = Total();
  double rps = elapsed_s > 0 ? static_cast<double>(total.count) / elapsed_s : 0;
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "workload '%s': %d thread%s, seed %llu, %.2fs, %llu ops "
                "(%.1f ops/s), %llu errors\n",
                workload_name.c_str(), threads, threads == 1 ? "" : "s",
                static_cast<unsigned long long>(seed), elapsed_s,
                static_cast<unsigned long long>(total.count), rps,
                static_cast<unsigned long long>(total.errors));
  out << line;
  std::snprintf(line, sizeof(line),
                "%-24s %9s %7s %10s %10s %10s %10s %10s %10s\n", "node",
                "count", "errors", "mean_us", "stddev_us", "min_us", "max_us",
                "p50_us", "p99_us");
  out << line;
  for (const auto& [name, stats] : nodes_) {
    std::snprintf(line, sizeof(line),
                  "%-24s %9llu %7llu %10.1f %10.1f %10.1f %10.1f %10.1f "
                  "%10.1f\n",
                  name.c_str(), static_cast<unsigned long long>(stats.count),
                  static_cast<unsigned long long>(stats.errors),
                  stats.mean_us(), stats.stddev_us(), stats.min_us,
                  stats.max_us, stats.p50_us(), stats.p99_us());
    out << line;
  }
  return out.str();
}

std::string WorkloadStats::ToBenchJsonLines(const std::string& workload_name,
                                            int threads,
                                            double elapsed_s) const {
  std::ostringstream out;
  auto emit = [&](const std::string& node_name, const NodeStats& stats,
                  bool with_rps) {
    double mean_ns = stats.mean_us() * 1000.0;
    out << "{\"bench\":\"rtp_load/" << workload_name << "/" << node_name
        << "/t" << threads << "\",\"iterations\":" << stats.count
        << ",\"real_time\":" << FormatDouble(mean_ns)
        << ",\"cpu_time\":" << FormatDouble(mean_ns)
        << ",\"time_unit\":\"ns\",\"counters\":{"
        << "\"ops\":" << stats.count << ",\"errors\":" << stats.errors
        << ",\"min_us\":" << FormatDouble(stats.min_us)
        << ",\"max_us\":" << FormatDouble(stats.max_us)
        << ",\"stddev_us\":" << FormatDouble(stats.stddev_us())
        << ",\"p50_us\":" << FormatDouble(stats.p50_us())
        << ",\"p99_us\":" << FormatDouble(stats.p99_us());
    if (with_rps) {
      double rps =
          elapsed_s > 0 ? static_cast<double>(stats.count) / elapsed_s : 0;
      out << ",\"rps\":" << FormatDouble(rps);
    }
    out << "}}\n";
  };
  for (const auto& [name, stats] : nodes_) {
    emit(name, stats, /*with_rps=*/false);
  }
  emit("total", Total(), /*with_rps=*/true);
  return out.str();
}

std::string WorkloadStats::ToCountsText() const {
  std::ostringstream out;
  for (const auto& [name, stats] : nodes_) {
    out << name << " " << stats.count << "\n";
    for (int i = 1; i < chaos::kNumFaultKinds; ++i) {
      uint64_t injected = stats.faults[static_cast<size_t>(i)];
      if (injected == 0) continue;
      out << name << ".fault."
          << chaos::FaultKindName(static_cast<chaos::FaultKind>(i)) << " "
          << injected << "\n";
    }
  }
  return out.str();
}

}  // namespace rtp::workload
