#ifndef RTP_WORKLOAD_RUNNER_H_
#define RTP_WORKLOAD_RUNNER_H_

// Closed-loop load runner for workload specs (docs/WORKLOADS.md): N
// client threads, each with its own serve::Client connection to a live
// rtpd socket and its own splitmix64 Rng, walk the spec's node graph and
// record per-node latency stats. An optional target rate turns the run
// open-loop: each thread paces its ops on a fixed schedule instead of
// issuing the next op as soon as the previous response lands.
//
// Seeding contract: thread seeds derive from the root seed by drawing
// `threads` values from Rng(seed), so (spec, seed, threads) fixes every
// thread's op sequence when the spec's loops are count-based — the
// reproducibility property the load CI leg and the determinism test in
// tests/workload_runner_test.cc enforce. Duration-based loops and the
// duration_s cap trade that determinism for wall-clock control.
//
// Chaos (docs/ROBUSTNESS.md): when the spec carries a chaos block, each
// measured-phase worker owns a chaos::FaultPlan seeded from (chaos.seed,
// thread index) and draws exactly one fault decision per op, applied to
// the call's first attempt through the resilient client (configured from
// the spec's max_attempts / call_timeout_ms knobs). The same (spec, seed,
// threads) triple therefore reproduces identical per-node injection
// counts — pinned by ToCountsText and the chaos CI leg.

#include <cstdint>
#include <string>

#include "common/status.h"
#include "workload/spec.h"
#include "workload/stats.h"

namespace rtp::workload {

struct RunnerOptions {
  // AF_UNIX socket of the rtpd under load.
  std::string socket_path;
  int threads = 1;
  uint64_t seed = 42;
  // Wall-clock cap for the whole run; 0 = run the spec to completion.
  // Threads stop at the next op boundary once the cap passes (which
  // breaks same-seed count reproducibility when it actually triggers).
  double duration_s = 0;
  // Open-loop mode: total target op rate across all threads (ops/sec);
  // 0 = closed loop.
  double target_rate = 0;
};

struct RunResult {
  WorkloadStats stats;
  uint64_t ops = 0;     // op-node executions, successful or not
  uint64_t errors = 0;  // non-OK responses
  // Of `errors`, transport failures (UNAVAILABLE / TRANSPORT_ERROR after
  // the client's retries) vs op-level error responses; rtp_load maps the
  // split onto distinct exit codes.
  uint64_t transport_errors = 0;
  // Chaos faults injected across all threads (0 without a chaos block).
  uint64_t faults_injected = 0;
  // The first failing op (lowest thread index, that thread's first):
  // stats key of the node plus the Status it yielded. Empty/OK when the
  // run was clean.
  std::string first_error_node;
  Status first_error;
  double elapsed_s = 0;
  // True when the duration_s cap stopped the run before the spec
  // completed (per-node counts are then not seed-reproducible).
  bool truncated = false;
};

// Runs `spec` against the daemon at options.socket_path. Setup nodes run
// first on a dedicated connection; then options.threads workers run the
// root node concurrently. Returns an error Status only for harness-level
// failures (cannot connect, invalid options); op-level errors are counted
// in RunResult and surfaced per node.
StatusOr<RunResult> RunWorkload(const WorkloadSpec& spec,
                                const RunnerOptions& options);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_RUNNER_H_
