#include "workload/runner.h"

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/client.h"
#include "workload/generator.h"

namespace rtp::workload {
namespace {

using Clock = std::chrono::steady_clock;

// Per-thread instantiation of one spec's generators, plus the sub-scopes
// of its nested workload nodes (indexed by node, non-null only for
// kWorkload nodes). Generator instances are per-scope-per-thread so any
// instance-local cursor state replays deterministically.
struct Scope {
  const WorkloadSpec* spec = nullptr;
  // Stats key prefix; "" at top level, "<workload-node>/" when nested.
  std::string prefix;
  std::vector<std::unique_ptr<Generator>> generators;
  std::vector<std::unique_ptr<Scope>> subs;
};

StatusOr<std::unique_ptr<Scope>> BuildScope(const WorkloadSpec& spec,
                                            const std::string& prefix) {
  auto scope = std::make_unique<Scope>();
  scope->spec = &spec;
  scope->prefix = prefix;
  scope->generators.reserve(spec.generators.size());
  for (const GeneratorSpec& gen : spec.generators) {
    RTP_ASSIGN_OR_RETURN(std::unique_ptr<Generator> instance,
                         CreateGenerator(gen));
    scope->generators.push_back(std::move(instance));
  }
  scope->subs.resize(spec.nodes.size());
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    if (spec.nodes[i].kind == NodeKind::kWorkload) {
      RTP_ASSIGN_OR_RETURN(
          scope->subs[i],
          BuildScope(*spec.nodes[i].sub,
                     prefix + spec.nodes[i].name + "/"));
    }
  }
  return scope;
}

// One worker: owns a connection, an Rng, a Scope tree, and local stats.
// Op errors are recorded and the walk continues (a load harness must
// survive a misbehaving server); only the duration cap unwinds the walk,
// via the `stopped` flag.
class Worker {
 public:
  Worker(const RunnerOptions& options, uint64_t thread_seed, int thread_index,
         Clock::time_point start, Clock::time_point deadline,
         const serve::ClientOptions& client_options,
         const chaos::ChaosConfig& chaos_config)
      : options_(options),
        rng_(thread_seed),
        thread_index_(thread_index),
        start_(start),
        deadline_(deadline),
        client_options_(client_options) {
    if (chaos_config.enabled()) {
      plan_ = chaos::FaultPlan(chaos_config,
                               static_cast<uint64_t>(thread_index));
    }
  }

  Status Connect() {
    auto client = serve::Client::Connect(options_.socket_path,
                                         client_options_);
    if (!client.ok()) return client.status();
    client_.emplace(std::move(client).value());
    return Status::OK();
  }

  void Run(Scope& scope, size_t root) { Exec(scope, root); }

  // Setup phase: executes `nodes` once, in order, ignoring pacing.
  void RunSetup(Scope& scope, const std::vector<size_t>& nodes) {
    for (size_t node : nodes) Exec(scope, node);
  }

  WorkloadStats& stats() { return stats_; }
  uint64_t ops() const { return ops_; }
  uint64_t errors() const { return errors_; }
  uint64_t transport_errors() const { return transport_errors_; }
  uint64_t faults_injected() const { return plan_.injected(); }
  const std::string& first_error_node() const { return first_error_node_; }
  const Status& first_error() const { return first_error_; }
  bool stopped() const { return stopped_; }

 private:
  bool CheckDeadline() {
    if (stopped_) return true;
    if (deadline_ != Clock::time_point() && Clock::now() >= deadline_) {
      stopped_ = true;
    }
    return stopped_;
  }

  void Pace() {
    if (options_.target_rate <= 0) return;
    // Per-thread schedule: thread i issues its k-th op at
    // start + (i/threads + k) * threads/rate, staggering threads evenly
    // across one global inter-op interval.
    double interval_s =
        static_cast<double>(options_.threads) / options_.target_rate;
    double offset_s = interval_s * static_cast<double>(thread_index_) /
                      static_cast<double>(options_.threads);
    auto due = start_ + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                offset_s + interval_s *
                                               static_cast<double>(ops_)));
    if (deadline_ != Clock::time_point() && due > deadline_) {
      stopped_ = true;
      return;
    }
    std::this_thread::sleep_until(due);
  }

  void Exec(Scope& scope, size_t index) {
    if (CheckDeadline()) return;
    const WorkloadNode& node = scope.spec->node(index);
    if (node.IsOp()) {
      Pace();
      if (stopped_) return;
      ExecOp(scope, node);
      return;
    }
    switch (node.kind) {
      case NodeKind::kSequence:
      case NodeKind::kDoAll:
        // In one worker's walk a join barrier degenerates to "run every
        // child, then continue" — the node kinds stay distinct so specs
        // keep their genny shape and per-node stats group naturally.
        for (size_t child : node.children) {
          Exec(scope, child);
          if (stopped_) return;
        }
        break;
      case NodeKind::kRandomChoice: {
        uint64_t total = 0;
        for (uint64_t w : node.weights) total += w;
        uint64_t draw = rng_.Below(total);
        for (size_t i = 0; i < node.children.size(); ++i) {
          if (draw < node.weights[i]) {
            Exec(scope, node.children[i]);
            break;
          }
          draw -= node.weights[i];
        }
        break;
      }
      case NodeKind::kLoop: {
        if (node.count > 0) {
          for (uint64_t i = 0; i < node.count; ++i) {
            Exec(scope, node.body);
            if (stopped_) return;
          }
        } else {
          auto until = Clock::now() + std::chrono::duration_cast<
                                          Clock::duration>(
                                          std::chrono::duration<double>(
                                              node.duration_s));
          while (Clock::now() < until) {
            Exec(scope, node.body);
            if (stopped_) return;
          }
        }
        break;
      }
      case NodeKind::kWorkload: {
        Scope& sub = *scope.subs[index];
        Exec(sub, sub.spec->root);
        break;
      }
      default:
        break;
    }
  }

  void ExecOp(Scope& scope, const WorkloadNode& node) {
    serve::CallOptions call_options;
    call_options.budget = node.budget;
    // One fault draw per op whether or not one fires, so the injection
    // sequence depends only on (chaos.seed, thread index, op index).
    call_options.fault = plan_.Draw();
    const std::string& tenant = scope.spec->tenant;
    std::string payload = node.generator != kNoNode
                              ? scope.generators[node.generator]->Next(&rng_)
                              : node.text;
    auto t0 = Clock::now();
    Status status;
    switch (node.kind) {
      case NodeKind::kEval:
        status =
            client_->Eval(tenant, node.doc, payload, call_options).status();
        break;
      case NodeKind::kCheckFd:
        status =
            client_->CheckFd(tenant, node.doc, payload, call_options).status();
        break;
      case NodeKind::kLoad:
        status = client_->Load(tenant, node.doc, payload, call_options);
        break;
      case NodeKind::kMatrix:
        status = client_->Matrix(tenant, node.fd_texts, node.class_texts,
                                 node.schema_text, call_options)
                     .status();
        break;
      case NodeKind::kStats:
        status = client_->Stats().status();
        break;
      default:
        break;
    }
    auto t1 = Clock::now();
    double latency_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    NodeStats& cell = stats_.Node(scope.prefix + node.name);
    cell.Record(latency_us, status.ok());
    if (!call_options.fault.none()) {
      ++cell.faults[static_cast<size_t>(call_options.fault.kind)];
    }
    ++ops_;
    if (!status.ok()) {
      ++errors_;
      if (status.code() == StatusCode::kUnavailable ||
          status.code() == StatusCode::kTransportError) {
        ++cell.transport_errors;
        ++transport_errors_;
      }
      if (first_error_node_.empty()) {
        first_error_node_ = scope.prefix + node.name;
        first_error_ = status;
      }
      RTP_OBS_COUNT("workload.op_errors");
    }
    RTP_OBS_COUNT("workload.ops");
    RTP_OBS_HISTOGRAM_RECORD("workload.op_ns",
                             static_cast<uint64_t>(latency_us * 1000.0));
  }

  const RunnerOptions& options_;
  fuzz::Rng rng_;
  int thread_index_;
  Clock::time_point start_;
  Clock::time_point deadline_;
  serve::ClientOptions client_options_;
  chaos::FaultPlan plan_;  // empty (never fires) without a chaos block
  std::optional<serve::Client> client_;
  WorkloadStats stats_;
  uint64_t ops_ = 0;
  uint64_t errors_ = 0;
  uint64_t transport_errors_ = 0;
  std::string first_error_node_;
  Status first_error_;
  bool stopped_ = false;
};

}  // namespace

StatusOr<RunResult> RunWorkload(const WorkloadSpec& spec,
                                const RunnerOptions& options) {
  if (options.socket_path.empty()) {
    return InvalidArgumentError("runner needs a socket path");
  }
  if (options.threads < 1 || options.threads > 1024) {
    return InvalidArgumentError("runner threads must be in [1, 1024]");
  }
  if (spec.root == kNoNode) {
    return InvalidArgumentError("workload spec has no root node");
  }

  auto start = Clock::now();
  Clock::time_point deadline;
  if (options.duration_s > 0) {
    deadline = start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options.duration_s));
  }

  // Thread seeds derive from the root seed in thread-index order.
  fuzz::Rng seeder(options.seed);
  std::vector<uint64_t> seeds;
  seeds.reserve(static_cast<size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) seeds.push_back(seeder.Next());

  RunResult result;

  // Client configuration: plain blocking clients for clean runs; when the
  // spec carries a chaos block the measured-phase clients get deadlines
  // and retries so every injected fault resolves into either a recovered
  // call or a structured error — never a hang.
  serve::ClientOptions measured_client;
  if (spec.chaos.enabled()) {
    measured_client.call_timeout_ms = spec.chaos_call_timeout_ms;
    measured_client.retry.max_attempts = spec.chaos_max_attempts;
  }

  // Setup phase: one dedicated connection, the root seed itself, no
  // pacing, no chaos — deterministic regardless of thread count.
  if (!spec.setup.empty()) {
    Worker setup_worker(options, options.seed, /*thread_index=*/0, start,
                        deadline, serve::ClientOptions{},
                        chaos::ChaosConfig{});
    RTP_RETURN_IF_ERROR(setup_worker.Connect());
    RTP_ASSIGN_OR_RETURN(std::unique_ptr<Scope> setup_scope,
                         BuildScope(spec, ""));
    setup_worker.RunSetup(*setup_scope, spec.setup);
    result.stats.Merge(setup_worker.stats());
    result.ops += setup_worker.ops();
    result.errors += setup_worker.errors();
    result.transport_errors += setup_worker.transport_errors();
    if (result.first_error_node.empty()) {
      result.first_error_node = setup_worker.first_error_node();
      result.first_error = setup_worker.first_error();
    }
  }

  // Measured phase: connect every worker before any of them starts, so
  // a connect failure aborts the run instead of skewing it.
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::unique_ptr<Scope>> scopes;
  workers.reserve(static_cast<size_t>(options.threads));
  scopes.reserve(static_cast<size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) {
    workers.push_back(std::make_unique<Worker>(
        options, seeds[static_cast<size_t>(i)], i, start, deadline,
        measured_client, spec.chaos));
    RTP_RETURN_IF_ERROR(workers.back()->Connect());
    RTP_ASSIGN_OR_RETURN(std::unique_ptr<Scope> scope, BuildScope(spec, ""));
    scopes.push_back(std::move(scope));
  }

  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (size_t i = 0; i < workers.size(); ++i) {
    threads.emplace_back(
        [&, i] { workers[i]->Run(*scopes[i], scopes[i]->spec->root); });
  }
  for (std::thread& t : threads) t.join();

  // Merge in thread-index order: deterministic merged stats.
  for (const std::unique_ptr<Worker>& worker : workers) {
    result.stats.Merge(worker->stats());
    result.ops += worker->ops();
    result.errors += worker->errors();
    result.transport_errors += worker->transport_errors();
    result.faults_injected += worker->faults_injected();
    if (result.first_error_node.empty()) {
      result.first_error_node = worker->first_error_node();
      result.first_error = worker->first_error();
    }
    result.truncated = result.truncated || worker->stopped();
  }
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace rtp::workload
