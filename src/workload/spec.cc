#include "workload/spec.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "workload/generator.h"

namespace rtp::workload {
namespace {

// Nested sub-workloads multiply the executor's recursion depth; both caps
// are far above any sane spec and exist purely so hostile input degrades
// into a structured error (the same posture as the DSL parsers' caps).
constexpr int kMaxWorkloadNesting = 8;
constexpr size_t kMaxGraphDepth = 512;

using serve::JsonValue;

Status NodeError(const std::string& node, const std::string& message) {
  return InvalidArgumentError("workload node '" + node + "': " + message);
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return InvalidArgumentError("cannot read workload payload file '" + path +
                                "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string ResolvePath(const std::string& base_dir, const std::string& path) {
  if (base_dir.empty() || (!path.empty() && path[0] == '/')) return path;
  return base_dir + "/" + path;
}

// Strict key check: a typo in a spec must fail loudly, not silently
// change the workload shape.
Status CheckKeys(const JsonValue& obj, const std::string& what,
                 std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : obj.object_items()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return InvalidArgumentError(what + ": unknown key '" + key + "'");
    }
  }
  return Status::OK();
}

StatusOr<int64_t> RequireNonNegativeInt(const JsonValue& v,
                                        const std::string& what) {
  if (!v.is_number() || v.number_value() < 0 ||
      v.number_value() != static_cast<double>(v.int_value())) {
    return InvalidArgumentError(what + " must be a nonnegative integer");
  }
  return v.int_value();
}

StatusOr<std::vector<std::string>> ParseStringArray(const JsonValue& v,
                                                    const std::string& what) {
  if (!v.is_array()) {
    return InvalidArgumentError(what + " must be an array of strings");
  }
  std::vector<std::string> out;
  for (const JsonValue& item : v.array_items()) {
    if (!item.is_string()) {
      return InvalidArgumentError(what + " must be an array of strings");
    }
    out.push_back(item.string_value());
  }
  return out;
}

Status ParseTextGenParams(const JsonValue& config, fuzz::TextGenParams* out) {
  struct Field {
    const char* key;
    uint32_t* slot;
  };
  const Field fields[] = {
      {"num_labels", &out->num_labels},
      {"max_regex_nodes", &out->max_regex_nodes},
      {"wildcard_percent", &out->wildcard_percent},
      {"max_template_nodes", &out->max_template_nodes},
      {"max_schema_elements", &out->max_schema_elements},
      {"max_xml_nodes", &out->max_xml_nodes},
      {"max_path_steps", &out->max_path_steps},
      {"value_pool", &out->value_pool},
  };
  for (const Field& field : fields) {
    if (const JsonValue* v = config.Find(field.key)) {
      RTP_ASSIGN_OR_RETURN(int64_t parsed,
                           RequireNonNegativeInt(*v, field.key));
      *field.slot = static_cast<uint32_t>(parsed);
    }
  }
  return Status::OK();
}

StatusOr<GeneratorSpec> ParseGeneratorSpec(const std::string& name,
                                           const JsonValue& config,
                                           const std::string& base_dir) {
  if (!config.is_object()) {
    return InvalidArgumentError("generator '" + name + "' must be an object");
  }
  GeneratorSpec spec;
  spec.name = name;
  spec.kind = config.FindString("kind");
  spec.config = config;
  if (spec.kind.empty()) {
    return InvalidArgumentError("generator '" + name + "' needs a 'kind'");
  }
  if (!GeneratorKindRegistered(spec.kind)) {
    return InvalidArgumentError("generator '" + name + "': unknown kind '" +
                                spec.kind + "'");
  }
  Status params_ok = ParseTextGenParams(config, &spec.text_params);
  if (!params_ok.ok()) {
    return InvalidArgumentError("generator '" + name +
                                "': " + params_ok.message());
  }
  if (const JsonValue* v = config.Find("candidates")) {
    RTP_ASSIGN_OR_RETURN(int64_t candidates,
                         RequireNonNegativeInt(*v, "generator '" + name +
                                                       "': candidates"));
    if (candidates == 0) {
      return InvalidArgumentError("generator '" + name +
                                  "': candidates must be positive");
    }
    spec.exam_candidates = static_cast<uint32_t>(candidates);
  }
  if (const JsonValue* v = config.Find("files")) {
    RTP_ASSIGN_OR_RETURN(
        std::vector<std::string> files,
        ParseStringArray(*v, "generator '" + name + "': files"));
    for (const std::string& file : files) {
      RTP_ASSIGN_OR_RETURN(std::string payload,
                           ReadFile(ResolvePath(base_dir, file)));
      spec.payloads.push_back(std::move(payload));
    }
  }
  // Probe the factory once at parse time so misconfiguration surfaces
  // here, not on runner thread N at traffic time.
  auto probe = CreateGenerator(spec);
  if (!probe.ok()) return probe.status();
  return spec;
}

struct NodeKindEntry {
  std::string_view name;
  NodeKind kind;
};
constexpr NodeKindEntry kNodeKinds[] = {
    {"eval", NodeKind::kEval},
    {"checkfd", NodeKind::kCheckFd},
    {"matrix", NodeKind::kMatrix},
    {"load", NodeKind::kLoad},
    {"stats", NodeKind::kStats},
    {"random_choice", NodeKind::kRandomChoice},
    {"sequence", NodeKind::kSequence},
    {"do_all", NodeKind::kDoAll},
    {"loop", NodeKind::kLoop},
    {"workload", NodeKind::kWorkload},
};

StatusOr<WorkloadSpec> ParseSpecObject(const JsonValue& root_value,
                                       const std::string& base_dir,
                                       int nesting);

// Parses one node object. Name references (children/body) are resolved by
// the caller once every node name is known.
struct PendingRefs {
  std::vector<std::string> children;
  std::string body;
};

StatusOr<WorkloadNode> ParseNodeObject(const std::string& name,
                                       const JsonValue& obj,
                                       const std::string& base_dir,
                                       int nesting,
                                       const WorkloadSpec& spec,
                                       PendingRefs* refs) {
  if (!obj.is_object()) {
    return NodeError(name, "must be an object");
  }
  WorkloadNode node;
  node.name = name;
  const std::string op = obj.FindString("op");
  if (op.empty()) return NodeError(name, "needs an 'op'");
  bool known = false;
  for (const NodeKindEntry& entry : kNodeKinds) {
    if (entry.name == op) {
      node.kind = entry.kind;
      known = true;
      break;
    }
  }
  if (!known) return NodeError(name, "unknown op '" + op + "'");

  switch (node.kind) {
    case NodeKind::kEval:
    case NodeKind::kCheckFd:
    case NodeKind::kLoad: {
      RTP_RETURN_IF_ERROR(CheckKeys(
          obj, "workload node '" + name + "'",
          {"op", "doc", "text", "file", "generator", "deadline_ms",
           "max_states", "max_steps", "max_memory_mb"}));
      node.doc = obj.FindString("doc");
      if (node.doc.empty()) return NodeError(name, "needs a 'doc'");
      int sources = 0;
      if (const JsonValue* v = obj.Find("text")) {
        if (!v->is_string()) return NodeError(name, "'text' must be a string");
        node.text = v->string_value();
        ++sources;
      }
      if (const JsonValue* v = obj.Find("file")) {
        if (!v->is_string()) return NodeError(name, "'file' must be a string");
        RTP_ASSIGN_OR_RETURN(
            node.text, ReadFile(ResolvePath(base_dir, v->string_value())));
        ++sources;
      }
      if (const JsonValue* v = obj.Find("generator")) {
        if (!v->is_string()) {
          return NodeError(name, "'generator' must be a string");
        }
        node.generator = kNoNode;
        for (size_t i = 0; i < spec.generators.size(); ++i) {
          if (spec.generators[i].name == v->string_value()) {
            node.generator = i;
            break;
          }
        }
        if (node.generator == kNoNode) {
          return NodeError(name, "references unknown generator '" +
                                     v->string_value() + "'");
        }
        ++sources;
      }
      if (sources != 1) {
        return NodeError(name,
                         "needs exactly one payload source out of "
                         "'text', 'file', 'generator'");
      }
      break;
    }
    case NodeKind::kMatrix: {
      RTP_RETURN_IF_ERROR(CheckKeys(
          obj, "workload node '" + name + "'",
          {"op", "fds", "classes", "schema", "deadline_ms", "max_states",
           "max_steps", "max_memory_mb"}));
      const JsonValue* fds = obj.Find("fds");
      const JsonValue* classes = obj.Find("classes");
      if (fds == nullptr || classes == nullptr) {
        return NodeError(name, "needs 'fds' and 'classes' arrays");
      }
      RTP_ASSIGN_OR_RETURN(node.fd_texts,
                           ParseStringArray(*fds, "node '" + name + "' fds"));
      RTP_ASSIGN_OR_RETURN(
          node.class_texts,
          ParseStringArray(*classes, "node '" + name + "' classes"));
      if (node.fd_texts.empty() || node.class_texts.empty()) {
        return NodeError(name, "'fds' and 'classes' must be non-empty");
      }
      node.schema_text = obj.FindString("schema");
      break;
    }
    case NodeKind::kStats: {
      RTP_RETURN_IF_ERROR(
          CheckKeys(obj, "workload node '" + name + "'", {"op"}));
      break;
    }
    case NodeKind::kRandomChoice:
    case NodeKind::kSequence:
    case NodeKind::kDoAll: {
      RTP_RETURN_IF_ERROR(CheckKeys(obj, "workload node '" + name + "'",
                                    {"op", "children", "weights"}));
      const JsonValue* children = obj.Find("children");
      if (children == nullptr) return NodeError(name, "needs 'children'");
      RTP_ASSIGN_OR_RETURN(
          refs->children,
          ParseStringArray(*children, "node '" + name + "' children"));
      if (refs->children.empty()) {
        return NodeError(name, "'children' must be non-empty");
      }
      if (const JsonValue* weights = obj.Find("weights")) {
        if (node.kind != NodeKind::kRandomChoice) {
          return NodeError(name, "'weights' only applies to random_choice");
        }
        if (!weights->is_array() ||
            weights->array_items().size() != refs->children.size()) {
          return NodeError(name, "'weights' must match 'children' in length");
        }
        for (const JsonValue& w : weights->array_items()) {
          RTP_ASSIGN_OR_RETURN(
              int64_t weight,
              RequireNonNegativeInt(w, "node '" + name + "' weight"));
          if (weight == 0) {
            return NodeError(name, "weights must be positive integers");
          }
          node.weights.push_back(static_cast<uint64_t>(weight));
        }
      } else if (node.kind == NodeKind::kRandomChoice) {
        node.weights.assign(refs->children.size(), 1);
      }
      break;
    }
    case NodeKind::kLoop: {
      RTP_RETURN_IF_ERROR(CheckKeys(obj, "workload node '" + name + "'",
                                    {"op", "body", "count", "duration_s"}));
      refs->body = obj.FindString("body");
      if (refs->body.empty()) return NodeError(name, "needs a 'body'");
      const JsonValue* count = obj.Find("count");
      const JsonValue* duration = obj.Find("duration_s");
      if ((count == nullptr) == (duration == nullptr)) {
        return NodeError(name,
                         "needs exactly one of 'count' or 'duration_s'");
      }
      if (count != nullptr) {
        RTP_ASSIGN_OR_RETURN(
            int64_t parsed,
            RequireNonNegativeInt(*count, "node '" + name + "' count"));
        if (parsed == 0) return NodeError(name, "'count' must be positive");
        node.count = static_cast<uint64_t>(parsed);
      } else {
        if (!duration->is_number() || duration->number_value() <= 0) {
          return NodeError(name, "'duration_s' must be a positive number");
        }
        node.duration_s = duration->number_value();
      }
      break;
    }
    case NodeKind::kWorkload: {
      RTP_RETURN_IF_ERROR(
          CheckKeys(obj, "workload node '" + name + "'", {"op", "spec"}));
      const JsonValue* sub = obj.Find("spec");
      if (sub == nullptr || !sub->is_object()) {
        return NodeError(name, "needs an inline 'spec' object");
      }
      auto sub_spec = ParseSpecObject(*sub, base_dir, nesting + 1);
      if (!sub_spec.ok()) {
        Status inner = sub_spec.status();
        return Status(inner.code(),
                      "workload node '" + name + "': " + inner.message());
      }
      node.sub = std::make_unique<WorkloadSpec>(std::move(sub_spec).value());
      break;
    }
  }

  if (node.IsOp()) {
    if (const JsonValue* v = obj.Find("deadline_ms")) {
      RTP_ASSIGN_OR_RETURN(node.budget.deadline_ms,
                           RequireNonNegativeInt(*v, "deadline_ms"));
    }
    if (const JsonValue* v = obj.Find("max_states")) {
      RTP_ASSIGN_OR_RETURN(node.budget.max_automaton_states,
                           RequireNonNegativeInt(*v, "max_states"));
    }
    if (const JsonValue* v = obj.Find("max_steps")) {
      RTP_ASSIGN_OR_RETURN(node.budget.max_steps,
                           RequireNonNegativeInt(*v, "max_steps"));
    }
    if (const JsonValue* v = obj.Find("max_memory_mb")) {
      RTP_ASSIGN_OR_RETURN(int64_t mb,
                           RequireNonNegativeInt(*v, "max_memory_mb"));
      node.budget.max_memory_bytes = mb << 20;
    }
  }
  return node;
}

// Rejects cycles and over-deep chains with an iterative three-color DFS
// over children/body edges (nested sub-workloads are separate graphs,
// validated by their own ParseSpecObject call).
Status CheckAcyclic(const WorkloadSpec& spec) {
  enum class Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> colors(spec.nodes.size(), Color::kWhite);

  auto edges = [&spec](size_t i) {
    std::vector<size_t> out = spec.nodes[i].children;
    if (spec.nodes[i].body != kNoNode) out.push_back(spec.nodes[i].body);
    return out;
  };

  for (size_t start = 0; start < spec.nodes.size(); ++start) {
    if (colors[start] != Color::kWhite) continue;
    // Stack of (node, next-edge-index) frames.
    std::vector<std::pair<size_t, size_t>> stack{{start, 0}};
    colors[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [current, edge_idx] = stack.back();
      std::vector<size_t> out = edges(current);
      if (edge_idx < out.size()) {
        size_t next = out[edge_idx++];
        if (colors[next] == Color::kGray) {
          return InvalidArgumentError(
              "workload graph has a cycle through node '" +
              spec.nodes[next].name + "'");
        }
        if (colors[next] == Color::kWhite) {
          colors[next] = Color::kGray;
          if (stack.size() >= kMaxGraphDepth) {
            return ResourceExhaustedError(
                "workload graph deeper than " +
                std::to_string(kMaxGraphDepth) + " nodes");
          }
          stack.emplace_back(next, 0);
        }
      } else {
        colors[current] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

StatusOr<WorkloadSpec> ParseSpecObject(const JsonValue& root_value,
                                       const std::string& base_dir,
                                       int nesting) {
  if (nesting > kMaxWorkloadNesting) {
    return ResourceExhaustedError("workload specs nested deeper than " +
                                  std::to_string(kMaxWorkloadNesting));
  }
  if (!root_value.is_object()) {
    return InvalidArgumentError("workload spec must be a JSON object");
  }
  RTP_RETURN_IF_ERROR(CheckKeys(
      root_value, "workload spec",
      {"name", "tenant", "root", "setup", "nodes", "generators", "chaos"}));

  WorkloadSpec spec;
  spec.name = root_value.FindString("name");
  if (spec.name.empty()) return InvalidArgumentError("spec needs a 'name'");
  spec.tenant = root_value.FindString("tenant", "load");

  if (const JsonValue* chaos_v = root_value.Find("chaos")) {
    if (nesting > 0) {
      return InvalidArgumentError(
          "'chaos' only applies to the top-level spec");
    }
    if (!chaos_v->is_object()) {
      return InvalidArgumentError("'chaos' must be an object");
    }
    RTP_RETURN_IF_ERROR(CheckKeys(
        *chaos_v, "chaos",
        {"seed", "connect_refused", "read_stall", "write_stall", "torn_write",
         "corrupt_byte", "premature_close", "response_delay", "stall_ms",
         "delay_ms", "max_attempts", "call_timeout_ms"}));
    if (const JsonValue* v = chaos_v->Find("seed")) {
      RTP_ASSIGN_OR_RETURN(int64_t seed,
                           RequireNonNegativeInt(*v, "chaos: seed"));
      spec.chaos.seed = static_cast<uint64_t>(seed);
    }
    struct RateField {
      const char* key;
      uint32_t* slot;
    };
    const RateField rate_fields[] = {
        {"connect_refused", &spec.chaos.connect_refused},
        {"read_stall", &spec.chaos.read_stall},
        {"write_stall", &spec.chaos.write_stall},
        {"torn_write", &spec.chaos.torn_write},
        {"corrupt_byte", &spec.chaos.corrupt_byte},
        {"premature_close", &spec.chaos.premature_close},
        {"response_delay", &spec.chaos.response_delay},
        {"stall_ms", &spec.chaos.stall_ms},
        {"delay_ms", &spec.chaos.delay_ms},
    };
    for (const RateField& field : rate_fields) {
      if (const JsonValue* v = chaos_v->Find(field.key)) {
        RTP_ASSIGN_OR_RETURN(
            int64_t parsed,
            RequireNonNegativeInt(*v, std::string("chaos: ") + field.key));
        if (parsed > 10000) {
          return InvalidArgumentError(std::string("chaos: ") + field.key +
                                      " must be at most 10000");
        }
        *field.slot = static_cast<uint32_t>(parsed);
      }
    }
    if (const JsonValue* v = chaos_v->Find("max_attempts")) {
      RTP_ASSIGN_OR_RETURN(int64_t attempts,
                           RequireNonNegativeInt(*v, "chaos: max_attempts"));
      if (attempts == 0 || attempts > 16) {
        return InvalidArgumentError("chaos: max_attempts must be in [1, 16]");
      }
      spec.chaos_max_attempts = static_cast<int>(attempts);
    }
    if (const JsonValue* v = chaos_v->Find("call_timeout_ms")) {
      RTP_ASSIGN_OR_RETURN(
          int64_t timeout, RequireNonNegativeInt(*v, "chaos: call_timeout_ms"));
      if (timeout > (int64_t{1} << 31)) {
        return InvalidArgumentError("chaos: call_timeout_ms is too large");
      }
      spec.chaos_call_timeout_ms = static_cast<int>(timeout);
    }
    Status valid = spec.chaos.Validate();
    if (!valid.ok()) {
      return InvalidArgumentError("chaos: " + valid.message());
    }
  }

  if (const JsonValue* generators = root_value.Find("generators")) {
    if (!generators->is_object()) {
      return InvalidArgumentError("'generators' must be an object");
    }
    for (const auto& [name, config] : generators->object_items()) {
      RTP_ASSIGN_OR_RETURN(GeneratorSpec gen,
                           ParseGeneratorSpec(name, config, base_dir));
      for (const GeneratorSpec& existing : spec.generators) {
        if (existing.name == name) {
          return InvalidArgumentError("duplicate generator '" + name + "'");
        }
      }
      spec.generators.push_back(std::move(gen));
    }
  }

  const JsonValue* nodes = root_value.Find("nodes");
  if (nodes == nullptr || !nodes->is_object() ||
      nodes->object_items().empty()) {
    return InvalidArgumentError("spec needs a non-empty 'nodes' object");
  }
  std::unordered_map<std::string, size_t> index_of;
  std::vector<PendingRefs> pending;
  for (const auto& [name, obj] : nodes->object_items()) {
    if (index_of.count(name) != 0) {
      return InvalidArgumentError("duplicate node '" + name + "'");
    }
    PendingRefs refs;
    RTP_ASSIGN_OR_RETURN(
        WorkloadNode node,
        ParseNodeObject(name, obj, base_dir, nesting, spec, &refs));
    index_of.emplace(name, spec.nodes.size());
    spec.nodes.push_back(std::move(node));
    pending.push_back(std::move(refs));
  }

  auto resolve = [&index_of](const std::string& from,
                             const std::string& target) -> StatusOr<size_t> {
    auto it = index_of.find(target);
    if (it == index_of.end()) {
      return NodeError(from, "references unknown node '" + target + "'");
    }
    return it->second;
  };
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    for (const std::string& child : pending[i].children) {
      RTP_ASSIGN_OR_RETURN(size_t idx, resolve(spec.nodes[i].name, child));
      spec.nodes[i].children.push_back(idx);
    }
    if (!pending[i].body.empty()) {
      RTP_ASSIGN_OR_RETURN(spec.nodes[i].body,
                           resolve(spec.nodes[i].name, pending[i].body));
    }
  }

  const std::string root_name = root_value.FindString("root");
  if (root_name.empty()) return InvalidArgumentError("spec needs a 'root'");
  RTP_ASSIGN_OR_RETURN(spec.root, resolve("(root)", root_name));

  if (const JsonValue* setup = root_value.Find("setup")) {
    RTP_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         ParseStringArray(*setup, "'setup'"));
    for (const std::string& name : names) {
      RTP_ASSIGN_OR_RETURN(size_t idx, resolve("(setup)", name));
      spec.setup.push_back(idx);
    }
  }

  RTP_RETURN_IF_ERROR(CheckAcyclic(spec));
  return spec;
}

}  // namespace

const char* NodeKindName(NodeKind kind) {
  for (const NodeKindEntry& entry : kNodeKinds) {
    if (entry.kind == kind) return entry.name.data();
  }
  return "unknown";
}

size_t WorkloadSpec::FindNode(std::string_view node_name) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == node_name) return i;
  }
  return kNoNode;
}

StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view json_text,
                                         const std::string& base_dir) {
  auto value = serve::JsonValue::Parse(json_text);
  if (!value.ok()) {
    Status inner = value.status();
    return Status(inner.code(), "workload spec: " + inner.message());
  }
  return ParseSpecObject(*value, base_dir, /*nesting=*/0);
}

StatusOr<WorkloadSpec> LoadWorkloadSpecFile(const std::string& path) {
  RTP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  std::string base_dir;
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) base_dir = path.substr(0, slash);
  auto spec = ParseWorkloadSpec(text, base_dir);
  if (!spec.ok()) {
    Status inner = spec.status();
    return Status(inner.code(), path + ": " + inner.message());
  }
  return spec;
}

}  // namespace rtp::workload
