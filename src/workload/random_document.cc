#include "workload/random_document.h"

#include <deque>
#include <map>
#include <vector>

namespace rtp::workload {

using xml::Document;
using xml::NodeId;

namespace {

// Per-content-model navigation data: distance to the nearest accepting
// state and one transition achieving it.
struct DfaNavigation {
  std::vector<int32_t> dist;        // -1: cannot reach accepting
  std::vector<LabelId> best_label;  // step achieving dist-1
  std::vector<int32_t> best_target;
};

DfaNavigation Analyze(const regex::Dfa& dfa) {
  DfaNavigation nav;
  int32_t n = dfa.NumStates();
  nav.dist.assign(n, -1);
  nav.best_label.assign(n, kInvalidLabel);
  nav.best_target.assign(n, -1);
  // Reverse BFS from accepting states.
  std::deque<int32_t> work;
  for (int32_t s = 0; s < n; ++s) {
    if (dfa.accepting(s)) {
      nav.dist[s] = 0;
      work.push_back(s);
    }
  }
  // Build reverse edges (explicit keys only; schema content DFAs have no
  // live `otherwise`).
  std::vector<std::vector<std::pair<int32_t, LabelId>>> rev(n);
  for (int32_t s = 0; s < n; ++s) {
    for (const auto& [label, target] : dfa.state(s).next) {
      if (target != regex::kDeadState) rev[target].push_back({s, label});
    }
  }
  while (!work.empty()) {
    int32_t s = work.front();
    work.pop_front();
    for (auto [p, label] : rev[s]) {
      if (nav.dist[p] == -1) {
        nav.dist[p] = nav.dist[s] + 1;
        nav.best_label[p] = label;
        nav.best_target[p] = s;
        work.push_back(p);
      }
    }
  }
  return nav;
}

class Generator {
 public:
  Generator(const schema::Schema& schema, const RandomDocumentParams& params)
      : schema_(schema), params_(params), rng_(params.seed) {
    for (const auto& [name, dfa] : schema.content_models()) {
      navigation_.emplace(name, Analyze(dfa));
    }
  }

  StatusOr<Document> Generate() {
    Document doc(schema_.alphabet());
    const auto& roots = schema_.roots();
    const std::string& root =
        roots[std::uniform_int_distribution<size_t>(0, roots.size() - 1)(rng_)];
    RTP_RETURN_IF_ERROR(EmitElement(&doc, doc.root(), root, 1));
    return std::move(doc);
  }

 private:
  std::string RandomValue() {
    uint32_t v = std::uniform_int_distribution<uint32_t>(
        0, params_.value_pool - 1)(rng_);
    return "v" + std::to_string(v);
  }

  Status EmitElement(Document* doc, NodeId parent, const std::string& label,
                     size_t depth) {
    if (depth > params_.hard_depth_limit) {
      return FailedPreconditionError(
          "random generation exceeded the hard depth limit (schema '" + label +
          "' recursion does not terminate with minimal content)");
    }
    NodeId node = doc->AddElement(parent, label);
    ++nodes_emitted_;
    auto model_it = schema_.content_models().find(label);
    RTP_CHECK(model_it != schema_.content_models().end());
    const regex::Dfa& dfa = model_it->second;
    const DfaNavigation& nav = navigation_.at(label);
    if (nav.dist[dfa.initial()] == -1) {
      return FailedPreconditionError("content model of '" + label +
                                     "' accepts no word");
    }

    int32_t state = dfa.initial();
    size_t emitted = 0;
    while (true) {
      // The node budget is rechecked every step: a recursive child may
      // have exhausted it mid-word.
      bool must_finish = depth >= params_.max_depth ||
                         nodes_emitted_ >= params_.max_total_nodes ||
                         emitted >= params_.soft_max_children;
      if (must_finish) {
        if (dfa.accepting(state)) break;
        RTP_RETURN_IF_ERROR(
            EmitChild(doc, node, nav.best_label[state], depth));
        state = nav.best_target[state];
        ++emitted;
        continue;
      }
      // Options: stop (if accepting) or take any productive transition;
      // transitions are weighted to favor bushier documents.
      std::vector<std::pair<LabelId, int32_t>> options;
      for (const auto& [l, t] : dfa.state(state).next) {
        if (t != regex::kDeadState && nav.dist[t] != -1) options.push_back({l, t});
      }
      size_t weight = params_.continue_weight == 0 ? 1 : params_.continue_weight;
      size_t total =
          options.size() * weight + (dfa.accepting(state) ? 1 : 0);
      size_t pick = std::uniform_int_distribution<size_t>(0, total - 1)(rng_);
      if (pick >= options.size() * weight) break;  // chose "stop"
      const auto& chosen = options[pick / weight];
      RTP_RETURN_IF_ERROR(EmitChild(doc, node, chosen.first, depth));
      state = chosen.second;
      ++emitted;
    }
    return Status::OK();
  }

  Status EmitChild(Document* doc, NodeId parent, LabelId label, size_t depth) {
    const std::string& name = schema_.alphabet()->Name(label);
    switch (schema_.alphabet()->Kind(label)) {
      case LabelKind::kAttribute:
        doc->AddAttribute(parent, name, RandomValue());
        return Status::OK();
      case LabelKind::kText:
        doc->AddText(parent, RandomValue());
        return Status::OK();
      case LabelKind::kElement:
        return EmitElement(doc, parent, name, depth + 1);
    }
    return InternalError("unknown label kind");
  }

  const schema::Schema& schema_;
  const RandomDocumentParams& params_;
  std::mt19937_64 rng_;
  std::map<std::string, DfaNavigation> navigation_;
  size_t nodes_emitted_ = 0;
};

}  // namespace

StatusOr<Document> GenerateRandomDocument(const schema::Schema& schema,
                                          const RandomDocumentParams& params) {
  return Generator(schema, params).Generate();
}

}  // namespace rtp::workload
