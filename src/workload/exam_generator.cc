#include "workload/exam_generator.h"

#include <random>
#include <string>

namespace rtp::workload {

using xml::Document;
using xml::NodeId;

namespace {

NodeId AddTextElement(Document* doc, NodeId parent, std::string_view label,
                      std::string_view text) {
  NodeId e = doc->AddElement(parent, label);
  doc->AddText(e, text);
  return e;
}

void AddExam(Document* doc, NodeId candidate, std::string_view discipline,
             std::string_view date, std::string_view mark,
             std::string_view rank) {
  NodeId exam = doc->AddElement(candidate, "exam");
  AddTextElement(doc, exam, "discipline", discipline);
  AddTextElement(doc, exam, "date", date);
  AddTextElement(doc, exam, "mark", mark);
  AddTextElement(doc, exam, "rank", rank);
}

}  // namespace

Document BuildPaperFigure1Document(Alphabet* alphabet) {
  Document doc(alphabet);
  NodeId session = doc.AddElement(doc.root(), "session");

  NodeId c1 = doc.AddElement(session, "candidate");
  doc.AddAttribute(c1, "@IDN", "001");
  AddExam(&doc, c1, "math", "2009-06-12", "15", "2");
  AddExam(&doc, c1, "physics", "2009-06-15", "12", "5");
  AddTextElement(&doc, c1, "level", "B");
  NodeId tbp = doc.AddElement(c1, "toBePassed");
  AddTextElement(&doc, tbp, "discipline", "chemistry");

  NodeId c2 = doc.AddElement(session, "candidate");
  doc.AddAttribute(c2, "@IDN", "012");
  AddExam(&doc, c2, "math", "2009-06-12", "15", "2");
  AddExam(&doc, c2, "biology", "2009-06-15", "10", "7");
  AddTextElement(&doc, c2, "level", "C");
  AddTextElement(&doc, c2, "firstJob-Year", "2012");

  return doc;
}

Document GenerateExamDocument(Alphabet* alphabet,
                              const ExamWorkloadParams& params) {
  std::mt19937_64 rng(params.seed);
  Document doc(alphabet);
  NodeId session = doc.AddElement(doc.root(), "session");

  auto rand_int = [&rng](uint32_t n) {
    return static_cast<uint32_t>(rng() % (n == 0 ? 1 : n));
  };

  for (uint32_t i = 0; i < params.num_candidates; ++i) {
    NodeId candidate = doc.AddElement(session, "candidate");
    char idn[16];
    std::snprintf(idn, sizeof(idn), "%06u", i);
    doc.AddAttribute(candidate, "@IDN", idn);

    for (uint32_t e = 0; e < params.exams_per_candidate; ++e) {
      uint32_t discipline = rand_int(params.num_disciplines);
      uint32_t mark = rand_int(params.num_marks);
      uint32_t date = rand_int(params.num_dates);
      // Consistent ranks make the rank a function of (discipline, mark) so
      // fd1 holds on the generated document.
      uint32_t rank = params.consistent_ranks
                          ? (discipline * 31 + mark * 7) % 20 + 1
                          : rand_int(20) + 1;
      AddExam(&doc, candidate, "d" + std::to_string(discipline),
              "2009-06-" + std::to_string(date + 1),
              std::to_string(mark), std::to_string(rank));
    }

    AddTextElement(&doc, candidate, "level",
                   std::string(1, static_cast<char>(
                                      'A' + rand_int(params.num_levels))));

    bool to_be_passed =
        std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
        params.to_be_passed_fraction;
    if (to_be_passed) {
      NodeId tbp = doc.AddElement(candidate, "toBePassed");
      AddTextElement(&doc, tbp, "discipline",
                     "d" + std::to_string(rand_int(params.num_disciplines)));
    } else {
      AddTextElement(&doc, candidate, "firstJob-Year",
                     std::to_string(2010 + rand_int(10)));
    }
  }
  return doc;
}

}  // namespace rtp::workload
