#ifndef RTP_WORKLOAD_BIB_GENERATOR_H_
#define RTP_WORKLOAD_BIB_GENERATOR_H_

#include <cstdint>

#include "schema/schema.h"
#include "xml/document.h"

namespace rtp::workload {

// A second evaluation domain: bibliographies — the classic setting of the
// XML key/FD literature the paper's introduction surveys.
//
//   bib
//   └ conf*      @name, year, paper*
//       paper    title, author+, pages?
//
// Canonical constraints (see BibKeyTexts below):
//   K_title  within a conf, the title identifies the paper node (a key),
//   F_pages  within a conf, equal titles imply equal pages,
//   F_year   two confs with the same @name have ... (cross-conf FD).
struct BibWorkloadParams {
  uint32_t num_confs = 10;
  uint32_t papers_per_conf = 20;
  uint32_t num_titles = 0;  // 0 = distinct per paper (keys hold)
  uint32_t authors_per_paper = 2;
  uint64_t seed = 7;
};

xml::Document GenerateBibDocument(Alphabet* alphabet,
                                  const BibWorkloadParams& params);

// The bib schema (DTD-like).
schema::Schema BuildBibSchema(Alphabet* alphabet);

// Path-FD texts ([8]-style, ready for fd::ParseAndCompilePathFd).
inline constexpr const char* kBibTitleKey =
    "(/bib/conf, (paper/title) -> paper[N])";
inline constexpr const char* kBibPagesFd =
    "(/bib/conf, (paper/title) -> paper/pages)";

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_BIB_GENERATOR_H_
