#include "workload/exam_schema.h"

#include "common/check.h"

namespace rtp::workload {

namespace {

schema::Schema MustParseSchema(Alphabet* alphabet, std::string_view text) {
  auto parsed = schema::Schema::Parse(alphabet, text);
  RTP_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

}  // namespace

schema::Schema BuildExamSchema(Alphabet* alphabet) {
  return MustParseSchema(alphabet, R"(
    schema {
      root session;
      element session { candidate* }
      element candidate { @IDN / exam* / level / (toBePassed|firstJob-Year) }
      element exam { discipline / date / mark / rank }
      element discipline { #text }
      element date { #text }
      element mark { #text }
      element rank { #text }
      element level { #text / comment* }
      element comment { #text }
      element toBePassed { discipline+ }
      element firstJob-Year { #text }
    }
  )");
}

schema::Schema BuildPermissiveExamSchema(Alphabet* alphabet) {
  return MustParseSchema(alphabet, R"(
    schema {
      root session;
      element session { candidate* }
      element candidate { @IDN / exam* / level / toBePassed? / firstJob-Year? }
      element exam { discipline / date / mark / rank }
      element discipline { #text }
      element date { #text }
      element mark { #text }
      element rank { #text }
      element level { #text / comment* }
      element comment { #text }
      element toBePassed { discipline+ }
      element firstJob-Year { #text }
    }
  )");
}

}  // namespace rtp::workload
