#ifndef RTP_WORKLOAD_STATS_H_
#define RTP_WORKLOAD_STATS_H_

// Per-node latency statistics for workload runs (genny-style: every op
// node's execution is timed, and the run reports count / mean / min /
// max / stddev plus p50/p99 per node). The quantiles come from the
// existing obs log2-histogram machinery (obs::HistogramDelta), so a
// workload node's latency distribution is the same shape the serve.*
// metrics use.
//
// Threading model: each runner thread records into its own WorkloadStats
// (plain fields, no atomics), and the runner merges thread stats in
// thread-index order after the join — so merged results are deterministic
// for a deterministic op sequence.

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "chaos/chaos.h"
#include "obs/metrics.h"

namespace rtp::workload {

struct NodeStats {
  uint64_t count = 0;   // executions, successful or not
  uint64_t errors = 0;  // non-OK responses (any status)
  // Of `errors`, how many were transport failures (UNAVAILABLE /
  // TRANSPORT_ERROR after retries) rather than op-level responses.
  uint64_t transport_errors = 0;
  // Chaos faults injected into this node's calls, by FaultKind.
  std::array<uint64_t, chaos::kNumFaultKinds> faults{};
  double sum_us = 0;
  double sum_sq_us = 0;
  double min_us = 0;
  double max_us = 0;
  // Latency distribution in nanoseconds; p50/p99 via HistogramDelta.
  obs::HistogramDelta latency_ns;

  void Record(double latency_us, bool ok);
  void Merge(const NodeStats& other);

  double mean_us() const { return count == 0 ? 0 : sum_us / count; }
  double stddev_us() const;
  double p50_us() const { return latency_ns.Quantile(0.50) / 1000.0; }
  double p99_us() const { return latency_ns.Quantile(0.99) / 1000.0; }
};

class WorkloadStats {
 public:
  // The stats cell for `name`, created on first use.
  NodeStats& Node(const std::string& name);

  void Merge(const WorkloadStats& other);

  const std::map<std::string, NodeStats>& nodes() const { return nodes_; }

  // All nodes merged into one distribution (the run's total op stream).
  NodeStats Total() const;
  uint64_t TotalOps() const;
  uint64_t TotalErrors() const;

  // Human-readable per-node table plus a one-line run summary.
  std::string ToText(const std::string& workload_name, int threads,
                     uint64_t seed, double elapsed_s) const;

  // One bench-JSON line per node plus a "total" line, compatible with
  // tools/bench_compare.py (fields "bench" and "cpu_time" in ns):
  //   {"bench":"rtp_load/<spec>/<node>/t<threads>","iterations":<count>,
  //    "real_time":<mean_ns>,"cpu_time":<mean_ns>,"time_unit":"ns",
  //    "counters":{"ops":...,"errors":...,"min_us":...,"max_us":...,
  //                "stddev_us":...,"p50_us":...,"p99_us":...}}
  // The total line also carries "rps" (ops / elapsed_s).
  std::string ToBenchJsonLines(const std::string& workload_name, int threads,
                               double elapsed_s) const;

  // "<node> <count>" per line, sorted by node name — the reproducibility
  // artifact the load CI leg diffs between two same-seed runs. Nodes with
  // injected chaos faults add "<node>.fault.<kind> <count>" lines, so the
  // chaos leg's same-seed diff also pins per-node injection counts.
  std::string ToCountsText() const;

 private:
  std::map<std::string, NodeStats> nodes_;
};

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_STATS_H_
