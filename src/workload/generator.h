#ifndef RTP_WORKLOAD_GENERATOR_H_
#define RTP_WORKLOAD_GENERATOR_H_

// Pluggable payload generators for workload specs (codes-workload style):
// the runner asks a Generator for the next pattern / FD / document text,
// and the generator's identity is a string kind resolved through a
// process-wide registry, so the same harness can replay recorded files,
// synthesize rtp::fuzz streams, or emit exam-session documents — and
// embedders can register their own kinds without touching the runner.
//
// Built-in kinds (parameters in docs/WORKLOADS.md):
//   fuzz_pattern  pattern-DSL text from fuzz::GeneratePatternDslText
//   fuzz_fd       pattern-DSL-with-context text (parseable as an FD)
//   fuzz_xml      well-formed XML from fuzz::GenerateXmlText
//   exam_doc      Figure-1-shaped exam session (workload/exam_generator.h)
//   file          recorded payloads, cycled round-robin per instance
//
// Determinism: every random draw comes from the caller's Rng, and any
// instance-local state (the file cursor) starts from zero, so one
// generator instance per runner thread reproduces the same payload
// sequence for the same thread seed.

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "fuzz/rng.h"
#include "workload/spec.h"

namespace rtp::workload {

class Generator {
 public:
  virtual ~Generator() = default;

  // The next payload, drawn deterministically from `rng` (and any
  // instance-local cursor state).
  virtual std::string Next(fuzz::Rng* rng) = 0;
};

using GeneratorFactory =
    std::function<StatusOr<std::unique_ptr<Generator>>(const GeneratorSpec&)>;

// Registers `factory` for generator kind `kind`, replacing any previous
// registration (built-ins register themselves; tests override freely).
// Thread-safe.
void RegisterGeneratorKind(const std::string& kind, GeneratorFactory factory);

// Instantiates the generator described by `spec`; unknown kinds yield
// INVALID_ARGUMENT. Each runner thread creates its own instances.
StatusOr<std::unique_ptr<Generator>> CreateGenerator(const GeneratorSpec& spec);

// True when `kind` is registered (spec validation probes this without
// instantiating).
bool GeneratorKindRegistered(const std::string& kind);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_GENERATOR_H_
