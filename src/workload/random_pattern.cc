#include "workload/random_pattern.h"

#include <random>

#include "regex/regex.h"

namespace rtp::workload {

namespace {

LabelId RandomLabel(Alphabet* alphabet, std::mt19937_64* rng,
                    uint32_t num_labels) {
  return alphabet->Intern("l" + std::to_string((*rng)() % num_labels));
}

// Builds a random AST with at most `budget` symbol/wildcard leaves.
regex::RegexAst RandomAst(Alphabet* alphabet, std::mt19937_64* rng,
                          const RandomPatternParams& params, uint32_t budget) {
  if (budget <= 1) {
    if ((*rng)() % 100 < params.wildcard_percent) return regex::Any();
    return regex::Sym(RandomLabel(alphabet, rng, params.num_labels));
  }
  switch ((*rng)() % 6) {
    case 0:
    case 1: {  // concat
      uint32_t left = 1 + static_cast<uint32_t>((*rng)() % (budget - 1));
      std::vector<regex::RegexAst> parts;
      parts.push_back(RandomAst(alphabet, rng, params, left));
      parts.push_back(RandomAst(alphabet, rng, params, budget - left));
      return regex::Cat(std::move(parts));
    }
    case 2: {  // union
      uint32_t left = 1 + static_cast<uint32_t>((*rng)() % (budget - 1));
      std::vector<regex::RegexAst> parts;
      parts.push_back(RandomAst(alphabet, rng, params, left));
      parts.push_back(RandomAst(alphabet, rng, params, budget - left));
      return regex::Alt(std::move(parts));
    }
    case 3:
      return regex::Star(RandomAst(alphabet, rng, params, budget - 1));
    case 4:
      return regex::Plus(RandomAst(alphabet, rng, params, budget - 1));
    default:
      return regex::Opt(RandomAst(alphabet, rng, params, budget - 1));
  }
}

}  // namespace

regex::RegexAst GenerateRandomProperRegex(Alphabet* alphabet,
                                          const RandomPatternParams& params,
                                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  uint32_t budget =
      1 + static_cast<uint32_t>(rng() % (params.max_regex_nodes == 0
                                             ? 1
                                             : params.max_regex_nodes));
  regex::RegexAst ast = RandomAst(alphabet, &rng, params, budget);
  if (regex::IsNullable(*ast)) {
    // Force properness by prefixing a mandatory symbol.
    std::vector<regex::RegexAst> parts;
    parts.push_back(regex::Sym(RandomLabel(alphabet, &rng, params.num_labels)));
    parts.push_back(std::move(ast));
    ast = regex::Cat(std::move(parts));
  }
  return ast;
}

pattern::TreePattern GenerateRandomPattern(Alphabet* alphabet,
                                           const RandomPatternParams& params) {
  std::mt19937_64 rng(params.seed);
  pattern::TreePattern tree;
  uint32_t nodes =
      1 + static_cast<uint32_t>(rng() % (params.max_template_nodes == 0
                                             ? 1
                                             : params.max_template_nodes));
  for (uint32_t i = 0; i < nodes; ++i) {
    // Attach under a random existing node (biased toward deeper chains).
    pattern::PatternNodeId parent = static_cast<pattern::PatternNodeId>(
        rng() % tree.NumNodes());
    regex::RegexAst ast = GenerateRandomProperRegex(alphabet, params, rng());
    tree.AddChild(parent, regex::Regex::FromAst(std::move(ast)));
  }
  uint32_t selected = std::min<uint32_t>(
      params.num_selected, static_cast<uint32_t>(tree.NumNodes() - 1));
  for (uint32_t i = 0; i < selected; ++i) {
    pattern::PatternNodeId node = 1 + static_cast<pattern::PatternNodeId>(
                                          rng() % (tree.NumNodes() - 1));
    tree.AddSelected(node, (rng() % 4 == 0)
                               ? pattern::EqualityType::kNode
                               : pattern::EqualityType::kValue);
  }
  return tree;
}

xml::Document GenerateRandomTree(Alphabet* alphabet,
                                 const RandomTreeParams& params) {
  std::mt19937_64 rng(params.seed);
  xml::Document doc(alphabet);
  std::vector<xml::NodeId> elements = {doc.root()};
  uint32_t nodes = 1 + static_cast<uint32_t>(
                           rng() % (params.max_nodes == 0 ? 1 : params.max_nodes));
  for (uint32_t i = 0; i < nodes; ++i) {
    xml::NodeId parent = elements[rng() % elements.size()];
    bool text = (rng() % 100) < params.text_leaf_percent;
    if (text) {
      doc.AddText(parent, "v" + std::to_string(rng() % params.value_pool));
    } else {
      LabelId label = RandomLabel(alphabet, &rng, params.num_labels);
      elements.push_back(doc.AddChild(parent, label, xml::NodeType::kElement));
    }
  }
  return doc;
}

}  // namespace rtp::workload
