#include "workload/generator.h"

#include <map>
#include <mutex>
#include <utility>

#include "common/alphabet.h"
#include "fuzz/generators.h"
#include "workload/exam_generator.h"
#include "xml/xml_io.h"

namespace rtp::workload {
namespace {

// Kind-name → factory. A mutex-guarded map (not a lock-free structure):
// registration and instantiation happen at spec-parse and thread-start
// time, never on the per-op hot path.
struct RegistryState {
  std::mutex mu;
  std::map<std::string, GeneratorFactory> factories;
};

RegistryState& Registry() {
  static RegistryState* state = new RegistryState();
  return *state;
}

// --- built-in kinds --------------------------------------------------

class FuzzTextGenerator : public Generator {
 public:
  enum class Flavor { kPattern, kFd, kXml };
  FuzzTextGenerator(Flavor flavor, fuzz::TextGenParams params)
      : flavor_(flavor), params_(params) {}

  std::string Next(fuzz::Rng* rng) override {
    switch (flavor_) {
      case Flavor::kPattern:
        return fuzz::GeneratePatternDslText(rng, params_);
      case Flavor::kFd:
        return fuzz::GeneratePatternDslText(rng, params_,
                                            /*with_context=*/true);
      case Flavor::kXml:
        return fuzz::GenerateXmlText(rng, params_);
    }
    return {};
  }

 private:
  Flavor flavor_;
  fuzz::TextGenParams params_;
};

class ExamDocGenerator : public Generator {
 public:
  explicit ExamDocGenerator(uint32_t candidates) : candidates_(candidates) {}

  std::string Next(fuzz::Rng* rng) override {
    Alphabet alphabet;
    ExamWorkloadParams params;
    params.num_candidates = candidates_;
    params.seed = rng->Next();
    xml::Document doc = GenerateExamDocument(&alphabet, params);
    return xml::WriteXml(doc, /*indent=*/false);
  }

 private:
  uint32_t candidates_;
};

// Recorded payloads, replayed round-robin. The cursor is instance state,
// so a fresh instance per runner thread restarts from payload 0.
class FileGenerator : public Generator {
 public:
  explicit FileGenerator(std::vector<std::string> payloads)
      : payloads_(std::move(payloads)) {}

  std::string Next(fuzz::Rng* /*rng*/) override {
    std::string payload = payloads_[cursor_ % payloads_.size()];
    ++cursor_;
    return payload;
  }

 private:
  std::vector<std::string> payloads_;
  size_t cursor_ = 0;
};

void RegisterBuiltins(RegistryState* state) {
  auto fuzz_factory = [](FuzzTextGenerator::Flavor flavor) {
    return [flavor](const GeneratorSpec& spec)
               -> StatusOr<std::unique_ptr<Generator>> {
      return std::unique_ptr<Generator>(
          new FuzzTextGenerator(flavor, spec.text_params));
    };
  };
  state->factories["fuzz_pattern"] =
      fuzz_factory(FuzzTextGenerator::Flavor::kPattern);
  state->factories["fuzz_fd"] = fuzz_factory(FuzzTextGenerator::Flavor::kFd);
  state->factories["fuzz_xml"] = fuzz_factory(FuzzTextGenerator::Flavor::kXml);
  state->factories["exam_doc"] =
      [](const GeneratorSpec& spec) -> StatusOr<std::unique_ptr<Generator>> {
    return std::unique_ptr<Generator>(
        new ExamDocGenerator(spec.exam_candidates));
  };
  state->factories["file"] =
      [](const GeneratorSpec& spec) -> StatusOr<std::unique_ptr<Generator>> {
    if (spec.payloads.empty()) {
      return InvalidArgumentError("generator '" + spec.name +
                                  "': kind 'file' needs a non-empty 'files'");
    }
    return std::unique_ptr<Generator>(new FileGenerator(spec.payloads));
  };
}

RegistryState& InitializedRegistry() {
  RegistryState& state = Registry();
  static std::once_flag once;
  std::call_once(once, [&state] {
    std::lock_guard<std::mutex> lock(state.mu);
    RegisterBuiltins(&state);
  });
  return state;
}

}  // namespace

void RegisterGeneratorKind(const std::string& kind, GeneratorFactory factory) {
  RegistryState& state = InitializedRegistry();
  std::lock_guard<std::mutex> lock(state.mu);
  state.factories[kind] = std::move(factory);
}

bool GeneratorKindRegistered(const std::string& kind) {
  RegistryState& state = InitializedRegistry();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.factories.count(kind) != 0;
}

StatusOr<std::unique_ptr<Generator>> CreateGenerator(
    const GeneratorSpec& spec) {
  GeneratorFactory factory;
  {
    RegistryState& state = InitializedRegistry();
    std::lock_guard<std::mutex> lock(state.mu);
    auto it = state.factories.find(spec.kind);
    if (it == state.factories.end()) {
      return InvalidArgumentError("generator '" + spec.name +
                                  "': unknown kind '" + spec.kind + "'");
    }
    factory = it->second;
  }
  return factory(spec);
}

}  // namespace rtp::workload
