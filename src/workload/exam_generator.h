#ifndef RTP_WORKLOAD_EXAM_GENERATOR_H_
#define RTP_WORKLOAD_EXAM_GENERATOR_H_

#include <cstdint>

#include "xml/document.h"

namespace rtp::workload {

// Builds the exam-session document of Figure 1 of the paper:
//
//   /
//   └ session
//     ├ candidate @IDN=001
//     │  ├ exam {discipline math,    date 2009-06-12, mark 15, rank 2}
//     │  ├ exam {discipline physics, date 2009-06-15, mark 12, rank 5}
//     │  ├ level B
//     │  └ toBePassed { discipline chemistry }
//     └ candidate @IDN=012
//        ├ exam {discipline math,    date 2009-06-12, mark 15, rank 2}
//        ├ exam {discipline biology, date 2009-06-15, mark 10, rank 7}
//        ├ level C
//        └ firstJob-Year 2012
//
// Exam children are ordered discipline, date, mark, rank; candidate
// children are ordered @IDN, exam*, level, (toBePassed | firstJob-Year).
xml::Document BuildPaperFigure1Document(Alphabet* alphabet);

// Parameters for the scalable exam-session generator used by benchmarks.
// The generated documents follow the same shape as Figure 1.
struct ExamWorkloadParams {
  uint32_t num_candidates = 100;
  uint32_t exams_per_candidate = 4;
  uint32_t num_disciplines = 8;   // value domain of <discipline>
  uint32_t num_marks = 21;        // marks in [0, num_marks)
  uint32_t num_dates = 30;
  uint32_t num_levels = 5;        // 'A'..'E'
  // Fraction (0..1) of candidates with a toBePassed child; the rest get
  // firstJob-Year.
  double to_be_passed_fraction = 0.5;
  // When true, ranks are assigned consistently per (discipline, mark) so
  // fd1 of the paper holds; when false, ranks are random (fd1 violations
  // likely).
  bool consistent_ranks = true;
  uint64_t seed = 42;
};

// Deterministic (seeded) generator of exam-session documents.
xml::Document GenerateExamDocument(Alphabet* alphabet,
                                   const ExamWorkloadParams& params);

}  // namespace rtp::workload

#endif  // RTP_WORKLOAD_EXAM_GENERATOR_H_
