#ifndef RTP_COMMON_HASHING_H_
#define RTP_COMMON_HASHING_H_

#include <cstdint>
#include <string_view>

namespace rtp {

// 64-bit FNV-1a over a byte range.
inline uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 1469598103934665603ULL) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Mixes an integer into a running hash (splitmix64 finalizer composition).
inline uint64_t HashMix(uint64_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + h;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

}  // namespace rtp

#endif  // RTP_COMMON_HASHING_H_
