#ifndef RTP_COMMON_STATUS_H_
#define RTP_COMMON_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>

namespace rtp {

// Error codes used throughout the library. The library does not use C++
// exceptions; every fallible operation returns a Status or a StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kUnimplemented,
  kInternal,
  // Resource statuses: a budget or cancellation cut the work short (see
  // src/guard/guard.h). These mean "the answer was not computed", never
  // "the answer is negative".
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
  // Transport statuses (see docs/ROBUSTNESS.md): the peer could not be
  // reached or answered in time (kUnavailable — connect refusal, socket
  // timeout, connection closed before a response), or the bytes that did
  // arrive were not a well-formed protocol frame (kTransportError —
  // unparseable response line, response id mismatch). Like the resource
  // statuses these mean "the answer was not computed"; kUnavailable is
  // additionally safe to retry for idempotent operations.
  kUnavailable,
  kTransportError,
};

// Returns a stable human-readable name for `code` ("OK", "PARSE_ERROR", ...).
const char* StatusCodeName(StatusCode code);

// Value-type status carrying a code and, for errors, a message.
// An OK status carries no message and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ParseError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);
Status UnavailableError(std::string message);
Status TransportError(std::string message);

// Union of a Status and a value of type T. Holds the value exactly when the
// status is OK. Accessing the value of a non-OK StatusOr aborts the process.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so functions can `return value;` or
  // `return SomeError(...);` directly.
  StatusOr(const T& value) : rep_(value) {}          // NOLINT
  StatusOr(T&& value) : rep_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::fprintf(stderr, "StatusOr constructed from an OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

}  // namespace rtp

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define RTP_RETURN_IF_ERROR(expr)                      \
  do {                                                 \
    ::rtp::Status rtp_status_tmp_ = (expr);            \
    if (!rtp_status_tmp_.ok()) return rtp_status_tmp_; \
  } while (false)

// Evaluates `expr` (a StatusOr<T> expression); on error returns its status,
// otherwise assigns the value to `lhs`.
#define RTP_ASSIGN_OR_RETURN(lhs, expr)                        \
  RTP_ASSIGN_OR_RETURN_IMPL_(                                  \
      RTP_STATUS_CONCAT_(rtp_statusor_, __LINE__), lhs, expr)

#define RTP_STATUS_CONCAT_INNER_(a, b) a##b
#define RTP_STATUS_CONCAT_(a, b) RTP_STATUS_CONCAT_INNER_(a, b)
#define RTP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#endif  // RTP_COMMON_STATUS_H_
