#ifndef RTP_COMMON_ALPHABET_H_
#define RTP_COMMON_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace rtp {

// Interned identifier of a label of the finite alphabet Sigma.
using LabelId = uint32_t;

inline constexpr LabelId kInvalidLabel = UINT32_MAX;

// The paper partitions Sigma into element labels (EL), attribute labels (A)
// and the text marker. We follow XML convention: attribute labels start
// with '@'; the text marker is the reserved label "#text"; the document
// root is labeled with the reserved label "/" (a member of EL).
enum class LabelKind : uint8_t {
  kElement = 0,
  kAttribute = 1,
  kText = 2,
};

// Interning table for labels. Documents, patterns, schemas and automata
// that are meant to interact must share one Alphabet instance.
//
// The table always contains the two reserved labels:
//   id 0: "/"      (root element label)
//   id 1: "#text"  (the text marker, written as a bottom symbol in the paper)
class Alphabet {
 public:
  Alphabet() {
    RTP_CHECK(Intern("/") == kRootLabel);
    RTP_CHECK(Intern("#text") == kTextLabel);
  }

  Alphabet(const Alphabet&) = delete;
  Alphabet& operator=(const Alphabet&) = delete;

  static constexpr LabelId kRootLabel = 0;
  static constexpr LabelId kTextLabel = 1;

  // Returns the id of `name`, interning it if new.
  LabelId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    LabelId id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  // Returns the id of `name` or kInvalidLabel if it was never interned.
  LabelId Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidLabel : it->second;
  }

  const std::string& Name(LabelId id) const {
    RTP_CHECK(id < names_.size());
    return names_[id];
  }

  static LabelKind KindOf(std::string_view name) {
    if (name == "#text") return LabelKind::kText;
    if (!name.empty() && name[0] == '@') return LabelKind::kAttribute;
    return LabelKind::kElement;
  }

  LabelKind Kind(LabelId id) const { return KindOf(Name(id)); }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace rtp

#endif  // RTP_COMMON_ALPHABET_H_
