#ifndef RTP_COMMON_CHECK_H_
#define RTP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// RTP_CHECK aborts on violated invariants. These are programmer-error
// assertions (kept on in all build modes), not input validation — invalid
// input is reported through Status.
#define RTP_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "RTP_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define RTP_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RTP_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#endif  // RTP_COMMON_CHECK_H_
