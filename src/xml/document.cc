#include "xml/document.h"

#include <algorithm>

#include "obs/metrics.h"
#include "xml/doc_index.h"

namespace rtp::xml {

std::shared_ptr<const DocIndex> Document::Snapshot() const {
  if (snapshot_.index == nullptr) {
    snapshot_.index = std::make_shared<const DocIndex>(DocIndex::Build(*this));
  } else {
    RTP_OBS_COUNT("xml.doc_index.snapshot_hits");
  }
  return snapshot_.index;
}

Document::Document(Alphabet* alphabet) : alphabet_(alphabet) {
  RTP_CHECK(alphabet != nullptr);
  root_ = NewNode(Alphabet::kRootLabel, NodeType::kElement, "");
}

NodeId Document::NewNode(LabelId label, NodeType type, std::string_view value) {
  Node node;
  node.label = label;
  node.type = type;
  node.value = std::string(value);
  nodes_.push_back(std::move(node));
  InvalidateOrder();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Document::AddChild(NodeId parent, std::string_view label, NodeType type,
                          std::string_view value) {
  return AddChild(parent, alphabet_->Intern(label), type, value);
}

NodeId Document::AddChild(NodeId parent, LabelId label, NodeType type,
                          std::string_view value) {
  RTP_CHECK(parent < nodes_.size());
  RTP_CHECK_MSG(nodes_[parent].type == NodeType::kElement,
                "only element nodes can have children");
  NodeId child = NewNode(label, type, value);
  AppendExisting(parent, child);
  return child;
}

void Document::AppendExisting(NodeId parent, NodeId child) {
  Node& p = nodes_[parent];
  Node& c = nodes_[child];
  c.parent = parent;
  c.prev_sibling = p.last_child;
  c.next_sibling = kInvalidNode;
  if (p.last_child != kInvalidNode) {
    nodes_[p.last_child].next_sibling = child;
  } else {
    p.first_child = child;
  }
  p.last_child = child;
  InvalidateOrder();
}

std::vector<NodeId> Document::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = nodes_[n].first_child; c != kInvalidNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

size_t Document::ChildCount(NodeId n) const {
  size_t count = 0;
  for (NodeId c = nodes_[n].first_child; c != kInvalidNode;
       c = nodes_[c].next_sibling) {
    ++count;
  }
  return count;
}

size_t Document::LiveNodeCount() const {
  size_t count = 0;
  Visit([&count](NodeId) {
    ++count;
    return true;
  });
  return count;
}

size_t Document::Depth(NodeId n) const {
  size_t depth = 0;
  for (NodeId p = nodes_[n].parent; p != kInvalidNode; p = nodes_[p].parent) {
    ++depth;
  }
  return depth;
}

size_t Document::Height() const {
  size_t height = 0;
  Visit([&](NodeId n) {
    height = std::max(height, Depth(n));
    return true;
  });
  return height;
}

bool Document::IsAncestorOrSelf(NodeId ancestor, NodeId n) const {
  for (NodeId cur = n; cur != kInvalidNode; cur = nodes_[cur].parent) {
    if (cur == ancestor) return true;
  }
  return false;
}

void Document::EnsureOrder() const {
  if (order_valid_) return;
  preorder_.assign(nodes_.size(), UINT32_MAX);
  uint32_t next = 0;
  VisitFrom(root_, [this, &next](NodeId n) {
    preorder_[n] = next++;
    return true;
  });
  order_valid_ = true;
}

bool Document::DocumentOrderLess(NodeId a, NodeId b) const {
  EnsureOrder();
  RTP_CHECK_MSG(preorder_[a] != UINT32_MAX && preorder_[b] != UINT32_MAX,
                "document order of a detached node");
  return preorder_[a] < preorder_[b];
}

uint32_t Document::PreorderIndex(NodeId n) const {
  EnsureOrder();
  RTP_CHECK(preorder_[n] != UINT32_MAX);
  return preorder_[n];
}

void Document::Compact(std::vector<NodeId>* remap) {
  std::vector<NodeId> map(nodes_.size(), kInvalidNode);
  std::vector<Node> compacted;
  compacted.reserve(nodes_.size());
  // Preorder rebuild: parents precede children, so parent links resolve.
  VisitFrom(root_, [&](NodeId n) {
    map[n] = static_cast<NodeId>(compacted.size());
    Node node;
    node.label = nodes_[n].label;
    node.type = nodes_[n].type;
    node.value = std::move(nodes_[n].value);
    compacted.push_back(std::move(node));
    return true;
  });
  // Second pass: rebuild structural links through the map.
  for (NodeId old_id = 0; old_id < nodes_.size(); ++old_id) {
    NodeId new_id = map[old_id];
    if (new_id == kInvalidNode) continue;
    const Node& old_node = nodes_[old_id];
    Node& node = compacted[new_id];
    auto translate = [&map](NodeId id) {
      return id == kInvalidNode ? kInvalidNode : map[id];
    };
    node.parent = translate(old_node.parent);
    node.first_child = translate(old_node.first_child);
    node.last_child = translate(old_node.last_child);
    node.next_sibling = translate(old_node.next_sibling);
    node.prev_sibling = translate(old_node.prev_sibling);
  }
  nodes_ = std::move(compacted);
  root_ = map[root_];
  InvalidateOrder();
  if (remap != nullptr) *remap = std::move(map);
}

NodeId Document::CopySubtree(const Document& src, NodeId src_node,
                             NodeId dst_parent) {
  LabelId label = (&src == this || src.alphabet_ == alphabet_)
                      ? src.label(src_node)
                      : alphabet_->Intern(src.label_name(src_node));
  NodeId copy =
      AddChild(dst_parent, label, src.type(src_node), src.value(src_node));
  for (NodeId c = src.first_child(src_node); c != kInvalidNode;
       c = src.next_sibling(c)) {
    CopySubtree(src, c, copy);
  }
  return copy;
}

void Document::DetachSubtree(NodeId n) {
  RTP_CHECK_MSG(n != root_, "cannot detach the document root");
  Node& node = nodes_[n];
  RTP_CHECK_MSG(node.parent != kInvalidNode, "node already detached");
  Node& p = nodes_[node.parent];
  if (node.prev_sibling != kInvalidNode) {
    nodes_[node.prev_sibling].next_sibling = node.next_sibling;
  } else {
    p.first_child = node.next_sibling;
  }
  if (node.next_sibling != kInvalidNode) {
    nodes_[node.next_sibling].prev_sibling = node.prev_sibling;
  } else {
    p.last_child = node.prev_sibling;
  }
  node.parent = kInvalidNode;
  node.prev_sibling = kInvalidNode;
  node.next_sibling = kInvalidNode;
  InvalidateOrder();
}

NodeId Document::ReplaceSubtree(NodeId n, const Document& repl,
                                NodeId repl_root) {
  RTP_CHECK_MSG(n != root_, "cannot replace the document root");
  NodeId parent = nodes_[n].parent;
  NodeId after = nodes_[n].next_sibling;
  DetachSubtree(n);
  return InsertSubtree(parent, after, repl, repl_root);
}

NodeId Document::InsertSubtree(NodeId parent, NodeId before,
                               const Document& repl, NodeId repl_root) {
  NodeId copy = CopySubtree(repl, repl_root, parent);
  if (before == kInvalidNode) return copy;  // appended already
  // Move `copy` (currently the last child) just before `before`.
  DetachSubtree(copy);
  Node& c = nodes_[copy];
  Node& b = nodes_[before];
  c.parent = parent;
  c.next_sibling = before;
  c.prev_sibling = b.prev_sibling;
  if (b.prev_sibling != kInvalidNode) {
    nodes_[b.prev_sibling].next_sibling = copy;
  } else {
    nodes_[parent].first_child = copy;
  }
  b.prev_sibling = copy;
  InvalidateOrder();
  return copy;
}

}  // namespace rtp::xml
