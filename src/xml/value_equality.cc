#include "xml/value_equality.h"

#include "common/hashing.h"

namespace rtp::xml {

bool ValueEqual(const Document& a, NodeId na, const Document& b, NodeId nb) {
  if (a.label_name(na) != b.label_name(nb)) return false;
  if (a.type(na) != b.type(nb)) return false;
  if (a.type(na) != NodeType::kElement) return a.value(na) == b.value(nb);
  NodeId ca = a.first_child(na);
  NodeId cb = b.first_child(nb);
  while (ca != kInvalidNode && cb != kInvalidNode) {
    if (!ValueEqual(a, ca, b, cb)) return false;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  return ca == kInvalidNode && cb == kInvalidNode;
}

uint64_t SubtreeHash(const Document& d, NodeId n) {
  uint64_t h = Fnv1a64(d.label_name(n));
  h = HashMix(h, static_cast<uint64_t>(d.type(n)));
  if (d.type(n) != NodeType::kElement) {
    return HashMix(h, Fnv1a64(d.value(n)));
  }
  for (NodeId c = d.first_child(n); c != kInvalidNode; c = d.next_sibling(c)) {
    h = HashMix(h, SubtreeHash(d, c));
  }
  return h;
}

namespace {

void AppendCanonical(const Document& d, NodeId n, std::string* out) {
  out->push_back('(');
  out->append(d.label_name(n));
  out->push_back('\x01');
  out->push_back(static_cast<char>('0' + static_cast<int>(d.type(n))));
  if (d.type(n) != NodeType::kElement) {
    out->push_back('\x02');
    out->append(d.value(n));
  } else {
    for (NodeId c = d.first_child(n); c != kInvalidNode;
         c = d.next_sibling(c)) {
      AppendCanonical(d, c, out);
    }
  }
  out->push_back(')');
}

}  // namespace

std::string CanonicalForm(const Document& d, NodeId n) {
  std::string out;
  AppendCanonical(d, n, &out);
  return out;
}

}  // namespace rtp::xml
