#ifndef RTP_XML_XML_IO_H_
#define RTP_XML_XML_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace rtp::xml {

// Parses an XML subset: elements, attributes, text content, comments and
// processing instructions (both skipped), and the five predefined entities.
// Whitespace-only text between elements is dropped. The top-level element
// becomes the single child of the "/" root node per the paper's convention.
// Attributes become '@'-labeled leaf children preceding element content.
StatusOr<Document> ParseXml(Alphabet* alphabet, std::string_view input);

// Serializes the document back to XML text (inverse of ParseXml for
// documents expressible in XML: '@'-labeled children must precede other
// children). `indent` pretty-prints with 2-space indentation.
std::string WriteXml(const Document& doc, bool indent = true);

// Serializes the subtree rooted at `n`.
std::string WriteXmlSubtree(const Document& doc, NodeId n, bool indent = true);

}  // namespace rtp::xml

#endif  // RTP_XML_XML_IO_H_
