#ifndef RTP_XML_DOCUMENT_H_
#define RTP_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/alphabet.h"
#include "common/check.h"

namespace rtp::xml {

class DocIndex;

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

// Node types of the paper's model: internal nodes are elements, leaves are
// attributes, text nodes, or (childless) elements.
enum class NodeType : uint8_t {
  kElement = 0,
  kAttribute = 1,
  kText = 2,
};

// An XML document per Section 2.1: an unranked ordered tree labeled over a
// shared Alphabet, with string values on attribute/text leaves. The root is
// always labeled "/" per the paper's convention.
//
// Nodes live in an arena indexed by NodeId. Structural mutation (the update
// module) detaches subtrees in place; detached nodes stay in the arena as
// garbage and are excluded from traversals. Document order (the "<" order
// of Definition 2) is a lazily recomputed preorder index.
class Document {
 public:
  // `alphabet` must outlive the document and is shared with patterns,
  // schemas and automata evaluated against it.
  explicit Document(Alphabet* alphabet);

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  const Alphabet& alphabet() const { return *alphabet_; }
  Alphabet* mutable_alphabet() { return alphabet_; }
  // The shared interning context is not part of the document's logical
  // state, so handing out a mutable pointer from a const document is fine.
  Alphabet* shared_alphabet() const { return alphabet_; }

  NodeId root() const { return root_; }

  // Appends a new child under `parent`. Attribute and text nodes must carry
  // a value and become leaves; element nodes may receive children later.
  NodeId AddChild(NodeId parent, std::string_view label, NodeType type,
                  std::string_view value = "");
  NodeId AddChild(NodeId parent, LabelId label, NodeType type,
                  std::string_view value = "");

  // Convenience wrappers.
  NodeId AddElement(NodeId parent, std::string_view label) {
    return AddChild(parent, label, NodeType::kElement);
  }
  NodeId AddAttribute(NodeId parent, std::string_view label,
                      std::string_view value) {
    return AddChild(parent, label, NodeType::kAttribute, value);
  }
  NodeId AddText(NodeId parent, std::string_view value) {
    return AddChild(parent, "#text", NodeType::kText, value);
  }

  // Accessors. All ids must refer to live (attached) or detached-but-valid
  // arena nodes.
  LabelId label(NodeId n) const { return nodes_[n].label; }
  const std::string& label_name(NodeId n) const {
    return alphabet_->Name(nodes_[n].label);
  }
  NodeType type(NodeId n) const { return nodes_[n].type; }
  const std::string& value(NodeId n) const { return nodes_[n].value; }
  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  NodeId first_child(NodeId n) const { return nodes_[n].first_child; }
  NodeId last_child(NodeId n) const { return nodes_[n].last_child; }
  NodeId next_sibling(NodeId n) const { return nodes_[n].next_sibling; }
  NodeId prev_sibling(NodeId n) const { return nodes_[n].prev_sibling; }
  bool is_leaf(NodeId n) const { return nodes_[n].first_child == kInvalidNode; }

  void set_value(NodeId n, std::string_view value) {
    nodes_[n].value = std::string(value);
  }
  void set_label(NodeId n, std::string_view label) {
    nodes_[n].label = alphabet_->Intern(label);
    InvalidateOrder();
  }

  // Children of `n` in sibling order.
  std::vector<NodeId> Children(NodeId n) const;
  size_t ChildCount(NodeId n) const;

  // Number of nodes currently attached to the tree.
  size_t LiveNodeCount() const;

  // Total arena size (live + detached garbage).
  size_t ArenaSize() const { return nodes_.size(); }

  // Depth of node `n` (root has depth 0).
  size_t Depth(NodeId n) const;

  // Maximum depth over live nodes.
  size_t Height() const;

  bool IsAncestorOrSelf(NodeId ancestor, NodeId n) const;

  // Document order ("descendant or following"): preorder position
  // comparison. Both nodes must be attached.
  bool DocumentOrderLess(NodeId a, NodeId b) const;

  // Preorder index of an attached node (root is 0).
  uint32_t PreorderIndex(NodeId n) const;

  // Shared frozen snapshot of the live tree (see doc_index.h), built
  // lazily on first use and dropped by the same mutations that invalidate
  // the preorder index, so repeated evaluations against an unchanged
  // document reuse one DocIndex. Same caveat as the preorder cache: the
  // lazy build is not synchronized, so take the snapshot before handing
  // the document to concurrent readers.
  std::shared_ptr<const DocIndex> Snapshot() const;

  // Appends a copy of src(src_node) under dst_parent of this document.
  // Returns the root of the copy. `src` may be this document, but src_node
  // must not be an ancestor of dst_parent.
  NodeId CopySubtree(const Document& src, NodeId src_node, NodeId dst_parent);

  // Detaches the subtree rooted at `n` (which must not be the root) from
  // the tree. The arena entries remain allocated but unreachable.
  void DetachSubtree(NodeId n);

  // Replaces the subtree rooted at `n` by a copy of repl(repl_root),
  // splicing the copy into n's position among its siblings. `n` must not be
  // the document root. Returns the id of the replacement root.
  NodeId ReplaceSubtree(NodeId n, const Document& repl, NodeId repl_root);

  // Inserts a copy of repl(repl_root) as a new child of `parent` before
  // `before` (or appended if before == kInvalidNode).
  NodeId InsertSubtree(NodeId parent, NodeId before, const Document& repl,
                       NodeId repl_root);

  // Reclaims arena space held by detached subtrees by rebuilding the arena
  // from the live tree. All NodeIds are invalidated; `remap` (optional)
  // receives old-id -> new-id for live nodes (kInvalidNode for garbage).
  void Compact(std::vector<NodeId>* remap = nullptr);

  // Deep copy of the live tree (detached arena garbage is not copied).
  Document Clone() const {
    Document copy(alphabet_);
    for (NodeId c = first_child(root_); c != kInvalidNode;
         c = next_sibling(c)) {
      copy.CopySubtree(*this, c, copy.root());
    }
    return copy;
  }

  // Preorder visit of the live tree; `visit` returns false to prune the
  // subtree below the node.
  template <typename Visitor>
  void Visit(Visitor&& visit) const {
    VisitFrom(root_, visit);
  }

  template <typename Visitor>
  void VisitFrom(NodeId start, Visitor&& visit) const {
    std::vector<NodeId> stack = {start};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      if (!visit(n)) continue;
      // Push children reversed so they pop in sibling order.
      std::vector<NodeId> kids = Children(n);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
    }
  }

 private:
  struct Node {
    LabelId label = kInvalidLabel;
    NodeType type = NodeType::kElement;
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId last_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    NodeId prev_sibling = kInvalidNode;
    std::string value;
  };

  // The cached DocIndex points back at this document, so moving the
  // document must drop it (a fresh one is built on demand); a plain
  // shared_ptr member would carry the dangling back-pointer along.
  struct SnapshotSlot {
    mutable std::shared_ptr<const DocIndex> index;
    SnapshotSlot() = default;
    SnapshotSlot(SnapshotSlot&& other) noexcept { other.index.reset(); }
    SnapshotSlot& operator=(SnapshotSlot&& other) noexcept {
      index.reset();
      other.index.reset();
      return *this;
    }
  };

  NodeId NewNode(LabelId label, NodeType type, std::string_view value);
  void AppendExisting(NodeId parent, NodeId child);
  void InvalidateOrder() {
    order_valid_ = false;
    snapshot_.index.reset();
  }
  void EnsureOrder() const;

  Alphabet* alphabet_;
  std::vector<Node> nodes_;
  NodeId root_;

  // Lazily recomputed preorder index over attached nodes; UINT32_MAX for
  // detached ones.
  mutable std::vector<uint32_t> preorder_;
  mutable bool order_valid_ = false;
  SnapshotSlot snapshot_;
};

}  // namespace rtp::xml

#endif  // RTP_XML_DOCUMENT_H_
