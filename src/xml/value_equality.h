#ifndef RTP_XML_VALUE_EQUALITY_H_
#define RTP_XML_VALUE_EQUALITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/document.h"

namespace rtp::xml {

// Value equality of Definition 3: same label, same node type, equal string
// value for attribute/text leaves, and position-wise value-equal children
// for elements.
bool ValueEqual(const Document& a, NodeId na, const Document& b, NodeId nb);

inline bool ValueEqual(const Document& d, NodeId a, NodeId b) {
  return ValueEqual(d, a, d, b);
}

// Order-preserving structural hash of the subtree rooted at `n`, such that
// value-equal subtrees hash equal. Used to group subtrees before the exact
// ValueEqual comparison.
uint64_t SubtreeHash(const Document& d, NodeId n);

// Canonical textual form of the subtree rooted at `n`; two subtrees are
// value-equal iff their canonical forms are byte-equal. Intended for
// debugging and as the exact key in hash-grouping.
std::string CanonicalForm(const Document& d, NodeId n);

// Arena-indexed memo of SubtreeHash: FD condition/target images repeat
// across mappings, so the checkers hash each node at most once. Two flat
// vectors instead of a hash map — the hot path is a bounds-free load plus
// a byte test. Sized for the document's arena at construction; structural
// mutation of the document invalidates the cache.
class SubtreeHashCache {
 public:
  explicit SubtreeHashCache(const Document& doc)
      : doc_(doc), hashes_(doc.ArenaSize(), 0), valid_(doc.ArenaSize(), 0) {}

  uint64_t Hash(NodeId n) {
    if (!valid_[n]) {
      hashes_[n] = SubtreeHash(doc_, n);
      valid_[n] = 1;
    }
    return hashes_[n];
  }

 private:
  const Document& doc_;
  std::vector<uint64_t> hashes_;
  std::vector<uint8_t> valid_;
};

}  // namespace rtp::xml

#endif  // RTP_XML_VALUE_EQUALITY_H_
