#ifndef RTP_XML_VALUE_EQUALITY_H_
#define RTP_XML_VALUE_EQUALITY_H_

#include <cstdint>
#include <string>

#include "xml/document.h"

namespace rtp::xml {

// Value equality of Definition 3: same label, same node type, equal string
// value for attribute/text leaves, and position-wise value-equal children
// for elements.
bool ValueEqual(const Document& a, NodeId na, const Document& b, NodeId nb);

inline bool ValueEqual(const Document& d, NodeId a, NodeId b) {
  return ValueEqual(d, a, d, b);
}

// Order-preserving structural hash of the subtree rooted at `n`, such that
// value-equal subtrees hash equal. Used to group subtrees before the exact
// ValueEqual comparison.
uint64_t SubtreeHash(const Document& d, NodeId n);

// Canonical textual form of the subtree rooted at `n`; two subtrees are
// value-equal iff their canonical forms are byte-equal. Intended for
// debugging and as the exact key in hash-grouping.
std::string CanonicalForm(const Document& d, NodeId n);

}  // namespace rtp::xml

#endif  // RTP_XML_VALUE_EQUALITY_H_
