#ifndef RTP_XML_DOC_INDEX_H_
#define RTP_XML_DOC_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/alphabet.h"
#include "xml/document.h"

namespace rtp::xml {

// Frozen structure-of-arrays snapshot of a Document's live tree, built
// once and shared by every pattern / FD evaluated against the document:
//
//   - the postorder traversal MatchTables::Build runs over (previously
//     re-derived from the first_child/next_sibling pointer chains on every
//     build),
//   - contiguous child spans (one array slice per node, in sibling order),
//   - a dense label column.
//
// Lifetime and invalidation: a DocIndex must not outlive its Document, and
// it describes the tree as of Build time. Any structural mutation —
// AddChild, DetachSubtree, ReplaceSubtree, InsertSubtree, Compact,
// set_label, i.e. everything update::ApplyOperationAt does — invalidates
// the snapshot; rebuild it before evaluating again (see
// docs/PERFORMANCE.md). Value-only mutation (set_value) keeps it valid:
// the snapshot stores structure and labels, never values.
//
// A DocIndex is immutable after Build and safe to share across threads
// (unlike Document, whose lazily cached preorder index is unsynchronized).
class DocIndex {
 public:
  DocIndex() = default;

  static DocIndex Build(const Document& doc);

  const Document& doc() const { return *doc_; }
  NodeId root() const { return root_; }

  // Arena size at Build time (bitset/table sizing).
  size_t ArenaSize() const { return child_begin_.size(); }
  size_t LiveNodeCount() const { return postorder_.size(); }

  // Live nodes, children before parents, siblings in document order.
  std::span<const NodeId> Postorder() const { return postorder_; }

  // Children of `v` in sibling order (empty for leaves and for nodes that
  // were detached at Build time).
  std::span<const NodeId> Children(NodeId v) const {
    return std::span<const NodeId>(children_.data() + child_begin_[v],
                                   child_count_[v]);
  }
  size_t ChildCount(NodeId v) const { return child_count_[v]; }

  LabelId label(NodeId v) const { return labels_[v]; }

 private:
  const Document* doc_ = nullptr;
  NodeId root_ = kInvalidNode;
  std::vector<NodeId> postorder_;
  std::vector<uint32_t> child_begin_;  // arena-indexed slice starts
  std::vector<uint32_t> child_count_;  // arena-indexed slice lengths
  std::vector<NodeId> children_;       // all child lists, concatenated
  std::vector<LabelId> labels_;        // arena-indexed
};

}  // namespace rtp::xml

#endif  // RTP_XML_DOC_INDEX_H_
