#include "xml/doc_index.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace rtp::xml {

DocIndex DocIndex::Build(const Document& doc) {
  RTP_OBS_COUNT("xml.doc_index.builds");
  RTP_OBS_SCOPED_TIMER("xml.doc_index.build_ns");
  DocIndex d;
  d.doc_ = &doc;
  d.root_ = doc.root();

  const size_t arena = doc.ArenaSize();
  d.child_begin_.assign(arena, 0);
  d.child_count_.assign(arena, 0);
  d.labels_.resize(arena);
  for (NodeId n = 0; n < arena; ++n) d.labels_[n] = doc.label(n);

  // One preorder pass fills the contiguous child spans and (reversed at
  // the end) the postorder array — the same traversal order the evaluator
  // previously derived per build.
  d.children_.reserve(arena);
  d.postorder_.reserve(arena);
  std::vector<NodeId> stack = {d.root_};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    d.postorder_.push_back(v);
    const size_t begin = d.children_.size();
    for (NodeId c = doc.first_child(v); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      d.children_.push_back(c);
    }
    d.child_begin_[v] = static_cast<uint32_t>(begin);
    d.child_count_[v] = static_cast<uint32_t>(d.children_.size() - begin);
    // Push in sibling order so they pop (and land in postorder_) with the
    // last child first; the final reverse restores document order.
    for (size_t i = begin; i < d.children_.size(); ++i) {
      stack.push_back(d.children_[i]);
    }
  }
  std::reverse(d.postorder_.begin(), d.postorder_.end());
  RTP_OBS_COUNT_N("xml.doc_index.nodes_indexed", d.postorder_.size());
  return d;
}

}  // namespace rtp::xml
