#include "xml/xml_io.h"

#include <cctype>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace rtp::xml {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(Alphabet* alphabet, std::string_view input)
      : input_(input), doc_(alphabet) {}

  StatusOr<Document> Parse() {
    SkipMisc();
    if (Eof()) return ParseError("empty document");
    RTP_RETURN_IF_ERROR(ParseElement(doc_.root()));
    SkipMisc();
    if (!Eof()) return ParseError("trailing content after root element");
    return std::move(doc_);
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool StartsWith(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  Status ParseError(std::string msg) const {
    return ::rtp::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  // Skips whitespace, comments, PIs and the XML declaration.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (StartsWith("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
      } else if (StartsWith("<?")) {
        size_t end = input_.find("?>", pos_ + 2);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
      } else if (StartsWith("<!DOCTYPE")) {
        size_t end = input_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  StatusOr<std::string> ParseName() {
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return ParseError("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  // Decodes predefined entities in `raw`.
  StatusOr<std::string> DecodeText(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return ::rtp::ParseError("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") out.push_back('<');
      else if (ent == "gt") out.push_back('>');
      else if (ent == "amp") out.push_back('&');
      else if (ent == "quot") out.push_back('"');
      else if (ent == "apos") out.push_back('\'');
      else return ::rtp::ParseError("unknown entity &" + std::string(ent) + ";");
      i = semi;
    }
    return out;
  }

  // Element nesting recurses; cap the depth so hostile documents fail with
  // a Status instead of overflowing the stack.
  Status ParseElement(NodeId parent) {
    if (++depth_ > kMaxNestingDepth) {
      return ResourceExhaustedError(
          "xml: element nesting depth exceeds " +
          std::to_string(kMaxNestingDepth) + " at offset " +
          std::to_string(pos_));
    }
    Status status = ParseElementBody(parent);
    --depth_;
    return status;
  }

  Status ParseElementBody(NodeId parent) {
    if (Eof() || Peek() != '<') return ParseError("expected '<'");
    ++pos_;
    RTP_ASSIGN_OR_RETURN(std::string name, ParseName());
    NodeId element = doc_.AddElement(parent, name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (Eof()) return ParseError("unterminated start tag");
      if (Peek() == '>' || StartsWith("/>")) break;
      RTP_ASSIGN_OR_RETURN(std::string attr, ParseName());
      SkipWhitespace();
      if (Eof() || Peek() != '=') return ParseError("expected '=' after attribute name");
      ++pos_;
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return ParseError("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) return ParseError("unterminated attribute value");
      RTP_ASSIGN_OR_RETURN(std::string value,
                           DecodeText(input_.substr(pos_, end - pos_)));
      pos_ = end + 1;
      doc_.AddAttribute(element, "@" + attr, value);
    }
    if (StartsWith("/>")) {
      pos_ += 2;
      return Status::OK();
    }
    ++pos_;  // consume '>'
    // Content.
    while (true) {
      size_t text_start = pos_;
      while (!Eof() && Peek() != '<') ++pos_;
      if (pos_ > text_start) {
        std::string_view raw = input_.substr(text_start, pos_ - text_start);
        bool all_space = true;
        for (char c : raw) {
          if (!std::isspace(static_cast<unsigned char>(c))) {
            all_space = false;
            break;
          }
        }
        if (!all_space) {
          RTP_ASSIGN_OR_RETURN(std::string text, DecodeText(raw));
          // Adjacent runs merge even when a comment or PI split the raw
          // text, keeping "adjacent text runs merge" a real invariant
          // (serializing two sibling text nodes would concatenate them,
          // so round-tripping would otherwise change the tree).
          NodeId last = doc_.last_child(element);
          if (last != kInvalidNode && doc_.type(last) == NodeType::kText) {
            doc_.set_value(last, doc_.value(last) + text);
          } else {
            doc_.AddText(element, text);
          }
        }
      }
      if (Eof()) return ParseError("unterminated element <" + name + ">");
      if (StartsWith("</")) {
        pos_ += 2;
        RTP_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != name) {
          return ParseError("mismatched close tag </" + close + "> for <" +
                            name + ">");
        }
        SkipWhitespace();
        if (Eof() || Peek() != '>') return ParseError("expected '>' in close tag");
        ++pos_;
        return Status::OK();
      }
      if (StartsWith("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return ParseError("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      // Processing instructions are skipped in content, same as at
      // document level.
      if (StartsWith("<?")) {
        size_t end = input_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) {
          return ParseError("unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      RTP_RETURN_IF_ERROR(ParseElement(element));
    }
  }

  static constexpr int kMaxNestingDepth = 256;

  std::string_view input_;
  size_t pos_ = 0;
  int depth_ = 0;
  Document doc_;
};

void EncodeInto(std::string_view raw, bool attribute, std::string* out) {
  for (char c : raw) {
    switch (c) {
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      case '&': out->append("&amp;"); break;
      case '"':
        if (attribute) out->append("&quot;");
        else out->push_back(c);
        break;
      default: out->push_back(c);
    }
  }
}

void WriteElement(const Document& doc, NodeId n, bool indent, int depth,
                  std::string* out) {
  auto pad = [&](int d) {
    if (indent) out->append(static_cast<size_t>(d) * 2, ' ');
  };
  pad(depth);
  out->push_back('<');
  out->append(doc.label_name(n));
  // Attributes first.
  std::vector<NodeId> content;
  for (NodeId c = doc.first_child(n); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.type(c) == NodeType::kAttribute) {
      out->push_back(' ');
      out->append(doc.label_name(c).substr(1));  // strip '@'
      out->append("=\"");
      EncodeInto(doc.value(c), /*attribute=*/true, out);
      out->push_back('"');
    } else {
      content.push_back(c);
    }
  }
  if (content.empty()) {
    out->append("/>");
    if (indent) out->push_back('\n');
    return;
  }
  out->push_back('>');
  // Any whitespace the pretty-printer inserts next to a text run merges
  // into that run's value on reparse, so content with text children —
  // text-only and mixed alike — is written inline, without indentation.
  bool has_text = false;
  for (NodeId c : content) {
    if (doc.type(c) == NodeType::kText) has_text = true;
  }
  if (!has_text && indent) out->push_back('\n');
  for (NodeId c : content) {
    if (doc.type(c) == NodeType::kText) {
      EncodeInto(doc.value(c), /*attribute=*/false, out);
    } else {
      WriteElement(doc, c, indent && !has_text, depth + 1, out);
    }
  }
  if (!has_text) pad(depth);
  out->append("</");
  out->append(doc.label_name(n));
  out->push_back('>');
  if (indent) out->push_back('\n');
}

}  // namespace

StatusOr<Document> ParseXml(Alphabet* alphabet, std::string_view input) {
  RTP_OBS_COUNT("xml.parse.documents");
  RTP_OBS_SCOPED_TIMER("xml.parse.ns");
  Parser parser(alphabet, input);
  StatusOr<Document> doc = parser.Parse();
  if (doc.ok()) RTP_OBS_COUNT_N("xml.parse.nodes", doc->LiveNodeCount());
  return doc;
}

std::string WriteXmlSubtree(const Document& doc, NodeId n, bool indent) {
  std::string out;
  if (doc.type(n) == NodeType::kElement && doc.label(n) != Alphabet::kRootLabel) {
    WriteElement(doc, n, indent, 0, &out);
  } else if (doc.label(n) == Alphabet::kRootLabel) {
    for (NodeId c = doc.first_child(n); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      WriteElement(doc, c, indent, 0, &out);
    }
  } else {
    // Leaf: render its value.
    out = doc.value(n);
  }
  return out;
}

std::string WriteXml(const Document& doc, bool indent) {
  return WriteXmlSubtree(doc, doc.root(), indent);
}

}  // namespace rtp::xml
