#ifndef RTP_EXEC_AUTOMATON_CACHE_H_
#define RTP_EXEC_AUTOMATON_CACHE_H_

// Thread-safe memoizing cache for compiled automata, shared across the
// batch paths: the independence matrix compiles each FD / update-class
// pattern automaton once instead of once per (fd, class) pair, and regex
// determinizations can be shared the same way.
//
// Keying. Entries are keyed by a canonical string:
//
//   <alphabet-identity> "|" <mark-mode> "|" <canonical pattern DSL>
//
// built by PatternKey(). The pattern DSL serialization (PatternToDsl) is
// canonical — structurally identical patterns serialize identically — so
// equal patterns share one compiled automaton even when built through
// different code paths (parser, XPath compiler, path-FD compiler). The
// alphabet identity (address) is part of the key because compiled automata
// embed LabelIds, which are only meaningful relative to the interning
// Alphabet that produced them; entries never leak across alphabets.
//
// Invalidation. Patterns and regexes are immutable once built, so entries
// never go stale; the only invalidation is Clear() (tests, or releasing
// memory after a batch). Values are handed out as shared_ptr<const T>, so
// a Clear() concurrent with users is safe — existing holders keep their
// automata alive.
//
// Build-once contract. Under contention on one key, exactly one caller
// runs the builder; the others block on a shared_future and receive the
// same pointer. A builder that throws propagates the exception to every
// waiter and removes the entry, so a later call retries.
//
// Counters: exec.cache.hits / .misses / .builds / .build_failures,
// gauge exec.cache.entries.

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "automata/hedge_automaton.h"
#include "automata/pattern_compiler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "pattern/tree_pattern.h"
#include "regex/dense_dfa.h"
#include "regex/dfa.h"

namespace rtp::exec {

namespace internal {

// String-keyed find-or-build-once map; the generic engine behind both
// sections of the AutomatonCache.
template <typename T>
class MemoMap {
 public:
  std::shared_ptr<const T> GetOrBuild(const std::string& key,
                                      const std::function<T()>& build) {
    std::shared_future<std::shared_ptr<const T>> future;
    std::promise<std::shared_ptr<const T>> promise;
    bool builder = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        future = it->second;
      } else {
        future = promise.get_future().share();
        map_.emplace(key, future);
        builder = true;
      }
    }
    if (!builder) {
      RTP_OBS_COUNT("exec.cache.hits");
      return future.get();  // blocks while the builder runs; rethrows
    }
    RTP_OBS_COUNT("exec.cache.misses");
    try {
      RTP_OBS_COUNT("exec.cache.builds");
      promise.set_value(std::make_shared<const T>(build()));
    } catch (...) {
      RTP_OBS_COUNT("exec.cache.build_failures");
      RTP_LOG(WARN) << "automaton cache build failed; entry dropped for retry";
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu_);
      map_.erase(key);  // let a later call retry
      throw;
    }
    return future.get();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const T>>>
      map_;
};

}  // namespace internal

class AutomatonCache {
 public:
  // Process-wide instance shared by the CLI and benches. Library code
  // takes an explicit cache pointer, so tests can use private instances.
  static AutomatonCache& Global();

  // Canonical key for a compiled pattern automaton.
  static std::string PatternKey(const pattern::TreePattern& pattern,
                                const Alphabet& alphabet,
                                automata::MarkMode mode);

  // Find-or-compile of CompilePattern(pattern, mode). The builder runs at
  // most once per key across all threads.
  std::shared_ptr<const automata::HedgeAutomaton> GetPatternAutomaton(
      const pattern::TreePattern& pattern, const Alphabet& alphabet,
      automata::MarkMode mode);

  // Generic find-or-build sections for callers that already hold a
  // canonical key (e.g. a regex's serialized AST for a determinized DFA).
  std::shared_ptr<const automata::HedgeAutomaton> GetAutomaton(
      const std::string& key,
      const std::function<automata::HedgeAutomaton()>& build) {
    return automata_.GetOrBuild(key, build);
  }
  std::shared_ptr<const regex::Dfa> GetDfa(
      const std::string& key, const std::function<regex::Dfa()>& build) {
    return dfas_.GetOrBuild(key, build);
  }
  std::shared_ptr<const regex::DenseDfa> GetDenseDfa(
      const std::string& key,
      const std::function<regex::DenseDfa()>& build) {
    return dense_dfas_.GetOrBuild(key, build);
  }

  // Drops every entry (outstanding shared_ptrs stay valid).
  void Clear();

  size_t size() const {
    return automata_.size() + dfas_.size() + dense_dfas_.size();
  }

 private:
  internal::MemoMap<automata::HedgeAutomaton> automata_;
  internal::MemoMap<regex::Dfa> dfas_;
  internal::MemoMap<regex::DenseDfa> dense_dfas_;
};

}  // namespace rtp::exec

#endif  // RTP_EXEC_AUTOMATON_CACHE_H_
