#include "exec/automaton_cache.h"

#include <cstdio>

#include "pattern/pattern_writer.h"

namespace rtp::exec {

AutomatonCache& AutomatonCache::Global() {
  static AutomatonCache* cache = new AutomatonCache();
  return *cache;
}

std::string AutomatonCache::PatternKey(const pattern::TreePattern& pattern,
                                       const Alphabet& alphabet,
                                       automata::MarkMode mode) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "%p|%d|",
                static_cast<const void*>(&alphabet), static_cast<int>(mode));
  return prefix + pattern::PatternToDsl(pattern, alphabet);
}

std::shared_ptr<const automata::HedgeAutomaton>
AutomatonCache::GetPatternAutomaton(const pattern::TreePattern& pattern,
                                    const Alphabet& alphabet,
                                    automata::MarkMode mode) {
  std::shared_ptr<const automata::HedgeAutomaton> result =
      automata_.GetOrBuild(PatternKey(pattern, alphabet, mode), [&] {
        return automata::CompilePattern(pattern, mode);
      });
  RTP_OBS_GAUGE_SET("exec.cache.entries", size());
  return result;
}

void AutomatonCache::Clear() {
  automata_.Clear();
  dfas_.Clear();
  dense_dfas_.Clear();
  RTP_OBS_GAUGE_SET("exec.cache.entries", 0);
}

}  // namespace rtp::exec
