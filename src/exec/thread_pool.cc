#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace rtp::exec {
namespace {

// Identifies the pool (and worker slot) owning the current thread, so
// Submit can route to the worker's own deque and skip the queue bound, and
// ParallelFor can help-run chunks instead of blocking a worker.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

}  // namespace

int ThreadPool::DefaultJobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(queue_capacity, 1)) {
  int n = std::max(num_threads, 1);
  shards_.resize(static_cast<size_t>(n));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
  RTP_OBS_GAUGE_SET("exec.pool.threads", n);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
  for (std::thread& t : workers_) t.join();
  RTP_CHECK(queued_ == 0);  // workers drain every queued task before exiting
}

void ThreadPool::Submit(std::function<void()> task) {
  RTP_CHECK(task != nullptr);
  bool from_worker = tls_pool == this;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!from_worker) {
      space_available_.wait(
          lock, [this] { return queued_ < queue_capacity_ || stopping_; });
    }
    size_t shard = from_worker ? tls_worker_index : next_shard_;
    if (!from_worker) next_shard_ = (next_shard_ + 1) % shards_.size();
    shards_[shard].tasks.push_back(std::move(task));
    ++queued_;
    RTP_OBS_GAUGE_SET("exec.pool.queue_depth", queued_);
  }
  RTP_OBS_COUNT("exec.pool.tasks_submitted");
  work_available_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  RTP_CHECK(task != nullptr);
  bool from_worker = tls_pool == this;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!from_worker && queued_ >= queue_capacity_) {
      RTP_OBS_COUNT("exec.pool.tasks_rejected");
      return false;
    }
    size_t shard = from_worker ? tls_worker_index : next_shard_;
    if (!from_worker) next_shard_ = (next_shard_ + 1) % shards_.size();
    shards_[shard].tasks.push_back(std::move(task));
    ++queued_;
    RTP_OBS_GAUGE_SET("exec.pool.queue_depth", queued_);
  }
  RTP_OBS_COUNT("exec.pool.tasks_submitted");
  work_available_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

uint64_t ThreadPool::steals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steals_;
}

bool ThreadPool::TryPop(size_t worker_index, std::function<void()>* task,
                        bool* stolen) {
  // Callers hold mu_.
  Shard& own = shards_[worker_index];
  if (!own.tasks.empty()) {
    *task = std::move(own.tasks.back());  // LIFO on the own deque
    own.tasks.pop_back();
    *stolen = false;
    return true;
  }
  for (size_t k = 1; k < shards_.size(); ++k) {
    Shard& victim = shards_[(worker_index + k) % shards_.size()];
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());  // FIFO steal
      victim.tasks.pop_front();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_pool = this;
  tls_worker_index = worker_index;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_available_.wait(lock, [this] { return queued_ > 0 || stopping_; });
    std::function<void()> task;
    bool stolen = false;
    if (!TryPop(worker_index, &task, &stolen)) {
      if (stopping_) break;  // queues drained: graceful exit
      continue;
    }
    --queued_;
    ++running_;
    if (stolen) ++steals_;
    RTP_OBS_GAUGE_SET("exec.pool.queue_depth", queued_);
    lock.unlock();
    space_available_.notify_one();
    if (stolen) RTP_OBS_COUNT("exec.pool.steals");
    RunTask(&task);
    lock.lock();
    --running_;
    ++executed_;
    if (queued_ == 0 && running_ == 0) idle_.notify_all();
  }
}

void ThreadPool::RunTask(std::function<void()>* task) {
  try {
    (*task)();
  } catch (...) {
    // A throwing task must never take a worker down; parallel algorithms
    // that care (ParallelFor) capture exceptions in their own state.
    RTP_OBS_COUNT("exec.pool.task_exceptions");
    RTP_LOG(WARN) << "thread pool task threw; exception swallowed by worker";
  }
  RTP_OBS_COUNT("exec.pool.tasks_executed");
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    // Serial reference path: index order, exceptions propagate directly.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  RTP_OBS_COUNT("exec.pool.parallel_for.calls");

  // Chunked claiming: helper tasks and the calling thread pull chunk
  // indices from a shared cursor, so the caller always makes progress
  // (never blocks waiting for a queued task to be scheduled) and a nested
  // ParallelFor on a worker thread cannot deadlock.
  size_t num_chunks =
      std::min(n, static_cast<size_t>(pool->num_threads()) * 4);
  size_t chunk_size = (n + num_chunks - 1) / num_chunks;

  struct State {
    std::atomic<size_t> next_chunk{0};
    std::mutex mu;
    std::condition_variable done;
    size_t completed = 0;
    size_t num_chunks;
    std::exception_ptr error;
    size_t error_chunk;
    const std::function<void(size_t)>* fn;
    size_t n;
    size_t chunk_size;
  };
  auto state = std::make_shared<State>();
  state->num_chunks = num_chunks;
  state->error_chunk = num_chunks;
  state->fn = &fn;
  state->n = n;
  state->chunk_size = chunk_size;

  auto run_chunks = [](const std::shared_ptr<State>& s) {
    size_t c;
    while ((c = s->next_chunk.fetch_add(1, std::memory_order_relaxed)) <
           s->num_chunks) {
      size_t begin = c * s->chunk_size;
      size_t end = std::min(begin + s->chunk_size, s->n);
      std::exception_ptr error;
      try {
        for (size_t i = begin; i < end; ++i) (*s->fn)(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(s->mu);
      if (error != nullptr && c < s->error_chunk) {
        s->error = error;
        s->error_chunk = c;
      }
      if (++s->completed == s->num_chunks) s->done.notify_all();
    }
  };

  size_t helpers = std::min(num_chunks - 1,
                            static_cast<size_t>(pool->num_threads()));
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, run_chunks] { run_chunks(state); });
  }
  run_chunks(state);  // the caller helps until every chunk is claimed

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock,
                     [&] { return state->completed == state->num_chunks; });
    if (state->error != nullptr) std::rethrow_exception(state->error);
  }
}

}  // namespace rtp::exec
