#ifndef RTP_EXEC_THREAD_POOL_H_
#define RTP_EXEC_THREAD_POOL_H_

// rtp::exec — parallel execution engine for the batch-shaped workloads of
// the pipeline: the independence matrix (one criterion check per
// (fd, update-class) pair), batch FD verification across documents, and
// multi-document pattern evaluation.
//
// Design:
//   * ThreadPool owns N worker threads, each with its own deque of tasks.
//     Submissions are distributed round-robin over the worker deques; a
//     worker pops its own deque LIFO (cache locality) and, when empty,
//     steals the oldest task from a sibling's deque (FIFO steal — the
//     classic work-stealing discipline).
//   * The total number of queued-but-unstarted tasks is bounded
//     (`queue_capacity`); Submit from a non-worker thread blocks until
//     space frees up (backpressure instead of unbounded memory growth).
//     Submit from a worker thread never blocks (it would deadlock the
//     pool) — worker submissions bypass the bound.
//   * Shutdown is graceful: the destructor drains every queued task, then
//     joins the workers. A task that throws never wedges the pool — the
//     exception is counted (`exec.pool.task_exceptions`) and, for tasks
//     run through ParallelFor, captured and rethrown to the caller.
//
// Observability (see docs/PARALLELISM.md for the catalog):
//   counters exec.pool.tasks_submitted / .tasks_executed / .steals /
//            .task_exceptions / .parallel_for.calls
//   gauges   exec.pool.threads, exec.pool.queue_depth
//
// Determinism contract: the pool schedules tasks in an unspecified order.
// Every parallel algorithm built on top of it (matrix, CheckFdBatch,
// EvaluateSelectedBatch) writes results into per-task slots fixed before
// submission, so results are bit-identical for any job count — including
// jobs=1, which runs tasks inline on the calling thread without touching
// the pool at all.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtp::exec {

class ThreadPool {
 public:
  // A reasonable default for --jobs=0: the hardware concurrency (at least
  // 1; std::thread::hardware_concurrency may report 0).
  static int DefaultJobs();

  // Creates `num_threads` workers (clamped to >= 1). `queue_capacity`
  // bounds the queued-but-unstarted tasks seen by non-worker submitters.
  explicit ThreadPool(int num_threads, size_t queue_capacity = 4096);

  // Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Exceptions escaping `task` are caught and counted;
  // they never terminate a worker. Blocks when the queue bound is reached
  // (unless called from one of this pool's workers).
  void Submit(std::function<void()> task);

  // Non-blocking Submit: returns false (and does not enqueue) when the
  // queue bound is reached, instead of waiting for space. This is the
  // admission-control path for serving layers: a full queue means the
  // process is saturated, and the caller sheds the request (e.g. with a
  // RESOURCE_EXHAUSTED response) rather than stacking up blocked
  // connection threads. From one of this pool's workers it behaves like
  // Submit (worker submissions bypass the bound and always succeed).
  bool TrySubmit(std::function<void()> task);

  // Blocks until every task submitted so far has been executed.
  void Drain();

  // Lifetime counters for tests / introspection.
  uint64_t tasks_executed() const;
  uint64_t steals() const;

  // Instantaneous number of queued-but-unstarted tasks. Serving layers use
  // this to derive backoff hints (retry_after_ms) on the shed path.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queued_;
  }

  size_t queue_capacity() const { return queue_capacity_; }

 private:
  struct Shard {
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker_index);
  // Pops a task: own deque back (LIFO), then steal shard front (FIFO).
  bool TryPop(size_t worker_index, std::function<void()>* task,
              bool* stolen);
  void RunTask(std::function<void()>* task);

  mutable std::mutex mu_;
  std::condition_variable work_available_;   // workers sleep here
  std::condition_variable space_available_;  // bounded Submit sleeps here
  std::condition_variable idle_;             // Drain sleeps here
  std::vector<Shard> shards_;
  size_t next_shard_ = 0;    // round-robin submission cursor
  size_t queued_ = 0;        // total queued tasks across shards
  size_t running_ = 0;       // tasks currently executing
  size_t queue_capacity_;
  bool stopping_ = false;
  uint64_t executed_ = 0;
  uint64_t steals_ = 0;
  std::vector<std::thread> workers_;
};

// Runs fn(0), ..., fn(n-1), blocking until all calls finished.
//
//   * pool == nullptr: runs inline on the calling thread, in index order —
//     the serial reference path (used for jobs <= 1).
//   * otherwise: indices are submitted to the pool in contiguous chunks;
//     the calling thread also executes chunks, so ParallelFor never
//     deadlocks even when the pool is busy or called from a worker.
//
// If one or more calls throw, the exception of the lowest-indexed failing
// chunk is rethrown after every call has finished (deterministic error
// selection regardless of schedule).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace rtp::exec

#endif  // RTP_EXEC_THREAD_POOL_H_
