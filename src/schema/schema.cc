#include "schema/schema.h"

#include <cctype>
#include <set>

#include "regex/regex_parser.h"

namespace rtp::schema {

using automata::Guard;
using automata::HedgeAutomaton;
using automata::StateId;

namespace {

// Collects the label symbols of a content-model AST; rejects wildcards.
Status CollectSymbols(const regex::RegexNode& node, std::set<LabelId>* out) {
  switch (node.kind) {
    case regex::RegexKind::kAny:
      return InvalidArgumentError(
          "the wildcard '_' is not allowed in schema content models; list "
          "the permitted labels explicitly");
    case regex::RegexKind::kSymbol:
      out->insert(node.symbol);
      return Status::OK();
    default:
      for (const auto& child : node.children) {
        RTP_RETURN_IF_ERROR(CollectSymbols(*child, out));
      }
      return Status::OK();
  }
}

// Rewrites a label-alphabet DFA into a state-alphabet DFA using `map`.
// All explicit keys must be in `map` and `otherwise` must be dead.
regex::Dfa RemapSymbols(const regex::Dfa& dfa,
                        const std::map<LabelId, StateId>& map) {
  std::vector<regex::Dfa::State> states(dfa.NumStates());
  for (int32_t i = 0; i < dfa.NumStates(); ++i) {
    const regex::Dfa::State& src = dfa.state(i);
    RTP_CHECK_MSG(src.otherwise == regex::kDeadState,
                  "content-model DFA must not have wildcard transitions");
    states[i].accepting = src.accepting;
    for (const auto& [label, target] : src.next) {
      if (target == regex::kDeadState) continue;
      auto it = map.find(label);
      RTP_CHECK_MSG(it != map.end(), "content-model symbol not mapped");
      states[i].next.emplace(static_cast<LabelId>(it->second), target);
    }
  }
  return regex::Dfa::FromStates(std::move(states), dfa.initial());
}

regex::Dfa EmptyWordOnly() {
  regex::Dfa::State only;
  only.accepting = true;
  return regex::Dfa::FromStates({only}, 0);
}

struct Declaration {
  std::string name;
  std::string content;  // regex text; empty = no children allowed
};

// Minimal tokenizer for the schema DSL.
class SchemaParser {
 public:
  explicit SchemaParser(std::string_view input) : input_(input) {}

  Status Parse(std::vector<Declaration>* elements,
               std::vector<std::string>* roots) {
    RTP_ASSIGN_OR_RETURN(std::string kw, Ident());
    if (kw != "schema" || !Eat('{')) {
      return ParseError("schema must start with 'schema {'");
    }
    while (!Eat('}')) {
      if (Eof()) return ParseError("unterminated schema block");
      RTP_ASSIGN_OR_RETURN(std::string decl, Ident());
      if (decl == "root") {
        while (true) {
          RTP_ASSIGN_OR_RETURN(std::string name, Ident());
          roots->push_back(std::move(name));
          if (Eat(',')) continue;
          if (Eat(';')) break;
          return ParseError("expected ',' or ';' in root declaration");
        }
      } else if (decl == "element") {
        RTP_ASSIGN_OR_RETURN(std::string name, Ident());
        if (!Eat('{')) return ParseError("expected '{' after element name");
        size_t start = pos_;
        while (pos_ < input_.size() && input_[pos_] != '}') ++pos_;
        if (pos_ == input_.size()) return ParseError("unterminated content model");
        std::string content(input_.substr(start, pos_ - start));
        ++pos_;  // consume '}'
        // Trim whitespace.
        while (!content.empty() && std::isspace(
                   static_cast<unsigned char>(content.back()))) {
          content.pop_back();
        }
        size_t lead = 0;
        while (lead < content.size() &&
               std::isspace(static_cast<unsigned char>(content[lead]))) {
          ++lead;
        }
        elements->push_back(Declaration{std::move(name), content.substr(lead)});
      } else {
        return ParseError("unknown schema declaration '" + decl + "'");
      }
    }
    SkipSpace();
    if (pos_ != input_.size()) return ParseError("trailing schema content");
    return Status::OK();
  }

 private:
  bool Eof() {
    SkipSpace();
    return pos_ >= input_.size();
  }
  void SkipSpace() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' && input_.substr(pos_, 5) != "#text") {
        // '#' starts a line comment, as in the pattern DSL ('#text' is the
        // reserved text label; it never appears between declarations, but
        // keep the lexers' rules identical).
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  StatusOr<std::string> Ident() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_' || input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return ParseError("expected an identifier at offset " +
                        std::to_string(pos_));
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Schema> Schema::Parse(Alphabet* alphabet, std::string_view input) {
  std::vector<Declaration> elements;
  std::vector<std::string> roots;
  RTP_RETURN_IF_ERROR(SchemaParser(input).Parse(&elements, &roots));
  std::vector<std::pair<std::string, std::string>> models;
  models.reserve(elements.size());
  for (Declaration& d : elements) {
    models.emplace_back(std::move(d.name), std::move(d.content));
  }
  return Create(alphabet, std::move(models), std::move(roots));
}

StatusOr<Schema> Schema::Create(
    Alphabet* alphabet,
    std::vector<std::pair<std::string, std::string>> element_content_models,
    std::vector<std::string> roots) {
  Schema schema;
  schema.alphabet_ = alphabet;
  if (roots.empty()) {
    return InvalidArgumentError("schema declares no root element");
  }

  // Allocate element states first (content models may reference any
  // declared element).
  for (const auto& [name, _] : element_content_models) {
    if (Alphabet::KindOf(name) != LabelKind::kElement || name == "/") {
      return InvalidArgumentError("'" + name +
                                  "' cannot be declared as an element");
    }
    if (!schema.element_states_
             .emplace(name, schema.automaton_.AddState(false))
             .second) {
      return InvalidArgumentError("element '" + name + "' declared twice");
    }
  }

  // Attribute/text states allocated on demand.
  std::map<std::string, StateId> leaf_states;
  auto leaf_state = [&](const std::string& name) {
    auto [it, inserted] = leaf_states.emplace(name, 0);
    if (inserted) {
      StateId q = schema.automaton_.AddState(false);
      it->second = q;
      schema.automaton_.AddTransition(Guard::Label(alphabet->Intern(name)),
                                      EmptyWordOnly(), q);
    }
    return it->second;
  };

  for (const auto& [name, content] : element_content_models) {
    StateId q = schema.element_states_.at(name);
    regex::Dfa horizontal;
    if (content.empty()) {
      horizontal = EmptyWordOnly();
      schema.content_models_.emplace(name, EmptyWordOnly());
    } else {
      auto ast = regex::ParseRegex(alphabet, content);
      if (!ast.ok()) {
        return ParseError("content model of '" + name +
                          "': " + ast.status().message());
      }
      std::set<LabelId> symbols;
      RTP_RETURN_IF_ERROR(CollectSymbols(**ast, &symbols));
      std::map<LabelId, StateId> symbol_states;
      for (LabelId label : symbols) {
        const std::string& label_name = alphabet->Name(label);
        switch (alphabet->Kind(label)) {
          case LabelKind::kElement: {
            auto it = schema.element_states_.find(label_name);
            if (it == schema.element_states_.end()) {
              return InvalidArgumentError("content model of '" + name +
                                          "' references undeclared element '" +
                                          label_name + "'");
            }
            symbol_states.emplace(label, it->second);
            break;
          }
          case LabelKind::kAttribute:
          case LabelKind::kText:
            symbol_states.emplace(label, leaf_state(label_name));
            break;
        }
      }
      regex::Dfa label_dfa = regex::Dfa::FromAst(**ast).Minimize();
      horizontal = RemapSymbols(label_dfa, symbol_states);
      schema.content_models_.emplace(name, std::move(label_dfa));
    }
    schema.automaton_.AddTransition(Guard::Label(alphabet->Intern(name)),
                                    std::move(horizontal), q);
  }

  // Document root: exactly one of the declared roots as the single child
  // of "/".
  std::vector<StateId> root_states;
  for (const std::string& root : roots) {
    auto it = schema.element_states_.find(root);
    if (it == schema.element_states_.end()) {
      return InvalidArgumentError("root element '" + root + "' not declared");
    }
    root_states.push_back(it->second);
  }
  schema.roots_ = roots;
  StateId doc_state = schema.automaton_.AddState(false);
  schema.automaton_.AddTransition(
      Guard::Label(Alphabet::kRootLabel),
      automata::InterleavedHorizontal({root_states}, {}), doc_state);
  schema.automaton_.AddRootAccepting(doc_state);
  return std::move(schema);
}

automata::StateId Schema::ElementState(std::string_view label) const {
  auto it = element_states_.find(std::string(label));
  RTP_CHECK_MSG(it != element_states_.end(), "element not declared");
  return it->second;
}

}  // namespace rtp::schema
