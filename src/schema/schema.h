#ifndef RTP_SCHEMA_SCHEMA_H_
#define RTP_SCHEMA_SCHEMA_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "automata/hedge_automaton.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "regex/regex.h"
#include "xml/document.h"

namespace rtp::schema {

// A DTD-like schema, compiled to a deterministic bottom-up hedge automaton
// (the regular Bottom-Up tree automaton A_S the paper assumes for the
// schema S). Textual form:
//
//   schema {
//     root session;
//     element session { candidate* }
//     element candidate { @IDN / exam+ / level / (toBePassed|firstJob-Year) }
//     element exam { discipline / date / mark / rank }
//     element discipline { #text }
//     element toBePassed { discipline+ }
//     ...
//   }
//
// A content model is a regex (regex_ast.h syntax, '/' = concatenation)
// over child element labels, attribute labels ('@'-prefixed) and '#text';
// "{ }" declares an empty element. Every label used in a content model
// must be declared (attributes and #text are implicitly declared). A
// document is valid iff its root's children match root-decl content
// (exactly one allowed root element by default) and every element matches
// its declaration.
class Schema {
 public:
  // Parses the DSL and compiles the automaton.
  static StatusOr<Schema> Parse(Alphabet* alphabet, std::string_view input);

  // Programmatic construction: declared elements with content models, plus
  // the allowed root elements.
  static StatusOr<Schema> Create(
      Alphabet* alphabet, std::vector<std::pair<std::string, std::string>>
                              element_content_models,
      std::vector<std::string> roots);

  const automata::HedgeAutomaton& automaton() const { return automaton_; }

  bool Validate(const xml::Document& doc) const {
    RTP_OBS_COUNT("schema.validations");
    return automaton_.Accepts(doc);
  }

  // The state assigned to a given element label (testing / diagnostics).
  automata::StateId ElementState(std::string_view label) const;

  // Declared elements with their content-model DFAs over *label* symbols
  // (an element with no children allowed maps to the empty-word DFA).
  // Drives the schema-directed random document generator.
  const std::map<std::string, regex::Dfa>& content_models() const {
    return content_models_;
  }
  const std::vector<std::string>& roots() const { return roots_; }

  Alphabet* alphabet() const { return alphabet_; }

 private:
  Schema() = default;

  Alphabet* alphabet_ = nullptr;
  std::map<std::string, automata::StateId> element_states_;
  std::map<std::string, regex::Dfa> content_models_;
  std::vector<std::string> roots_;
  automata::HedgeAutomaton automaton_;
};

}  // namespace rtp::schema

#endif  // RTP_SCHEMA_SCHEMA_H_
