#ifndef RTP_FD_FD_INDEX_H_
#define RTP_FD_FD_INDEX_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "fd/fd_checker.h"
#include "fd/functional_dependency.h"
#include "xml/doc_index.h"
#include "xml/document.h"

namespace rtp::fd {

// Incremental FD maintenance in the style of the paper's related work
// [14]: keep per-context group summaries built during a full verification
// pass, and after an update re-verify only the contexts whose subtrees the
// update touched.
//
// The group structure exploits condition (a) of Definition 5: two traces
// can only conflict when they share the SAME context image, so the
// summaries decompose per context and an update at node n can only change
// the summaries of context images on the root path of n (ancestors) —
// plus contexts newly created/destroyed inside replaced regions, which are
// also descendants of the updated roots.
//
// Comparisons use 64-bit subtree hashes (exact re-verification confirms
// reported violations; hash collisions can in principle mask a violation —
// the full CheckFd remains the authoritative check; this class is the
// performance baseline the paper argues the criterion avoids).
class FdIndex {
 public:
  // Builds the index with one full verification pass. The DocIndex
  // overload shares a prebuilt snapshot across several FdIndex builds
  // against one document (results are identical); the snapshot must be
  // current — rebuild it after any structural update.
  static FdIndex Build(const FunctionalDependency& fd,
                       const xml::Document& doc);
  static FdIndex Build(const FunctionalDependency& fd,
                       const xml::DocIndex& index);

  // Builds one index per document, one pool task per document (`jobs` as
  // in fd::BatchCheckOptions). Results are indexed like `docs` and
  // identical to serial Build calls; `docs` must not repeat a Document.
  static std::vector<FdIndex> BuildMany(
      const FunctionalDependency& fd,
      const std::vector<const xml::Document*>& docs, int jobs = 1,
      exec::ThreadPool* pool = nullptr);

  // Whether the indexed document satisfied the FD at build/last-revalidate
  // time.
  bool satisfied() const { return satisfied_; }

  // Re-validates after an in-place update whose modified regions are
  // rooted at `updated_roots` (see update::ApplyStats::updated_roots).
  // Only mappings whose context image is an ancestor-or-self or a
  // descendant of an updated root are re-enumerated. Returns the new
  // satisfaction verdict and updates the index.
  bool Revalidate(const xml::Document& doc,
                  const std::vector<xml::NodeId>& updated_roots);

  // Work counter of the last Build/Revalidate: mappings enumerated.
  size_t last_pass_mappings() const { return last_pass_mappings_; }
  // Contexts re-verified by the last Revalidate.
  size_t last_pass_contexts() const { return last_pass_contexts_; }

  // Incremental revalidation requires every template node to lie on the
  // root-to-context chain or below the context (true for all FDs built
  // from path formalisms). Otherwise Revalidate falls back to a full pass.
  bool supports_incremental() const { return supports_incremental_; }

 private:
  struct Group {
    uint64_t target_hash = 0;
  };
  // Per context image: condition-key hash -> target hash. consistent_
  // flags contexts holding an internal conflict.
  struct ContextSummary {
    std::unordered_map<uint64_t, Group> groups;
    bool consistent = true;
  };

  explicit FdIndex(const FunctionalDependency& fd) : fd_(&fd) {}

  // Recomputes summaries for the given context images (or all when
  // `restrict_contexts` is false), evaluating over `index` (a snapshot of
  // the document that must be current).
  void Recompute(const xml::DocIndex& index,
                 const std::vector<xml::NodeId>& contexts,
                 bool restrict_contexts);
  void RefreshVerdict();

  const FunctionalDependency* fd_;
  std::map<xml::NodeId, ContextSummary> summaries_;
  bool supports_incremental_ = true;
  bool satisfied_ = true;
  size_t last_pass_mappings_ = 0;
  size_t last_pass_contexts_ = 0;
};

}  // namespace rtp::fd

#endif  // RTP_FD_FD_INDEX_H_
