#ifndef RTP_FD_FD_CHECKER_H_
#define RTP_FD_FD_CHECKER_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "fd/functional_dependency.h"
#include "guard/guard.h"
#include "obs/profile.h"
#include "pattern/evaluator.h"
#include "xml/doc_index.h"
#include "xml/document.h"

namespace rtp::fd {

// Witness of a violation of Definition 5: two mappings agreeing on the
// context node and on every condition (under their equality types) but
// disagreeing on the target.
struct Violation {
  pattern::Mapping first;
  pattern::Mapping second;

  std::string Describe(const xml::Document& doc,
                       const FunctionalDependency& fd) const;
};

struct CheckResult {
  bool satisfied = true;
  std::optional<Violation> violation;
  // Work counters (benchmark instrumentation).
  size_t num_mappings = 0;
  size_t num_groups = 0;
  // OK iff the check ran to completion. A resource status (deadline /
  // quota / cancellation) means `satisfied` is meaningless — a tripped
  // check reports satisfied=true with the trip recorded here.
  Status status;
};

struct CheckOptions {
  // Stop at the first violation (default) or keep counting mappings.
  bool stop_at_first_violation = true;
  // When limited (or `cancel` is set) the check runs under a GuardContext
  // covering table construction and enumeration; a trip lands in
  // CheckResult::status. In CheckFdBatch the budget applies per document.
  guard::ExecutionBudget budget;
  guard::CancelToken* cancel = nullptr;
  // When non-null, the check runs under an obs::ProfileScope and fills
  // the profile with phases (pattern.build_tables / fd.group_and_compare),
  // metric deltas, and guard-budget consumption.
  obs::QueryProfile* profile = nullptr;
};

// Checks whether `doc` satisfies `fd` (Definition 5) by enumerating the
// mappings of the FD pattern, grouping them by (context image, condition
// keys) and testing target agreement within each group. Value comparisons
// use subtree hashing with exact ValueEqual confirmation.
CheckResult CheckFd(const FunctionalDependency& fd, const xml::Document& doc,
                    const CheckOptions& options = {});

// Same check over a prebuilt document snapshot; callers checking several
// FDs against one document share the index instead of re-deriving the
// postorder/child structure per FD. Results are identical to the Document
// overload.
CheckResult CheckFd(const FunctionalDependency& fd,
                    const xml::DocIndex& index,
                    const CheckOptions& options = {});

struct BatchCheckOptions {
  CheckOptions check;
  // <= 1: serial, in document order (the reference path). When `pool` is
  // set it is used as-is and `jobs` is ignored.
  int jobs = 1;
  exec::ThreadPool* pool = nullptr;
  // When non-null, resized to docs.size(); slot i receives document i's
  // QueryProfile (overrides check.profile, which applies per item).
  std::vector<obs::QueryProfile>* profiles = nullptr;
};

// Checks one FD against many documents, one task per document. Results
// are indexed like `docs` and are bit-identical to calling CheckFd on each
// document serially, for every jobs value.
//
// Thread-safety contract: each document is visited by exactly one task, so
// `docs` must not contain the same Document twice (Document caches its
// preorder index lazily and is not internally synchronized).
std::vector<CheckResult> CheckFdBatch(
    const FunctionalDependency& fd,
    const std::vector<const xml::Document*>& docs,
    const BatchCheckOptions& options = {});

}  // namespace rtp::fd

#endif  // RTP_FD_FD_CHECKER_H_
