#ifndef RTP_FD_REFERENCE_CHECKER_H_
#define RTP_FD_REFERENCE_CHECKER_H_

#include "fd/functional_dependency.h"
#include "xml/document.h"

namespace rtp::fd {

// A literal transcription of Definition 5, used as the specification
// oracle in property tests: enumerates all mappings with the reference
// evaluator and compares every pair of traces — quadratic in the mapping
// count and exponential in the template size, so only for tiny inputs.
bool ReferenceCheckFd(const FunctionalDependency& fd,
                      const xml::Document& doc);

}  // namespace rtp::fd

#endif  // RTP_FD_REFERENCE_CHECKER_H_
