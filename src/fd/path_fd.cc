#include "fd/path_fd.h"

#include <cctype>
#include <map>
#include <memory>

#include "regex/regex.h"

namespace rtp::fd {

namespace {

bool IsPathLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':' || c == '@' || c == '#';
}

class PathFdParser {
 public:
  explicit PathFdParser(std::string_view input) : input_(input) {}

  StatusOr<PathFd> Parse() {
    PathFd fd;
    if (!Eat('(')) return Error("expected '('");
    if (!Eat('/')) return Error("context path must start with '/'");
    if (PeekLabel()) {
      RTP_ASSIGN_OR_RETURN(fd.context, ParseSteps());
    }
    if (!Eat(',')) return Error("expected ',' after context path");
    if (!Eat('(')) return Error("expected '(' starting the condition list");
    if (!Eat(')')) {
      while (true) {
        RTP_ASSIGN_OR_RETURN(PathFd::Item item, ParseItem());
        fd.conditions.push_back(std::move(item));
        if (Eat(',')) continue;
        if (Eat(')')) break;
        return Error("expected ',' or ')' in condition list");
      }
    }
    if (!(Eat('-') && Eat('>'))) return Error("expected '->'");
    RTP_ASSIGN_OR_RETURN(fd.target, ParseItem());
    if (!Eat(')')) return Error("expected final ')'");
    SkipSpace();
    if (pos_ != input_.size()) return Error("trailing characters");
    return fd;
  }

 private:
  Status Error(std::string msg) const {
    return ParseError("path fd: " + msg + " at offset " +
                      std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekLabel() {
    SkipSpace();
    return pos_ < input_.size() && IsPathLabelChar(input_[pos_]);
  }

  StatusOr<std::string> ParseLabel() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsPathLabelChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected a label");
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<std::vector<std::string>> ParseSteps() {
    std::vector<std::string> steps;
    RTP_ASSIGN_OR_RETURN(std::string first, ParseLabel());
    steps.push_back(std::move(first));
    while (true) {
      size_t save = pos_;
      if (!Eat('/')) break;
      if (!PeekLabel()) {
        pos_ = save;
        break;
      }
      RTP_ASSIGN_OR_RETURN(std::string next, ParseLabel());
      steps.push_back(std::move(next));
    }
    return steps;
  }

  StatusOr<PathFd::Item> ParseItem() {
    PathFd::Item item;
    RTP_ASSIGN_OR_RETURN(item.steps, ParseSteps());
    if (Eat('[')) {
      RTP_ASSIGN_OR_RETURN(std::string eq, ParseLabel());
      if (eq == "N") {
        item.equality = pattern::EqualityType::kNode;
      } else if (eq == "V") {
        item.equality = pattern::EqualityType::kValue;
      } else {
        return Error("equality type must be N or V");
      }
      if (!Eat(']')) return Error("expected ']'");
    }
    return item;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// Trie over label words; children kept in first-insertion order.
struct TrieNode {
  std::vector<std::pair<std::string, std::unique_ptr<TrieNode>>> children;
  // Indices into the item list (conditions then target) ending here.
  std::vector<size_t> endpoints;

  TrieNode* Child(const std::string& label) {
    for (auto& [l, child] : children) {
      if (l == label) return child.get();
    }
    children.emplace_back(label, std::make_unique<TrieNode>());
    return children.back().second.get();
  }
};

regex::Regex WordRegex(Alphabet* alphabet,
                       const std::vector<std::string>& word) {
  std::vector<regex::RegexAst> parts;
  parts.reserve(word.size());
  for (const std::string& label : word) {
    parts.push_back(regex::Sym(alphabet->Intern(label)));
  }
  regex::Regex edge = regex::Regex::FromAst(regex::Cat(std::move(parts)));
  edge.EnsureMinimalDfa();
  return edge;
}

// Emits the (chain-compressed) trie below `node` under pattern node
// `parent`, recording endpoint item -> pattern node into `item_nodes`.
void EmitTrie(Alphabet* alphabet, const TrieNode& node,
              pattern::PatternNodeId parent, pattern::TreePattern* out,
              std::vector<pattern::PatternNodeId>* item_nodes) {
  for (const auto& [label, child] : node.children) {
    // Compress the chain while the node has a single child and is not an
    // endpoint of any item.
    std::vector<std::string> word = {label};
    const TrieNode* cur = child.get();
    while (cur->children.size() == 1 && cur->endpoints.empty()) {
      word.push_back(cur->children[0].first);
      cur = cur->children[0].second.get();
    }
    pattern::PatternNodeId pattern_node =
        out->AddChild(parent, WordRegex(alphabet, word));
    for (size_t item : cur->endpoints) (*item_nodes)[item] = pattern_node;
    EmitTrie(alphabet, *cur, pattern_node, out, item_nodes);
  }
}

}  // namespace

StatusOr<PathFd> ParsePathFd(std::string_view input) {
  return PathFdParser(input).Parse();
}

StatusOr<FunctionalDependency> CompilePathFd(Alphabet* alphabet,
                                             const PathFd& path_fd) {
  // All items, conditions first, target last.
  std::vector<const PathFd::Item*> items;
  for (const PathFd::Item& c : path_fd.conditions) items.push_back(&c);
  items.push_back(&path_fd.target);
  for (const PathFd::Item* item : items) {
    if (item->steps.empty()) {
      return InvalidArgumentError(
          "path fd items must be non-empty paths relative to the context");
    }
  }

  pattern::TreePattern tree;
  pattern::PatternNodeId context = pattern::TreePattern::kRoot;
  if (!path_fd.context.empty()) {
    context = tree.AddChild(pattern::TreePattern::kRoot,
                            WordRegex(alphabet, path_fd.context));
  }

  // Build the trie of the items below the context node.
  TrieNode trie_root;
  for (size_t i = 0; i < items.size(); ++i) {
    TrieNode* cur = &trie_root;
    for (const std::string& step : items[i]->steps) cur = cur->Child(step);
    cur->endpoints.push_back(i);
  }

  std::vector<pattern::PatternNodeId> item_nodes(
      items.size(), pattern::kInvalidPatternNode);
  EmitTrie(alphabet, trie_root, context, &tree, &item_nodes);

  std::vector<pattern::SelectedNode> selected;
  selected.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    RTP_CHECK(item_nodes[i] != pattern::kInvalidPatternNode);
    selected.push_back(pattern::SelectedNode{item_nodes[i], items[i]->equality});
  }
  tree.set_selected(std::move(selected));
  return FunctionalDependency::Create(std::move(tree), context);
}

StatusOr<FunctionalDependency> ParseAndCompilePathFd(Alphabet* alphabet,
                                                     std::string_view input) {
  RTP_ASSIGN_OR_RETURN(PathFd parsed, ParsePathFd(input));
  return CompilePathFd(alphabet, parsed);
}

}  // namespace rtp::fd
