#include "fd/functional_dependency.h"

namespace rtp::fd {

StatusOr<FunctionalDependency> FunctionalDependency::Create(
    pattern::TreePattern pattern, pattern::PatternNodeId context) {
  RTP_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.selected().empty()) {
    return InvalidArgumentError(
        "a functional dependency needs at least a target node");
  }
  if (context >= pattern.NumNodes()) {
    return InvalidArgumentError("context node out of range");
  }
  for (const pattern::SelectedNode& s : pattern.selected()) {
    if (!pattern.IsAncestorOrSelf(context, s.node)) {
      return InvalidArgumentError(
          "the context node must be an ancestor of every condition/target "
          "node");
    }
  }
  return FunctionalDependency(std::move(pattern), context);
}

StatusOr<FunctionalDependency> FunctionalDependency::FromParsed(
    pattern::ParsedPattern parsed) {
  if (!parsed.context.has_value()) {
    return InvalidArgumentError(
        "the pattern DSL text lacks a 'context' clause");
  }
  return Create(std::move(parsed.pattern), *parsed.context);
}

std::vector<pattern::SelectedNode> FunctionalDependency::conditions() const {
  const auto& selected = pattern_.selected();
  return std::vector<pattern::SelectedNode>(selected.begin(),
                                            selected.end() - 1);
}

pattern::SelectedNode FunctionalDependency::target() const {
  return pattern_.selected().back();
}

std::string FunctionalDependency::ToString(const Alphabet& alphabet) const {
  std::string out = "fd with context node n" + std::to_string(context_) + "\n";
  out += pattern_.ToString(alphabet);
  return out;
}

}  // namespace rtp::fd
