#include "fd/fd_index.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/hashing.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "pattern/evaluator.h"
#include "xml/value_equality.h"

namespace rtp::fd {

using pattern::EqualityType;
using pattern::Mapping;
using pattern::SelectedNode;
using xml::Document;
using xml::NodeId;

FdIndex FdIndex::Build(const FunctionalDependency& fd, const Document& doc) {
  std::shared_ptr<const xml::DocIndex> snapshot = doc.Snapshot();
  return Build(fd, *snapshot);
}

FdIndex FdIndex::Build(const FunctionalDependency& fd,
                       const xml::DocIndex& doc_index) {
  RTP_OBS_COUNT("fd.index.builds");
  RTP_OBS_SCOPED_TIMER("fd.index.build_ns");
  FdIndex index(fd);
  // A template branch hanging off the root-to-context chain (outside the
  // context subtree) makes updates in unrelated regions able to create or
  // destroy traces of arbitrary contexts — incremental scoping would be
  // unsound there.
  for (pattern::PatternNodeId w = 0; w < fd.pattern().NumNodes(); ++w) {
    if (!fd.pattern().IsAncestorOrSelf(w, fd.context()) &&
        !fd.pattern().IsAncestorOrSelf(fd.context(), w)) {
      index.supports_incremental_ = false;
      break;
    }
  }
  index.Recompute(doc_index, {}, /*restrict_contexts=*/false);
  index.RefreshVerdict();
  return index;
}

std::vector<FdIndex> FdIndex::BuildMany(
    const FunctionalDependency& fd,
    const std::vector<const Document*>& docs, int jobs,
    exec::ThreadPool* pool) {
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && jobs > 1) {
    owned_pool.emplace(jobs);
    pool = &*owned_pool;
  }
  std::vector<std::optional<FdIndex>> built(docs.size());
  exec::ParallelFor(pool, docs.size(), [&](size_t i) {
    built[i] = Build(fd, *docs[i]);
  });
  std::vector<FdIndex> results;
  results.reserve(docs.size());
  for (std::optional<FdIndex>& index : built) {
    results.push_back(std::move(*index));
  }
  return results;
}

void FdIndex::Recompute(const xml::DocIndex& doc_index,
                        const std::vector<NodeId>& contexts,
                        bool restrict_contexts) {
  const Document& doc = doc_index.doc();
  std::set<NodeId> scope(contexts.begin(), contexts.end());
  if (restrict_contexts) {
    size_t summaries_before = summaries_.size();
    size_t erased = 0;
    for (NodeId c : contexts) erased += summaries_.erase(c);
    // Summaries that survive the erase are reused verbatim — the whole
    // point of the incremental pass.
    RTP_OBS_COUNT_N("fd.index.reuse_hits", summaries_before - erased);
    RTP_OBS_COUNT_N("fd.index.contexts_rescanned", contexts.size());
    last_pass_contexts_ = contexts.size();
  } else {
    RTP_OBS_COUNT("fd.index.full_recomputes");
    summaries_.clear();
    last_pass_contexts_ = 0;
  }

  pattern::MatchTables tables =
      pattern::MatchTables::Build(fd_->pattern(), doc_index);
  pattern::MappingEnumerator enumerator(tables);
  const pattern::PatternNodeId context_node = fd_->context();
  if (restrict_contexts) {
    enumerator.set_assign_filter(
        [&scope, context_node](pattern::PatternNodeId w, NodeId v) {
          // Prune whole subtrees of the search as soon as the context
          // image is fixed outside the scope.
          return w != context_node || scope.count(v) > 0;
        });
  }

  const std::vector<SelectedNode>& selected = fd_->pattern().selected();
  const size_t num_conditions = selected.size() - 1;
  const SelectedNode target = selected.back();

  xml::SubtreeHashCache hash_cache(doc);
  auto selected_key = [&](const SelectedNode& s, NodeId image) {
    return s.equality == EqualityType::kNode ? static_cast<uint64_t>(image)
                                             : hash_cache.Hash(image);
  };

  last_pass_mappings_ = 0;
  RTP_OBS_COUNT("fd.index.passes");
  enumerator.ForEach([&](const Mapping& m) {
    ++last_pass_mappings_;
    NodeId context_image = m.image[context_node];
    uint64_t key = 0;
    for (size_t i = 0; i < num_conditions; ++i) {
      key = HashMix(key, selected_key(selected[i], m.image[selected[i].node]));
    }
    uint64_t target_hash = selected_key(target, m.image[target.node]);
    ContextSummary& summary = summaries_[context_image];
    auto [it, inserted] = summary.groups.try_emplace(key, Group{target_hash});
    if (!inserted && it->second.target_hash != target_hash) {
      summary.consistent = false;
    }
    return true;
  });
  RTP_OBS_COUNT_N("fd.index.mappings_enumerated", last_pass_mappings_);
}

void FdIndex::RefreshVerdict() {
  satisfied_ = std::all_of(
      summaries_.begin(), summaries_.end(),
      [](const auto& entry) { return entry.second.consistent; });
}

bool FdIndex::Revalidate(const Document& doc,
                         const std::vector<NodeId>& updated_roots) {
  RTP_OBS_COUNT("fd.index.revalidations");
  RTP_OBS_SCOPED_TIMER("fd.index.revalidate_ns");
  // The update mutated the tree, which dropped the document's cached
  // snapshot; this rebuilds it once for the pass (and for any later
  // evaluation against the unchanged document).
  std::shared_ptr<const xml::DocIndex> snapshot = doc.Snapshot();
  const xml::DocIndex& doc_index = *snapshot;
  if (!supports_incremental_) {
    RTP_OBS_COUNT("fd.index.fallback_full");
    Recompute(doc_index, {}, /*restrict_contexts=*/false);
    RefreshVerdict();
    return satisfied_;
  }
  RTP_OBS_COUNT("fd.index.incremental_passes");
  // Affected contexts: previously-indexed contexts on the root paths of
  // the updated roots or inside the updated regions, plus any current
  // context image in those regions or on those paths (newly created ones).
  std::set<NodeId> affected;
  for (NodeId root : updated_roots) {
    // Ancestors-or-self among known contexts.
    for (const auto& [context, _] : summaries_) {
      if (doc.IsAncestorOrSelf(context, root) ||
          doc.IsAncestorOrSelf(root, context)) {
        affected.insert(context);
      }
    }
  }
  // Contexts that newly appeared inside updated regions: find current
  // context images under the updated roots by evaluating the context
  // prefix of the pattern. Cheap approximation: any node below an updated
  // root is a candidate context; the assign filter below admits exactly
  // those plus the known affected set.
  for (NodeId root : updated_roots) {
    doc.VisitFrom(root, [&affected](NodeId n) {
      affected.insert(n);
      return true;
    });
    // Ancestors of the updated root may also host new traces that pass
    // through the modified region. Their summaries must be rebuilt too.
    for (NodeId cur = root;; cur = doc.parent(cur)) {
      affected.insert(cur);
      if (cur == doc.root()) break;
    }
  }

  Recompute(doc_index, std::vector<NodeId>(affected.begin(), affected.end()),
            /*restrict_contexts=*/true);
  RefreshVerdict();
  return satisfied_;
}

}  // namespace rtp::fd
