#ifndef RTP_FD_FUNCTIONAL_DEPENDENCY_H_
#define RTP_FD_FUNCTIONAL_DEPENDENCY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pattern/pattern_parser.h"
#include "pattern/tree_pattern.h"

namespace rtp::fd {

// An XML functional dependency fd = (FD, c) of Definition 4: a regular tree
// pattern whose selected tuple is (p1[E1], ..., pn[En], q[E(n+1)]) — the
// conditions followed by the target — plus a context node c that is an
// ancestor of every selected node.
class FunctionalDependency {
 public:
  // The pattern must have at least one selected node (the last one is the
  // target); `context` must be an ancestor-or-self of every selected node.
  static StatusOr<FunctionalDependency> Create(pattern::TreePattern pattern,
                                               pattern::PatternNodeId context);

  // Builds from a parsed DSL pattern carrying a "context" clause.
  static StatusOr<FunctionalDependency> FromParsed(
      pattern::ParsedPattern parsed);

  const pattern::TreePattern& pattern() const { return pattern_; }
  pattern::PatternNodeId context() const { return context_; }

  // Condition nodes p1..pn (possibly empty: a "constant" dependency).
  std::vector<pattern::SelectedNode> conditions() const;
  // Target node q with its equality type.
  pattern::SelectedNode target() const;

  std::string ToString(const Alphabet& alphabet) const;

 private:
  FunctionalDependency(pattern::TreePattern pattern,
                       pattern::PatternNodeId context)
      : pattern_(std::move(pattern)), context_(context) {}

  pattern::TreePattern pattern_;
  pattern::PatternNodeId context_;
};

}  // namespace rtp::fd

#endif  // RTP_FD_FUNCTIONAL_DEPENDENCY_H_
