#include "fd/reference_checker.h"

#include "pattern/reference_evaluator.h"
#include "xml/value_equality.h"

namespace rtp::fd {

using pattern::EqualityType;
using pattern::Mapping;
using pattern::SelectedNode;

namespace {

bool SelectedEqual(const xml::Document& doc, const SelectedNode& s,
                   xml::NodeId a, xml::NodeId b) {
  if (s.equality == EqualityType::kNode) return a == b;
  return xml::ValueEqual(doc, a, b);
}

}  // namespace

bool ReferenceCheckFd(const FunctionalDependency& fd,
                      const xml::Document& doc) {
  std::vector<Mapping> mappings =
      pattern::ReferenceEnumerateMappings(fd.pattern(), doc);
  const auto& selected = fd.pattern().selected();
  const size_t n = selected.size() - 1;  // conditions
  for (size_t i = 0; i < mappings.size(); ++i) {
    for (size_t j = 0; j < mappings.size(); ++j) {
      const Mapping& m1 = mappings[i];
      const Mapping& m2 = mappings[j];
      // (a) same context image.
      if (m1.image[fd.context()] != m2.image[fd.context()]) continue;
      // (b) all conditions equal under their equality types.
      bool conditions_equal = true;
      for (size_t k = 0; k < n && conditions_equal; ++k) {
        conditions_equal =
            SelectedEqual(doc, selected[k], m1.image[selected[k].node],
                          m2.image[selected[k].node]);
      }
      if (!conditions_equal) continue;
      // Then the targets must be equal as well.
      if (!SelectedEqual(doc, selected[n], m1.image[selected[n].node],
                         m2.image[selected[n].node])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rtp::fd
