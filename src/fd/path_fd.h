#ifndef RTP_FD_PATH_FD_H_
#define RTP_FD_PATH_FD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fd/functional_dependency.h"

namespace rtp::fd {

// The path-based XML functional dependency formalism the paper compares
// against (reference [8] there): an expression
//
//   (C, (P1[E1], ..., Pn[En]) -> Q[E(n+1)])
//
// where C is an absolute simple linear path selecting the context node and
// the Pi / Q are simple linear paths relative to the context. Section 3.2
// of the paper shows how to translate such an expression into a regular
// tree pattern by factorizing longest common prefixes; CompilePathFd
// implements exactly that construction.
struct PathFd {
  struct Item {
    // Slash-separated label steps, e.g. "candidate/exam/discipline".
    std::vector<std::string> steps;
    pattern::EqualityType equality = pattern::EqualityType::kValue;
  };

  // Context path (absolute; empty = the document root).
  std::vector<std::string> context;
  std::vector<Item> conditions;
  Item target;
};

// Parses the textual form, e.g.
//   (/session, (candidate/exam/discipline, candidate/exam/mark)
//       -> candidate/exam/rank)
// An item may carry an equality suffix "[N]" or "[V]" (default V).
StatusOr<PathFd> ParsePathFd(std::string_view input);

// Translates into a regular tree pattern per Section 3.2: the context path
// becomes an edge from the template root to the context node; the longest
// common prefixes among {P1..Pn, Q} are factorized into shared internal
// nodes; chains without branching are compressed into single word-labeled
// edges. Sibling edges are ordered by first occurrence in (P1,...,Pn,Q) —
// the ordering requirement the pattern semantics adds to [8]. Items with
// identical paths share one template node.
StatusOr<FunctionalDependency> CompilePathFd(Alphabet* alphabet,
                                             const PathFd& path_fd);

// Convenience: parse + compile.
StatusOr<FunctionalDependency> ParseAndCompilePathFd(Alphabet* alphabet,
                                                     std::string_view input);

}  // namespace rtp::fd

#endif  // RTP_FD_PATH_FD_H_
