#include "fd/fd_checker.h"

#include <unordered_map>
#include <vector>

#include "common/hashing.h"
#include "guard/failpoints.h"
#include "guard/guard.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "xml/value_equality.h"
#include "xml/xml_io.h"

namespace rtp::fd {

using pattern::EqualityType;
using pattern::Mapping;
using pattern::SelectedNode;
using xml::Document;
using xml::NodeId;

namespace {

// One representative mapping per (context, conditions) group.
struct GroupEntry {
  Mapping mapping;
  uint64_t target_hash = 0;
};

bool SelectedEqual(const Document& doc, const SelectedNode& s, NodeId a,
                   NodeId b) {
  if (s.equality == EqualityType::kNode) return a == b;
  return xml::ValueEqual(doc, a, b);
}

}  // namespace

std::string Violation::Describe(const Document& doc,
                                const FunctionalDependency& fd) const {
  std::string out =
      "violation: two traces agree on context and conditions but differ on "
      "the target\n";
  const auto& selected = fd.pattern().selected();
  auto render = [&](const Mapping& m, const char* tag) {
    out += std::string(tag) + ": context node #" +
           std::to_string(m.image[fd.context()]) + "\n";
    for (size_t i = 0; i < selected.size(); ++i) {
      NodeId image = m.image[selected[i].node];
      const char* role = (i + 1 == selected.size()) ? "target" : "condition";
      out += "  " + std::string(role) + " " + doc.label_name(image) + " = " +
             xml::WriteXmlSubtree(doc, image, /*indent=*/false) + "\n";
    }
  };
  render(first, "trace 1");
  render(second, "trace 2");
  return out;
}

namespace {

CheckResult CheckFdImpl(const FunctionalDependency& fd,
                        pattern::MatchTables tables,
                        const CheckOptions& options) {
  RTP_OBS_COUNT("fd.check.calls");
  RTP_OBS_SCOPED_TIMER("fd.check.ns");
  // Enumeration + grouping; table construction runs (and is spanned)
  // before this via the MatchTables::Build argument.
  RTP_OBS_TRACE_SPAN("fd.group_and_compare");
  RTP_FAILPOINT("fd.check");
  const Document& doc = tables.doc();
  CheckResult result;
  pattern::MappingEnumerator enumerator(tables);
  xml::SubtreeHashCache hashes(doc);

  const std::vector<SelectedNode>& selected = fd.pattern().selected();
  const size_t num_conditions = selected.size() - 1;
  const SelectedNode target = selected.back();

  // Group key hash -> entries (collision bucket).
  std::unordered_map<uint64_t, std::vector<GroupEntry>> groups;

  size_t group_comparisons = 0;
  enumerator.ForEach([&](const Mapping& m) {
    ++result.num_mappings;
    NodeId context_image = m.image[fd.context()];
    uint64_t key = HashMix(0, context_image);
    for (size_t i = 0; i < num_conditions; ++i) {
      NodeId image = m.image[selected[i].node];
      uint64_t h = selected[i].equality == EqualityType::kNode
                       ? static_cast<uint64_t>(image)
                       : hashes.Hash(image);
      key = HashMix(key, h);
    }
    NodeId target_image = m.image[target.node];
    uint64_t target_hash = target.equality == EqualityType::kNode
                               ? static_cast<uint64_t>(target_image)
                               : hashes.Hash(target_image);

    auto& bucket = groups[key];
    for (GroupEntry& entry : bucket) {
      ++group_comparisons;
      // Confirm exact group equality (guards against hash collisions).
      if (entry.mapping.image[fd.context()] != context_image) continue;
      bool same_group = true;
      for (size_t i = 0; i < num_conditions && same_group; ++i) {
        same_group = SelectedEqual(doc, selected[i],
                                   entry.mapping.image[selected[i].node],
                                   m.image[selected[i].node]);
      }
      if (!same_group) continue;
      // Same group: targets must agree.
      bool targets_equal =
          entry.target_hash == target_hash &&
          SelectedEqual(doc, target, entry.mapping.image[target.node],
                        target_image);
      if (!targets_equal) {
        result.satisfied = false;
        if (!result.violation.has_value()) {
          result.violation = Violation{entry.mapping, m};
        }
        return !options.stop_at_first_violation;
      }
      return true;  // consistent with the representative
    }
    bucket.push_back(GroupEntry{m, target_hash});
    ++result.num_groups;
    return true;
  });
  RTP_OBS_COUNT_N("fd.check.traces_enumerated", result.num_mappings);
  RTP_OBS_COUNT_N("fd.check.groups_created", result.num_groups);
  RTP_OBS_COUNT_N("fd.check.group_comparisons", group_comparisons);
  if (!result.satisfied) RTP_OBS_COUNT("fd.check.violations");
  return result;
}

}  // namespace

CheckResult CheckFd(const FunctionalDependency& fd, const Document& doc,
                    const CheckOptions& options) {
  // The scope must wrap MatchTables::Build too — table construction, not
  // enumeration, is where large documents spend their budget. The
  // ProfileScope sits inside the guard scope so the profile can read the
  // budget consumption and trip status at close.
  guard::OptionalGuardScope scope(options.budget, options.cancel);
  obs::ProfileScope prof("fd.CheckFd", options.profile);
  CheckResult result = CheckFdImpl(
      fd, pattern::MatchTables::Build(fd.pattern(), doc), options);
  result.status = guard::CurrentStatus();
  return result;
}

CheckResult CheckFd(const FunctionalDependency& fd,
                    const xml::DocIndex& index, const CheckOptions& options) {
  guard::OptionalGuardScope scope(options.budget, options.cancel);
  obs::ProfileScope prof("fd.CheckFd", options.profile);
  CheckResult result = CheckFdImpl(
      fd, pattern::MatchTables::Build(fd.pattern(), index), options);
  result.status = guard::CurrentStatus();
  return result;
}

std::vector<CheckResult> CheckFdBatch(
    const FunctionalDependency& fd,
    const std::vector<const xml::Document*>& docs,
    const BatchCheckOptions& options) {
  RTP_OBS_COUNT("fd.check.batches");
  RTP_OBS_SCOPED_TIMER("fd.check.batch_ns");
  exec::ThreadPool* pool = options.pool;
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && options.jobs > 1) {
    owned_pool.emplace(options.jobs);
    pool = &*owned_pool;
  }
  if (options.profiles != nullptr) {
    options.profiles->assign(docs.size(), obs::QueryProfile());
  }
  std::vector<CheckResult> results(docs.size());
  exec::ParallelFor(pool, docs.size(), [&](size_t i) {
    // Pre-cancelled items skip the work entirely so a cancelled batch
    // drains the pool quickly; CheckFd installs the per-document guard.
    if (options.check.cancel != nullptr && options.check.cancel->cancelled()) {
      results[i].status = CancelledError("cancelled before check");
      return;
    }
    CheckOptions item_options = options.check;
    if (options.profiles != nullptr) {
      item_options.profile = &(*options.profiles)[i];
    }
    results[i] = CheckFd(fd, *docs[i], item_options);
  });
  return results;
}

}  // namespace rtp::fd
