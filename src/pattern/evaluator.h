#ifndef RTP_PATTERN_EVALUATOR_H_
#define RTP_PATTERN_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"
#include "pattern/tree_pattern.h"
#include "xml/document.h"

namespace rtp::pattern {

// A mapping of Definition 2: image[w] is the document node that template
// node w maps to. Paths are implicit — between an ancestor and a descendant
// of a tree there is exactly one descending path, so a mapping is fully
// determined by the images.
struct Mapping {
  std::vector<xml::NodeId> image;
};

// Bottom-up realizability tables for evaluating a pattern on a document.
//
//  Delivers(v, w, s): inside the subtree rooted at v there is an endpoint u
//    such that the unique path v..u, fed to the DFA of edge (parent(w), w)
//    starting from state s (reading v's label first), is accepted and u
//    realizes w.
//  Realizes(v, w): v can serve as the image of template node w: its child
//    list contains, in order, distinct children delivering each outgoing
//    edge of w from its initial state.
//
// Building the tables costs O(|D| * |R|)-ish time and memory and answers
// "does D contain a trace of R" directly; enumeration is then guided by the
// tables so dead branches are never explored.
class MatchTables {
 public:
  static MatchTables Build(const TreePattern& pattern,
                           const xml::Document& doc);

  const TreePattern& pattern() const { return *pattern_; }
  const xml::Document& doc() const { return *doc_; }

  // True iff there is at least one mapping of the pattern on the document.
  bool HasTrace() const {
    return Realizes(doc_->root(), TreePattern::kRoot);
  }

  bool Realizes(xml::NodeId v, PatternNodeId w) const {
    return GetBit(realizes_, v, node_words_, w);
  }
  // `s` is the DFA state of edge (parent(w), w) before reading v's label.
  bool Delivers(xml::NodeId v, PatternNodeId w, int32_t s) const {
    return GetBit(delivers_, v, pair_words_,
                  pair_offset_[w] + static_cast<uint32_t>(s));
  }

 private:
  static bool GetBit(const std::vector<uint64_t>& bits, xml::NodeId v,
                     size_t words, uint32_t index) {
    return (bits[v * words + index / 64] >> (index % 64)) & 1;
  }
  static void SetBit(std::vector<uint64_t>* bits, xml::NodeId v, size_t words,
                     uint32_t index) {
    (*bits)[v * words + index / 64] |= uint64_t{1} << (index % 64);
  }

  const TreePattern* pattern_ = nullptr;
  const xml::Document* doc_ = nullptr;
  std::vector<uint32_t> pair_offset_;  // per template node; [0] unused
  uint32_t num_pairs_ = 0;
  size_t pair_words_ = 0;
  size_t node_words_ = 0;
  std::vector<uint64_t> delivers_;  // arena-indexed bitsets
  std::vector<uint64_t> realizes_;

  friend class MappingEnumerator;
};

// Enumerates mappings (Definition 2) of a pattern on a document, guided by
// prebuilt MatchTables.
class MappingEnumerator {
 public:
  // `fn` is invoked once per mapping; returning false stops enumeration.
  using Callback = std::function<bool(const Mapping&)>;

  explicit MappingEnumerator(const MatchTables& tables) : tables_(tables) {}

  // Returns the number of mappings visited (all of them unless the
  // callback stopped early).
  size_t ForEach(const Callback& fn);

  // Total number of mappings, stopping at `limit` if nonzero.
  size_t Count(size_t limit = 0);

  // Optional pruning hook: called whenever a template node is tentatively
  // assigned an image; returning false discards every mapping extending
  // the assignment. Used e.g. to restrict enumeration to mappings whose
  // context image lies in a given set (incremental FD maintenance).
  using AssignFilter = std::function<bool(PatternNodeId, xml::NodeId)>;
  void set_assign_filter(AssignFilter filter) {
    assign_filter_ = std::move(filter);
  }

 private:
  bool ExpandTasks(size_t task_index);
  bool ChooseEdge(PatternNodeId w, xml::NodeId v, size_t edge_index,
                  xml::NodeId from_child, size_t task_index);
  bool ForEachEndpoint(xml::NodeId v, PatternNodeId w, int32_t s,
                       const std::function<bool(xml::NodeId)>& yield);

  const MatchTables& tables_;
  AssignFilter assign_filter_;
  const Callback* fn_ = nullptr;
  Mapping current_;
  std::vector<std::pair<PatternNodeId, xml::NodeId>> tasks_;
  size_t visited_ = 0;
  // Per-ForEach work tallies, flushed to obs counters in one batch so the
  // enumeration recursion never touches an atomic.
  size_t assignments_tried_ = 0;
  size_t assignments_filtered_ = 0;
};

// Identification phase (a) of evaluation: the distinct tuples of document
// nodes selected by the pattern (the roots of the subtree tuples of R(D)),
// in first-encountered order.
std::vector<std::vector<xml::NodeId>> EvaluateSelected(
    const TreePattern& pattern, const xml::Document& doc);

// Evaluates one pattern against many documents, one pool task per
// document (`jobs` <= 1 runs serially; a non-null `pool` overrides
// `jobs`). Results are indexed like `docs` and bit-identical to serial
// EvaluateSelected calls for every jobs value. `docs` must not repeat a
// Document (its lazy preorder index is not internally synchronized).
std::vector<std::vector<std::vector<xml::NodeId>>> EvaluateSelectedBatch(
    const TreePattern& pattern, const std::vector<const xml::Document*>& docs,
    int jobs = 1, exec::ThreadPool* pool = nullptr);

// The trace of a mapping: the smallest subtree of the document containing
// the image of the template (union of the root-to-image paths). Returned
// sorted by node id.
std::vector<xml::NodeId> TraceOf(const xml::Document& doc,
                                 const Mapping& mapping);

}  // namespace rtp::pattern

#endif  // RTP_PATTERN_EVALUATOR_H_
