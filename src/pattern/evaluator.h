#ifndef RTP_PATTERN_EVALUATOR_H_
#define RTP_PATTERN_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "guard/guard.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "pattern/tree_pattern.h"
#include "regex/dense_dfa.h"
#include "xml/doc_index.h"
#include "xml/document.h"

namespace rtp::pattern {

// A mapping of Definition 2: image[w] is the document node that template
// node w maps to. Paths are implicit — between an ancestor and a descendant
// of a tree there is exactly one descending path, so a mapping is fully
// determined by the images.
struct Mapping {
  std::vector<xml::NodeId> image;
};

// Bottom-up realizability tables for evaluating a pattern on a document.
//
//  Delivers(v, w, s): inside the subtree rooted at v there is an endpoint u
//    such that the unique path v..u, fed to the DFA of edge (parent(w), w)
//    starting from state s (reading v's label first), is accepted and u
//    realizes w.
//  Realizes(v, w): v can serve as the image of template node w: its child
//    list contains, in order, distinct children delivering each outgoing
//    edge of w from its initial state.
//
// Building the tables costs O(|D| * |R|)-ish time and memory and answers
// "does D contain a trace of R" directly; enumeration is then guided by the
// tables so dead branches are never explored.
//
// The build runs on the dense kernel: each edge's regex::DenseDfa (flat
// column-major transition table) over an xml::DocIndex (frozen postorder /
// child-span / label-column snapshot). The Document overload snapshots the
// document itself; the DocIndex overload lets callers evaluating several
// patterns or FDs against one document share a single snapshot. Outputs
// are bit-identical either way.
class MatchTables {
 public:
  static MatchTables Build(const TreePattern& pattern,
                           const xml::Document& doc);
  static MatchTables Build(const TreePattern& pattern,
                           const xml::DocIndex& index);

  const TreePattern& pattern() const { return *pattern_; }
  const xml::Document& doc() const { return index_->doc(); }
  const xml::DocIndex& index() const { return *index_; }

  // True iff there is at least one mapping of the pattern on the document.
  bool HasTrace() const {
    return Realizes(index_->root(), TreePattern::kRoot);
  }

  bool Realizes(xml::NodeId v, PatternNodeId w) const {
    return GetBit(realizes_, v, node_words_, w);
  }
  // `s` is the DFA state of edge (parent(w), w) before reading v's label.
  bool Delivers(xml::NodeId v, PatternNodeId w, int32_t s) const {
    return GetBit(delivers_, v, pair_words_,
                  pair_offset_[w] + static_cast<uint32_t>(s));
  }

 private:
  static MatchTables BuildImpl(const TreePattern& pattern,
                               const xml::DocIndex& index,
                               std::shared_ptr<const xml::DocIndex> owned);

  static bool GetBit(const std::vector<uint64_t>& bits, xml::NodeId v,
                     size_t words, uint32_t index) {
    return (bits[v * words + index / 64] >> (index % 64)) & 1;
  }
  static void SetBit(std::vector<uint64_t>* bits, xml::NodeId v, size_t words,
                     uint32_t index) {
    (*bits)[v * words + index / 64] |= uint64_t{1} << (index % 64);
  }

  const TreePattern* pattern_ = nullptr;
  std::shared_ptr<const xml::DocIndex> owned_index_;  // Document overload
  const xml::DocIndex* index_ = nullptr;
  std::vector<const regex::DenseDfa*> edge_dfa_;  // per template node; [0] null
  std::vector<uint32_t> pair_offset_;  // per template node; [0] unused
  uint32_t num_pairs_ = 0;
  size_t pair_words_ = 0;
  size_t node_words_ = 0;
  std::vector<uint64_t> delivers_;  // arena-indexed bitsets
  std::vector<uint64_t> realizes_;

  friend class MappingEnumerator;
};

// Enumerates mappings (Definition 2) of a pattern on a document, guided by
// prebuilt MatchTables. The callbacks are templated callables (not
// std::function), so a ForEach pass allocates nothing beyond the reused
// task stack.
class MappingEnumerator {
 public:
  explicit MappingEnumerator(const MatchTables& tables) : tables_(tables) {}

  // `fn` is invoked once per mapping (signature bool(const Mapping&));
  // returning false stops enumeration. Returns the number of mappings
  // visited (all of them unless the callback stopped early).
  template <typename Fn>
  size_t ForEach(Fn&& fn);

  // Total number of mappings, stopping at `limit` if nonzero.
  size_t Count(size_t limit = 0);

  // Optional pruning hook: called whenever a template node is tentatively
  // assigned an image; returning false discards every mapping extending
  // the assignment. Used e.g. to restrict enumeration to mappings whose
  // context image lies in a given set (incremental FD maintenance). Cold
  // path, so type erasure is fine here.
  using AssignFilter = std::function<bool(PatternNodeId, xml::NodeId)>;
  void set_assign_filter(AssignFilter filter) {
    assign_filter_ = std::move(filter);
  }

 private:
  template <typename Fn>
  bool ExpandTasks(size_t task_index, Fn& fn);
  template <typename Fn>
  bool ChooseEdge(PatternNodeId w, xml::NodeId v, size_t edge_index,
                  size_t from_child, size_t task_index, Fn& fn);
  template <typename Yield>
  bool ForEachEndpoint(xml::NodeId v, PatternNodeId w, int32_t s,
                       Yield&& yield);

  const MatchTables& tables_;
  AssignFilter assign_filter_;
  Mapping current_;
  std::vector<std::pair<PatternNodeId, xml::NodeId>> tasks_;
  size_t visited_ = 0;
  // Per-ForEach work tallies, flushed to obs counters in one batch so the
  // enumeration recursion never touches an atomic.
  size_t assignments_tried_ = 0;
  size_t assignments_filtered_ = 0;
};

// Identification phase (a) of evaluation: the distinct tuples of document
// nodes selected by the pattern (the roots of the subtree tuples of R(D)),
// in first-encountered order. The DocIndex overload shares a prebuilt
// document snapshot (multi-pattern callers); results are identical.
std::vector<std::vector<xml::NodeId>> EvaluateSelected(
    const TreePattern& pattern, const xml::Document& doc);
std::vector<std::vector<xml::NodeId>> EvaluateSelected(
    const TreePattern& pattern, const xml::DocIndex& index);

// Profiled overloads: when `profile` is non-null the evaluation runs
// under an obs::ProfileScope and fills it with the phase tree
// (pattern.build_tables / pattern.enumerate), metric deltas, and guard
// accounting. Null `profile` is identical to the overloads above.
std::vector<std::vector<xml::NodeId>> EvaluateSelected(
    const TreePattern& pattern, const xml::Document& doc,
    obs::QueryProfile* profile);
std::vector<std::vector<xml::NodeId>> EvaluateSelected(
    const TreePattern& pattern, const xml::DocIndex& index,
    obs::QueryProfile* profile);

// Evaluates one pattern against many documents, one pool task per
// document (`jobs` <= 1 runs serially; a non-null `pool` overrides
// `jobs`). Results are indexed like `docs` and bit-identical to serial
// EvaluateSelected calls for every jobs value. `docs` must not repeat a
// Document (its lazy preorder index is not internally synchronized).
std::vector<std::vector<std::vector<xml::NodeId>>> EvaluateSelectedBatch(
    const TreePattern& pattern, const std::vector<const xml::Document*>& docs,
    int jobs = 1, exec::ThreadPool* pool = nullptr);

// Options for the guarded batch overload. The budget applies per document
// (deadline measured from that document's start), so one pathological
// document trips alone while the rest of the batch completes; the cancel
// token is shared, so cancelling drains the whole batch quickly.
struct EvalBatchOptions {
  int jobs = 1;
  exec::ThreadPool* pool = nullptr;  // non-null overrides `jobs`
  guard::ExecutionBudget budget;     // per document; default unlimited
  guard::CancelToken* cancel = nullptr;
  // When non-null, resized to docs.size(); slot i receives document i's
  // QueryProfile (captured on the worker that evaluated it, so batch
  // items are individually attributed even under pool fan-out).
  std::vector<obs::QueryProfile>* profiles = nullptr;
};

// Guarded batch evaluation. When `statuses` is non-null it is resized to
// docs.size(); slot i holds OK iff results[i] is trustworthy, else the
// resource status that tripped that document (whose result slot is empty).
std::vector<std::vector<std::vector<xml::NodeId>>> EvaluateSelectedBatch(
    const TreePattern& pattern, const std::vector<const xml::Document*>& docs,
    const EvalBatchOptions& options, std::vector<Status>* statuses = nullptr);

// The trace of a mapping: the smallest subtree of the document containing
// the image of the template (union of the root-to-image paths). Returned
// sorted by node id.
std::vector<xml::NodeId> TraceOf(const xml::Document& doc,
                                 const Mapping& mapping);

// ---------------------------------------------------------------------------
// MappingEnumerator template implementation.

template <typename Fn>
size_t MappingEnumerator::ForEach(Fn&& fn) {
  visited_ = 0;
  assignments_tried_ = 0;
  assignments_filtered_ = 0;
  RTP_OBS_COUNT("pattern.eval.enumerations");
  if (!tables_.HasTrace()) {
    RTP_OBS_COUNT("pattern.eval.no_trace");
    return 0;
  }
  const xml::NodeId root = tables_.index().root();
  if (assign_filter_ && !assign_filter_(TreePattern::kRoot, root)) {
    return 0;
  }
  current_.image.assign(tables_.pattern().NumNodes(), xml::kInvalidNode);
  current_.image[TreePattern::kRoot] = root;
  tasks_.clear();
  tasks_.emplace_back(TreePattern::kRoot, root);
  ExpandTasks(0, fn);
  RTP_OBS_COUNT_N("pattern.eval.mappings_visited", visited_);
  RTP_OBS_COUNT_N("pattern.eval.assignments_tried", assignments_tried_);
  RTP_OBS_COUNT_N("pattern.eval.assignments_filtered", assignments_filtered_);
  return visited_;
}

template <typename Fn>
bool MappingEnumerator::ExpandTasks(size_t task_index, Fn& fn) {
  if (task_index == tasks_.size()) {
    // One guard step per complete mapping; a trip aborts enumeration and
    // the caller surfaces guard::CurrentStatus() instead of the partial
    // tuple set.
    if (!guard::KeepGoing()) return false;
    ++visited_;
    return fn(static_cast<const Mapping&>(current_));
  }
  auto [w, v] = tasks_[task_index];
  return ChooseEdge(w, v, 0, 0, task_index, fn);
}

template <typename Fn>
bool MappingEnumerator::ChooseEdge(PatternNodeId w, xml::NodeId v,
                                   size_t edge_index, size_t from_child,
                                   size_t task_index, Fn& fn) {
  const TreePattern& pattern = tables_.pattern();
  const xml::DocIndex& index = tables_.index();
  const std::vector<PatternNodeId>& edges = pattern.children(w);
  if (edge_index == edges.size()) return ExpandTasks(task_index + 1, fn);

  PatternNodeId target = edges[edge_index];
  int32_t init = tables_.edge_dfa_[target]->initial();
  std::span<const xml::NodeId> kids = index.Children(v);
  for (size_t ci = from_child; ci < kids.size(); ++ci) {
    xml::NodeId c = kids[ci];
    if (!tables_.Delivers(c, target, init)) continue;
    bool keep_going =
        ForEachEndpoint(c, target, init, [&](xml::NodeId endpoint) {
          ++assignments_tried_;
          if (assign_filter_ && !assign_filter_(target, endpoint)) {
            ++assignments_filtered_;
            return true;  // skip this assignment, keep enumerating others
          }
          current_.image[target] = endpoint;
          tasks_.emplace_back(target, endpoint);
          bool cont = ChooseEdge(w, v, edge_index + 1, ci + 1, task_index, fn);
          tasks_.pop_back();
          current_.image[target] = xml::kInvalidNode;
          return cont;
        });
    if (!keep_going) return false;
  }
  return true;
}

template <typename Yield>
bool MappingEnumerator::ForEachEndpoint(xml::NodeId v, PatternNodeId w,
                                        int32_t s, Yield&& yield) {
  const xml::DocIndex& index = tables_.index();
  const regex::DenseDfa& dfa = *tables_.edge_dfa_[w];
  // Endpoint walks can visit far more nodes than mappings emitted, so
  // they count guard steps too (deep documents, sparse matches).
  if (!guard::KeepGoing()) return false;
  int32_t next = dfa.Next(s, index.label(v));
  if (next == regex::kDeadState) return true;
  if (dfa.accepting(next) && tables_.Realizes(v, w)) {
    if (!yield(v)) return false;
  }
  for (xml::NodeId c : index.Children(v)) {
    if (!tables_.Delivers(c, w, next)) continue;
    if (!ForEachEndpoint(c, w, next, yield)) return false;
  }
  return true;
}

}  // namespace rtp::pattern

#endif  // RTP_PATTERN_EVALUATOR_H_
