#ifndef RTP_PATTERN_DOT_EXPORT_H_
#define RTP_PATTERN_DOT_EXPORT_H_

#include <string>

#include "automata/hedge_automaton.h"
#include "pattern/tree_pattern.h"

namespace rtp::pattern {

// Graphviz (DOT) rendering of a tree pattern: template nodes as circles
// (selected nodes doubled, the context — if given — shaded), edges labeled
// with their regular expressions.
std::string PatternToDot(const TreePattern& pattern, const Alphabet& alphabet,
                         PatternNodeId context = kInvalidPatternNode);

}  // namespace rtp::pattern

namespace rtp::automata {

// Graphviz rendering of a hedge automaton: states as nodes (marked states
// shaded, root-accepting states doubled), one edge per transition labeled
// with its guard; horizontal languages are summarized by their DFA size.
std::string AutomatonToDot(const HedgeAutomaton& automaton,
                           const Alphabet& alphabet);

}  // namespace rtp::automata

#endif  // RTP_PATTERN_DOT_EXPORT_H_
