#include "pattern/reference_evaluator.h"

#include <algorithm>

namespace rtp::pattern {

using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;

namespace {

// The unique descending path from `from` to `to` (exclusive of `from`,
// inclusive of `to`), or nullopt when `to` is not a proper descendant.
std::optional<std::vector<NodeId>> DescendingPath(const Document& doc,
                                                  NodeId from, NodeId to) {
  std::vector<NodeId> path;
  NodeId cur = to;
  while (cur != kInvalidNode && cur != from) {
    path.push_back(cur);
    cur = doc.parent(cur);
  }
  if (cur != from || path.empty()) return std::nullopt;
  std::reverse(path.begin(), path.end());
  return path;
}

class ReferenceEnumerator {
 public:
  ReferenceEnumerator(const TreePattern& pattern, const Document& doc)
      : pattern_(pattern), doc_(doc), preorder_(pattern.Preorder()) {
    doc_.Visit([this](NodeId n) {
      all_nodes_.push_back(n);
      return true;
    });
  }

  std::vector<Mapping> Run() {
    Mapping current;
    current.image.assign(pattern_.NumNodes(), kInvalidNode);
    Assign(0, &current);
    return std::move(results_);
  }

 private:
  // Assigns the preorder_[index]-th template node to every candidate
  // document node.
  void Assign(size_t index, Mapping* current) {
    if (index == preorder_.size()) {
      if (IsValidMapping(*current)) results_.push_back(*current);
      return;
    }
    PatternNodeId w = preorder_[index];
    if (w == TreePattern::kRoot) {
      current->image[w] = doc_.root();
      Assign(index + 1, current);
      current->image[w] = kInvalidNode;
      return;
    }
    for (NodeId v : all_nodes_) {
      // Cheap pruning that does not change the outcome: the image must be
      // a proper descendant of the parent's image (condition (3) implies
      // it; checking here keeps the search feasible).
      if (!doc_.IsAncestorOrSelf(current->image[pattern_.parent(w)], v) ||
          v == current->image[pattern_.parent(w)]) {
        continue;
      }
      current->image[w] = v;
      Assign(index + 1, current);
      current->image[w] = kInvalidNode;
    }
  }

  bool IsValidMapping(const Mapping& m) const {
    // (1) root condition.
    if (m.image[TreePattern::kRoot] != doc_.root()) return false;

    // (2) order preservation over all template-node pairs.
    for (size_t i = 0; i < preorder_.size(); ++i) {
      for (size_t j = i + 1; j < preorder_.size(); ++j) {
        NodeId a = m.image[preorder_[i]];
        NodeId b = m.image[preorder_[j]];
        if (!doc_.DocumentOrderLess(a, b)) return false;
      }
    }

    // (3) every edge realized by a descending path in its language.
    std::vector<std::vector<NodeId>> paths(pattern_.NumNodes());
    for (PatternNodeId w = 1; w < pattern_.NumNodes(); ++w) {
      auto path =
          DescendingPath(doc_, m.image[pattern_.parent(w)], m.image[w]);
      if (!path.has_value()) return false;
      std::vector<LabelId> word;
      word.reserve(path->size());
      for (NodeId n : *path) word.push_back(doc_.label(n));
      if (!pattern_.edge(w).Matches(word)) return false;
      paths[w] = std::move(*path);
    }

    // (4) no common prefix among sibling edges' paths: the paths of two
    // edges leaving the same template node must differ at the first step.
    for (PatternNodeId w = 0; w < pattern_.NumNodes(); ++w) {
      const std::vector<PatternNodeId>& kids = pattern_.children(w);
      for (size_t i = 0; i < kids.size(); ++i) {
        for (size_t j = i + 1; j < kids.size(); ++j) {
          if (paths[kids[i]].front() == paths[kids[j]].front()) return false;
        }
      }
    }
    return true;
  }

  const TreePattern& pattern_;
  const Document& doc_;
  std::vector<PatternNodeId> preorder_;
  std::vector<NodeId> all_nodes_;
  std::vector<Mapping> results_;
};

}  // namespace

std::vector<Mapping> ReferenceEnumerateMappings(const TreePattern& pattern,
                                                const xml::Document& doc) {
  return ReferenceEnumerator(pattern, doc).Run();
}

}  // namespace rtp::pattern
