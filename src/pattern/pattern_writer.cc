#include "pattern/pattern_writer.h"

namespace rtp::pattern {

namespace {

void RenderChildren(const TreePattern& pattern, const Alphabet& alphabet,
                    PatternNodeId w, int depth, std::string* out) {
  for (PatternNodeId child : pattern.children(w)) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append("n" + std::to_string(child));
    out->append(" = ");
    out->append(pattern.edge(child).ToString(alphabet));
    if (pattern.IsLeaf(child)) {
      out->append(";\n");
    } else {
      out->append(" {\n");
      RenderChildren(pattern, alphabet, child, depth + 1, out);
      out->append(static_cast<size_t>(depth) * 2, ' ');
      out->append("}\n");
    }
  }
}

}  // namespace

std::string PatternToDsl(const TreePattern& pattern, const Alphabet& alphabet,
                         std::optional<PatternNodeId> context) {
  std::string out = "root {\n";
  RenderChildren(pattern, alphabet, TreePattern::kRoot, 1, &out);
  out += "}\n";
  if (!pattern.selected().empty()) {
    out += "select ";
    for (size_t i = 0; i < pattern.selected().size(); ++i) {
      const SelectedNode& s = pattern.selected()[i];
      // The root cannot be named in the DSL; selections of the root are
      // not representable (ParsePattern names children only). Callers
      // should not select the template root.
      RTP_CHECK_MSG(s.node != TreePattern::kRoot,
                    "the DSL cannot express selecting the template root");
      if (i > 0) out += ", ";
      out += "n" + std::to_string(s.node);
      out += s.equality == EqualityType::kValue ? "[V]" : "[N]";
    }
    out += ";\n";
  }
  if (context.has_value()) {
    out += *context == TreePattern::kRoot
               ? "context root;\n"
               : "context n" + std::to_string(*context) + ";\n";
  }
  return out;
}

}  // namespace rtp::pattern
