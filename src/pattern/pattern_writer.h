#ifndef RTP_PATTERN_PATTERN_WRITER_H_
#define RTP_PATTERN_PATTERN_WRITER_H_

#include <optional>
#include <string>

#include "pattern/tree_pattern.h"

namespace rtp::pattern {

// Serializes a tree pattern back to the DSL accepted by ParsePattern
// (pattern_parser.h), naming every template node n<k>. Round-trips: parsing
// the output yields a structurally identical pattern (same shape, edge
// languages, selection and context). Lets programmatically built patterns
// (XPath compilations, path-FD compilations, generated patterns) be saved
// and fed to the CLI.
std::string PatternToDsl(const TreePattern& pattern, const Alphabet& alphabet,
                         std::optional<PatternNodeId> context = std::nullopt);

}  // namespace rtp::pattern

#endif  // RTP_PATTERN_PATTERN_WRITER_H_
