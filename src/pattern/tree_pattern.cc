#include "pattern/tree_pattern.h"

#include <algorithm>

namespace rtp::pattern {

PatternNodeId TreePattern::AddChild(PatternNodeId parent, regex::Regex edge) {
  RTP_CHECK(parent < nodes_.size());
  PatternNodeId id = static_cast<PatternNodeId>(nodes_.size());
  Node node;
  node.parent = parent;
  node.edge = std::move(edge);
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

bool TreePattern::IsAncestorOrSelf(PatternNodeId ancestor,
                                   PatternNodeId w) const {
  for (PatternNodeId cur = w;; cur = nodes_[cur].parent) {
    if (cur == ancestor) return true;
    if (cur == kRoot) return false;
  }
}

std::vector<PatternNodeId> TreePattern::Preorder() const {
  std::vector<PatternNodeId> order;
  order.reserve(nodes_.size());
  std::vector<PatternNodeId> stack = {kRoot};
  while (!stack.empty()) {
    PatternNodeId w = stack.back();
    stack.pop_back();
    order.push_back(w);
    const auto& kids = nodes_[w].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

int64_t TreePattern::Size(const Alphabet& alphabet) const {
  int64_t size = static_cast<int64_t>(alphabet.size());
  for (PatternNodeId w = 1; w < nodes_.size(); ++w) {
    size += nodes_[w].edge->AutomatonSize();
  }
  return size;
}

size_t TreePattern::MaxArity() const {
  size_t arity = 0;
  for (const Node& node : nodes_) {
    arity = std::max(arity, node.children.size());
  }
  return arity;
}

Status TreePattern::Validate() const {
  for (PatternNodeId w = 1; w < nodes_.size(); ++w) {
    if (!nodes_[w].edge->IsProper()) {
      return InvalidArgumentError(
          "pattern edge " + std::to_string(w) +
          " has a non-proper expression (accepts the empty word)");
    }
  }
  for (const SelectedNode& s : selected_) {
    if (s.node >= nodes_.size()) {
      return InvalidArgumentError("selected node out of range");
    }
  }
  return Status::OK();
}

namespace {

void Render(const TreePattern& p, const Alphabet& alphabet, PatternNodeId w,
            int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (w == TreePattern::kRoot) {
    out->append("root");
  } else {
    out->append("-[");
    out->append(p.edge(w).ToString(alphabet));
    out->append("]-> n");
    out->append(std::to_string(w));
  }
  for (size_t i = 0; i < p.selected().size(); ++i) {
    if (p.selected()[i].node == w) {
      out->append(" $");
      out->append(std::to_string(i));
      out->append(p.selected()[i].equality == EqualityType::kValue ? "[V]"
                                                                   : "[N]");
    }
  }
  out->push_back('\n');
  for (PatternNodeId c : p.children(w)) {
    Render(p, alphabet, c, depth + 1, out);
  }
}

}  // namespace

std::string TreePattern::ToString(const Alphabet& alphabet) const {
  std::string out;
  Render(*this, alphabet, kRoot, 0, &out);
  return out;
}

}  // namespace rtp::pattern
