#include "pattern/pattern_parser.h"

#include <cctype>

#include "regex/regex_parser.h"

namespace rtp::pattern {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class DslParser {
 public:
  DslParser(Alphabet* alphabet, std::string_view input)
      : alphabet_(alphabet), input_(input) {}

  StatusOr<ParsedPattern> Parse() {
    RTP_ASSIGN_OR_RETURN(std::string kw, ParseIdent());
    if (kw != "root") return Error("pattern must start with 'root'");
    RTP_RETURN_IF_ERROR(ParseBlock(TreePattern::kRoot));
    // Trailing clauses.
    while (true) {
      SkipSpace();
      if (Eof()) break;
      RTP_ASSIGN_OR_RETURN(std::string clause, ParseIdent());
      if (clause == "select") {
        RTP_RETURN_IF_ERROR(ParseSelect());
      } else if (clause == "context") {
        RTP_ASSIGN_OR_RETURN(std::string name, ParseIdent());
        RTP_ASSIGN_OR_RETURN(PatternNodeId node, Resolve(name));
        result_.context = node;
        if (!Eat(';')) return Error("expected ';' after context clause");
      } else {
        return Error("unknown clause '" + clause + "'");
      }
    }
    RTP_RETURN_IF_ERROR(result_.pattern.Validate());
    return std::move(result_);
  }

 private:
  bool Eof() {
    SkipSpace();
    return pos_ >= input_.size();
  }

  Status Error(std::string msg) const {
    return ParseError("pattern: " + msg + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' && input_.substr(pos_, 5) != "#text") {
        // '#' starts a comment — except the reserved '#text' label, the
        // only label beginning with '#'.
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  StatusOr<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsIdentChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected an identifier");
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<PatternNodeId> Resolve(const std::string& name) {
    auto it = result_.names.find(name);
    if (it == result_.names.end()) {
      // The template root needs no declaration; "root" resolves to it
      // unless shadowed by an explicitly named node.
      if (name == "root") return TreePattern::kRoot;
      return Error("unknown node name '" + name + "'");
    }
    return it->second;
  }

  // Parses "{ child* }" under `parent`. Blocks recurse through ParseChild,
  // so nesting is capped to keep adversarially deep input off the call
  // stack (edge regexes have their own cap in the regex parser).
  Status ParseBlock(PatternNodeId parent) {
    if (++depth_ > kMaxNestingDepth) {
      return ResourceExhaustedError(
          "pattern: block nesting depth exceeds " +
          std::to_string(kMaxNestingDepth) + " at offset " +
          std::to_string(pos_));
    }
    Status status = ParseBlockBody(parent);
    --depth_;
    return status;
  }

  Status ParseBlockBody(PatternNodeId parent) {
    if (!Eat('{')) return Error("expected '{'");
    while (!Eat('}')) {
      if (Eof()) return Error("unterminated '{'");
      RTP_RETURN_IF_ERROR(ParseChild(parent));
    }
    return Status::OK();
  }

  // Parses "[NAME =] REGEX ( '{' ... '}' | ';' )".
  Status ParseChild(PatternNodeId parent) {
    SkipSpace();
    // Look ahead for "NAME =" (regexes never contain '=').
    std::string name;
    size_t save = pos_;
    size_t p = pos_;
    while (p < input_.size() && IsIdentChar(input_[p])) ++p;
    size_t after_ident = p;
    while (p < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[p]))) {
      ++p;
    }
    if (after_ident > pos_ && p < input_.size() && input_[p] == '=') {
      name = std::string(input_.substr(pos_, after_ident - pos_));
      pos_ = p + 1;
    } else {
      pos_ = save;
    }
    // Regex text runs to the first '{' or ';' (comments cannot appear
    // inside an edge expression; '#text' is a label, not a comment).
    SkipSpace();
    size_t regex_start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '{' && input_[pos_] != ';') {
      ++pos_;
    }
    std::string_view regex_text =
        input_.substr(regex_start, pos_ - regex_start);
    RTP_ASSIGN_OR_RETURN(regex::RegexAst ast,
                         regex::ParseRegex(alphabet_, regex_text));
    regex::Regex edge = regex::Regex::FromAst(std::move(ast));
    // Minimal edge DFAs are an invariant of compiled patterns (they bound
    // the per-state loops of MatchTables::Build), enforced here rather
    // than assumed from the Regex constructor.
    edge.EnsureMinimalDfa();
    PatternNodeId node = result_.pattern.AddChild(parent, std::move(edge));
    if (!name.empty()) {
      if (!result_.names.emplace(name, node).second) {
        return Error("duplicate node name '" + name + "'");
      }
    }
    if (Peek() == '{') return ParseBlock(node);
    if (!Eat(';')) return Error("expected ';' or '{' after edge expression");
    return Status::OK();
  }

  Status ParseSelect() {
    std::vector<SelectedNode> selected;
    while (true) {
      RTP_ASSIGN_OR_RETURN(std::string name, ParseIdent());
      RTP_ASSIGN_OR_RETURN(PatternNodeId node, Resolve(name));
      EqualityType eq = EqualityType::kValue;
      if (Eat('[')) {
        RTP_ASSIGN_OR_RETURN(std::string type, ParseIdent());
        if (type == "V") {
          eq = EqualityType::kValue;
        } else if (type == "N") {
          eq = EqualityType::kNode;
        } else {
          return Error("equality type must be V or N, got '" + type + "'");
        }
        if (!Eat(']')) return Error("expected ']'");
      }
      selected.push_back(SelectedNode{node, eq});
      if (Eat(',')) continue;
      if (Eat(';')) break;
      return Error("expected ',' or ';' in select clause");
    }
    result_.pattern.set_selected(std::move(selected));
    return Status::OK();
  }

  static constexpr int kMaxNestingDepth = 256;

  Alphabet* alphabet_;
  std::string_view input_;
  size_t pos_ = 0;
  int depth_ = 0;
  ParsedPattern result_;
};

}  // namespace

StatusOr<ParsedPattern> ParsePattern(Alphabet* alphabet,
                                     std::string_view input) {
  return DslParser(alphabet, input).Parse();
}

}  // namespace rtp::pattern
