#ifndef RTP_PATTERN_PATTERN_PARSER_H_
#define RTP_PATTERN_PATTERN_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "pattern/tree_pattern.h"

namespace rtp::pattern {

// Result of parsing the pattern DSL.
struct ParsedPattern {
  TreePattern pattern;
  // Named template nodes ("c = session { ... }" binds "c").
  std::unordered_map<std::string, PatternNodeId> names;
  // Set by an optional "context NAME;" clause (functional dependencies).
  std::optional<PatternNodeId> context;
};

// Parses the textual pattern DSL:
//
//   root {
//     c = session {
//       x = candidate/exam {
//         p1 = discipline;
//         p2 = mark;
//         q = rank;
//       }
//     }
//   }
//   select p1[V], p2[V], q[V];
//   context c;
//
// Children are declared in sibling order; each child is "[NAME =] REGEX"
// followed by a '{ ... }' block (inner children) or ';'. The "select"
// clause lists the selected tuple in order with optional equality types
// ([V] default, [N] node equality); "context" names the FD context node.
// '#'-comments run to end of line.
StatusOr<ParsedPattern> ParsePattern(Alphabet* alphabet,
                                     std::string_view input);

}  // namespace rtp::pattern

#endif  // RTP_PATTERN_PATTERN_PARSER_H_
