#include "pattern/evaluator.h"

#include <algorithm>
#include <optional>
#include <set>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace rtp::pattern {

using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;

MatchTables MatchTables::Build(const TreePattern& pattern,
                               const Document& doc) {
  RTP_OBS_COUNT("pattern.eval.tables_built");
  RTP_OBS_SCOPED_TIMER("pattern.eval.tables_build_ns");
  MatchTables t;
  t.pattern_ = &pattern;
  t.doc_ = &doc;

  const size_t num_template_nodes = pattern.NumNodes();
  t.pair_offset_.assign(num_template_nodes, 0);
  uint32_t pairs = 0;
  for (PatternNodeId w = 1; w < num_template_nodes; ++w) {
    t.pair_offset_[w] = pairs;
    pairs += static_cast<uint32_t>(pattern.edge(w).dfa().NumStates());
  }
  t.num_pairs_ = pairs;
  t.pair_words_ = (pairs + 63) / 64;
  t.node_words_ = (num_template_nodes + 63) / 64;

  const size_t arena = doc.ArenaSize();
  t.delivers_.assign(arena * t.pair_words_, 0);
  t.realizes_.assign(arena * t.node_words_, 0);

  // Postorder over the live tree.
  std::vector<NodeId> postorder;
  postorder.reserve(arena);
  {
    std::vector<NodeId> stack = {doc.root()};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      postorder.push_back(v);
      for (NodeId c = doc.first_child(v); c != kInvalidNode;
           c = doc.next_sibling(c)) {
        stack.push_back(c);
      }
    }
    std::reverse(postorder.begin(), postorder.end());
  }

  std::vector<uint64_t> child_or(t.pair_words_);
  for (NodeId v : postorder) {
    // OR of children's delivers bitsets.
    std::fill(child_or.begin(), child_or.end(), 0);
    for (NodeId c = doc.first_child(v); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      for (size_t i = 0; i < t.pair_words_; ++i) {
        child_or[i] |= t.delivers_[c * t.pair_words_ + i];
      }
    }

    // Realizes: greedy in-order assignment of children to outgoing edges.
    for (PatternNodeId w = 0; w < num_template_nodes; ++w) {
      const std::vector<PatternNodeId>& edges = pattern.children(w);
      size_t j = 0;
      for (NodeId c = doc.first_child(v); c != kInvalidNode && j < edges.size();
           c = doc.next_sibling(c)) {
        PatternNodeId target = edges[j];
        int32_t init = pattern.edge(target).dfa().initial();
        if (t.Delivers(c, target, init)) ++j;
      }
      if (j == edges.size()) {
        SetBit(&t.realizes_, v, t.node_words_, w);
      }
    }

    // Delivers: for every (edge, state-before-v) pair.
    LabelId label = doc.label(v);
    for (PatternNodeId w = 1; w < num_template_nodes; ++w) {
      const regex::Dfa& dfa = pattern.edge(w).dfa();
      int32_t num_states = dfa.NumStates();
      for (int32_t s = 0; s < num_states; ++s) {
        int32_t next = dfa.Next(s, label);
        if (next == regex::kDeadState) continue;
        uint32_t index = t.pair_offset_[w] + static_cast<uint32_t>(s);
        bool ends_here = dfa.accepting(next) && t.Realizes(v, w);
        uint32_t cont_index = t.pair_offset_[w] + static_cast<uint32_t>(next);
        bool continues =
            (child_or[cont_index / 64] >> (cont_index % 64)) & 1;
        if (ends_here || continues) {
          SetBit(&t.delivers_, v, t.pair_words_, index);
        }
      }
    }
  }
  return t;
}

size_t MappingEnumerator::ForEach(const Callback& fn) {
  visited_ = 0;
  assignments_tried_ = 0;
  assignments_filtered_ = 0;
  RTP_OBS_COUNT("pattern.eval.enumerations");
  if (!tables_.HasTrace()) {
    RTP_OBS_COUNT("pattern.eval.no_trace");
    return 0;
  }
  if (assign_filter_ &&
      !assign_filter_(TreePattern::kRoot, tables_.doc().root())) {
    return 0;
  }
  fn_ = &fn;
  current_.image.assign(tables_.pattern().NumNodes(), kInvalidNode);
  current_.image[TreePattern::kRoot] = tables_.doc().root();
  tasks_.clear();
  tasks_.emplace_back(TreePattern::kRoot, tables_.doc().root());
  ExpandTasks(0);
  RTP_OBS_COUNT_N("pattern.eval.mappings_visited", visited_);
  RTP_OBS_COUNT_N("pattern.eval.assignments_tried", assignments_tried_);
  RTP_OBS_COUNT_N("pattern.eval.assignments_filtered", assignments_filtered_);
  return visited_;
}

size_t MappingEnumerator::Count(size_t limit) {
  size_t count = 0;
  ForEach([&](const Mapping&) {
    ++count;
    return limit == 0 || count < limit;
  });
  return count;
}

bool MappingEnumerator::ExpandTasks(size_t task_index) {
  if (task_index == tasks_.size()) {
    ++visited_;
    return (*fn_)(current_);
  }
  auto [w, v] = tasks_[task_index];
  return ChooseEdge(w, v, 0, tables_.doc().first_child(v), task_index);
}

bool MappingEnumerator::ChooseEdge(PatternNodeId w, NodeId v,
                                   size_t edge_index, NodeId from_child,
                                   size_t task_index) {
  const TreePattern& pattern = tables_.pattern();
  const Document& doc = tables_.doc();
  const std::vector<PatternNodeId>& edges = pattern.children(w);
  if (edge_index == edges.size()) return ExpandTasks(task_index + 1);

  PatternNodeId target = edges[edge_index];
  int32_t init = pattern.edge(target).dfa().initial();
  for (NodeId c = from_child; c != kInvalidNode; c = doc.next_sibling(c)) {
    if (!tables_.Delivers(c, target, init)) continue;
    NodeId next_from = doc.next_sibling(c);
    bool keep_going = ForEachEndpoint(c, target, init, [&](NodeId endpoint) {
      ++assignments_tried_;
      if (assign_filter_ && !assign_filter_(target, endpoint)) {
        ++assignments_filtered_;
        return true;  // skip this assignment, keep enumerating others
      }
      current_.image[target] = endpoint;
      tasks_.emplace_back(target, endpoint);
      bool cont = ChooseEdge(w, v, edge_index + 1, next_from, task_index);
      tasks_.pop_back();
      current_.image[target] = kInvalidNode;
      return cont;
    });
    if (!keep_going) return false;
  }
  return true;
}

bool MappingEnumerator::ForEachEndpoint(
    NodeId v, PatternNodeId w, int32_t s,
    const std::function<bool(NodeId)>& yield) {
  const TreePattern& pattern = tables_.pattern();
  const Document& doc = tables_.doc();
  const regex::Dfa& dfa = pattern.edge(w).dfa();
  int32_t next = dfa.Next(s, doc.label(v));
  if (next == regex::kDeadState) return true;
  if (dfa.accepting(next) && tables_.Realizes(v, w)) {
    if (!yield(v)) return false;
  }
  for (NodeId c = doc.first_child(v); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (!tables_.Delivers(c, w, next)) continue;
    if (!ForEachEndpoint(c, w, next, yield)) return false;
  }
  return true;
}

std::vector<std::vector<NodeId>> EvaluateSelected(const TreePattern& pattern,
                                                  const Document& doc) {
  MatchTables tables = MatchTables::Build(pattern, doc);
  MappingEnumerator enumerator(tables);
  std::vector<std::vector<NodeId>> result;
  std::set<std::vector<NodeId>> seen;
  size_t duplicates = 0;
  enumerator.ForEach([&](const Mapping& m) {
    std::vector<NodeId> tuple;
    tuple.reserve(pattern.selected().size());
    for (const SelectedNode& s : pattern.selected()) {
      tuple.push_back(m.image[s.node]);
    }
    if (seen.insert(tuple).second) {
      result.push_back(std::move(tuple));
    } else {
      ++duplicates;
    }
    return true;
  });
  RTP_OBS_COUNT_N("pattern.eval.tuples_selected", result.size());
  RTP_OBS_COUNT_N("pattern.eval.duplicate_tuples", duplicates);
  return result;
}

std::vector<std::vector<std::vector<NodeId>>> EvaluateSelectedBatch(
    const TreePattern& pattern, const std::vector<const Document*>& docs,
    int jobs, exec::ThreadPool* pool) {
  RTP_OBS_COUNT("pattern.eval.batches");
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && jobs > 1) {
    owned_pool.emplace(jobs);
    pool = &*owned_pool;
  }
  std::vector<std::vector<std::vector<NodeId>>> results(docs.size());
  exec::ParallelFor(pool, docs.size(), [&](size_t i) {
    results[i] = EvaluateSelected(pattern, *docs[i]);
  });
  return results;
}

std::vector<NodeId> TraceOf(const Document& doc, const Mapping& mapping) {
  std::set<NodeId> nodes;
  for (NodeId image : mapping.image) {
    if (image == kInvalidNode) continue;
    for (NodeId cur = image;; cur = doc.parent(cur)) {
      if (!nodes.insert(cur).second) break;
      if (cur == doc.root()) break;
    }
  }
  return std::vector<NodeId>(nodes.begin(), nodes.end());
}

}  // namespace rtp::pattern
