#include "pattern/evaluator.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/hashing.h"
#include "guard/failpoints.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace rtp::pattern {

using xml::DocIndex;
using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;

MatchTables MatchTables::Build(const TreePattern& pattern,
                               const Document& doc) {
  // The span covers the snapshot too: for profile consumers "build
  // tables" means everything up to a ready-to-enumerate state.
  RTP_OBS_TRACE_SPAN("pattern.build_tables");
  std::shared_ptr<const DocIndex> owned = doc.Snapshot();
  const DocIndex& index = *owned;
  return BuildImpl(pattern, index, std::move(owned));
}

MatchTables MatchTables::Build(const TreePattern& pattern,
                               const DocIndex& index) {
  RTP_OBS_TRACE_SPAN("pattern.build_tables");
  return BuildImpl(pattern, index, nullptr);
}

MatchTables MatchTables::BuildImpl(const TreePattern& pattern,
                                   const DocIndex& index,
                                   std::shared_ptr<const DocIndex> owned) {
  RTP_OBS_COUNT("pattern.eval.tables_built");
  RTP_OBS_COUNT("pattern.eval.dense.builds");
  RTP_OBS_SCOPED_TIMER("pattern.eval.tables_build_ns");
  RTP_FAILPOINT("pattern.tables.build");
  MatchTables t;
  t.pattern_ = &pattern;
  t.owned_index_ = std::move(owned);
  t.index_ = &index;

  const size_t num_template_nodes = pattern.NumNodes();
  t.edge_dfa_.assign(num_template_nodes, nullptr);
  t.pair_offset_.assign(num_template_nodes, 0);
  uint32_t pairs = 0;
  for (PatternNodeId w = 1; w < num_template_nodes; ++w) {
    t.edge_dfa_[w] = &pattern.edge(w).dense_dfa();
    t.pair_offset_[w] = pairs;
    pairs += static_cast<uint32_t>(t.edge_dfa_[w]->NumStates());
  }
  t.num_pairs_ = pairs;
  t.pair_words_ = (pairs + 63) / 64;
  t.node_words_ = (num_template_nodes + 63) / 64;

  const size_t arena = index.ArenaSize();
  // Table shape, for profiles: rows = arena slots, columns = summed DFA
  // states across the pattern's edges.
  RTP_OBS_COUNT_N("pattern.eval.table_rows", arena);
  RTP_OBS_COUNT_N("pattern.eval.dense.dfa_states", pairs);
  // The bitsets are the dominant allocation: arena * (pairs + nodes) bits.
  guard::AccountMemory(static_cast<int64_t>(arena) *
                       static_cast<int64_t>(t.pair_words_ + t.node_words_) *
                       static_cast<int64_t>(sizeof(uint64_t)));
  t.delivers_.assign(arena * t.pair_words_, 0);
  t.realizes_.assign(arena * t.node_words_, 0);

  // Leaf template nodes realize every document node; precompute their
  // Realizes row mask once and restrict the per-node greedy matching to
  // internal template nodes.
  std::vector<uint64_t> leaf_mask(t.node_words_, 0);
  std::vector<PatternNodeId> internal_nodes;
  for (PatternNodeId w = 0; w < num_template_nodes; ++w) {
    if (pattern.children(w).empty()) {
      leaf_mask[w / 64] |= uint64_t{1} << (w % 64);
    } else {
      internal_nodes.push_back(w);
    }
  }
  std::vector<int32_t> init_state(num_template_nodes, 0);
  for (PatternNodeId w = 1; w < num_template_nodes; ++w) {
    init_state[w] = t.edge_dfa_[w]->initial();
  }

  size_t label_skips = 0;
  std::vector<uint64_t> child_or(t.pair_words_);
  // Tables abandoned mid-postorder stay all-zeroes for unvisited nodes —
  // structurally valid; callers discard them via guard::CurrentStatus().
  for (NodeId v : index.Postorder()) {
    if (!guard::KeepGoing()) break;
    std::span<const NodeId> kids = index.Children(v);

    // OR of children's delivers bitsets.
    std::fill(child_or.begin(), child_or.end(), 0);
    for (NodeId c : kids) {
      const uint64_t* row = t.delivers_.data() + c * t.pair_words_;
      for (size_t i = 0; i < t.pair_words_; ++i) child_or[i] |= row[i];
    }

    // Realizes: greedy in-order assignment of children to outgoing edges.
    uint64_t* realizes_row = t.realizes_.data() + v * t.node_words_;
    for (size_t i = 0; i < t.node_words_; ++i) realizes_row[i] |= leaf_mask[i];
    for (PatternNodeId w : internal_nodes) {
      const std::vector<PatternNodeId>& edges = pattern.children(w);
      size_t j = 0;
      for (NodeId c : kids) {
        if (j == edges.size()) break;
        PatternNodeId target = edges[j];
        if (t.Delivers(c, target, init_state[target])) ++j;
      }
      if (j == edges.size()) {
        realizes_row[w / 64] |= uint64_t{1} << (w % 64);
      }
    }

    // Delivers: for every (edge, state-before-v) pair. An edge whose DFA
    // cannot move any state on v's label contributes nothing — skip its
    // whole state loop.
    const LabelId label = index.label(v);
    uint64_t* delivers_row = t.delivers_.data() + v * t.pair_words_;
    for (PatternNodeId w = 1; w < num_template_nodes; ++w) {
      const regex::DenseDfa& dfa = *t.edge_dfa_[w];
      const int32_t col = dfa.Column(label);
      if (!dfa.ColumnLive(col)) {
        ++label_skips;
        continue;
      }
      const int32_t* next_col = dfa.ColumnData(col);
      const uint32_t base = t.pair_offset_[w];
      const int32_t num_states = dfa.NumStates();
      const bool realizes_w = (realizes_row[w / 64] >> (w % 64)) & 1;
      for (int32_t s = 0; s < num_states; ++s) {
        const int32_t next = next_col[s];
        if (next == regex::kDeadState) continue;
        const bool ends_here = realizes_w && dfa.accepting(next);
        const uint32_t cont_index = base + static_cast<uint32_t>(next);
        const bool continues =
            (child_or[cont_index / 64] >> (cont_index % 64)) & 1;
        if (ends_here || continues) {
          const uint32_t bit = base + static_cast<uint32_t>(s);
          delivers_row[bit / 64] |= uint64_t{1} << (bit % 64);
        }
      }
    }
  }
  RTP_OBS_COUNT_N("pattern.eval.dense.label_skips", label_skips);
  return t;
}

size_t MappingEnumerator::Count(size_t limit) {
  size_t count = 0;
  ForEach([&](const Mapping&) {
    ++count;
    return limit == 0 || count < limit;
  });
  return count;
}

namespace {

struct TupleHash {
  size_t operator()(const std::vector<NodeId>& tuple) const {
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (NodeId n : tuple) h = HashMix(h, n);
    return static_cast<size_t>(h);
  }
};

std::vector<std::vector<NodeId>> EvaluateSelectedImpl(
    const TreePattern& pattern, const MatchTables& tables) {
  RTP_OBS_TRACE_SPAN("pattern.enumerate");
  MappingEnumerator enumerator(tables);
  std::vector<std::vector<NodeId>> result;
  std::unordered_set<std::vector<NodeId>, TupleHash> seen;
  size_t duplicates = 0;
  std::vector<NodeId> tuple;
  enumerator.ForEach([&](const Mapping& m) {
    tuple.clear();
    tuple.reserve(pattern.selected().size());
    for (const SelectedNode& s : pattern.selected()) {
      tuple.push_back(m.image[s.node]);
    }
    if (seen.insert(tuple).second) {
      result.push_back(tuple);
    } else {
      ++duplicates;
    }
    return true;
  });
  RTP_OBS_COUNT_N("pattern.eval.tuples_selected", result.size());
  RTP_OBS_COUNT_N("pattern.eval.duplicate_tuples", duplicates);
  return result;
}

}  // namespace

std::vector<std::vector<NodeId>> EvaluateSelected(const TreePattern& pattern,
                                                  const Document& doc) {
  return EvaluateSelected(pattern, doc, nullptr);
}

std::vector<std::vector<NodeId>> EvaluateSelected(const TreePattern& pattern,
                                                  const DocIndex& index) {
  return EvaluateSelected(pattern, index, nullptr);
}

std::vector<std::vector<NodeId>> EvaluateSelected(const TreePattern& pattern,
                                                  const Document& doc,
                                                  obs::QueryProfile* profile) {
  obs::ProfileScope prof("pattern.EvaluateSelected", profile);
  MatchTables tables = MatchTables::Build(pattern, doc);
  return EvaluateSelectedImpl(pattern, tables);
}

std::vector<std::vector<NodeId>> EvaluateSelected(const TreePattern& pattern,
                                                  const DocIndex& index,
                                                  obs::QueryProfile* profile) {
  obs::ProfileScope prof("pattern.EvaluateSelected", profile);
  MatchTables tables = MatchTables::Build(pattern, index);
  return EvaluateSelectedImpl(pattern, tables);
}

std::vector<std::vector<std::vector<NodeId>>> EvaluateSelectedBatch(
    const TreePattern& pattern, const std::vector<const Document*>& docs,
    int jobs, exec::ThreadPool* pool) {
  EvalBatchOptions options;
  options.jobs = jobs;
  options.pool = pool;
  return EvaluateSelectedBatch(pattern, docs, options, nullptr);
}

std::vector<std::vector<std::vector<NodeId>>> EvaluateSelectedBatch(
    const TreePattern& pattern, const std::vector<const Document*>& docs,
    const EvalBatchOptions& options, std::vector<Status>* statuses) {
  RTP_OBS_COUNT("pattern.eval.batches");
  exec::ThreadPool* pool = options.pool;
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && options.jobs > 1) {
    owned_pool.emplace(options.jobs);
    pool = &*owned_pool;
  }
  if (statuses != nullptr) statuses->assign(docs.size(), Status::OK());
  if (options.profiles != nullptr) {
    options.profiles->assign(docs.size(), obs::QueryProfile());
  }
  const bool guarded = options.budget.Limited() || options.cancel != nullptr;
  std::vector<std::vector<std::vector<NodeId>>> results(docs.size());
  exec::ParallelFor(pool, docs.size(), [&](size_t i) {
    obs::QueryProfile* item_profile =
        options.profiles == nullptr ? nullptr : &(*options.profiles)[i];
    if (!guarded) {
      results[i] = EvaluateSelected(pattern, *docs[i], item_profile);
      return;
    }
    // Pool workers do not inherit the caller's thread-local guard; each
    // document gets its own context so one runaway item trips alone.
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      if (statuses != nullptr) {
        (*statuses)[i] = CancelledError("cancelled before evaluation");
      }
      return;  // quick-skip lets the pool drain without touching the doc
    }
    guard::GuardContext ctx(options.budget, options.cancel);
    guard::ScopedGuard scope(&ctx);
    results[i] = EvaluateSelected(pattern, *docs[i], item_profile);
    if (!ctx.ok()) {
      results[i].clear();  // partial tuples under a trip are meaningless
      if (statuses != nullptr) (*statuses)[i] = ctx.status();
    }
  });
  return results;
}

std::vector<NodeId> TraceOf(const Document& doc, const Mapping& mapping) {
  // Seen-bitmask over the arena plus a flat collection vector; the final
  // sort restores the node-id order the previous std::set produced.
  std::vector<NodeId> nodes;
  std::vector<uint64_t> seen((doc.ArenaSize() + 63) / 64, 0);
  for (NodeId image : mapping.image) {
    if (image == kInvalidNode) continue;
    for (NodeId cur = image;; cur = doc.parent(cur)) {
      uint64_t& word = seen[cur / 64];
      const uint64_t bit = uint64_t{1} << (cur % 64);
      if (word & bit) break;
      word |= bit;
      nodes.push_back(cur);
      if (cur == doc.root()) break;
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace rtp::pattern
