#ifndef RTP_PATTERN_TREE_PATTERN_H_
#define RTP_PATTERN_TREE_PATTERN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/alphabet.h"
#include "common/status.h"
#include "regex/regex.h"

namespace rtp::pattern {

using PatternNodeId = uint32_t;
inline constexpr PatternNodeId kInvalidPatternNode = UINT32_MAX;

// Equality types attached to selected nodes of a functional dependency
// (Definition 4): V compares images by value equality, N by node identity.
enum class EqualityType : uint8_t { kValue, kNode };

struct SelectedNode {
  PatternNodeId node = kInvalidPatternNode;
  EqualityType equality = EqualityType::kValue;

  friend bool operator==(const SelectedNode&, const SelectedNode&) = default;
};

// An n-ary regular tree pattern R = (T, pi) of Definition 1.
//
// The template T is a rooted ordered tree whose node 0 is the root (it maps
// to the document root labeled "/"); each non-root node w carries the proper
// regular expression labeling the edge (parent(w), w). The selected tuple pi
// lists template nodes with their equality types (equality types only
// matter when the pattern is used as a functional dependency).
class TreePattern {
 public:
  TreePattern() { nodes_.emplace_back(); }

  static constexpr PatternNodeId kRoot = 0;

  // Appends a child under `parent` with edge expression `edge`. The
  // expression must be proper (checked by Validate; RTP_CHECKed here only
  // for compiled-DFA emptiness of the empty word).
  PatternNodeId AddChild(PatternNodeId parent, regex::Regex edge);

  size_t NumNodes() const { return nodes_.size(); }
  PatternNodeId parent(PatternNodeId w) const { return nodes_[w].parent; }
  const std::vector<PatternNodeId>& children(PatternNodeId w) const {
    return nodes_[w].children;
  }
  bool IsLeaf(PatternNodeId w) const { return nodes_[w].children.empty(); }

  // Edge expression of the edge (parent(w), w); w must not be the root.
  const regex::Regex& edge(PatternNodeId w) const {
    RTP_CHECK(w != kRoot && w < nodes_.size());
    return *nodes_[w].edge;
  }

  const std::vector<SelectedNode>& selected() const { return selected_; }
  void set_selected(std::vector<SelectedNode> selected) {
    selected_ = std::move(selected);
  }
  void AddSelected(PatternNodeId w,
                   EqualityType equality = EqualityType::kValue) {
    selected_.push_back(SelectedNode{w, equality});
  }

  bool IsAncestorOrSelf(PatternNodeId ancestor, PatternNodeId w) const;

  // Template nodes in preorder (document order of the template).
  std::vector<PatternNodeId> Preorder() const;

  // |R| = |Sigma| + sum of edge-automaton sizes (Definition 1).
  int64_t Size(const Alphabet& alphabet) const;

  // Maximal arity (max number of children of a template node).
  size_t MaxArity() const;

  // Checks structural invariants: proper edge expressions, selected nodes
  // in range.
  Status Validate() const;

  // Multi-line debug rendering.
  std::string ToString(const Alphabet& alphabet) const;

 private:
  struct Node {
    PatternNodeId parent = kInvalidPatternNode;
    std::vector<PatternNodeId> children;
    std::optional<regex::Regex> edge;  // nullopt for the root
  };

  std::vector<Node> nodes_;
  std::vector<SelectedNode> selected_;
};

}  // namespace rtp::pattern

#endif  // RTP_PATTERN_TREE_PATTERN_H_
