#ifndef RTP_PATTERN_REFERENCE_EVALUATOR_H_
#define RTP_PATTERN_REFERENCE_EVALUATOR_H_

#include <vector>

#include "pattern/evaluator.h"
#include "pattern/tree_pattern.h"
#include "xml/document.h"

namespace rtp::pattern {

// A literal transcription of Definition 2, used as the specification
// oracle in property tests (and nowhere else: it enumerates all candidate
// image assignments and is exponential in the template size).
//
// For every assignment of document nodes to template nodes it checks,
// directly against the definition:
//   (1) the template root maps to the document root,
//   (2) w ≺ w' (template preorder) implies π(w) < π(w') (document order),
//   (3) every template edge is realized by a descending document path
//       whose label word (endpoint included, start excluded) is in the
//       edge language,
//   (4) paths of two edges leaving the same template node share no common
//       prefix beyond their start node.
// Returns all mappings in a deterministic order.
std::vector<Mapping> ReferenceEnumerateMappings(const TreePattern& pattern,
                                                const xml::Document& doc);

}  // namespace rtp::pattern

#endif  // RTP_PATTERN_REFERENCE_EVALUATOR_H_
